//! Smoke test for the figure harness: a real figure must run end-to-end
//! through `figures::Ctx` on a tiny object budget, so regressions in the
//! measurement pipeline (driver, memoization, table rendering) are caught
//! by `cargo test -q` instead of only by the long-running fig binaries.

use otf_bench::figures::{self, Ctx};
use otf_bench::Options;

/// The smallest configuration that still exercises every stage: one rep,
/// one copy, 1% workload scale.
fn tiny() -> Options {
    Options {
        scale: 0.01,
        reps: 1,
        copies: 1,
        seed: 7,
    }
}

#[test]
fn fig07_runs_end_to_end_on_tiny_budget() {
    let ctx = Ctx::new(tiny());
    let table = figures::fig07(&ctx);
    let rendered = table.render();
    assert!(rendered.contains("Figure 7"), "missing title: {rendered}");
    // One header row + one data row covering the five thread counts.
    assert!(
        rendered.contains("No. of threads"),
        "missing header: {rendered}"
    );
    assert!(
        rendered.contains("Improvement"),
        "missing data row: {rendered}"
    );
    for threads in ["2", "4", "6", "8", "10"] {
        assert!(
            rendered.contains(threads),
            "missing column {threads}: {rendered}"
        );
    }
    // Every cell must be a rendered percentage, not a placeholder.
    assert!(
        rendered.matches('%').count() >= 5,
        "unrendered cells: {rendered}"
    );
}

#[test]
fn fig08_reuses_memoized_runs() {
    let ctx = Ctx::new(tiny());
    let first = figures::fig08(&ctx).render();
    // Same Ctx: the memoized measurements must make the rerun identical.
    let second = figures::fig08(&ctx).render();
    assert_eq!(first, second);
    assert!(first.contains("Anagram"));
}
