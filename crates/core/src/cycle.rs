//! Per-cycle collector context: raw counters, page-touch tracking and
//! phase timing, threaded through every collection phase.

use otf_heap::{ObjectRef, PageTracker, Space, GRANULE};

use crate::shared::GcShared;
use crate::stats::PhaseTimes;

/// Raw per-cycle counters (assembled into [`CycleStats`] at cycle end).
///
/// [`CycleStats`]: crate::stats::CycleStats
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Counters {
    pub objects_traced: u64,
    /// Bytes of the objects the trace blackened.  Feeds the lazy-sweep
    /// unswept-garbage estimate: at epoch publish,
    /// `used − traced − alloc-colored` approximates the dead bytes the
    /// deferred sweep will reclaim, so the full-collection trigger can
    /// count them as available space (DESIGN.md §4.6).
    pub bytes_traced: u64,
    pub intergen_objects: u64,
    pub intergen_bytes: u64,
    pub dirty_cards: u64,
    pub cards_in_use: u64,
    pub objects_freed: u64,
    pub bytes_freed: u64,
    pub objects_survived: u64,
    pub bytes_survived: u64,
    /// Survivors that carried the allocation color (created during the
    /// cycle): not live-set members yet, just allocation that raced the
    /// collection.
    pub bytes_alloc_colored: u64,
}

impl Counters {
    /// Adds a parallel worker's counters into this one.  Every field is
    /// a sum of disjoint events (the mark CAS-claim and the sweep's
    /// segment ownership guarantee each object is counted by exactly
    /// one worker), so merging is plain addition.
    pub(crate) fn merge(&mut self, o: &Counters) {
        self.objects_traced += o.objects_traced;
        self.bytes_traced += o.bytes_traced;
        self.intergen_objects += o.intergen_objects;
        self.intergen_bytes += o.intergen_bytes;
        self.dirty_cards += o.dirty_cards;
        self.cards_in_use += o.cards_in_use;
        self.objects_freed += o.objects_freed;
        self.bytes_freed += o.bytes_freed;
        self.objects_survived += o.objects_survived;
        self.bytes_survived += o.bytes_survived;
        self.bytes_alloc_colored += o.bytes_alloc_colored;
    }
}

/// Collector-thread-private context for one cycle.
#[derive(Debug)]
pub(crate) struct CycleCx {
    pub counters: Counters,
    pub pages: PageTracker,
    pub phases: PhaseTimes,
    /// The collector's private mark stack.  Only gray objects discovered
    /// *by the collector* go here (a plain `Vec` is an order of magnitude
    /// cheaper than the shared queue); mutator-barrier grays still arrive
    /// through the shared gray queue.
    pub mark_stack: Vec<ObjectRef>,
    /// Scratch buffer for `clear_cards_simple`'s per-card list of black
    /// objects to gray — reused across cards (and cycles) instead of
    /// allocating a fresh `Vec` per dirty card.
    pub scratch_grayed: Vec<(ObjectRef, usize)>,
    /// Scratch buffer for `clear_cards_aging`'s per-card list of tenured
    /// roots `(object, ref_slots, size_granules)` — reused likewise.
    pub scratch_tenured: Vec<(ObjectRef, usize, usize)>,
}

impl CycleCx {
    /// Creates a context sized for `shared`'s heap and tables.
    pub(crate) fn new(shared: &GcShared) -> CycleCx {
        CycleCx {
            counters: Counters::default(),
            pages: PageTracker::new(
                shared.heap.max_bytes(),
                shared.heap.colors().table_bytes(),
                shared.cards.table_bytes(),
                shared.heap.ages().table_bytes(),
            ),
            phases: PhaseTimes::default(),
            mark_stack: Vec::with_capacity(1024),
            scratch_grayed: Vec::new(),
            scratch_tenured: Vec::new(),
        }
    }

    /// Folds a parallel worker's context into this one at the phase
    /// barrier: counters add ([`Counters::merge`]), page touch-sets
    /// union ([`PageTracker::merge`]).  Phase times stay the main
    /// context's — workers run *inside* a phase, they don't own one.
    pub(crate) fn merge_worker(&mut self, worker: &CycleCx) {
        self.counters.merge(&worker.counters);
        self.pages.merge(&worker.pages);
    }

    /// Resets all per-cycle state.
    pub(crate) fn reset(&mut self) {
        self.counters = Counters::default();
        self.pages.reset();
        self.phases = PhaseTimes::default();
        self.mark_stack.clear();
        self.scratch_grayed.clear();
        self.scratch_tenured.clear();
    }

    /// Records that the collector read an object's header and its first
    /// `words` words.
    #[inline]
    pub(crate) fn touch_object(&mut self, obj: ObjectRef, words: usize) {
        let start = obj.byte();
        self.pages
            .touch_range(Space::Arena, start, start + words * otf_heap::WORD);
    }

    /// Records a color-table access for `granule`.
    #[inline]
    pub(crate) fn touch_color(&mut self, granule: usize) {
        self.pages.touch_byte(Space::ColorTable, granule);
    }

    /// Records a color-table scan over a granule range.
    #[inline]
    pub(crate) fn touch_color_range(&mut self, start: usize, end: usize) {
        self.pages.touch_range(Space::ColorTable, start, end);
    }

    /// Records a card-table scan over a card index range.
    #[inline]
    pub(crate) fn touch_card_range(&mut self, start: usize, end: usize) {
        self.pages.touch_range(Space::CardTable, start, end);
    }

    /// Records that the collector visited a whole object (e.g. freed it),
    /// in granules.
    #[inline]
    pub(crate) fn touch_object_granules(&mut self, start_granule: usize, granules: usize) {
        let start = start_granule * GRANULE;
        self.pages
            .touch_range(Space::Arena, start, start + granules * GRANULE);
    }
}
