//! The concurrent sweep (Figures 2 and 5).
//!
//! Sweep walks the color table linearly from the first granule to the
//! allocation frontier:
//!
//! * **clear-colored** objects are reclaimed: their granules become `Free`
//!   and contiguous reclaimed runs are coalesced into one chunk for the
//!   free lists;
//! * **black** objects stay black — in the simple generational variant
//!   this *is* promotion ("if we do not turn these objects white during
//!   the sweep, then black objects are in the old generation", §3);
//! * **allocation-colored** objects (created during the cycle — the
//!   paper's yellow) are left untouched, so they are *not* promoted (§4);
//!   thanks to the color toggle they need no recoloring either (§5);
//! * in the **aging** variant, survivors below the tenuring threshold are
//!   recolored to the allocation color and their age incremented
//!   (Figure 5), so only objects that reach the threshold stay black.
//!
//! Races with concurrent allocation are benign by construction: sweep
//! skips `Free`/`Interior` bytes one granule at a time and never re-inserts
//! already-free space into the free lists (see `otf_heap::freelist`).

use otf_heap::{Chunk, Color, GRANULE};

use crate::config::{Mode, Promotion};
use crate::cycle::CycleCx;
use crate::obs::EventKind;
use crate::shared::GcShared;

/// Reclaimed chunks accumulate in a batch and are published to the free
/// lists whenever this many are pending, so concurrent allocation never
/// starves behind a long sweep.  The batch is pre-sized to this
/// threshold.
const SWEEP_FLUSH_CHUNKS: usize = 256;

impl GcShared {
    /// Runs the sweep for the current cycle.
    pub(crate) fn sweep(&self, cx: &mut CycleCx) {
        let clear = self.colors.clear_color();
        let alloc = self.colors.allocation_color();
        let colors = self.heap.colors();
        let ages = self.heap.ages();
        let end = self.heap.frontier_granule();
        let aging = match self.config.mode {
            Mode::Generational(Promotion::Aging { threshold }) => Some(threshold),
            _ => None,
        };

        // Sweep reads every color byte up to the frontier.
        cx.touch_color_range(1, end);

        let mut run: Option<Chunk> = None;
        let mut batch: Vec<Chunk> = Vec::with_capacity(SWEEP_FLUSH_CHUNKS);
        let mut g = 1usize;
        while g < end {
            // Fast path: skip reclaimed / unallocated / in-flight space
            // with relaxed word-at-a-time loads.  Such space is never
            // reclaimed again, so any pending run must be flushed before
            // crossing it (we must not merge chunks into space someone
            // else may own).
            let next = colors.skip_non_object(g, end);
            if next != g {
                Self::flush_run(&mut run, &mut batch);
                if batch.len() >= SWEEP_FLUSH_CHUNKS {
                    self.heap.free_chunk_batch(&batch);
                    batch.clear();
                    self.obs
                        .event(EventKind::SweepProgress, g as u64, end as u64);
                }
                g = next;
                continue;
            }
            // The color table alone drives the parse: the object's
            // extent is its run of Interior bytes, so sweep never touches
            // the arena at all (headers included) — the non-moving
            // free-chunk records live in side storage too.
            let color = colors.get(g); // acquire pairs with allocation
            let obj_end = colors.object_end(g, end);
            let size = obj_end - g;
            if color == clear {
                // Reclaim: free ← free ∪ x; color(x) ← blue.
                cx.counters.objects_freed += 1;
                cx.counters.bytes_freed += (size * GRANULE) as u64;
                colors.fill(g, size, Color::Free);
                ages.set(g, 0);
                run = Some(match run {
                    Some(r) if r.end() as usize == g => Chunk::new(r.start, r.len + size as u32),
                    Some(r) => {
                        batch.push(r);
                        Chunk::new(g as u32, size as u32)
                    }
                    None => Chunk::new(g as u32, size as u32),
                });
            } else {
                // Survivor (traced, created-during-cycle, or — for
                // robustness — a leaked gray, treated as live).
                Self::flush_run(&mut run, &mut batch);
                if batch.len() >= SWEEP_FLUSH_CHUNKS {
                    self.heap.free_chunk_batch(&batch);
                    batch.clear();
                    self.obs
                        .event(EventKind::SweepProgress, g as u64, end as u64);
                }
                cx.counters.objects_survived += 1;
                cx.counters.bytes_survived += (size * GRANULE) as u64;
                if color == alloc {
                    cx.counters.bytes_alloc_colored += (size * GRANULE) as u64;
                }
                match aging {
                    Some(threshold) => {
                        cx.touch_age(g);
                        let age = ages.get(g);
                        if age < threshold {
                            // Young survivor: stays in the young
                            // generation with one more birthday.
                            colors.set(g, alloc);
                            ages.set(g, age + 1);
                        } else if color == Color::Gray {
                            colors.set(g, Color::Black);
                        }
                    }
                    None => {
                        if color == Color::Gray {
                            // A gray that escaped the trace: keep it
                            // conservatively as marked.
                            colors.set(g, self.trace_target());
                        }
                        // Simple variant: black stays black (promotion);
                        // allocation color untouched.
                    }
                }
            }
            g = obj_end;
        }
        Self::flush_run(&mut run, &mut batch);
        self.heap.free_chunk_batch(&batch);
        self.obs
            .event(EventKind::SweepProgress, end as u64, end as u64);
    }

    /// Moves a finished reclaimed run into the pending batch (inserted
    /// into the free lists in bulk at the end of the sweep).
    fn flush_run(run: &mut Option<Chunk>, batch: &mut Vec<Chunk>) {
        if let Some(r) = run.take() {
            batch.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::{ObjShape, ObjectRef};

    fn setup(cfg: GcConfig) -> (GcShared, CycleCx) {
        let sh = GcShared::new(cfg.with_max_heap(1 << 20).with_initial_heap(1 << 20));
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, granules: usize, color: Color) -> ObjectRef {
        // granules*2 - 1 words total => exactly `granules` granules.
        let shape = ObjShape::new(0, granules * 2 - 1);
        assert_eq!(shape.size_granules(), granules);
        let c = sh
            .heap
            .alloc_chunk(granules as u32, granules as u32)
            .unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn sweep_frees_clear_colored_only() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle(); // clear = White, allocation = Yellow
        let dead = alloc(&sh, 2, Color::White);
        let black = alloc(&sh, 2, Color::Black);
        let infant = alloc(&sh, 2, Color::Yellow);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
        assert_eq!(sh.heap.colors().get(black.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(cx.counters.objects_freed, 1);
        assert_eq!(cx.counters.bytes_freed, 32);
        assert_eq!(cx.counters.objects_survived, 2);
    }

    #[test]
    fn sweep_coalesces_adjacent_dead_objects() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let a = alloc(&sh, 2, Color::White);
        let _b = alloc(&sh, 3, Color::White);
        let _c = alloc(&sh, 1, Color::White);
        let live = alloc(&sh, 1, Color::Black);
        sh.sweep(&mut cx);
        assert_eq!(cx.counters.objects_freed, 3);
        // One coalesced chunk of 6 granules is available again.
        let chunk = sh.heap.alloc_chunk(6, 6).expect("coalesced chunk");
        assert_eq!(chunk.start as usize, a.granule());
        assert_eq!(chunk.len, 6);
        assert_eq!(sh.heap.colors().get(live.granule()), Color::Black);
    }

    #[test]
    fn sweep_run_not_merged_across_live_object() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let _a = alloc(&sh, 2, Color::White);
        let _live = alloc(&sh, 1, Color::Black);
        let _b = alloc(&sh, 2, Color::White);
        sh.sweep(&mut cx);
        // Two separate 2-granule chunks, not one 4-granule chunk.
        assert!(sh.heap.alloc_chunk(4, 4).is_none() || sh.heap.frontier_granule() > 6);
        assert!(sh.heap.alloc_chunk(2, 2).is_some());
        assert!(sh.heap.alloc_chunk(2, 2).is_some());
    }

    #[test]
    fn sweep_promotes_gray_leak() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let gray = alloc(&sh, 1, Color::Gray);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.colors().get(gray.granule()), Color::Black);
    }

    #[test]
    fn aging_sweep_ages_and_demotes_young_survivors() {
        let threshold = 3;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        sh.colors.toggle(); // allocation = Yellow, clear = White
                            // A traced (black) object of age 1: young survivor.
        let young = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(young.granule(), 1);
        // A traced object at the threshold: tenured, stays black.
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(old.granule(), threshold);
        // An infant created during the cycle.
        let infant = alloc(&sh, 1, Color::Yellow);
        assert_eq!(sh.heap.ages().get(infant.granule()), 1);

        sh.sweep(&mut cx);

        assert_eq!(sh.heap.colors().get(young.granule()), Color::Yellow);
        assert_eq!(sh.heap.ages().get(young.granule()), 2);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Black);
        assert_eq!(sh.heap.ages().get(old.granule()), threshold);
        // The infant also ages (Figure 5 increments every non-tenured
        // survivor) and keeps the allocation color.
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(sh.heap.ages().get(infant.granule()), 2);
    }

    #[test]
    fn aging_sweep_tenures_at_threshold() {
        let threshold = 2;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        sh.colors.toggle();
        let obj = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(obj.granule(), 1);
        sh.sweep(&mut cx);
        // age 1 -> 2 == threshold, but recolored young this time.
        assert_eq!(sh.heap.ages().get(obj.granule()), 2);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Yellow);
        // Next cycle it is traced black again and now stays black.
        sh.colors.toggle();
        sh.heap.colors().set(obj.granule(), Color::Black);
        let mut cx2 = CycleCx::new(&sh);
        sh.sweep(&mut cx2);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Black);
        assert_eq!(sh.heap.ages().get(obj.granule()), threshold);
    }

    #[test]
    fn sweep_clears_age_of_freed_objects() {
        let (sh, mut cx) = setup(GcConfig::aging(4));
        sh.colors.toggle();
        let dead = alloc(&sh, 1, Color::White);
        sh.heap.ages().set(dead.granule(), 3);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.ages().get(dead.granule()), 0);
    }

    #[test]
    fn non_generational_sweep_keeps_marked() {
        let (sh, mut cx) = setup(GcConfig::non_generational());
        sh.colors.toggle(); // allocation (= mark) Yellow, clear White
        let marked = alloc(&sh, 1, Color::Yellow);
        let dead = alloc(&sh, 1, Color::White);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.colors().get(marked.granule()), Color::Yellow);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
    }

    #[test]
    fn reclaimed_space_is_reusable() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let dead = alloc(&sh, 4, Color::White);
        sh.sweep(&mut cx);
        let c = sh.heap.alloc_chunk(4, 4).unwrap();
        assert_eq!(c.start as usize, dead.granule());
    }
}
