//! Per-shard allocation on top of the global [`BlockStore`].
//!
//! Each shard owns a private coalescing [`FreeLists`] pool.  A mutator
//! pinned to shard *S* (and a sweep claimant — collector worker or, in
//! the lazy back-end, another mutator — flushing a batch whose runs land
//! in *S*-owned blocks) synchronizes only on *S*'s pool lock; the store
//! lock is taken only to lease or return whole blocks.
//!
//! ## Ownership invariants (DESIGN.md §4.5)
//!
//! 1. Every granule sitting in shard *S*'s pool lies in a block whose
//!    owner-map entry is *S* — chunks enter the pool either as carve
//!    remainders of a lease to *S* or as frees routed here *by* the
//!    owner map, and pool coalescing therefore never merges across
//!    differently-owned blocks.
//! 2. A block is returned to the store only when all of its granules
//!    are in the owning shard's pool at once.  A free in flight targets
//!    allocated granules, which by (1) cannot be in the pool — so no
//!    free can race an ownership change, and a routed free always lands
//!    in a stable owner.
//! 3. Chunks handed out by [`ShardedAlloc::alloc`] may come from a
//!    sibling shard's pool (stealing on a tight heap).  The granules
//!    keep their block owner; when freed they return to the *owner's*
//!    pool, not the allocating shard's — membership and ownership stay
//!    aligned.

use crate::block::{BlockStore, BLOCK_GRANULES};
use crate::freelist::{Chunk, FreeLists};

/// A coalesced free run is returned to the store only when its
/// whole-block-aligned middle is at least this many granules (4 blocks),
/// so small frees stay in the shard as working memory instead of
/// bouncing lease/return traffic through the store lock.
const EXTRACT_MIN_GRANULES: u32 = (4 * BLOCK_GRANULES) as u32;

/// The sharded allocation back-end: N private pools over one block store.
#[derive(Debug)]
pub struct ShardedAlloc {
    shards: Vec<FreeLists>,
    store: BlockStore,
}

impl ShardedAlloc {
    /// A sharded allocator with `shard_count` shards over `max_granules`
    /// of arena.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(shard_count: usize, max_granules: usize) -> ShardedAlloc {
        assert!(shard_count > 0, "at least one shard");
        ShardedAlloc {
            shards: (0..shard_count).map(|_| FreeLists::new()).collect(),
            store: BlockStore::new(max_granules),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Allocates at least `min` granules (preferring `preferred`) on
    /// behalf of `shard`: the home pool first, then a whole-block lease
    /// from the store, then stealing from sibling pools.  Granule 0 is
    /// reserved for null and never handed out.
    pub fn alloc(
        &self,
        shard: usize,
        min: u32,
        preferred: u32,
        committed_granules: usize,
    ) -> Option<Chunk> {
        let home = &self.shards[shard];
        if let Some(c) = home.alloc(min, preferred) {
            return Some(c);
        }
        // Lease whole blocks.  A lease starting at block 0 loses granule
        // 0 to the null reservation; if the trimmed run is then too
        // short, park it in the home pool and lease again (block 0 is
        // leased at most once ever, so this loops at most twice).
        let min_blocks = (min as usize).div_ceil(BLOCK_GRANULES);
        let pref_blocks = (preferred as usize)
            .div_ceil(BLOCK_GRANULES)
            .max(min_blocks);
        let committed_blocks = committed_granules / BLOCK_GRANULES;
        for _ in 0..2 {
            let Some(lease) = self
                .store
                .lease(shard, min_blocks, pref_blocks, committed_blocks)
            else {
                break;
            };
            let (start, len) = if lease.start == 0 {
                (1, lease.len - 1)
            } else {
                (lease.start, lease.len)
            };
            if len < min {
                home.insert(Chunk::new(start, len));
                continue;
            }
            let take = preferred.min(len).max(min);
            if len > take {
                home.insert(Chunk::new(start + take, len - take));
            }
            return Some(Chunk::new(start, take));
        }
        // Tight heap: scavenge sibling pools.
        let n = self.shards.len();
        for i in 1..n {
            if let Some(c) = self.shards[(shard + i) % n].alloc(min, preferred) {
                return Some(c);
            }
        }
        None
    }

    /// Returns one chunk to its owning shard(s).
    pub fn free(&self, chunk: Chunk) {
        self.free_batch(std::slice::from_ref(&chunk));
    }

    /// Returns many chunks, grouped so each owning shard's lock is taken
    /// once.  Chunks spanning differently-owned blocks (sweep runs that
    /// coalesced across a lease boundary) are split at the boundary.
    /// Runs that coalesce into whole blocks go back to the store.
    pub fn free_batch(&self, chunks: &[Chunk]) {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<Chunk>> = vec![Vec::new(); n];
        for &c in chunks {
            self.route(c, &mut buckets);
        }
        let mut extracted: Vec<Chunk> = Vec::new();
        for (i, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            self.shards[i].insert_batch_extracting(
                bucket,
                BLOCK_GRANULES as u32,
                EXTRACT_MIN_GRANULES,
                &mut extracted,
            );
            for &e in &extracted {
                self.store.give_back(e);
            }
            extracted.clear();
        }
    }

    /// Splits `c` into maximal same-owner segments and buckets them.
    fn route(&self, c: Chunk, buckets: &mut [Vec<Chunk>]) {
        let end = c.end() as usize;
        let mut seg_start = c.start as usize;
        let mut seg_owner = self.owner_or_default(seg_start);
        let mut pos = (seg_start / BLOCK_GRANULES + 1) * BLOCK_GRANULES;
        while pos < end {
            let o = self.owner_or_default(pos);
            if o != seg_owner {
                buckets[seg_owner].push(Chunk::new(seg_start as u32, (pos - seg_start) as u32));
                seg_start = pos;
                seg_owner = o;
            }
            pos += BLOCK_GRANULES;
        }
        buckets[seg_owner].push(Chunk::new(seg_start as u32, (end - seg_start) as u32));
    }

    fn owner_or_default(&self, g: usize) -> usize {
        // A freed granule was allocated, hence leased; an unowned block
        // here means a caller freed something never handed out (test
        // misuse) — route it to shard 0 rather than corrupt the store.
        let o = self.store.owner_of_granule(g);
        debug_assert!(o.is_some(), "free of never-leased granule {g}");
        o.unwrap_or(0)
    }

    /// Free granules across every shard pool and the store.
    pub fn free_granules(&self) -> u64 {
        self.shards.iter().map(|s| s.free_granules()).sum::<u64>() + self.store.free_granules()
    }

    /// Free granules in shard `i`'s private pool.
    pub fn shard_free_granules(&self, i: usize) -> u64 {
        self.shards[i].free_granules()
    }

    /// Free granules held by the global block store.
    pub fn store_free_granules(&self) -> u64 {
        self.store.free_granules()
    }

    /// Every free chunk across shards and store (diagnostics / heap
    /// verification).
    pub fn snapshot(&self) -> Vec<Chunk> {
        let mut out: Vec<Chunk> = self.shards.iter().flat_map(|s| s.snapshot()).collect();
        out.extend(self.store.snapshot());
        out.sort_by_key(|c| c.start);
        out
    }

    /// The parse bound: one past the highest granule any lease covered.
    #[inline]
    pub fn frontier_granule(&self) -> usize {
        self.store.frontier_granule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: usize = BLOCK_GRANULES;
    const BG: u32 = BLOCK_GRANULES as u32;

    fn sharded(n: usize, blocks: usize) -> (ShardedAlloc, usize) {
        (ShardedAlloc::new(n, blocks * B), blocks * B)
    }

    #[test]
    fn first_alloc_skips_null_granule() {
        let (s, committed) = sharded(4, 64);
        let c = s.alloc(0, 4, 4, committed).unwrap();
        assert_eq!(c.start, 1);
        assert_eq!(c.len, 4);
        // The lease remainder stays in shard 0's pool.
        assert_eq!(s.shard_free_granules(0), (B - 1 - 4) as u64);
        assert_eq!(s.store_free_granules(), 0);
    }

    #[test]
    fn shards_lease_disjoint_blocks() {
        let (s, committed) = sharded(2, 64);
        let a = s.alloc(0, 4, 4, committed).unwrap();
        let b = s.alloc(1, 4, 4, committed).unwrap();
        assert!(a.end() <= b.start || b.end() <= a.start);
        // Each shard's next small alloc comes from its own pool, not a
        // fresh lease.
        let a2 = s.alloc(0, 2, 2, committed).unwrap();
        let b2 = s.alloc(1, 2, 2, committed).unwrap();
        assert_eq!(a2.start as usize / B, a.start as usize / B);
        assert_eq!(b2.start as usize / B, b.start as usize / B);
    }

    #[test]
    fn free_routes_to_owning_shard() {
        let (s, committed) = sharded(2, 64);
        let a = s.alloc(0, 8, 8, committed).unwrap();
        let before0 = s.shard_free_granules(0);
        let before1 = s.shard_free_granules(1);
        s.free(a);
        assert_eq!(s.shard_free_granules(0), before0 + 8);
        assert_eq!(s.shard_free_granules(1), before1);
    }

    #[test]
    fn steal_when_store_exhausted() {
        // One block committed: shard 0 leases it all; shard 1 must steal.
        let (s, _) = sharded(2, 64);
        let committed = B; // only one block committed
        let a = s.alloc(0, 16, 16, committed).unwrap();
        assert_eq!(a.start, 1);
        let b = s.alloc(1, 16, 16, committed).unwrap();
        assert_eq!(b.start, 17, "stolen from shard 0's remainder");
        // The stolen chunk still frees back to shard 0 (block owner).
        let f0 = s.shard_free_granules(0);
        s.free(b);
        assert_eq!(s.shard_free_granules(0), f0 + 16);
        assert_eq!(s.shard_free_granules(1), 0);
    }

    #[test]
    fn whole_block_runs_return_to_store() {
        let (s, committed) = sharded(2, 64);
        // An exact 8-block request cannot use the trimmed block-0 lease
        // (one granule short): that run parks in the pool and a second
        // lease satisfies the request.
        let c = s.alloc(0, 8 * BG, 8 * BG, committed).unwrap();
        assert_eq!(c.start as usize, 8 * B);
        assert_eq!(s.shard_free_granules(0), (8 * B - 1) as u64);
        s.free(c);
        // The freed run coalesces with the parked lease into [1, 16B);
        // its aligned middle [B, 16B) = 15 blocks ≥ the extraction
        // threshold returns to the store, the ragged head stays local.
        assert_eq!(s.store_free_granules(), 15 * B as u64);
        assert_eq!(s.shard_free_granules(0), (B - 1) as u64);
        // Returned blocks are leasable by the other shard.
        let d = s.alloc(1, 4 * BG, 4 * BG, committed).unwrap();
        assert_eq!(d.start as usize, B);
    }

    #[test]
    fn small_frees_stay_in_shard() {
        let (s, committed) = sharded(2, 64);
        let c = s.alloc(0, 2 * BG, 2 * BG, committed).unwrap();
        s.free(c);
        // 2-block run < 4-block extraction floor: stays local.
        assert_eq!(s.store_free_granules(), 0);
        assert!(s.shard_free_granules(0) >= 2 * B as u64 - 1);
    }

    #[test]
    fn batch_spanning_owner_boundary_splits() {
        let (s, committed) = sharded(2, 64);
        // Adjacent leases to different shards.
        let a = s.alloc(0, BG, BG, committed).unwrap(); // blocks 0 (granule 1..)
        let b = s.alloc(1, BG, BG, committed).unwrap(); // block 1
        assert_eq!(b.start as usize, a.end() as usize);
        // One coalesced chunk spanning both leases (as a sweep run
        // covering two adjacent dead objects would).
        let spanning = Chunk::new(a.start, a.len + b.len);
        s.free_batch(&[spanning]);
        // Shard 0 regains its block plus the parked block-0 remainder
        // (an exact one-block request cannot use the granule-0-trimmed
        // first lease); shard 1 regains exactly its block.
        assert_eq!(s.shard_free_granules(0), (2 * B - 1) as u64);
        assert_eq!(s.shard_free_granules(1), B as u64);
    }

    #[test]
    fn conservation_under_churn() {
        let (s, committed) = sharded(4, 64);
        let total = committed as u64 - 1; // granule 0 reserved
        let mut held: Vec<Chunk> = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let shard = (state >> 33) as usize % 4;
            let n = 1 + ((state >> 40) % 96) as u32;
            if i % 3 == 2 && !held.is_empty() {
                let idx = (state >> 10) as usize % held.len();
                s.free(held.swap_remove(idx));
            } else if let Some(c) = s.alloc(shard, n, n, committed) {
                held.push(c);
            }
            let out: u64 = held.iter().map(|c| c.len as u64).sum();
            let frontier = s.frontier_granule() as u64;
            let never_leased = committed as u64 - frontier;
            assert_eq!(
                s.free_granules() + out + never_leased,
                total,
                "granule conservation at step {i}"
            );
        }
        for c in held.drain(..) {
            s.free(c);
        }
        let frontier = s.frontier_granule() as u64;
        assert_eq!(s.free_granules(), frontier - 1);
        // No overlapping free chunks anywhere.
        let snap = s.snapshot();
        for w in snap.windows(2) {
            assert!(w[0].end() <= w[1].start, "overlap: {:?} / {:?}", w[0], w[1]);
        }
    }
}
