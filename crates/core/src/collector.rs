//! The collection cycle (Figures 2 and 5) and the collector thread.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use otf_heap::Color;
use otf_support::packet::Schedule;

use crate::cycle::CycleCx;
use crate::lazy::LazyWho;
use crate::obs::{dur_ns, EventKind};
use crate::plan::CycleFrame;
use crate::shared::{bucket, GcShared};
use crate::state::Status;
use crate::stats::{CycleKind, CycleStats};

impl GcShared {
    /// Runs one complete collection cycle.  Mutators keep running the
    /// whole time (on-the-fly): they cooperate via handshakes, their write
    /// barrier keeps the trace sound, and their allocations proceed with
    /// the allocation color.
    ///
    /// The cycle is a packet schedule (DESIGN.md §4.7): this
    /// configuration's plan selects the packets, the buckets open in
    /// Figure 2/5 order, and with one worker the schedule drains
    /// byte-for-byte the verified DLG sequence.  Phase attribution reads
    /// the closed buckets' spans back: each span is sampled exactly once
    /// at bucket close, handshake windows cover the full post→ack
    /// interval, and the card/root work nested inside them is subtracted
    /// out into its own slots.
    pub(crate) fn run_cycle(&self, kind: CycleKind, cx: &mut CycleCx) -> CycleStats {
        let cycle_start = Instant::now();
        // Chaos kill site 1 of 6 (cycle start, before any bucket opens);
        // the remaining five fire from the schedule's bucket-open hooks.
        if otf_support::fault::point("collector.phase") {
            panic!("injected collector panic (phase: cycle-start)");
        }
        cx.reset();

        let workers = self.config.gc_threads;
        let frame = CycleFrame::new(workers);
        let mut sched = Schedule::new();
        let buckets = self.build_cycle_schedule(&mut sched, kind, &frame, workers);
        self.run_schedule(&sched, cx, workers);

        cx.phases.init = sched.span(buckets.init);
        cx.phases.cards = Duration::from_nanos(frame.cards_ns.load(Ordering::Relaxed));
        cx.phases.roots = Duration::from_nanos(frame.roots_ns.load(Ordering::Relaxed));
        let windows = sched.span(buckets.hs1) + sched.span(buckets.hs2) + sched.span(buckets.hs3);
        if buckets.cards.is_some() && buckets.roots.is_some() {
            // Overlapped schedule (DESIGN.md §4.9): card/root work no
            // longer nests inside the handshake windows, so the windows
            // are pure handshake latency; the trace slot becomes summed
            // per-lane CPU time (the bucket's wall span also covers the
            // concurrent producers) and the overlap window's
            // critical-path wall is reported separately.
            cx.phases.handshakes = windows;
            cx.phases.trace = Duration::from_nanos(
                frame
                    .mark_ns
                    .iter()
                    .map(|n| n.load(Ordering::Relaxed))
                    .sum(),
            );
            cx.phases.mark_wall = sched.span(buckets.trace);
        } else {
            cx.phases.handshakes = windows
                .saturating_sub(cx.phases.cards)
                .saturating_sub(cx.phases.roots);
            cx.phases.trace = sched.span(buckets.trace);
            cx.phases.mark_wall = Duration::ZERO;
        }
        cx.phases.sweep = sched.span(buckets.reclaim)
            + buckets.finalize.map_or(Duration::ZERO, |b| sched.span(b));

        self.open_bucket
            .store(crate::shared::bucket::NONE, Ordering::Release);
        self.collecting.store(false, Ordering::Release);

        let duration = cycle_start.elapsed();
        self.obs.note_cycle_end(kind, dur_ns(duration));

        let c = cx.counters;
        CycleStats {
            kind,
            duration,
            phases: cx.phases,
            objects_traced: c.objects_traced,
            intergen_objects: c.intergen_objects,
            intergen_bytes: c.intergen_bytes,
            dirty_cards: c.dirty_cards,
            cards_in_use: c.cards_in_use,
            objects_freed: c.objects_freed,
            bytes_freed: c.bytes_freed,
            objects_survived: c.objects_survived,
            bytes_survived: c.bytes_survived,
            bytes_alloc_colored: c.bytes_alloc_colored,
            pages_touched: cx.pages.touched() as u64,
            used_before: frame.used_before.load(Ordering::Relaxed),
            used_after: self.heap.used_bytes(),
            allocated_since_last: frame.allocated_since.load(Ordering::Relaxed),
        }
    }

    /// The collector thread body: sleep until a collection is requested,
    /// run the cycle, record statistics, apply the post-full-collection
    /// growth heuristic, and wake any allocation-blocked mutators.
    pub(crate) fn collector_loop(self: Arc<GcShared>) {
        let mut cx = CycleCx::new(&self);
        let mut alloc_at_last_full = 0u64;
        while let Some(kind) = self.control.next_request() {
            // Chaos hook: a failing injection here kills the collector
            // thread, exercising the panic-containment path (poisoned
            // shutdown, `AllocError::CollectorUnavailable`).
            if otf_support::fault::point("collector.panic") {
                panic!("injected collector panic (chaos fault plan)");
            }
            // Re-validate partial requests: a mutator can re-post one in
            // the window between this loop consuming the previous request
            // and the cycle publishing its `collecting` flag, against an
            // allocation counter the finished cycle was about to consume.
            // Running such a phantom would collect a half-empty young
            // generation back to back with the real cycle.
            if kind == CycleKind::Partial
                && self.control.bytes_since_cycle() < self.config.young_size as u64 / 2
            {
                self.lazy_drain_between_cycles();
                continue;
            }
            let stats = self.run_cycle(kind, &mut cx);
            {
                let mut s = self.stats.lock();
                s.gc_active += stats.duration;
                s.cycles.push(stats);
            }
            if kind == CycleKind::Full {
                let total_alloc = self.heap.bytes_allocated();
                let since_last_full = total_alloc - alloc_at_last_full;
                alloc_at_last_full = total_alloc;
                // Resize toward a target occupancy, like the paper's JVM
                // heap manager, from the *measured live set* (the full
                // collection's survivors minus allocation that raced the
                // cycle): live data should sit at ≤ grow_fraction
                // occupancy, and the almost-full trigger must leave
                // headroom for a whole young-generation budget plus
                // in-flight allocation above the live set — otherwise it
                // would preempt every partial collection.  The same
                // calculation serves non-generational mode (§8: "the
                // calculation of the trigger for a full collection was
                // the same with and without generations"), where it
                // yields a cadence of roughly 1.7 young-budgets of
                // garbage per collection.
                let live = stats
                    .bytes_survived
                    .saturating_sub(stats.bytes_alloc_colored) as usize;
                // The generational heap needs headroom for a whole young
                // budget of uncollected garbage *plus* in-flight
                // allocation above the live set, or the almost-full
                // trigger preempts every partial.  The non-generational
                // heap has no such constraint and the paper's JDK grew it
                // only under allocation pressure, leaving it snug around
                // the live set — its Figure 10 cadences correspond to a
                // gap of roughly one young budget per collection.
                let headroom = if self.config.is_generational() {
                    self.config.young_size * 9 / 4
                } else {
                    self.config.young_size * 5 / 4
                };
                let target = ((live as f64 / self.config.grow_fraction) as usize)
                    .max(live * 3 / 2 + headroom);
                self.heap.grow_to(target);
                // Full-GC thrash backstop: if less than a quarter of the
                // committed size was allocated since the previous full
                // collection, the heap is simply too small; widen it by
                // one young budget (gently — doubling here would blow the
                // carefully-sized trigger gap apart).
                if since_last_full < self.heap.committed_bytes() as u64 / 4 {
                    self.heap
                        .grow_to(self.heap.committed_bytes() + self.config.young_size);
                }
            }
            self.control.consume_allocated(stats.allocated_since_last);
            self.control.note_cycle_done(kind);
            // Triggers crossed while the cycle ran were deliberately
            // ignored (`collecting` was set); re-evaluate them now so a
            // mutator that stopped allocating — or one still below its
            // next 64 KB batch — cannot starve a due collection.
            self.evaluate_triggers();
            // Lazy back-end: reclaim leftover epoch segments between
            // cycles so garbage is not stranded on an idle heap, yielding
            // to fresh cycle requests segment-by-segment.
            self.lazy_drain_between_cycles();
        }
    }

    /// The safe cycle-abort protocol (DESIGN.md §4.8).  Called by the
    /// supervisor after the collector loop panicked — whether from an
    /// internal bug, an injected fault, or the watchdog's abort-cycle
    /// escalation — and before the loop is respawned.  Rolls whatever
    /// cycle was in flight forward to a no-op:
    ///
    /// 1. lowers `tracing` (the write barrier falls back to plain card
    ///    marking);
    /// 2. completes the in-flight handshake by fiat: `status_c` returns
    ///    to `Async` and every mutator's status is forced to match, so
    ///    no mutator is stranded mid-`Sync` waiting on a dead collector;
    /// 3. waits (bounded) for write-barrier epochs to go even, then
    ///    discards the gray queue — any entry a racing barrier pushes
    ///    afterwards is harmless, because `mark_black` ignores entries
    ///    whose granule is no longer gray;
    /// 4. repaints every object granule to the *live* color
    ///    ([`trace_target`](GcShared::trace_target): black for the
    ///    generational plans, the allocation color for the baseline)
    ///    with the same SWAR scan `InitFullCollection` uses.  Nothing is
    ///    freed by an aborted cycle, so the worst outcome is floating
    ///    garbage; the forced full collection below re-traces everything
    ///    from roots, rebuilding real liveness (and, in the generational
    ///    plans, the generations — its init pass demotes every black
    ///    object before the toggle, restoring the "all pre-cycle objects
    ///    carry the clear color" invariant the trace needs);
    /// 5. force-finalizes any published lazy-sweep epoch (the schedule
    ///    order guarantees its parameters predate the aborted cycle's
    ///    toggle, so finalizing is exactly what the next cycle's
    ///    `lazy-finalize` bucket would have done);
    /// 6. clears the cycle-in-flight state and re-arms `Control` with a
    ///    full-collection request, so allocators parked in
    ///    `wait_for_full` are served by the restarted loop instead of
    ///    poisoned, then replays `evaluate_triggers`.
    ///
    /// `restarts` is the restart ordinal this abort precedes (1-based),
    /// recorded in the `RecoveryEnd` event.
    pub(crate) fn abort_cycle(&self, restarts: u64) {
        let t = Instant::now();
        let open = self.open_bucket.load(Ordering::Acquire);
        let had_cycle = open != bucket::NONE || self.collecting.load(Ordering::Acquire);
        self.obs.event(EventKind::RecoveryBegin, open as u64, 0);

        self.tracing.store(false, Ordering::Release);
        self.status_c.store(Status::Async as u8, Ordering::Release);
        let snapshot = self.mutators.lock().clone();
        for m in &snapshot {
            m.force_async();
        }
        self.notify_handshake();

        // Give in-flight write barriers a moment to drain; proceeding
        // past a wedged barrier is safe (see step 3 above), so the wait
        // is bounded rather than a second place to hang.
        let spin = Instant::now();
        while !self.mutators_all_even() && spin.elapsed() < Duration::from_millis(10) {
            std::thread::yield_now();
        }
        while self.gray.pop().is_some() {}

        // Chaos window: a failing injection here models a panic *during*
        // recovery (the double-panic path — the supervisor falls back to
        // permanent poison).
        if otf_support::fault::point("collector.recovery") {
            panic!("injected collector panic (recovery window)");
        }

        let live = self.trace_target();
        let colors = self.heap.colors();
        let end = self.heap.frontier_granule();
        let mut g = 1;
        loop {
            g = colors.next_color_above(g, end, Color::Interior);
            if g >= end {
                break;
            }
            colors.set(g, live);
            g += 1;
        }

        self.lazy_finalize(LazyWho::Collector);

        self.open_bucket.store(bucket::NONE, Ordering::Release);
        self.collecting.store(false, Ordering::Release);
        self.control.reset_for_recovery();
        self.evaluate_triggers();

        if had_cycle {
            self.obs.cycles_aborted.fetch_add(1, Ordering::Relaxed);
            self.obs.event(EventKind::CycleAborted, open as u64, 0);
        }
        let dur = dur_ns(t.elapsed());
        self.obs.recovery.record(dur);
        self.obs.event(EventKind::RecoveryEnd, restarts, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use otf_heap::{ObjShape, ObjectRef};

    fn setup(cfg: GcConfig) -> (GcShared, CycleCx) {
        let sh = GcShared::new(cfg.with_max_heap(1 << 20).with_initial_heap(1 << 20));
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    /// Allocates through the substrate with the current allocation color.
    fn alloc(sh: &GcShared, refs: usize) -> ObjectRef {
        let shape = ObjShape::new(refs, 1);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap
            .install_object(c.start as usize, &shape, sh.colors.allocation_color())
    }

    #[test]
    fn full_cycle_collects_unrooted_keeps_global_roots() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let live = alloc(&sh, 1);
        let son = alloc(&sh, 0);
        sh.heap.arena().store_ref_slot(live, 0, son);
        let dead = alloc(&sh, 0);
        sh.add_global_root(live);

        let stats = sh.run_cycle(CycleKind::Full, &mut cx);
        assert_eq!(stats.kind, CycleKind::Full);
        assert_eq!(sh.heap.colors().get(live.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(son.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
        assert_eq!(stats.objects_freed, 1);
        assert_eq!(stats.objects_traced, 2);
        assert!(stats.pages_touched > 0);
    }

    #[test]
    fn two_partials_promote_then_collect_old_garbage_only_in_full() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let a = alloc(&sh, 0);
        sh.add_global_root(a);
        // Partial 1: a survives, promoted black.
        sh.run_cycle(CycleKind::Partial, &mut cx);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Black);
        // Drop the root: a is now old garbage.
        assert!(sh.remove_global_root(a));
        // Partial 2 does NOT reclaim old garbage...
        sh.run_cycle(CycleKind::Partial, &mut cx);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Black);
        // ...but a full collection does.
        sh.run_cycle(CycleKind::Full, &mut cx);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Free);
    }

    #[test]
    fn partial_uses_dirty_cards_as_roots() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let parent = alloc(&sh, 1);
        sh.add_global_root(parent);
        sh.run_cycle(CycleKind::Partial, &mut cx); // promote parent
        assert!(sh.remove_global_root(parent));
        assert_eq!(sh.heap.colors().get(parent.granule()), Color::Black);

        // Store a young object into the old parent, as the async write
        // barrier would: store, then mark the parent's card.
        let young = alloc(&sh, 0);
        sh.heap.arena().store_ref_slot(parent, 0, young);
        sh.cards.mark_byte(parent.byte());

        let stats = sh.run_cycle(CycleKind::Partial, &mut cx);
        // Young survived purely through the inter-generational pointer.
        assert_eq!(sh.heap.colors().get(young.granule()), Color::Black);
        assert!(stats.intergen_objects >= 1);
        assert!(stats.dirty_cards >= 1);
    }

    #[test]
    fn partial_without_dirty_card_reclaims_unreferenced_young() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let young = alloc(&sh, 0);
        sh.run_cycle(CycleKind::Partial, &mut cx);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::Free);
    }

    #[test]
    fn non_generational_cycles_have_no_card_work() {
        let (sh, mut cx) = setup(GcConfig::non_generational());
        let live = alloc(&sh, 0);
        sh.add_global_root(live);
        let dead = alloc(&sh, 0);
        let stats = sh.run_cycle(CycleKind::Full, &mut cx);
        assert_eq!(stats.dirty_cards, 0);
        assert_eq!(stats.intergen_objects, 0);
        // Marked with the role-based "black" = the cycle's allocation
        // color, never literal black.
        assert_ne!(sh.heap.colors().get(live.granule()), Color::Black);
        assert!(sh.heap.colors().get(live.granule()).is_object());
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);

        // A second cycle must keep the survivor alive (toggle roles swap).
        let stats2 = sh.run_cycle(CycleKind::Full, &mut cx);
        assert!(sh.heap.colors().get(live.granule()).is_object());
        assert_eq!(stats2.objects_freed, 0);
    }

    #[test]
    fn aging_partial_cycle_ages_young_survivors() {
        let (sh, mut cx) = setup(GcConfig::aging(3));
        let obj = alloc(&sh, 0);
        sh.add_global_root(obj);
        assert_eq!(sh.heap.ages().get(obj.granule()), 1);
        sh.run_cycle(CycleKind::Partial, &mut cx);
        assert_eq!(sh.heap.ages().get(obj.granule()), 2);
        assert_ne!(sh.heap.colors().get(obj.granule()), Color::Black);
        sh.run_cycle(CycleKind::Partial, &mut cx);
        assert_eq!(sh.heap.ages().get(obj.granule()), 3);
        // Reached the threshold: the next cycle leaves it black (tenured).
        sh.run_cycle(CycleKind::Partial, &mut cx);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Black);
        assert_eq!(sh.heap.ages().get(obj.granule()), 3);
    }

    #[test]
    fn aging_full_collection_preserves_card_marks() {
        let (sh, mut cx) = setup(GcConfig::aging(3));
        let parent = alloc(&sh, 1);
        sh.add_global_root(parent);
        sh.cards.mark_byte(parent.byte());
        sh.run_cycle(CycleKind::Full, &mut cx);
        // §6: InitFullCollection does not clear the dirty bits.
        assert!(sh.cards.is_dirty(sh.cards.card_of_byte(parent.byte())));
    }

    #[test]
    fn simple_full_collection_clears_card_marks() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let parent = alloc(&sh, 1);
        sh.add_global_root(parent);
        sh.cards.mark_byte(parent.byte());
        sh.run_cycle(CycleKind::Full, &mut cx);
        assert!(!sh.cards.is_dirty(sh.cards.card_of_byte(parent.byte())));
    }

    #[test]
    fn abort_cycle_restores_quiescent_protocol_state() {
        let (sh, _cx) = setup(GcConfig::generational());
        let live = alloc(&sh, 0);
        sh.add_global_root(live);
        let m = sh.register_mutator();
        m.status.store(Status::Sync2 as u8, Ordering::Release);
        // Surrogate for a panic mid-trace: tracing raised, cycle in
        // flight, the trace bucket open, gray work queued.
        sh.collecting.store(true, Ordering::Release);
        sh.tracing.store(true, Ordering::Release);
        sh.status_c.store(Status::Sync2 as u8, Ordering::Release);
        sh.open_bucket.store(bucket::TRACE, Ordering::Release);
        sh.mark_gray_snapshot(live);
        assert!(!sh.gray.is_empty());

        sh.abort_cycle(1);

        assert!(!sh.tracing.load(Ordering::Acquire));
        assert!(!sh.collecting.load(Ordering::Acquire));
        assert_eq!(sh.status_c(), Status::Async);
        assert_eq!(m.status(), Status::Async, "handshake completed by fiat");
        assert!(sh.gray.is_empty());
        assert_eq!(sh.open_bucket.load(Ordering::Acquire), bucket::NONE);
        // Repainted to the live color (black in the generational plans).
        assert_eq!(sh.heap.colors().get(live.granule()), Color::Black);
        // A full collection was re-armed and the abort was counted.
        assert!(sh.control.has_request());
        assert_eq!(sh.obs.cycles_aborted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn abort_cycle_floats_garbage_and_forced_full_reclaims_it() {
        for cfg in [GcConfig::generational(), GcConfig::non_generational()] {
            let (sh, mut cx) = setup(cfg);
            let live = alloc(&sh, 1);
            let son = alloc(&sh, 0);
            sh.heap.arena().store_ref_slot(live, 0, son);
            let dead = alloc(&sh, 0);
            sh.add_global_root(live);
            sh.collecting.store(true, Ordering::Release);
            sh.open_bucket.store(bucket::HANDSHAKE_1, Ordering::Release);

            sh.abort_cycle(1);

            // No object freed by an aborted cycle: the garbage floats.
            assert!(sh.heap.colors().get(dead.granule()).is_object());
            // The re-armed request is a *full* collection; running it
            // rebuilds real liveness and reclaims the float.
            assert_eq!(sh.control.next_request(), Some(CycleKind::Full));
            sh.run_cycle(CycleKind::Full, &mut cx);
            assert!(sh.heap.colors().get(live.granule()).is_object());
            assert!(sh.heap.colors().get(son.granule()).is_object());
            assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
            assert!(sh.verify_heap().is_empty());
        }
    }

    #[test]
    fn abort_cycle_between_cycles_counts_no_abort() {
        let (sh, _cx) = setup(GcConfig::non_generational());
        sh.abort_cycle(1);
        // No cycle was in flight: nothing to count as aborted, but the
        // conservative full request is still armed.
        assert_eq!(sh.obs.cycles_aborted.load(Ordering::Relaxed), 0);
        assert!(sh.control.has_request());
        assert_eq!(sh.status_c(), Status::Async);
    }

    #[test]
    fn cycle_stats_account_bytes() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let dead1 = alloc(&sh, 0); // 2 granules (header + ref0? refs=0,data=1 -> 1 granule)
        let dead2 = alloc(&sh, 3);
        let d1 = sh.heap.arena().header(dead1).size_bytes() as u64;
        let d2 = sh.heap.arena().header(dead2).size_bytes() as u64;
        let stats = sh.run_cycle(CycleKind::Full, &mut cx);
        assert_eq!(stats.bytes_freed, d1 + d2);
        assert_eq!(stats.objects_freed, 2);
        assert_eq!(stats.objects_survived, 0);
    }
}
