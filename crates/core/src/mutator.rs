//! The mutator interface: allocation (`Create`), the write barrier
//! (`Update`), safe-point polling (`Cooperate`) and shadow-stack roots —
//! Figures 1 and 4 of the paper.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use otf_heap::{Chunk, Header, Lab, ObjShape, ObjectRef};

use crate::config::{Mode, Promotion};
use crate::lazy::LazyWho;
use crate::obs::dur_ns;
use crate::shared::GcShared;
use crate::state::{MutatorShared, Status};

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The heap is exhausted: a full collection and heap growth both
    /// failed to produce enough contiguous space.
    OutOfMemory {
        /// The request size in bytes.
        requested: usize,
    },
    /// The collector thread has panicked (poisoned shutdown): no
    /// collection will ever free space again, and growing the heap did
    /// not satisfy this request.  Unlike [`OutOfMemory`], this says the
    /// *collector* is gone, not that the live set filled the heap.
    ///
    /// [`OutOfMemory`]: AllocError::OutOfMemory
    CollectorUnavailable {
        /// The request size in bytes.
        requested: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            AllocError::CollectorUnavailable { requested } => write!(
                f,
                "collector thread dead (poisoned shutdown); \
                 could not allocate {requested} bytes without collection"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Which write-barrier flavour this mutator runs (precomputed from the
/// collector mode).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum BarrierKind {
    /// DLG barrier, no card marking (non-generational baseline).
    NonGenerational,
    /// Figure 1: card marked (object's card, before the store) only in
    /// `async`; in sync periods both young colors are shaded (§7.1).
    Simple,
    /// Figure 4: card marked after the store in *every* period; `MarkGray`
    /// shades only the clear color.
    Aging,
}

/// A mutator (application thread) attached to a [`Gc`](crate::Gc).
///
/// All heap access goes through this type: [`alloc`](Mutator::alloc)
/// creates objects, [`write_ref`](Mutator::write_ref) is the write
/// barrier, and the shadow stack (`root_*`) is what the collector scans as
/// this thread's roots.
///
/// # Liveness rules
///
/// * An [`ObjectRef`] is kept alive only while reachable from a shadow
///   stack, a global root, or another live object.  A ref held only in a
///   local variable is a "register" in the paper's sense: it stays valid
///   until the next [`alloc`]/[`cooperate`]/[`parked`] call on this
///   mutator (no handshake can complete in between), after which it must
///   have been rooted or stored.
/// * Call [`cooperate`] regularly from long computation loops that do not
///   allocate; an on-the-fly collector handshakes with every mutator, and
///   a non-cooperating thread stalls collection (not program execution).
/// * Wrap long non-heap work (I/O, waiting) in [`parked`], which lets the
///   collector respond to handshakes on this thread's behalf.
///
/// [`alloc`]: Mutator::alloc
/// [`cooperate`]: Mutator::cooperate
/// [`parked`]: Mutator::parked
#[derive(Debug)]
pub struct Mutator {
    shared: Arc<GcShared>,
    me: Arc<MutatorShared>,
    lab: Lab,
    roots: Vec<ObjectRef>,
    barrier: BarrierKind,
    /// Bytes allocated since the last trigger evaluation (batched so the
    /// global trigger checks run once per ~64 KB, not per allocation).
    unflushed_bytes: usize,
    /// Home allocation shard (registration id modulo the shard count):
    /// LAB refills and direct chunks come from here, so mutators on
    /// different shards don't contend on one free-list lock.  Always 0
    /// on the unsharded back-end.
    shard: usize,
}

/// Allocation granularity at which collection triggers are re-evaluated.
const TRIGGER_CHECK_BYTES: usize = 64 << 10;

impl Mutator {
    pub(crate) fn new(shared: Arc<GcShared>) -> Mutator {
        let me = shared.register_mutator();
        let barrier = match shared.config.mode {
            Mode::NonGenerational => BarrierKind::NonGenerational,
            Mode::Generational(Promotion::Simple) => BarrierKind::Simple,
            Mode::Generational(Promotion::Aging { .. }) => BarrierKind::Aging,
        };
        let shard = me.id as usize % shared.heap.shard_count();
        Mutator {
            shared,
            me,
            lab: Lab::new(),
            roots: Vec::new(),
            barrier,
            unflushed_bytes: 0,
            shard,
        }
    }

    // ----- allocation (Create, Figure 1) --------------------------------

    /// Allocates an object of the given shape, colored with the current
    /// allocation color (white between collections; the yellow role during
    /// a collection, §4/§5).  All reference slots start null and all data
    /// words start zero.
    ///
    /// This is a safe point: the mutator cooperates with any pending
    /// handshake *before* the object exists, so the returned reference
    /// stays valid until the next safe point even if not yet rooted.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when a blocking full collection and
    /// heap growth both fail to free enough space.
    pub fn alloc(&mut self, shape: &ObjShape) -> Result<ObjectRef, AllocError> {
        self.cooperate();
        let n = shape.size_granules() as u32;
        let start = self.acquire_granules(n)?;
        let color = self.shared.colors.allocation_color();
        let obj = self.shared.heap.install_object(start, shape, color);
        self.after_alloc(shape.size_bytes());
        Ok(obj)
    }

    fn acquire_granules(&mut self, n: u32) -> Result<usize, AllocError> {
        if let Some(s) = self.lab.try_carve(n) {
            self.shared.heap.note_lab_carve(n);
            return Ok(s as usize);
        }
        let lab_granules = self.shared.config.lab_granules;
        if n >= lab_granules / 2 {
            // Large object: allocate its chunk directly (it is carved into
            // an object immediately, so it never counts as leased-unused).
            let c = self.alloc_chunk_blocking(n, n)?;
            if c.len < n {
                // A chunk shorter than `min` is a substrate bug, but a
                // short carve must degrade to AllocError, not abort the
                // process: return the chunk and report the failure.
                debug_assert!(false, "alloc_chunk returned {} < min {}", c.len, n);
                self.shared.heap.free_chunk(c);
                return Err(self.alloc_failure(n));
            }
            return Ok(c.start as usize);
        }
        otf_support::fault::point("mutator.lab.refill");
        // The refill latency histogram times the whole chunk acquisition
        // in *both* sweep modes, so sweep work moved onto the allocation
        // path in lazy mode is visible in p99.99 comparisons instead of
        // hiding outside the stall histogram.
        let refill_start = Instant::now();
        let refilled = match self.lazy_refill_chunk(n, lab_granules) {
            Some(c) => Ok(c),
            None => self.alloc_chunk_blocking(n, lab_granules),
        };
        self.shared
            .obs
            .note_lab_refill(dur_ns(refill_start.elapsed()));
        let chunk = refilled?;
        self.shared.heap.note_lab_lease(chunk.len);
        if let Some(rest) = self.lab.refill(chunk) {
            self.shared.heap.note_lab_retire(rest.len);
            self.shared.heap.free_chunk(rest);
        }
        match self.lab.try_carve(n) {
            Some(s) => {
                self.shared.heap.note_lab_carve(n);
                Ok(s as usize)
            }
            None => {
                // The fresh LAB was too short for the request.  Hand the
                // remainder back so the granules are not leaked and fail
                // the allocation instead of aborting the process.
                debug_assert!(false, "fresh LAB cannot satisfy {n} granules");
                if let Some(rest) = self.lab.take_remainder() {
                    self.shared.heap.note_lab_retire(rest.len);
                    self.shared.heap.free_chunk(rest);
                }
                Err(self.alloc_failure(n))
            }
        }
    }

    /// The terminal allocation error for a request of `n` granules:
    /// `CollectorUnavailable` when the collector thread has panicked
    /// (space could exist, but nothing will ever reclaim it), otherwise
    /// plain `OutOfMemory`.
    fn alloc_failure(&self, n: u32) -> AllocError {
        let requested = n as usize * otf_heap::GRANULE;
        if self.shared.control.is_poisoned() {
            AllocError::CollectorUnavailable { requested }
        } else {
            AllocError::OutOfMemory { requested }
        }
    }

    /// Lazy-sweep hook at LAB refill: sweep-to-allocate one epoch
    /// segment (DESIGN.md §4.6).  A reclaimed run satisfying the request
    /// is handed back directly without a round trip through the free
    /// lists; its granules stay in `used` (dead objects became this
    /// caller's space), the same balance the eager free-then-reallocate
    /// sequence reaches.  `None` in eager mode, when the epoch is
    /// drained, or when the swept segment yielded no suitable run (its
    /// reclaimed chunks still went to the free lists).
    fn lazy_refill_chunk(&self, min: u32, preferred: u32) -> Option<Chunk> {
        if !self.shared.config.lazy_sweep {
            return None;
        }
        self.shared
            .lazy_sweep_segment(LazyWho::Mutator, Some((min, preferred)))
            .flatten()
    }

    /// Gets a chunk, blocking on a full collection (and growing the heap)
    /// when the committed region is exhausted.
    ///
    /// Collector-supervision interplay (DESIGN.md §4.8): a collector
    /// panic with restarts enabled is *transparent* here.  The abort
    /// protocol re-arms a full-collection request without poisoning, so a
    /// mutator parked in `wait_for_full` keeps waiting and is woken when
    /// the restarted collector completes that cycle — "recovery in
    /// flight" is just a slower collection, not an error.  Only terminal
    /// poison (restarts disabled or exhausted, or a panic during the
    /// abort itself) trips the `is_poisoned` checks below and degrades
    /// allocation to grow-only with `CollectorUnavailable` at exhaustion.
    fn alloc_chunk_blocking(
        &mut self,
        min: u32,
        preferred: u32,
    ) -> Result<otf_heap::Chunk, AllocError> {
        for _attempt in 0..8 {
            if let Some(c) = self.shared.heap.alloc_chunk_on(self.shard, min, preferred) {
                return Ok(c);
            }
            // Lazy mode under pressure: drain outstanding sweep segments
            // — the space this request needs may already be dead but
            // unswept — before escalating to a blocking full collection.
            if self.shared.config.lazy_sweep {
                loop {
                    match self
                        .shared
                        .lazy_sweep_segment(LazyWho::Mutator, Some((min, preferred)))
                    {
                        Some(Some(c)) => return Ok(c),
                        Some(None) => continue,
                        None => break,
                    }
                }
                if let Some(c) = self.shared.heap.alloc_chunk_on(self.shard, min, preferred) {
                    return Ok(c);
                }
            }
            if self.shared.control.is_shutdown() || self.shared.control.is_poisoned() {
                // No collector to help us (clean shutdown or poisoned by
                // a collector panic); just try to grow.
                if self.shared.heap.grow().is_none() {
                    break;
                }
                continue;
            }
            // Block for a full collection (we park so the collector can
            // handshake on our behalf).  The stall — the one place a
            // mutator waits for the collector — feeds the pause histogram.
            let fulls = self.shared.control.fulls_done();
            self.shared.control.request_full();
            let shared = Arc::clone(&self.shared);
            let stall_start = Instant::now();
            let completed = self.parked(move || shared.control.wait_for_full(fulls));
            self.shared
                .obs
                .note_alloc_stall(dur_ns(stall_start.elapsed()));
            if let Some(c) = self.shared.heap.alloc_chunk_on(self.shard, min, preferred) {
                return Ok(c);
            }
            // The collection did not produce enough space: grow.
            if self.shared.heap.grow().is_none() && !completed {
                break;
            }
        }
        Err(self.alloc_failure(min))
    }

    fn after_alloc(&mut self, bytes: usize) {
        self.unflushed_bytes += bytes;
        if self.unflushed_bytes < TRIGGER_CHECK_BYTES {
            return;
        }
        let pending = std::mem::take(&mut self.unflushed_bytes);
        self.shared.control.add_allocated(pending as u64);
        // While a cycle runs this is a no-op; the collector re-evaluates
        // the triggers itself when the cycle finishes, so a threshold
        // crossed mid-cycle is never starved waiting for the next batch.
        self.shared.evaluate_triggers();
    }

    // ----- the write barrier (Update, Figures 1 and 4) ------------------

    /// Stores `y` into reference slot `i` of object `x` through the DLG
    /// write barrier.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `i` is not a reference slot of `x`.
    pub fn write_ref(&mut self, x: ObjectRef, i: usize, y: ObjectRef) {
        debug_assert!(!x.is_null(), "store into null object");
        debug_assert!(
            i < self.shared.heap.arena().header(x).ref_slots(),
            "slot {i} out of bounds"
        );
        let shared = &self.shared;
        self.me.epoch_enter();
        let status = self.me.status.load(Ordering::Acquire);
        // Chaos hook inside the barrier's race window: between reading
        // this mutator's period perception and acting on it (graying /
        // card marking / the store), a delay here stretches the window in
        // which the collector can advance the cycle underneath us — the
        // interleavings the §7 barrier must tolerate.
        otf_support::fault::point("mutator.barrier.window");
        let is_async = status == Status::Async as u8;
        match self.barrier {
            BarrierKind::NonGenerational => {
                if !is_async {
                    shared.obs.barrier_slow.fetch_add(1, Ordering::Relaxed);
                    let old = shared.heap.arena().load_ref_slot(x, i);
                    shared.mark_gray_snapshot(old);
                    shared.mark_gray_snapshot(y);
                } else if shared.tracing.load(Ordering::Acquire) {
                    shared.obs.barrier_slow.fetch_add(1, Ordering::Relaxed);
                    let old = shared.heap.arena().load_ref_slot(x, i);
                    shared.mark_gray_clear(old);
                }
                shared.heap.arena().store_ref_slot(x, i, y);
            }
            BarrierKind::Simple => {
                if !is_async {
                    // §7.1: in sync1/sync2 the barrier also shades yellow
                    // objects (mark_gray_snapshot shades both young
                    // colors); no card marking is needed in this window.
                    shared.obs.barrier_slow.fetch_add(1, Ordering::Relaxed);
                    let old = shared.heap.arena().load_ref_slot(x, i);
                    shared.mark_gray_snapshot(old);
                    shared.mark_gray_snapshot(y);
                } else if shared.tracing.load(Ordering::Acquire) {
                    shared.obs.barrier_slow.fetch_add(1, Ordering::Relaxed);
                    let old = shared.heap.arena().load_ref_slot(x, i);
                    shared.mark_gray_clear(old);
                    shared.cards.mark_byte(x.byte());
                } else {
                    shared.cards.mark_byte(x.byte());
                }
                shared.heap.arena().store_ref_slot(x, i, y);
            }
            BarrierKind::Aging => {
                if !is_async {
                    shared.obs.barrier_slow.fetch_add(1, Ordering::Relaxed);
                    let old = shared.heap.arena().load_ref_slot(x, i);
                    shared.mark_gray_clear(old);
                    shared.mark_gray_clear(y);
                } else if shared.tracing.load(Ordering::Acquire) {
                    shared.obs.barrier_slow.fetch_add(1, Ordering::Relaxed);
                    let old = shared.heap.arena().load_ref_slot(x, i);
                    shared.mark_gray_clear(old);
                }
                // §7.2: the store strictly precedes the card mark, so the
                // collector's clear-check-remark protocol can never lose
                // an inter-generational pointer.
                shared.heap.arena().store_ref_slot(x, i, y);
                shared.cards.mark_byte(x.byte());
            }
        }
        self.me.epoch_exit();
    }

    /// Loads reference slot `i` of `x`.  Reads need no barrier in DLG.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `i` is not a reference slot of `x`.
    #[inline]
    pub fn read_ref(&self, x: ObjectRef, i: usize) -> ObjectRef {
        debug_assert!(
            i < self.shared.heap.arena().header(x).ref_slots(),
            "slot {i} out of bounds"
        );
        self.shared.heap.arena().load_ref_slot(x, i)
    }

    /// Stores a non-reference data word (no barrier needed).
    #[inline]
    pub fn write_data(&mut self, x: ObjectRef, i: usize, value: u64) {
        let ref_slots = self.shared.heap.arena().header(x).ref_slots();
        self.shared
            .heap
            .arena()
            .store_data_word(x, ref_slots, i, value);
    }

    /// Loads a non-reference data word.
    #[inline]
    pub fn read_data(&self, x: ObjectRef, i: usize) -> u64 {
        let ref_slots = self.shared.heap.arena().header(x).ref_slots();
        self.shared.heap.arena().load_data_word(x, ref_slots, i)
    }

    /// The header of `x` (size, slot count, class id).
    #[inline]
    pub fn header(&self, x: ObjectRef) -> Header {
        self.shared.heap.arena().header(x)
    }

    // ----- cooperation (Figure 1) ----------------------------------------

    /// The safe point: if the collector posted a handshake, respond to it.
    /// Responding to the third handshake (transition to `async`) marks
    /// this mutator's shadow-stack roots gray (Figure 1's `Cooperate`).
    pub fn cooperate(&mut self) {
        // Chaos hook: delaying here models a mutator that is slow to
        // reach its safe point, stretching the handshake window (and, at
        // the extreme, exercising the collector's stall watchdog).
        otf_support::fault::point("mutator.cooperate");
        let sc = self.shared.status_c.load(Ordering::Acquire);
        if self.me.status.load(Ordering::Relaxed) == sc {
            return;
        }
        // Adopting a posted status is this thread's GC pause: time the
        // safe-point work (root marking on the third handshake) and
        // record both the pause and the post→ack response latency.
        let pause_start = Instant::now();
        // Transitions advance one step at a time because the collector
        // waits for all mutators between handshakes.
        if sc == Status::Async as u8 {
            self.me.epoch_enter();
            for &r in &self.roots {
                self.shared.mark_gray_snapshot(r);
            }
            self.me.epoch_exit();
        }
        self.me.status.store(sc, Ordering::Release);
        self.shared
            .obs
            .note_handshake_ack(Status::from_byte(sc), dur_ns(pause_start.elapsed()));
        self.shared.notify_handshake();
        // Hand the CPU to the collector right away: the shorter the
        // sync1/sync2 windows are, the less the snapshot barrier
        // conservatively retains (on a machine with spare cores this is a
        // no-op; on an oversubscribed one it keeps handshakes prompt).
        std::thread::yield_now();
    }

    /// Runs `f` while parked: the collector may respond to handshakes on
    /// this mutator's behalf using a snapshot of its shadow stack.  Use
    /// this around blocking operations that do not touch the heap.
    pub fn parked<R>(&mut self, f: impl FnOnce() -> R) -> R {
        {
            let mut p = self.me.park.lock();
            p.roots.clear();
            p.roots.extend_from_slice(&self.roots);
            p.parked = true;
        }
        self.shared.notify_handshake();
        let result = f();
        {
            let mut p = self.me.park.lock();
            p.parked = false;
            p.roots.clear();
        }
        result
    }

    // ----- shadow-stack roots --------------------------------------------

    /// Pushes a root; returns its index (for [`root_set`]).
    ///
    /// [`root_set`]: Mutator::root_set
    #[inline]
    pub fn root_push(&mut self, r: ObjectRef) -> usize {
        self.roots.push(r);
        self.roots.len() - 1
    }

    /// Pops the most recent root and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the shadow stack is empty.
    #[inline]
    pub fn root_pop(&mut self) -> ObjectRef {
        self.roots.pop().expect("shadow stack underflow")
    }

    /// Reads root `i`.
    #[inline]
    pub fn root_get(&self, i: usize) -> ObjectRef {
        self.roots[i]
    }

    /// Overwrites root `i` (no barrier needed: stacks are scanned at
    /// handshakes, one of DLG's key efficiency properties).
    #[inline]
    pub fn root_set(&mut self, i: usize, r: ObjectRef) {
        self.roots[i] = r;
    }

    /// Current shadow-stack depth.
    #[inline]
    pub fn root_len(&self) -> usize {
        self.roots.len()
    }

    /// Truncates the shadow stack to `len` entries (popping a frame).
    #[inline]
    pub fn root_truncate(&mut self, len: usize) {
        self.roots.truncate(len);
    }

    /// Adds a global (static) root.  The object must currently be rooted
    /// on this mutator's shadow stack (or otherwise reachable).
    pub fn add_global_root(&self, r: ObjectRef) {
        self.shared.add_global_root(r);
    }

    /// Removes one occurrence of a global root; returns whether it was
    /// present.
    pub fn remove_global_root(&self, r: ObjectRef) -> bool {
        self.shared.remove_global_root(r)
    }
}

impl Drop for Mutator {
    fn drop(&mut self) {
        // Flush allocation bytes still below the batching threshold:
        // short-lived mutators would otherwise never contribute to the
        // §3.3 trigger accumulator (many threads each allocating just
        // under 64 KB could fill the heap without ever triggering).
        let pending = std::mem::take(&mut self.unflushed_bytes);
        if pending > 0 {
            self.shared.control.add_allocated(pending as u64);
            self.shared.evaluate_triggers();
        }
        // Return the unallocated LAB tail and leave the handshake protocol.
        if let Some(rest) = self.lab.take_remainder() {
            self.shared.heap.note_lab_retire(rest.len);
            self.shared.heap.free_chunk(rest);
        }
        self.shared.deregister_mutator(&self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::state::Status;
    use otf_heap::Color;

    fn setup(cfg: GcConfig) -> (Arc<GcShared>, Mutator) {
        let shared = Arc::new(GcShared::new(
            cfg.with_max_heap(1 << 20).with_initial_heap(1 << 20),
        ));
        let m = Mutator::new(Arc::clone(&shared));
        (shared, m)
    }

    fn set_mutator_status(m: &Mutator, s: Status) {
        m.me.status.store(s as u8, Ordering::Release);
    }

    #[test]
    fn alloc_uses_allocation_color_and_zeroes_slots() {
        let (shared, mut m) = setup(GcConfig::generational());
        let obj = m.alloc(&ObjShape::new(2, 1)).unwrap();
        assert_eq!(shared.heap.colors().get(obj.granule()), Color::White);
        assert!(m.read_ref(obj, 0).is_null());
        assert_eq!(m.read_data(obj, 0), 0);
        shared.colors.toggle();
        let obj2 = m.alloc(&ObjShape::new(0, 0)).unwrap();
        assert_eq!(shared.heap.colors().get(obj2.granule()), Color::Yellow);
    }

    #[test]
    fn simple_barrier_async_idle_marks_card_only() {
        let (shared, mut m) = setup(GcConfig::generational());
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let y = m.alloc(&ObjShape::new(0, 0)).unwrap();
        m.write_ref(x, 0, y);
        // Card of x's header dirty; nothing grayed.
        assert!(shared.cards.is_dirty(shared.cards.card_of_byte(x.byte())));
        assert_eq!(shared.heap.colors().get(y.granule()), Color::White);
        assert!(shared.gray.is_empty());
        assert_eq!(m.read_ref(x, 0), y);
    }

    #[test]
    fn simple_barrier_async_tracing_grays_old_value() {
        let (shared, mut m) = setup(GcConfig::generational());
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let old = m.alloc(&ObjShape::new(0, 0)).unwrap();
        let new = m.alloc(&ObjShape::new(0, 0)).unwrap();
        m.write_ref(x, 0, old);
        // Enter "collector is tracing" with the toggle flipped, so the
        // stored objects carry the clear color.
        shared.colors.toggle();
        shared.tracing.store(true, Ordering::Release);
        m.write_ref(x, 0, new);
        // Old value (clear-colored) grayed; new value not.
        assert_eq!(shared.heap.colors().get(old.granule()), Color::Gray);
        assert_eq!(shared.gray.pop(), Some(old));
        assert_eq!(shared.heap.colors().get(new.granule()), Color::White);
    }

    #[test]
    fn simple_barrier_sync_grays_both_including_yellow() {
        let (shared, mut m) = setup(GcConfig::generational());
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let old = m.alloc(&ObjShape::new(0, 0)).unwrap();
        m.write_ref(x, 0, old);
        shared.colors.toggle();
        // A "yellow" object (current allocation color).
        let yellow = m.alloc(&ObjShape::new(0, 0)).unwrap();
        assert_eq!(shared.heap.colors().get(yellow.granule()), Color::Yellow);
        // Mutator perceives sync1: §7.1's exception — yellow is shaded too.
        shared.post_handshake(Status::Sync1);
        set_mutator_status(&m, Status::Sync1);
        // Clear the dirt left by the async-phase write above so the card
        // assertion below observes only the sync-phase barrier.
        shared.cards.clear(shared.cards.card_of_byte(x.byte()));
        m.write_ref(x, 0, yellow);
        assert_eq!(shared.heap.colors().get(old.granule()), Color::Gray);
        assert_eq!(shared.heap.colors().get(yellow.granule()), Color::Gray);
        // No card marking in sync periods for the simple variant (§7.1).
        assert!(!shared.cards.is_dirty(shared.cards.card_of_byte(x.byte())));
    }

    #[test]
    fn aging_barrier_always_marks_card_after_store() {
        let (shared, mut m) = setup(GcConfig::aging(4));
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let y = m.alloc(&ObjShape::new(0, 0)).unwrap();
        // Even in a sync period the aging barrier marks the card (Fig 4).
        shared.post_handshake(Status::Sync1);
        set_mutator_status(&m, Status::Sync1);
        m.write_ref(x, 0, y);
        assert!(shared.cards.is_dirty(shared.cards.card_of_byte(x.byte())));
        // Aging MarkGray shades only the clear color: y has the
        // allocation color, so it is NOT grayed.
        assert_eq!(shared.heap.colors().get(y.granule()), Color::White);
    }

    #[test]
    fn non_generational_barrier_never_touches_cards() {
        let (shared, mut m) = setup(GcConfig::non_generational());
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let y = m.alloc(&ObjShape::new(0, 0)).unwrap();
        m.write_ref(x, 0, y);
        shared.tracing.store(true, Ordering::Release);
        m.write_ref(x, 0, y);
        assert_eq!(shared.cards.count_dirty(shared.cards.len()), 0);
    }

    #[test]
    fn cooperate_marks_roots_on_third_handshake_only() {
        let (shared, mut m) = setup(GcConfig::generational());
        let r = m.alloc(&ObjShape::new(0, 0)).unwrap();
        m.root_push(r);
        shared.post_handshake(Status::Sync1);
        m.cooperate();
        assert_eq!(shared.heap.colors().get(r.granule()), Color::White);
        shared.post_handshake(Status::Sync2);
        m.cooperate();
        assert_eq!(shared.heap.colors().get(r.granule()), Color::White);
        shared.post_handshake(Status::Async);
        m.cooperate();
        assert_eq!(shared.heap.colors().get(r.granule()), Color::Gray);
        assert_eq!(shared.gray.pop(), Some(r));
    }

    #[test]
    fn drop_flushes_unflushed_allocation_bytes() {
        let (shared, mut m) = setup(GcConfig::generational());
        let obj = m.alloc(&ObjShape::new(0, 10)).unwrap();
        let _ = obj;
        // Well below the 64 KB batching threshold: nothing flushed yet.
        assert_eq!(shared.control.bytes_since_cycle(), 0);
        drop(m);
        assert!(shared.control.bytes_since_cycle() > 0);
    }

    #[test]
    fn barrier_slow_counts_graying_branches_only() {
        let (shared, mut m) = setup(GcConfig::generational());
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let y = m.alloc(&ObjShape::new(0, 0)).unwrap();
        // Async, collector idle: card-mark-only fast path.
        m.write_ref(x, 0, y);
        assert_eq!(shared.obs.barrier_slow.load(Ordering::Relaxed), 0);
        // Sync window: the graying branch is the slow path.
        shared.post_handshake(Status::Sync1);
        set_mutator_status(&m, Status::Sync1);
        m.write_ref(x, 0, y);
        assert_eq!(shared.obs.barrier_slow.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cooperate_slow_path_records_handshake_latency() {
        let (shared, mut m) = setup(GcConfig::generational());
        m.cooperate(); // fast path: statuses agree, nothing recorded
        assert_eq!(shared.obs.handshake.count(), 0);
        shared.post_handshake(Status::Sync1);
        m.cooperate();
        assert_eq!(shared.obs.handshake.count(), 1);
        assert_eq!(shared.obs.pause.count(), 1);
    }

    #[test]
    fn shadow_stack_operations() {
        let (_shared, mut m) = setup(GcConfig::generational());
        let a = m.alloc(&ObjShape::new(0, 0)).unwrap();
        let b = m.alloc(&ObjShape::new(0, 0)).unwrap();
        let ia = m.root_push(a);
        let ib = m.root_push(b);
        assert_eq!((ia, ib), (0, 1));
        assert_eq!(m.root_len(), 2);
        assert_eq!(m.root_get(0), a);
        m.root_set(0, b);
        assert_eq!(m.root_get(0), b);
        assert_eq!(m.root_pop(), b);
        m.root_truncate(0);
        assert_eq!(m.root_len(), 0);
    }

    #[test]
    fn parked_publishes_root_snapshot() {
        let (shared, mut m) = setup(GcConfig::generational());
        let r = m.alloc(&ObjShape::new(0, 0)).unwrap();
        m.root_push(r);
        let me = Arc::clone(&m.me);
        let result = m.parked(|| {
            let p = me.park.lock();
            assert!(p.parked);
            assert_eq!(p.roots.as_slice(), &[r]);
            7
        });
        assert_eq!(result, 7);
        assert!(!m.me.park.lock().parked);
        let _ = shared;
    }

    #[test]
    fn epochs_bracket_the_barrier() {
        let (shared, mut m) = setup(GcConfig::generational());
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        assert!(m.me.epoch_is_even());
        m.write_ref(x, 0, ObjectRef::NULL);
        assert!(m.me.epoch_is_even(), "barrier must exit its epoch");
        let _ = shared;
    }

    #[test]
    fn large_objects_bypass_the_lab() {
        let (shared, mut m) = setup(GcConfig::generational());
        // Larger than half a LAB: direct chunk allocation.
        let big = ObjShape::new(0, 3000);
        let obj = m.alloc(&big).unwrap();
        assert_eq!(shared.heap.colors().get(obj.granule()), Color::White);
        assert_eq!(m.header(obj).size_granules(), big.size_granules());
    }

    #[test]
    fn mostly_empty_labs_do_not_trigger_full_collection() {
        // Regression for the premature-full-collection bug: three
        // mutators each lease a 256 KB LAB on a 1 MB heap and install one
        // tiny object.  Raw `used_bytes` crosses the 75% trigger, but
        // almost all of it is leased-unused LAB space.
        let shared = Arc::new(GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_lab_granules(16384),
        ));
        let mut muts: Vec<Mutator> = (0..3).map(|_| Mutator::new(Arc::clone(&shared))).collect();
        for m in &mut muts {
            let r = m.alloc(&ObjShape::new(0, 0)).unwrap();
            m.root_push(r);
        }
        assert!(
            shared.heap.used_bytes() * 4 >= shared.heap.committed_bytes() * 3,
            "test premise: raw used crosses the 75% trigger"
        );
        shared.control.add_allocated(128 << 10); // past the progress floor
        shared.evaluate_triggers();
        shared.control.begin_shutdown();
        assert_eq!(
            shared.control.next_request(),
            None,
            "mostly-empty LABs fired a premature full collection"
        );
    }

    #[test]
    fn lab_lease_accounting_balances_on_drop() {
        let (shared, mut m) = setup(GcConfig::generational());
        let _ = m.alloc(&ObjShape::new(0, 0)).unwrap();
        let leased = shared.heap.lab_leased_granules();
        assert!(leased > 0, "LAB lease not recorded");
        drop(m);
        assert_eq!(
            shared.heap.lab_leased_granules(),
            0,
            "retiring the LAB must return the leased-unused figure to zero"
        );
    }

    #[test]
    fn mutators_pin_to_distinct_shards() {
        let shared = Arc::new(GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_alloc_shards(2),
        ));
        let m1 = Mutator::new(Arc::clone(&shared));
        let m2 = Mutator::new(Arc::clone(&shared));
        assert_ne!(m1.shard, m2.shard, "consecutive ids share a shard");
        assert!(m1.shard < 2 && m2.shard < 2);
    }

    #[test]
    fn alloc_on_sharded_heap_round_trips() {
        let shared = Arc::new(GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_alloc_shards(4),
        ));
        let mut m = Mutator::new(Arc::clone(&shared));
        let x = m.alloc(&ObjShape::new(1, 0)).unwrap();
        let y = m.alloc(&ObjShape::new(0, 4)).unwrap();
        m.write_ref(x, 0, y);
        assert_eq!(m.read_ref(x, 0), y);
        assert_eq!(shared.heap.colors().get(x.granule()), Color::White);
    }

    #[test]
    fn oom_error_reports_requested_bytes() {
        let (shared, mut m) = setup(GcConfig::generational());
        // These unit tests run without a collector thread, so shut the
        // control down: the blocking allocation path then falls back to
        // heap growth only, and reports OOM once the 1 MB heap is full.
        shared.control.begin_shutdown();
        let shape = ObjShape::new(0, 1000); // ~8 KB objects
        let mut oom = None;
        for _ in 0..400 {
            match m.alloc(&shape) {
                Ok(r) => {
                    m.root_push(r);
                }
                Err(e) => {
                    oom = Some(e);
                    break;
                }
            }
        }
        match oom {
            Some(AllocError::OutOfMemory { requested }) => {
                assert!(requested >= shape.size_bytes());
            }
            Some(other) => panic!("expected OutOfMemory, got {other}"),
            None => panic!("1 MB heap never overflowed"),
        }
    }
}
