//! Deterministic fault injection: named injection points threaded through
//! the collector's race windows.
//!
//! The on-the-fly protocol (paper §7) is correct only if every mutator
//! eventually answers each soft handshake and the collector thread never
//! dies — liveness properties ordinary tests exercise only on the happy
//! schedule.  This module lets a chaos harness *drive* the system into
//! the narrow interleaving windows instead of waiting for the scheduler
//! to stumble into them:
//!
//! * **Injection points** are named call sites (`fault::point("...")`)
//!   placed inside the race windows: the handshake ack, the write-barrier
//!   window between the status read and the card mark, LAB refill, chunk
//!   allocation, collector phase transitions.
//! * **Actions** are *yield* (hand the CPU to another thread right inside
//!   the window), *delay* (sleep a bounded, seeded number of
//!   microseconds — widens the window so a racing thread can land in
//!   it), and *fail* (the call site turns the hit into an injected
//!   failure: a refused chunk allocation, a collector panic).
//! * **Determinism**: the decision for the `k`-th hit of a point is a
//!   pure function of `(plan seed, point name, k)` — no hidden RNG
//!   state, no locks on the decision path.  Per point, the same seed
//!   produces the same action sequence byte-for-byte regardless of
//!   thread interleaving; a single-threaded schedule reproduces the
//!   whole log exactly.
//!
//! ## Cost when disabled
//!
//! The registry is process-global and off by default.  A disabled
//! [`point`] is **one relaxed atomic load and one predictable branch** —
//! it never touches the plan, the log, or any lock — so the hooks can
//! stay compiled into release binaries (the collector's tier-1 pause
//! benchmarks run with the hooks in place).
//!
//! ## Usage
//!
//! ```
//! use otf_support::fault::{self, FaultPlan, FaultRule};
//!
//! let _serial = fault::exclusive(); // serialize chaos tests per process
//! fault::install(
//!     FaultPlan::new(42)
//!         .rule(FaultRule::at("mutator.cooperate").yielding(0.5))
//!         .rule(FaultRule::at("heap.alloc_chunk").failing(0.1).max_fires(3)),
//! );
//! // ... run the system; call sites consult the plan ...
//! assert!(!fault::point("unlisted.point"));
//! let log = fault::uninstall();
//! // Same seed ⇒ same per-point decision sequence.
//! # let _ = log;
//! ```
//!
//! The global registry is shared by every collector in the process, so
//! concurrent tests that install plans must serialize via
//! [`exclusive`]; the chaos harnesses in this workspace do.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an injection point did for one hit.  `None` decisions (the
/// overwhelming majority under small probabilities) are not logged.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// `std::thread::yield_now()` inside the window.
    Yield,
    /// Slept for the given number of microseconds inside the window.
    Delay {
        /// Injected sleep, in microseconds (deterministic per hit).
        micros: u64,
    },
    /// The call site was told to fail (refuse an allocation, panic the
    /// collector, ...).  At sites that cannot fail the action is a no-op
    /// but still logged.
    Fail,
}

/// One fired injection: point name, per-point hit index, action taken.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// The injection point's name.
    pub point: &'static str,
    /// Which hit of this point fired (0-based, counted per point).
    pub hit: u64,
    /// The action performed.
    pub action: FaultAction,
}

/// Injection behaviour for one named point.
///
/// Probabilities are evaluated in the order fail → delay → yield from a
/// single uniform draw, so their sum should stay ≤ 1 (excess is clamped
/// by construction of the comparison, not an error).
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// The exact point name this rule applies to.
    pub point: String,
    /// Probability a hit fails.
    pub fail: f64,
    /// Probability a hit delays.
    pub delay: f64,
    /// Upper bound (exclusive is fine) for injected delays, microseconds.
    pub max_delay_us: u64,
    /// Probability a hit yields.
    pub yield_p: f64,
    /// Maximum number of hits allowed to fire (further hits are no-ops).
    pub max_fires: u64,
    /// Hits with index `< after` never fire (the decision function is
    /// not consulted).  Combined with `max_fires`, this pins a rule to an
    /// exact window of hits — e.g. `.failing(1.0).after(3).max_fires(1)`
    /// fires precisely at the fourth hit of the point, which is how the
    /// chaos suite kills the collector at one chosen phase of a cycle.
    pub after: u64,
}

impl FaultRule {
    /// A rule for the named point that never fires until given
    /// probabilities.
    pub fn at(point: &str) -> FaultRule {
        FaultRule {
            point: point.to_string(),
            fail: 0.0,
            delay: 0.0,
            max_delay_us: 100,
            yield_p: 0.0,
            max_fires: u64::MAX,
            after: 0,
        }
    }

    /// Sets the failure probability.
    pub fn failing(mut self, p: f64) -> FaultRule {
        self.fail = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the delay probability and the delay bound in microseconds.
    pub fn delaying(mut self, p: f64, max_us: u64) -> FaultRule {
        self.delay = p.clamp(0.0, 1.0);
        self.max_delay_us = max_us.max(1);
        self
    }

    /// Sets the yield probability.
    pub fn yielding(mut self, p: f64) -> FaultRule {
        self.yield_p = p.clamp(0.0, 1.0);
        self
    }

    /// Caps how many hits of this point may fire.
    pub fn max_fires(mut self, n: u64) -> FaultRule {
        self.max_fires = n;
        self
    }

    /// Skips the first `n` hits of this point (they never fire).
    pub fn after(mut self, n: u64) -> FaultRule {
        self.after = n;
        self
    }
}

/// A seeded set of [`FaultRule`]s: everything a chaos schedule injects.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The seed every per-hit decision derives from.
    pub seed: u64,
    /// The rules, matched by exact point name.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule.
    pub fn rule(mut self, r: FaultRule) -> FaultPlan {
        self.rules.push(r);
        self
    }
}

/// Per-rule mutable state: hit and fire counters.
#[derive(Debug)]
struct PointState {
    /// FNV-1a hash of the point name (decision-function input).
    name_hash: u64,
    hits: AtomicU64,
    fires: AtomicU64,
}

/// The installed plan plus its counters and log.
#[derive(Debug)]
struct Active {
    plan: FaultPlan,
    states: Vec<PointState>,
    log: std::sync::Mutex<Vec<FaultEvent>>,
}

/// Fast gate: the only state a disabled [`point`] reads.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed plan.  Read-locked per *enabled* hit only.
static ACTIVE: std::sync::RwLock<Option<Arc<Active>>> = std::sync::RwLock::new(None);

/// Serializes chaos schedules within a process (the registry is global).
static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// FNV-1a, the point-name half of the decision function's input.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: one round of strong mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pure decision function: what hit `k` of a point does under `rule`.
///
/// Deterministic in `(seed, name_hash, k)` alone — the property the
/// same-seed-same-sequence chaos tests assert.
fn decide(seed: u64, name_hash: u64, k: u64, rule: &FaultRule) -> Option<FaultAction> {
    let h = mix(seed ^ name_hash.rotate_left(17) ^ k.wrapping_mul(0x2545_F491_4F6C_DD1D));
    // 53 mantissa bits give a uniform f64 in [0, 1).
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    if unit < rule.fail {
        Some(FaultAction::Fail)
    } else if unit < rule.fail + rule.delay {
        let micros = 1 + mix(h) % rule.max_delay_us.max(1);
        Some(FaultAction::Delay { micros })
    } else if unit < rule.fail + rule.delay + rule.yield_p {
        Some(FaultAction::Yield)
    } else {
        None
    }
}

fn read_active() -> Option<Arc<Active>> {
    ACTIVE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Installs `plan` as the process-wide fault plan and enables injection.
/// Replaces any previous plan (its log is discarded).
pub fn install(plan: FaultPlan) {
    let states = plan
        .rules
        .iter()
        .map(|r| PointState {
            name_hash: fnv1a(&r.point),
            hits: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        })
        .collect();
    let active = Arc::new(Active {
        plan,
        states,
        log: std::sync::Mutex::new(Vec::new()),
    });
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(active);
    ENABLED.store(true, Ordering::Release);
}

/// Disables injection, removes the plan, and returns the log of every
/// fired injection.  A no-op empty log if nothing was installed.
pub fn uninstall() -> Vec<FaultEvent> {
    ENABLED.store(false, Ordering::Release);
    let active = ACTIVE.write().unwrap_or_else(|e| e.into_inner()).take();
    match active {
        Some(a) => std::mem::take(&mut *a.log.lock().unwrap_or_else(|e| e.into_inner())),
        None => Vec::new(),
    }
}

/// Whether a fault plan is currently installed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A snapshot of the fired-injection log without uninstalling.
pub fn log_snapshot() -> Vec<FaultEvent> {
    match read_active() {
        Some(a) => a.log.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        None => Vec::new(),
    }
}

/// Total injections fired so far under the installed plan.
pub fn fires() -> u64 {
    match read_active() {
        Some(a) => a
            .states
            .iter()
            .map(|s| s.fires.load(Ordering::Relaxed))
            .sum(),
        None => 0,
    }
}

/// Guard serializing chaos schedules: the registry is process-global, so
/// tests that install plans take this first.
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// An injection point.  Returns `true` when the installed plan injects a
/// *failure* at this hit — the call site decides what failing means (a
/// refused allocation, a panic).  Delays and yields are performed inside
/// this call, right in the caller's race window.
///
/// With no plan installed this is one relaxed load and one branch.
#[inline]
pub fn point(name: &'static str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    point_slow(name)
}

#[cold]
fn point_slow(name: &'static str) -> bool {
    let Some(active) = read_active() else {
        return false;
    };
    let Some(idx) = active.plan.rules.iter().position(|r| r.point == name) else {
        return false;
    };
    let rule = &active.plan.rules[idx];
    let st = &active.states[idx];
    let k = st.hits.fetch_add(1, Ordering::Relaxed);
    if k < rule.after {
        return false;
    }
    let Some(action) = decide(active.plan.seed, st.name_hash, k, rule) else {
        return false;
    };
    // The fire cap counts only hits whose decision fired; the fired-hit
    // sequence is deterministic per point, so the cap is too.
    if st.fires.fetch_add(1, Ordering::Relaxed) >= rule.max_fires {
        return false;
    }
    active
        .log
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(FaultEvent {
            point: name,
            hit: k,
            action,
        });
    match action {
        FaultAction::Yield => {
            std::thread::yield_now();
            false
        }
        FaultAction::Delay { micros } => {
            std::thread::sleep(Duration::from_micros(micros));
            false
        }
        FaultAction::Fail => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_point_is_inert() {
        let _g = exclusive();
        assert!(!is_enabled());
        assert!(!point("anything.at.all"));
        assert!(log_snapshot().is_empty());
        assert_eq!(fires(), 0);
    }

    #[test]
    fn decision_is_pure_in_seed_name_hit() {
        let rule = FaultRule::at("x")
            .failing(0.2)
            .delaying(0.3, 500)
            .yielding(0.3);
        let h = fnv1a("x");
        for k in 0..1000 {
            assert_eq!(decide(7, h, k, &rule), decide(7, h, k, &rule));
        }
        // Different seeds give a different sequence somewhere.
        let a: Vec<_> = (0..256).map(|k| decide(1, h, k, &rule)).collect();
        let b: Vec<_> = (0..256).map(|k| decide(2, h, k, &rule)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let rule = FaultRule::at("p").failing(0.25);
        let h = fnv1a("p");
        let fails = (0..10_000)
            .filter(|&k| decide(9, h, k, &rule) == Some(FaultAction::Fail))
            .count();
        assert!(
            (2_000..3_000).contains(&fails),
            "p=0.25 fired {fails}/10000"
        );
    }

    #[test]
    fn install_point_uninstall_round_trip() {
        let _g = exclusive();
        install(FaultPlan::new(3).rule(FaultRule::at("t.always").failing(1.0)));
        assert!(is_enabled());
        assert!(point("t.always"));
        assert!(point("t.always"));
        assert!(!point("t.unlisted"));
        assert_eq!(fires(), 2);
        let log = uninstall();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].point, "t.always");
        assert_eq!(log[0].hit, 0);
        assert_eq!(log[1].hit, 1);
        assert!(log.iter().all(|e| e.action == FaultAction::Fail));
        assert!(!is_enabled());
        assert!(!point("t.always"));
    }

    #[test]
    fn max_fires_caps_injections() {
        let _g = exclusive();
        install(FaultPlan::new(5).rule(FaultRule::at("t.cap").failing(1.0).max_fires(3)));
        let fired = (0..10).filter(|_| point("t.cap")).count();
        let log = uninstall();
        assert_eq!(fired, 3);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn after_skips_leading_hits() {
        let _g = exclusive();
        install(
            FaultPlan::new(5).rule(FaultRule::at("t.after").failing(1.0).after(3).max_fires(1)),
        );
        let fired: Vec<bool> = (0..6).map(|_| point("t.after")).collect();
        let log = uninstall();
        assert_eq!(fired, [false, false, false, true, false, false]);
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].hit, 3);
        assert_eq!(log[0].action, FaultAction::Fail);
    }

    #[test]
    fn same_seed_same_log_single_threaded() {
        let _g = exclusive();
        let plan = || {
            FaultPlan::new(99)
                .rule(FaultRule::at("t.a").delaying(0.4, 3).yielding(0.3))
                .rule(FaultRule::at("t.b").failing(0.2))
        };
        let mut logs = Vec::new();
        for _ in 0..2 {
            install(plan());
            for _ in 0..200 {
                let _ = point("t.a");
                let _ = point("t.b");
            }
            logs.push(uninstall());
        }
        assert_eq!(logs[0], logs[1]);
        assert!(!logs[0].is_empty());
    }

    #[test]
    fn delays_actually_sleep() {
        let _g = exclusive();
        install(FaultPlan::new(1).rule(FaultRule::at("t.d").delaying(1.0, 200)));
        let start = std::time::Instant::now();
        for _ in 0..20 {
            let _ = point("t.d");
        }
        assert!(start.elapsed() >= Duration::from_micros(20));
        uninstall();
    }
}
