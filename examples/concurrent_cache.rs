//! A domain-specific scenario: a shared in-heap cache served by worker
//! threads while the collector runs on-the-fly underneath.
//!
//! Run with `cargo run --release --example concurrent_cache`.
//!
//! This exercises parts of the API the benchmark workloads don't:
//!
//! * **global roots** — the cache's bucket table is registered as a global
//!   root so every thread (and the collector) can reach it without any
//!   thread keeping it on its shadow stack;
//! * **cross-thread object sharing** — workers publish entries into the
//!   shared table through the write barrier and read each other's
//!   entries;
//! * **`parked`** — workers periodically "wait for requests" while parked
//!   so the collector never stalls on them.

use std::sync::atomic::{AtomicU64, Ordering};

use otf_gengc::gc::{Gc, GcConfig};
use otf_gengc::heap::ObjShape;

const BUCKETS: usize = 4096;
const WORKERS: usize = 4;
const OPS_PER_WORKER: usize = 400_000;

fn main() {
    let gc = Gc::new(
        GcConfig::generational()
            .with_max_heap(16 << 20)
            .with_young_size(1 << 20),
    );

    // Build the shared bucket table and pin it with a global root.
    let table = {
        let mut setup = gc.mutator();
        let table = setup.alloc(&ObjShape::new(BUCKETS, 0)).expect("oom");
        setup.root_push(table);
        setup.add_global_root(table);
        setup.root_pop();
        table
        // `setup` drops here; the global root keeps the table alive.
    };

    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);

    std::thread::scope(|s| {
        for worker in 0..WORKERS as u64 {
            let mut m = gc.mutator();
            let hits = &hits;
            let misses = &misses;
            s.spawn(move || {
                // An entry: key + value words, no outgoing refs.
                let entry_shape = ObjShape::new(0, 2);
                let mut state = worker * 0x9E37_79B9 + 1;
                for op in 0..OPS_PER_WORKER {
                    // xorshift key stream
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = state % 60_000;
                    let bucket = (key as usize) % BUCKETS;

                    let cur = m.read_ref(table, bucket);
                    if !cur.is_null() && m.read_data(cur, 0) == key {
                        hits.fetch_add(1, Ordering::Relaxed);
                        // Validate the cached value.
                        assert_eq!(m.read_data(cur, 1), key.wrapping_mul(31));
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                        // "Compute" and publish a fresh entry; the old one
                        // (if any) becomes garbage for the collector.
                        let entry = m.alloc(&entry_shape).expect("oom");
                        m.write_data(entry, 0, key);
                        m.write_data(entry, 1, key.wrapping_mul(31));
                        m.write_ref(table, bucket, entry);
                    }

                    if op % 50_000 == 0 {
                        // Simulate waiting for the next request batch.
                        m.parked(std::thread::yield_now);
                    }
                    m.cooperate();
                }
            });
        }
    });

    let stats = gc.stats();
    println!(
        "{} workers x {} ops: {} hits / {} misses",
        WORKERS,
        OPS_PER_WORKER,
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed)
    );
    println!(
        "collections: {} partial + {} full ({:.1}% of time GC active), heap used {} KB",
        stats.partial_count(),
        stats.full_count(),
        stats.percent_time_gc_active(),
        gc.used_bytes() / 1024
    );
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "cache never hit — table lost?"
    );
    gc.shutdown();
    println!("done.");
}
