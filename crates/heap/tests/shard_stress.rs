//! Concurrency stress and property tests for the sharded heap back-end:
//! 16 threads churning `alloc_chunk_on`/`free_chunk` across shards, with
//! free-granule conservation and free-list/shard-balance invariants
//! checked throughout (DESIGN.md §4.5).

use std::sync::Arc;

use otf_heap::{Chunk, HeapSpace, BLOCK_GRANULES};
use otf_support::check::run_cases;

/// Asserts the free-list snapshot is sorted, non-overlapping, and sums
/// to `free_list_granules()`.
fn assert_snapshot_coherent(h: &HeapSpace) {
    let snap = h.free_list_snapshot();
    let mut total = 0u64;
    for w in snap.windows(2) {
        assert!(
            w[0].end() <= w[1].start,
            "overlapping free chunks {:?} and {:?}",
            w[0],
            w[1]
        );
    }
    for c in &snap {
        assert!(c.len > 0, "zero-length pooled chunk");
        total += c.len as u64;
    }
    assert_eq!(total, h.free_list_granules(), "snapshot/total mismatch");
}

/// Asserts per-shard free totals plus the store sum to the global
/// figure — the shard-balance property the stats plumbing relies on.
fn assert_shard_balance(h: &HeapSpace) {
    let shards: u64 = (0..h.shard_count()).map(|i| h.shard_free_granules(i)).sum();
    assert_eq!(
        shards + h.store_free_granules(),
        h.free_list_granules(),
        "shard totals do not sum to the global free-list figure"
    );
}

/// 16 threads, each pinned to a shard, alloc/free churn with a final
/// conservation check: every granule handed out comes back, the pools
/// never overlap, and used accounting balances to the reserved null
/// granule.
#[test]
fn sixteen_thread_alloc_free_churn_conserves_granules() {
    const THREADS: usize = 16;
    const STEPS: usize = 4000;
    let h = Arc::new(HeapSpace::with_shards(8 << 20, 8 << 20, 8));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // Deterministic per-thread LCG; no external RNG crates.
                let mut state = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1) | 1;
                let mut step = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as usize
                };
                let mut held: Vec<Chunk> = Vec::new();
                for _ in 0..STEPS {
                    let r = step();
                    if r % 3 < 2 || held.is_empty() {
                        let min = (r % 64 + 1) as u32;
                        let preferred = min + (step() % 256) as u32;
                        if let Some(c) = h.alloc_chunk_on(t, min, preferred) {
                            assert!(c.len >= min, "short chunk {c:?} for min {min}");
                            assert!(c.start > 0, "null granule handed out");
                            held.push(c);
                        } else {
                            // Heap pressure: free everything and retry.
                            for c in held.drain(..) {
                                h.free_chunk(c);
                            }
                        }
                    } else {
                        let idx = step() % held.len();
                        h.free_chunk(held.swap_remove(idx));
                    }
                }
                // Free the tail so conservation can balance below.
                for c in held {
                    h.free_chunk(c);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }

    // Everything was freed: used is back to the reserved null granule...
    assert_eq!(h.used_granules(), 1, "granules leaked or double-freed");
    // ...and free pools + the never-leased frontier tail cover the rest.
    let committed = h.arena().committed_granules() as u64;
    let never_leased = (committed as usize - h.frontier_granule()) as u64;
    assert_eq!(
        h.free_list_granules() + never_leased,
        committed - 1,
        "free-granule conservation violated"
    );
    assert_snapshot_coherent(&h);
    assert_shard_balance(&h);
}

/// Mixed single-chunk and batch frees from concurrent threads, spanning
/// block-ownership boundaries, keep the pools coherent.
#[test]
fn concurrent_batch_frees_route_and_balance() {
    const THREADS: usize = 8;
    let h = Arc::new(HeapSpace::with_shards(4 << 20, 4 << 20, 4));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for round in 0..200 {
                    // Grab several chunks (often whole blocks so frees
                    // cross back to the store), then return them as one
                    // batch — the sweep-worker flush shape.
                    let n = BLOCK_GRANULES as u32;
                    let mut batch = Vec::new();
                    for _ in 0..4 {
                        match h.alloc_chunk_on(t, n / 2, n) {
                            Some(c) => batch.push(c),
                            None => break,
                        }
                    }
                    if round % 2 == 0 {
                        h.free_chunk_batch(&batch);
                    } else {
                        for c in batch {
                            h.free_chunk(c);
                        }
                    }
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    assert_eq!(h.used_granules(), 1);
    assert_snapshot_coherent(&h);
    assert_shard_balance(&h);
}

/// Property: after any serial alloc/free interleaving, shard-local free
/// totals sum to the global `free_list_granules()`, and conservation
/// holds against the frontier.
#[test]
fn shard_totals_always_sum_to_global() {
    run_cases("shard_totals_sum", 0x5AAD, 64, |g| {
        let shards = g.usize_in(1..9);
        let h = HeapSpace::with_shards(1 << 20, 1 << 20, shards);
        let mut held: Vec<Chunk> = Vec::new();
        let steps = g.usize_in(1..200);
        for _ in 0..steps {
            if g.bool() || held.is_empty() {
                let min = g.u32_in(1..512);
                let preferred = min + g.u32_in(0..512);
                let shard = g.usize_in(0..shards);
                if let Some(c) = h.alloc_chunk_on(shard, min, preferred) {
                    held.push(c);
                }
            } else {
                let idx = g.usize_in(0..held.len());
                h.free_chunk(held.swap_remove(idx));
            }
            assert_shard_balance(&h);
        }
        for c in held {
            h.free_chunk(c);
        }
        assert_shard_balance(&h);
        assert_snapshot_coherent(&h);
        let committed = h.arena().committed_granules() as u64;
        let never_leased = (committed as usize - h.frontier_granule()) as u64;
        assert_eq!(h.free_list_granules() + never_leased, committed - 1);
        assert_eq!(h.used_granules(), 1);
    });
}
