//! Chaos stress driver: seeded fault-injection schedules, run as a CI
//! gate.
//!
//! Runs a matrix of *schedules* — (collector variant × sweep mode ×
//! fault plan) cells — against the error-tolerant [`Chaos`] workload,
//! each with a hard hang bound, and exits non-zero if any schedule
//!
//! * exceeds the hang bound (a liveness bug: the hardened failure paths
//!   exist precisely so injected stalls and deaths cannot wedge the
//!   process),
//! * leaves heap violations behind (`Gc::verify_heap` after the run), or
//! * fails to reproduce: the designated reproducibility schedule is run
//!   twice with the same seed and must produce the identical injection
//!   log byte-for-byte.
//!
//! A panic-containment schedule additionally kills the collector thread
//! on its first cycle and requires allocators to surface
//! [`CollectorUnavailable`](AllocError::CollectorUnavailable) within the
//! bound, and a recovery schedule kills the collector mid-trace with
//! restarts enabled and requires the supervisor (DESIGN.md §4.8) to
//! abort the cycle, respawn, and complete a subsequent full collection —
//! reproducibly: the recovery schedule also runs twice with the same
//! seed and must produce identical injection logs.
//!
//! Flags: `--seed N` (default 42) reseeds every plan — CI uses a fixed
//! seed so failures reproduce with `stress_chaos --seed N`; `--quick`
//! shrinks the workload for smoke runs; `--help` prints usage.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use otf_gc::{AllocError, Gc, GcConfig, Mode};
use otf_heap::ObjShape;
use otf_support::fault::{self, FaultEvent, FaultPlan, FaultRule};
use otf_workloads::driver;
use otf_workloads::Chaos;

/// One (variant, plan) cell of the chaos matrix.
struct Schedule {
    name: String,
    config: GcConfig,
    plan: FaultPlan,
}

/// Outcome of one schedule, for the report table.
struct Outcome {
    name: String,
    injections: usize,
    cycles: usize,
    violations: usize,
    elapsed: Duration,
    ok: bool,
}

/// The scheduling-storm plan: delays and yields inside every protocol
/// race window, no failures.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(
            FaultRule::at("mutator.cooperate")
                .delaying(0.1, 200)
                .yielding(0.2),
        )
        .rule(FaultRule::at("mutator.barrier.window").yielding(0.1))
        .rule(FaultRule::at("mutator.lab.refill").delaying(0.1, 100))
        .rule(
            FaultRule::at("mutator.lazy_sweep.segment")
                .delaying(0.2, 200)
                .yielding(0.2),
        )
        .rule(FaultRule::at("collector.phase").delaying(0.5, 500))
        .rule(FaultRule::at("collector.card_scan").delaying(0.5, 500))
        .rule(FaultRule::at("collector.handshake.wait").yielding(0.3))
}

/// The failure-storm plan: refused chunk allocations under light
/// scheduling noise.
fn failure_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(
            FaultRule::at("heap.alloc_chunk")
                .failing(0.05)
                .max_fires(40),
        )
        .rule(FaultRule::at("mutator.lab.refill").yielding(0.2))
        .rule(FaultRule::at("mutator.lazy_sweep.segment").yielding(0.3))
        .rule(FaultRule::at("mutator.cooperate").yielding(0.1))
}

fn mode_name(cfg: &GcConfig) -> &'static str {
    match cfg.mode {
        Mode::NonGenerational => "nogen",
        Mode::Generational(otf_gc::Promotion::Simple) => "gen",
        Mode::Generational(otf_gc::Promotion::Aging { .. }) => "aging",
    }
}

/// Runs one schedule with a hang bound.  The run happens on a worker
/// thread; if it does not finish inside `bound` the process reports the
/// hang and gives up on the schedule (the worker is left behind — the
/// process is about to exit non-zero anyway).
fn run_schedule(s: Schedule, threads: usize, ops_scale: f64, bound: Duration) -> Outcome {
    let started = Instant::now();
    fault::install(s.plan.clone());
    let (tx, rx) = mpsc::channel();
    let cfg = s.config;
    let wseed = s.plan.seed;
    std::thread::spawn(move || {
        let w = Chaos::new().with_threads(threads).scaled(ops_scale);
        let (r, violations) = driver::run_workload_verified(&w, cfg, wseed);
        let _ = tx.send((r, violations));
    });
    match rx.recv_timeout(bound) {
        Ok((r, violations)) => {
            let log = fault::uninstall();
            for v in &violations {
                eprintln!("stress_chaos: {}: heap violation: {v}", s.name);
            }
            Outcome {
                name: s.name,
                injections: log.len(),
                cycles: r.stats.cycles.len(),
                violations: violations.len(),
                elapsed: started.elapsed(),
                ok: violations.is_empty(),
            }
        }
        Err(_) => {
            let log = fault::uninstall();
            eprintln!(
                "stress_chaos: {}: HANG — no completion within {bound:?} ({} injections fired)",
                s.name,
                log.len()
            );
            Outcome {
                name: s.name,
                injections: log.len(),
                cycles: 0,
                violations: 0,
                elapsed: started.elapsed(),
                ok: false,
            }
        }
    }
}

/// Reproducibility gate: the same seed must yield the identical
/// injection log.  Single mutator thread + mutator-side delay/yield plan,
/// so the log order is the program order.
fn check_reproducibility(seed: u64, ops_scale: f64) -> bool {
    let plan = |s| {
        FaultPlan::new(s)
            .rule(
                FaultRule::at("mutator.cooperate")
                    .delaying(0.3, 50)
                    .yielding(0.3),
            )
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.2))
            .rule(FaultRule::at("mutator.lab.refill").delaying(0.5, 30))
    };
    let w = Chaos::new().with_threads(1).scaled(ops_scale);
    let mut logs: Vec<Vec<FaultEvent>> = Vec::new();
    for _ in 0..2 {
        fault::install(plan(seed));
        let _ = driver::run_workload(
            &w,
            GcConfig::generational().with_young_size(256 << 10),
            seed,
        );
        logs.push(fault::uninstall());
    }
    if logs[0].is_empty() {
        eprintln!("stress_chaos: reproducibility plan never fired — schedule too small");
        return false;
    }
    if logs[0] != logs[1] {
        eprintln!(
            "stress_chaos: NON-REPRODUCIBLE — two runs with seed {seed} diverged ({} vs {} events)",
            logs[0].len(),
            logs[1].len()
        );
        return false;
    }
    println!(
        "reproducibility: OK ({} injections, identical across two runs of seed {seed})",
        logs[0].len()
    );
    true
}

/// Panic-containment gate: kill the collector on its first cycle and
/// require `CollectorUnavailable` (not a hang) under allocation pressure.
fn check_panic_containment(seed: u64, bound: Duration) -> bool {
    fault::install(
        FaultPlan::new(seed).rule(FaultRule::at("collector.panic").failing(1.0).max_fires(1)),
    );
    // Pin restarts to zero: this gate checks the *terminal* poison path,
    // and the CI recovery cell exports OTF_GC_MAX_RESTARTS=3 which would
    // otherwise turn the kill into a transparent restart.
    let gc = Gc::new(
        GcConfig::generational()
            .with_initial_heap(1 << 20)
            .with_max_heap(1 << 20)
            .with_young_size(256 << 10)
            .with_max_collector_restarts(0),
    );
    let mut m = gc.mutator();
    let shape = ObjShape::new(0, 6);
    let start = Instant::now();
    let mut outcome = None;
    while start.elapsed() < bound {
        match m.alloc(&shape) {
            Ok(r) => {
                m.root_push(r);
            }
            Err(e) => {
                outcome = Some(e);
                break;
            }
        }
    }
    drop(m);
    fault::uninstall();
    let ok = matches!(outcome, Some(AllocError::CollectorUnavailable { .. })) && gc.is_poisoned();
    match &outcome {
        Some(AllocError::CollectorUnavailable { .. }) => println!(
            "panic containment: OK (CollectorUnavailable after {:?})",
            start.elapsed()
        ),
        Some(other) => eprintln!("stress_chaos: panic containment: unexpected error {other}"),
        None => eprintln!(
            "stress_chaos: panic containment: allocator still blocked after {bound:?} — HANG"
        ),
    }
    gc.shutdown();
    ok
}

/// One round of the recovery gate: kill the collector at its trace
/// phase (hit 4 of `collector.phase`: cycle-start, hs1, hs2, hs3,
/// trace) with restarts enabled, then demand a completed full
/// collection, no poison, and a clean heap.  In the overlap arm the
/// same hit fires inside the group chain-open — the panic lands with
/// the card-scan and root-mark producer buckets open, so the abort has
/// to close the whole group.  Returns the observables the gate checks
/// plus the injection log for the reproducibility comparison.
fn recovery_round(seed: u64, overlap: bool) -> (bool, u64, u64, usize, Vec<FaultEvent>) {
    fault::install(
        FaultPlan::new(seed).rule(
            FaultRule::at("collector.phase")
                .failing(1.0)
                .after(4)
                .max_fires(1),
        ),
    );
    let mut gc = Gc::new(
        GcConfig::generational()
            .with_initial_heap(1 << 20)
            .with_max_heap(8 << 20)
            .with_young_size(64 << 10)
            .with_max_collector_restarts(3)
            .with_collector_restart_backoff_ms(1)
            .with_overlap_phases(overlap),
    );
    let mut m = gc.mutator();
    let shape = ObjShape::new(1, 2);
    for i in 0..256u64 {
        let r = m.alloc(&shape).expect("recovery gate alloc");
        m.write_data(r, 0, i);
        if i % 8 == 0 {
            m.root_push(r);
        }
    }
    // The first full dies mid-trace; the supervisor's abort re-arms it
    // and the respawned collector serves this wait.
    m.parked(|| gc.collect_full_blocking());
    drop(m);
    gc.stop_collector();
    let violations = gc.verify_heap().len();
    let stats = gc.shutdown();
    let log = fault::uninstall();
    (
        stats.collector_poisoned,
        stats.collector_restarts,
        stats.cycles_aborted,
        violations,
        log,
    )
}

/// Recovery gate: the supervisor must turn a mid-cycle collector panic
/// into an aborted cycle plus a restart (never poison, never a hang,
/// never a heap violation), and two same-seed runs must produce the
/// identical injection log.
fn check_recovery(seed: u64, bound: Duration, overlap: bool) -> bool {
    let label = if overlap { "recovery+ov" } else { "recovery" };
    let mut logs: Vec<Vec<FaultEvent>> = Vec::new();
    for round in 0..2 {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(recovery_round(seed, overlap));
        });
        let (poisoned, restarts, aborted, violations, log) = match rx.recv_timeout(bound) {
            Ok(r) => r,
            Err(_) => {
                fault::uninstall();
                eprintln!(
                    "stress_chaos: {label} round {round}: HANG — no completion within {bound:?}"
                );
                return false;
            }
        };
        if poisoned || restarts < 1 || aborted < 1 || violations != 0 || log.len() != 1 {
            eprintln!(
                "stress_chaos: {label} round {round}: poisoned={poisoned} restarts={restarts} \
                 cycles_aborted={aborted} violations={violations} injections={}",
                log.len()
            );
            return false;
        }
        logs.push(log);
    }
    if logs[0] != logs[1] {
        eprintln!("stress_chaos: {label}: NON-REPRODUCIBLE — two runs with seed {seed} diverged");
        return false;
    }
    println!(
        "{label}: OK (cycle aborted, collector restarted, full completed; \
         identical across two runs of seed {seed})"
    );
    true
}

fn main() {
    let mut seed = 42u64;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => eprintln!("warning: --seed takes an integer; keeping {seed}"),
            },
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!(
                    "stress_chaos — seeded fault-injection matrix for the collector\n\n\
                     Options:\n  --seed N   reseed every fault plan (default 42)\n  \
                     --quick    smoke configuration (smaller workload)\n  \
                     --help     print this help and exit"
                );
                return;
            }
            other => eprintln!("warning: ignoring unknown argument {other:?} (try --help)"),
        }
    }
    let (threads, ops_scale, bound) = if quick {
        (2, 0.2, Duration::from_secs(60))
    } else {
        (4, 1.0, Duration::from_secs(300))
    };

    // The injected collector panic is an expected outcome; keep the
    // default hook's backtrace out of the report.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if !msg.contains("injected collector panic") {
            eprintln!("{msg}");
        }
    }));

    let variants = [
        GcConfig::generational().with_young_size(256 << 10),
        GcConfig::non_generational(),
        GcConfig::aging(3).with_young_size(256 << 10),
    ];
    let mut outcomes = Vec::new();
    for cfg in variants {
        for lazy in [false, true] {
            let cfg = cfg.with_lazy_sweep(lazy);
            let sweep = if lazy { "lazy" } else { "eager" };
            // The overlap cell reruns the storm under the overlapped
            // cards∥roots∥trace schedule: the card-scan delay rule then
            // holds a producer bucket open across the racing trace
            // workers, stressing the §4.9 termination extension.
            for (plan_name, plan, overlap) in [
                ("storm", storm_plan(seed), false),
                ("storm+ov", storm_plan(seed), true),
                ("failures", failure_plan(seed ^ 0x9E37_79B9), false),
            ] {
                let s = Schedule {
                    name: format!("{}/{}/{}", mode_name(&cfg), sweep, plan_name),
                    config: cfg.with_overlap_phases(overlap),
                    plan,
                };
                outcomes.push(run_schedule(s, threads, ops_scale, bound));
            }
        }
    }

    println!(
        "\n{:<22} {:>10} {:>7} {:>10} {:>9}  ok",
        "schedule", "injections", "cycles", "violations", "elapsed"
    );
    for o in &outcomes {
        println!(
            "{:<22} {:>10} {:>7} {:>10} {:>8.2}s  {}",
            o.name,
            o.injections,
            o.cycles,
            o.violations,
            o.elapsed.as_secs_f64(),
            if o.ok { "yes" } else { "NO" }
        );
    }

    let repro_ok = check_reproducibility(seed, ops_scale);
    let panic_ok = check_panic_containment(seed, bound);
    let recovery_ok = check_recovery(seed, bound, false) && check_recovery(seed, bound, true);

    let matrix_ok = outcomes.iter().all(|o| o.ok);
    if matrix_ok && repro_ok && panic_ok && recovery_ok {
        println!("\nstress_chaos: all schedules clean");
    } else {
        eprintln!(
            "\nstress_chaos: FAILURES (matrix {matrix_ok}, repro {repro_ok}, \
             panic {panic_ok}, recovery {recovery_ok})"
        );
        std::process::exit(1);
    }
}
