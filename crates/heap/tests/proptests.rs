//! Randomized tests for the heap substrate's core invariants, on the
//! deterministic `otf_support::check` harness (fixed seeds, shrink by
//! halving).

use otf_heap::{
    CardTable, Chunk, Color, ColorTable, FreeLists, Header, HeapSpace, ObjShape, GRANULE,
};
use otf_support::check::{run_cases, Gen};

const CASES: u64 = 256;

/// Header encode/decode is a bijection over the valid field ranges.
#[test]
fn header_round_trip() {
    run_cases("header_round_trip", 0x4EAD, CASES, |g| {
        let refs = g.usize_in(0..5000);
        let data = g.usize_in(0..5000);
        let class = g.u32_in(0..1_000_000);
        let shape = ObjShape::new(refs, data).with_class(class);
        let h = Header::decode(shape.encode_header());
        assert_eq!(h.ref_slots(), refs);
        assert_eq!(h.class_id(), class);
        assert_eq!(h.size_granules(), shape.size_granules());
        assert_eq!(h.size_granules(), (1 + refs + data).div_ceil(2));
    });
}

/// Shape sizes are monotone and granule-rounded.
#[test]
fn shape_size_invariants() {
    run_cases("shape_size_invariants", 0x5A47, CASES, |g| {
        let refs = g.usize_in(0..1000);
        let data = g.usize_in(0..1000);
        let s = ObjShape::new(refs, data);
        assert!(s.size_granules() >= 1);
        assert_eq!(s.size_bytes() % GRANULE, 0);
        assert!(s.size_bytes() >= (1 + refs + data) * 8);
        assert!(s.size_bytes() < (1 + refs + data) * 8 + GRANULE);
    });
}

/// Free lists conserve granules and never hand out overlapping chunks.
#[test]
fn freelist_no_overlap_and_conservation() {
    run_cases("freelist_no_overlap_and_conservation", 0xF4EE, 128, |g| {
        let ops = g.vec_of(1..120, |g| (g.u32_in(1..200), g.u32_in(1..400)));
        let f = FreeLists::new();
        // Seed with one large region [0, 100_000).
        let total = 100_000u64;
        f.insert(Chunk::new(0, total as u32));
        let mut held: Vec<Chunk> = Vec::new();
        let mut held_granules = 0u64;

        for (i, (min, pref)) in ops.into_iter().enumerate() {
            let (min, pref) = (min, min.max(pref));
            if i % 3 == 2 && !held.is_empty() {
                // Give one back.
                let c = held.swap_remove(i % held.len());
                held_granules -= c.len as u64;
                f.insert(c);
            } else if let Some(c) = f.alloc(min, pref) {
                assert!(c.len >= min && c.len <= pref);
                // No overlap with anything we already hold.
                for h in &held {
                    assert!(
                        c.end() <= h.start || h.end() <= c.start,
                        "overlap: {c:?} vs {h:?}"
                    );
                }
                held_granules += c.len as u64;
                held.push(c);
            }
            assert_eq!(f.free_granules() + held_granules, total);
        }
    });
}

/// Card geometry: every byte maps into exactly one card whose granule
/// range covers it.
#[test]
fn card_geometry() {
    run_cases("card_geometry", 0xCA4D, CASES, |g| {
        let shift = g.u32_in(4..13);
        let byte = g.usize_in(0..1 << 20);
        let card_size = 1usize << shift;
        let t = CardTable::new(1 << 20, card_size);
        let card = t.card_of_byte(byte);
        let (gs, ge) = t.granule_range(card);
        let granule = byte / GRANULE;
        assert!(gs <= granule && granule < ge);
        assert_eq!(ge - gs, card_size / GRANULE);
        // Marking the byte dirties exactly that card.
        t.mark_byte(byte);
        assert!(t.is_dirty(card));
        assert_eq!(t.count_dirty(t.len()), 1);
    });
}

/// The color table is a faithful parse map: installing random objects
/// back-to-back and walking the heap sees exactly those objects, in
/// address order, with correct headers.
#[test]
fn heap_parse_integrity() {
    run_cases("heap_parse_integrity", 0x9A45E, 128, |g| {
        let shapes = g.vec_of(1..60, |g| (g.usize_in(0..6), g.usize_in(0..10)));
        let heap = HeapSpace::new(1 << 20, 1 << 20);
        let mut installed = Vec::new();
        for (refs, data) in shapes {
            let shape = ObjShape::new(refs, data).with_class((refs * 16 + data) as u32);
            let n = shape.size_granules() as u32;
            let chunk = heap.alloc_chunk(n, n).unwrap();
            let obj = heap.install_object(chunk.start as usize, &shape, Color::White);
            installed.push((obj, shape));
        }
        let mut seen = Vec::new();
        heap.for_each_object_start(1, heap.frontier_granule(), |obj, color, header| {
            seen.push((obj, color, header.ref_slots(), header.class_id()));
        });
        assert_eq!(seen.len(), installed.len());
        for ((obj, shape), (sobj, scolor, srefs, sclass)) in installed.iter().zip(&seen) {
            assert_eq!(obj, sobj);
            assert_eq!(*scolor, Color::White);
            assert_eq!(shape.ref_slots(), *srefs);
            assert_eq!(shape.class_id(), *sclass);
        }
    });
}

// ---------------------------------------------------------------------
// Differential tests: the word-at-a-time table kernels against
// independent byte-loop oracles written on the tables' byte-level public
// API.  Table sizes and range endpoints are drawn so that scans start
// unaligned, end mid-word, and cross word boundaries inside runs.
// ---------------------------------------------------------------------

/// A color table populated with random object/interior/free runs —
/// including single-byte noise — so every kernel sees runs that straddle
/// `u64` boundaries as well as dense color churn.
fn random_color_table(g: &mut Gen) -> ColorTable {
    let len = g.usize_in(1..300);
    let t = ColorTable::new(len);
    let mut i = 0;
    while i < len {
        let run = g.usize_in(1..50).min(len - i);
        let color = match g.usize_in(0..6) {
            0 => Color::Free,
            1 => Color::Interior,
            2 => Color::White,
            3 => Color::Yellow,
            4 => Color::Gray,
            _ => Color::Black,
        };
        for k in 0..run {
            t.set(i + k, color);
        }
        i += run;
    }
    t
}

/// Word-kernel `skip_non_object` / `next_color_above` / `object_end` /
/// `count_matching` match byte loops over `get_raw_relaxed`.
#[test]
fn color_kernels_match_byte_loops() {
    run_cases("color_kernels_match_byte_loops", 0x50AA, 256, |g| {
        let t = random_color_table(g);
        let to = g.usize_in(0..t.len() + 1);
        let from = g.usize_in(0..to + 1);

        let skip_oracle = (from..to)
            .find(|&i| t.get_raw_relaxed(i) > Color::Interior as u8)
            .unwrap_or(to);
        assert_eq!(t.skip_non_object(from, to), skip_oracle);

        let above_oracle = (from..to)
            .find(|&i| t.get_raw_relaxed(i) > Color::Yellow as u8)
            .unwrap_or(to);
        assert_eq!(t.next_color_above(from, to, Color::Yellow), above_oracle);

        if from < to {
            let end_oracle = (from + 1..to)
                .find(|&i| t.get_raw_relaxed(i) != Color::Interior as u8)
                .unwrap_or(to);
            assert_eq!(t.object_end(from, to), end_oracle);
        }

        for color in [Color::Free, Color::Interior, Color::Black] {
            let count_oracle = (from..to)
                .filter(|&i| t.get_raw_relaxed(i) == color as u8)
                .count();
            assert_eq!(t.count_matching(from, to, color), count_oracle);
        }
    });
}

/// Word-kernel `fill` writes exactly the requested range.
#[test]
fn color_fill_matches_byte_loop() {
    run_cases("color_fill_matches_byte_loop", 0x50AB, 256, |g| {
        let t = random_color_table(g);
        let before: Vec<u8> = (0..t.len()).map(|i| t.get_raw_relaxed(i)).collect();
        let to = g.usize_in(0..t.len() + 1);
        let from = g.usize_in(0..to + 1);
        let color = if g.bool() {
            Color::Free
        } else {
            Color::Interior
        };
        t.fill(from, to - from, color);
        for (i, &b) in before.iter().enumerate() {
            let expect = if (from..to).contains(&i) {
                color as u8
            } else {
                b
            };
            assert_eq!(t.get_raw_relaxed(i), expect, "byte {i} of [{from}, {to})");
        }
    });
}

/// Word-kernel `next_dirty` / `count_dirty` / `clear_all` match byte
/// loops over `is_dirty`.
#[test]
fn card_kernels_match_byte_loops() {
    run_cases("card_kernels_match_byte_loops", 0x50AC, 256, |g| {
        let cards = g.usize_in(1..400);
        let t = CardTable::new(cards * 16, 16);
        assert_eq!(t.len(), cards);
        // Sparse-to-dense random dirtying.
        let marks = g.usize_in(0..cards + 1);
        for _ in 0..marks {
            t.mark_card(g.usize_in(0..cards));
        }

        let to = g.usize_in(0..cards + 1);
        let from = g.usize_in(0..to + 1);
        let oracle = (from..to).find(|&c| t.is_dirty(c));
        assert_eq!(t.next_dirty(from, to), oracle);

        let count_oracle = (0..to).filter(|&c| t.is_dirty(c)).count();
        assert_eq!(t.count_dirty(to), count_oracle);

        let mut walked = Vec::new();
        t.for_each_dirty(cards, |c| walked.push(c));
        let walk_oracle: Vec<usize> = (0..cards).filter(|&c| t.is_dirty(c)).collect();
        assert_eq!(walked, walk_oracle);

        t.clear_all();
        assert_eq!(t.count_dirty(cards), 0);
        assert_eq!(t.next_dirty(0, cards), None);
    });
}

/// `object_end` (interior scanning) always agrees with the header.
#[test]
fn object_end_matches_header() {
    run_cases("object_end_matches_header", 0x0B1E, 128, |g| {
        let shapes = g.vec_of(1..40, |g| (g.usize_in(0..4), g.usize_in(0..12)));
        let heap = HeapSpace::new(1 << 20, 1 << 20);
        for (refs, data) in shapes {
            let shape = ObjShape::new(refs, data);
            let n = shape.size_granules() as u32;
            let chunk = heap.alloc_chunk(n, n).unwrap();
            let obj = heap.install_object(chunk.start as usize, &shape, Color::Yellow);
            let end = heap
                .colors()
                .object_end(obj.granule(), heap.frontier_granule());
            assert_eq!(end - obj.granule(), shape.size_granules());
        }
    });
}
