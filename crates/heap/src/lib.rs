//! # otf-heap — heap substrate for the on-the-fly generational collector
//!
//! This crate is the memory-management substrate underneath [`otf-gc`], the
//! Rust reproduction of *"A Generational On-the-fly Garbage Collector for
//! Java"* (Domani, Kolodner & Petrank, PLDI 2000).  It provides everything
//! the paper's collector assumes from the JVM heap manager:
//!
//! * a **non-moving heap**: one contiguous word-atomic [`Arena`] carved by
//!   segregated [`FreeLists`] and a bump frontier, with mutator-private
//!   [`Lab`]s (thread-local allocation buffers);
//! * the **side tables**: a [`ColorTable`] (one byte per 16-byte granule —
//!   doubling as a race-free heap parse map), a [`CardTable`] (one byte per
//!   card, card sizes 16..4096, §3.1/§8.5.3), and an [`AgeTable`] (one age
//!   byte per object in a separate table, §6);
//! * **page-touch accounting** ([`PageTracker`]) for the paper's Figure 15.
//!
//! The collector itself (handshakes, write barriers, trace, sweep) lives in
//! the `otf-gc` crate; typical users interact with that crate's `Gc` and
//! `Mutator` types rather than with this substrate directly.
//!
//! ## Example
//!
//! ```
//! use otf_heap::{HeapSpace, ObjShape, Color};
//!
//! let heap = HeapSpace::new(1 << 20, 1 << 16);
//! let shape = ObjShape::new(2, 4); // 2 reference slots, 4 data words
//! let chunk = heap.alloc_chunk(shape.size_granules() as u32,
//!                              shape.size_granules() as u32).unwrap();
//! let obj = heap.install_object(chunk.start as usize, &shape, Color::White);
//! assert_eq!(heap.arena().header(obj).ref_slots(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod age;
mod arena;
mod block;
mod card;
mod color;
mod freelist;
mod page;
mod shard;
mod space;

pub use addr::{
    granules_for_bytes, granules_for_words, ObjectRef, GRANULE, GRANULE_LOG2, MAX_HEAP_GRANULES,
    PAGE, WORD, WORDS_PER_GRANULE,
};
pub use age::{AgeTable, INFANT_AGE};
pub use arena::Arena;
pub use block::{BlockStore, BLOCK_GRANULES};
pub use card::{CardTable, MAX_CARD_SIZE, MIN_CARD_SIZE};
pub use color::{Color, ColorTable};
pub use freelist::{Chunk, FreeLists};
pub use layout::{Header, ObjShape, MAX_CLASS_ID, MAX_REF_SLOTS, MAX_SIZE_GRANULES};
pub use page::{PageTracker, Space};
pub use shard::ShardedAlloc;
pub use space::{HeapSpace, Lab, ParseStep, DEFAULT_LAB_GRANULES};

mod layout;
