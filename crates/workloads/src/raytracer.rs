//! *Multithreaded Ray Tracer* / `_227_mtrt` (paper §8.2).
//!
//! The paper's modification of SPECjvm `_227_mtrt`: each rendering thread
//! traces a scene read from a 340 KB input file; the paper enlarges the
//! matrix to 300×300 and parametrizes the number of rendering threads
//! (2–10 in Figure 7/16).
//!
//! Generational signature reproduced: a long-lived scene per thread,
//! per-pixel ray/intersection temporaries that die immediately (99.5% of
//! young objects freed in partials, Figure 12), very few dirty cards
//! (1.8% at 16-byte cards, Figure 22), and heavy enough allocation that
//! GC is ~20–30% of the run (Figure 10).

use otf_gc::{Mutator, ObjectRef};

use crate::toolkit::{alloc_array, alloc_data, alloc_node, fill_data, mix, pick, rng_for};
use crate::Workload;

/// The multithreaded ray tracer.
#[derive(Clone, Debug)]
pub struct RayTracer {
    /// Number of rendering threads (the paper sweeps 2–10).
    pub threads: usize,
    /// Image width and height (the paper uses 300×300 for the
    /// multithreaded variant, 200×200 for `_227_mtrt`).
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Triangles in the scene, *total across all threads* (each thread
    /// holds an equal share, so the long-lived live set is independent of
    /// the thread count — the paper's threads render one shared scene).
    pub scene_triangles: usize,
    /// Ray bounces per pixel (each allocates intersection temporaries).
    pub bounces: usize,
    /// Frames rendered (passes over the whole image).
    pub frames: usize,
}

impl RayTracer {
    /// `_227_mtrt`: 200×200, 2 threads.
    pub fn mtrt() -> RayTracer {
        RayTracer {
            threads: 2,
            width: 200,
            height: 200,
            scene_triangles: 80_000,
            bounces: 6,
            frames: 8,
        }
    }

    /// The multithreaded variant: 300×300, `threads` rendering threads.
    pub fn multithreaded(threads: usize) -> RayTracer {
        RayTracer {
            threads,
            width: 300,
            height: 300,
            scene_triangles: 80_000,
            bounces: 6,
            frames: 3,
        }
    }

    /// Scales the amount of work (frames rendered, then rows).
    pub fn scaled(mut self, scale: f64) -> RayTracer {
        let frames = self.frames as f64 * scale;
        if frames >= 1.0 {
            self.frames = frames.round() as usize;
        } else {
            self.frames = 1;
            self.height = ((self.height as f64 * frames) as usize).max(8);
        }
        self
    }
}

impl Workload for RayTracer {
    fn name(&self) -> &'static str {
        if self.threads == 2 && self.width == 200 {
            "_227_mtrt"
        } else {
            "mtrt"
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);

        // Scene construction: triangles referencing shared-ish vertices —
        // this thread's share of the scene (the paper's threads render one
        // shared scene; an equal split keeps the total live set identical
        // at every thread count).
        // The spine is chunked: a non-moving heap cannot promise a huge
        // contiguous array once fragmented, just like the paper's JVM.
        const SCENE_CHUNK: usize = 1024;
        let my_triangles = (self.scene_triangles / self.threads.max(1)).max(1);
        let n_chunks = my_triangles.div_ceil(SCENE_CHUNK);
        let scene: ObjectRef = alloc_array(m, n_chunks);
        m.root_push(scene);
        for c in 0..n_chunks {
            let chunk = alloc_array(m, SCENE_CHUNK);
            m.write_ref(scene, c, chunk);
            for i in 0..SCENE_CHUNK.min(my_triangles - c * SCENE_CHUNK) {
                let tri = alloc_node(m, 3, 2);
                m.root_push(tri);
                for v in 0..3 {
                    let vert = alloc_data(m, 3);
                    fill_data(m, vert, 3, ((c * SCENE_CHUNK + i) * 3 + v) as u64);
                    m.write_ref(tri, v, vert);
                }
                m.write_data(tri, 0, (c * SCENE_CHUNK + i) as u64);
                m.root_pop();
                m.write_ref(chunk, i, tri);
            }
            m.cooperate();
        }

        // Render: every pixel allocates a ray and a chain of intersection
        // records, all dead by the end of the pixel.
        let mut image_checksum = 0u64;
        for _frame in 0..self.frames {
            for y in 0..self.height {
                // A row buffer that lives for the row.
                let row = alloc_data(m, self.width);
                m.root_push(row);
                for x in 0..self.width {
                    let ray = alloc_node(m, 1, 4);
                    m.root_push(ray);
                    m.write_data(ray, 0, (x + y * self.width) as u64);
                    let mut color = 0u64;
                    for _bounce in 0..self.bounces {
                        // Intersect against a few candidate triangles.
                        let hit = alloc_data(m, 2);
                        let t = pick(&mut rng, my_triangles);
                        let chunk = m.read_ref(scene, t / SCENE_CHUNK);
                        let tri = m.read_ref(chunk, t % SCENE_CHUNK);
                        let vert = m.read_ref(tri, t % 3);
                        color = color.wrapping_add(mix(m.read_data(vert, 0), 128));
                        m.write_data(hit, 0, color);
                        // Chain the newest hit record into the ray (fresh
                        // object write — barrier exercised, no old-gen dirt).
                        m.write_ref(ray, 0, hit);
                    }
                    m.root_pop();
                    m.write_data(row, x, color);
                    image_checksum = image_checksum.wrapping_add(color);
                }
                m.root_pop();
                m.cooperate();
            }
        }
        std::hint::black_box(image_checksum);
        m.root_pop();
    }
}
