//! The transitive mark phase (`trace` in Figure 2) with sound on-the-fly
//! termination detection, serial (`gc_threads = 1`, the paper's
//! configuration) or parallel over work-stealing worker deques
//! (DESIGN.md §4.4).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use otf_heap::{Color, ObjectRef};
use otf_support::fault;
use otf_support::steal::WorkerDeque;
use otf_support::sync::Backoff;

use crate::cycle::CycleCx;
use crate::obs::dur_ns;
use crate::shared::GcShared;
use crate::state::MutatorShared;

/// A worker publishes the older half of its private mark stack to its
/// deque once the stack grows past this many entries (and its deque is
/// empty) — the work-packet idea: the hot path stays a plain `Vec`,
/// thieves only see batched excess.
const PUBLISH_MIN: usize = 64;

/// Shared state of the §4.4 parallel termination protocol.
struct TraceTermination {
    /// Workers not currently parked in the idle loop.  Starts at N;
    /// a worker decrements it on going idle and increments it *before*
    /// taking any new work, so `active == 0` proves no worker holds
    /// unscanned objects in private state.
    active: AtomicUsize,
    /// Bumped whenever work becomes reachable to others or a worker
    /// reactivates (deque publish, successful steal, gray-queue pop,
    /// idle→active).  A termination candidate reads it before and after
    /// its emptiness checks: equality proves no worker went from empty
    /// to non-empty in between.
    steal_epoch: AtomicU64,
    /// Set exactly once, by the worker whose candidate check succeeds.
    done: AtomicBool,
}

impl TraceTermination {
    fn new(workers: usize) -> TraceTermination {
        TraceTermination {
            active: AtomicUsize::new(workers),
            steal_epoch: AtomicU64::new(0),
            done: AtomicBool::new(false),
        }
    }
}

impl GcShared {
    /// `MarkBlack` (Figure 3): *claim* the object with a gray→target
    /// color CAS, then shade every son gray.
    ///
    /// Every enqueue site (write barrier, card scan, root marking, the
    /// collector's own son-shading) CASes the color to gray before
    /// pushing, so a popped object is gray unless another worker — or a
    /// duplicate entry from a re-graying — already claimed it.  The
    /// losing CAS returns without scanning or counting, which is what
    /// makes parallel marking sound: two workers can never double-trace
    /// or double-count one object.  Claiming *before* shading the sons
    /// is safe under the snapshot write barrier: a mutator racing this
    /// window grays the overwritten value regardless of the parent's
    /// color (DESIGN.md §4.4).
    pub(crate) fn mark_black(&self, obj: ObjectRef, target: Color, cx: &mut CycleCx) {
        let g = obj.granule();
        let colors = self.heap.colors();
        if !colors.cas(g, Color::Gray, target) {
            return; // another worker claimed it, or a duplicate entry
        }
        let header = self.heap.arena().header(obj);
        let ref_slots = header.ref_slots();
        for i in 0..ref_slots {
            let son = self.heap.arena().load_ref_slot(obj, i);
            self.mark_gray_clear_local(son, &mut cx.mark_stack);
        }
        cx.counters.objects_traced += 1;
        cx.counters.bytes_traced += header.size_bytes() as u64;
        cx.touch_object(obj, 1 + ref_slots);
        cx.touch_color(g);
    }

    /// Refreshes `out` with the current mutator registry (one lock
    /// acquisition), reusing its capacity.
    fn snapshot_mutators(&self, out: &mut Vec<Arc<MutatorShared>>) {
        out.clear();
        out.extend(self.mutators.lock().iter().cloned());
    }

    /// The trace loop: pop gray objects and blacken them until no gray
    /// object exists.
    ///
    /// Termination is subtle on-the-fly: a mutator's write barrier first
    /// CASes a color to gray and *then* pushes the object on the queue, so
    /// an empty queue alone does not mean no gray objects.  Every
    /// gray-producing mutator operation is bracketed by an epoch counter
    /// (odd while inside); the collector believes an empty queue only
    /// after observing all epochs even *and then* the queue still empty.
    /// Any barrier that starts after that point can only shade objects the
    /// DLG invariants already guarantee are marked (see DESIGN.md §4.3).
    /// With `gc_threads > 1` the check additionally covers the worker
    /// deques and in-flight steals (DESIGN.md §4.4).
    pub(crate) fn trace(&self, cx: &mut CycleCx) {
        let workers = self.config.gc_threads;
        if workers > 1 {
            self.trace_parallel(cx, workers);
        } else {
            self.trace_serial(cx);
        }
    }

    /// Single-collector trace — the paper's configuration, byte-for-byte
    /// the §4.3 protocol (no deques, no steal epoch on the hot path).
    fn trace_serial(&self, cx: &mut CycleCx) {
        let target = self.trace_target();
        let start = Instant::now();
        let mut backoff = Backoff::new();
        let mut epochs: Vec<Arc<MutatorShared>> = Vec::new();
        loop {
            while let Some(obj) = cx.mark_stack.pop() {
                self.mark_black(obj, target, cx);
            }
            if let Some(obj) = self.gray.pop() {
                backoff.reset();
                self.mark_black(obj, target, cx);
                continue;
            }
            // Quiescence check, one registry snapshot per attempt (not
            // one lock per spin): epochs even must be observed *before*
            // the queue re-check — a barrier either shows an odd epoch
            // here or has completed its push, which the later emptiness
            // check then sees.
            self.snapshot_mutators(&mut epochs);
            let all_even = epochs.iter().all(|m| m.epoch_is_even());
            if all_even && cx.mark_stack.is_empty() && self.gray.is_empty() {
                break;
            }
            backoff.snooze();
        }
        self.obs.note_worker_mark(0, dur_ns(start.elapsed()), 0);
    }

    /// Parallel trace: the roots in `cx.mark_stack` are dealt
    /// round-robin onto per-worker stealing deques, `workers − 1`
    /// helpers are spawned for the phase (worker 0 is the collector
    /// thread itself), and per-worker counters/touch-sets merge into
    /// `cx` at the phase barrier.
    fn trace_parallel(&self, cx: &mut CycleCx, workers: usize) {
        let target = self.trace_target();
        let deques: Vec<WorkerDeque<ObjectRef>> =
            (0..workers).map(|_| WorkerDeque::new()).collect();
        for (i, obj) in cx.mark_stack.drain(..).enumerate() {
            deques[i % workers].push(obj);
        }
        let term = TraceTermination::new(workers);
        let mut helper_cxs: Vec<CycleCx> = (1..workers).map(|_| CycleCx::new(self)).collect();
        std::thread::scope(|s| {
            for (i, hcx) in helper_cxs.iter_mut().enumerate() {
                let deques = &deques;
                let term = &term;
                s.spawn(move || self.trace_worker(i + 1, target, deques, term, hcx));
            }
            self.trace_worker(0, target, &deques, &term, cx);
        });
        for hcx in &helper_cxs {
            cx.merge_worker(hcx);
            debug_assert!(hcx.mark_stack.is_empty());
        }
        debug_assert!(deques.iter().all(|d| d.is_empty()));
    }

    /// One mark worker: drain private stack and own deque (publishing
    /// excess), steal when empty, and participate in §4.4 termination.
    fn trace_worker(
        &self,
        w: usize,
        target: Color,
        deques: &[WorkerDeque<ObjectRef>],
        term: &TraceTermination,
        cx: &mut CycleCx,
    ) {
        let start = Instant::now();
        let my = &deques[w];
        let mut steals = 0u64;
        let mut backoff = Backoff::new();
        let mut epochs: Vec<Arc<MutatorShared>> = Vec::new();
        'work: loop {
            // Drain local work: private stack (hot, lock-free), then the
            // own deque.  Publish the older half of an overgrown private
            // stack so idle siblings have something to steal.
            loop {
                if cx.mark_stack.len() >= PUBLISH_MIN && my.is_empty() {
                    term.steal_epoch.fetch_add(1, Ordering::SeqCst);
                    let split = cx.mark_stack.len() / 2;
                    my.push_batch(cx.mark_stack.drain(..split));
                }
                match cx.mark_stack.pop().or_else(|| my.pop()) {
                    Some(obj) => self.mark_black(obj, target, cx),
                    None => break,
                }
            }
            // Out of local work: steal from a sibling deque, then the
            // shared gray queue.  The fault point models a stalled or
            // refused steal (chaos tests delay/fail here); a refused
            // attempt just falls through to the idle loop, which re-tries.
            if !fault::point("collector.worker") {
                let stolen = deques
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != w)
                    .find_map(|(_, d)| d.steal())
                    .or_else(|| self.gray.pop());
                if let Some(obj) = stolen {
                    term.steal_epoch.fetch_add(1, Ordering::SeqCst);
                    steals += 1;
                    backoff.reset();
                    self.mark_black(obj, target, cx);
                    continue 'work;
                }
            }
            // Truly idle: leave the active set and watch for either new
            // work or a successful termination candidate.
            term.active.fetch_sub(1, Ordering::SeqCst);
            let quit = loop {
                if term.done.load(Ordering::SeqCst) {
                    break true;
                }
                if deques.iter().any(|d| !d.is_empty()) || !self.gray.is_empty() {
                    break false; // work appeared — reactivate
                }
                // Termination candidate, in §4.4 order: steal-epoch
                // before, workers all idle, a *fresh* registry snapshot
                // all even, every deque and the gray queue empty, and
                // the steal epoch unchanged (no worker went empty→
                // non-empty behind our back).
                let e1 = term.steal_epoch.load(Ordering::SeqCst);
                if term.active.load(Ordering::SeqCst) == 0 {
                    self.snapshot_mutators(&mut epochs);
                    if epochs.iter().all(|m| m.epoch_is_even())
                        && deques.iter().all(|d| d.is_empty())
                        && self.gray.is_empty()
                        && term.steal_epoch.load(Ordering::SeqCst) == e1
                    {
                        term.done.store(true, Ordering::SeqCst);
                        break true;
                    }
                }
                backoff.snooze();
            };
            if quit {
                break 'work;
            }
            // Reactivate *before* touching any work so `active == 0`
            // keeps meaning "no worker holds unscanned objects".
            term.active.fetch_add(1, Ordering::SeqCst);
            term.steal_epoch.fetch_add(1, Ordering::SeqCst);
            backoff.reset();
        }
        self.obs
            .note_worker_mark(w, dur_ns(start.elapsed()), steals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::ObjShape;

    fn setup() -> (GcShared, CycleCx) {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn setup_threads(n: usize) -> (GcShared, CycleCx) {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_gc_threads(n),
        );
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, refs: usize, color: Color) -> ObjectRef {
        let shape = ObjShape::new(refs, 1);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn trace_marks_reachable_chain() {
        let (sh, mut cx) = setup();
        // Build a chain a -> b -> c, all clear-colored.
        sh.colors.toggle(); // clear color is now White (allocation Yellow)
        let c = alloc(&sh, 1, Color::White);
        let b = alloc(&sh, 1, Color::White);
        let a = alloc(&sh, 1, Color::White);
        sh.heap.arena().store_ref_slot(a, 0, b);
        sh.heap.arena().store_ref_slot(b, 0, c);
        let d = alloc(&sh, 0, Color::White); // unreachable

        sh.mark_gray_clear(a);
        sh.trace(&mut cx);

        for obj in [a, b, c] {
            assert_eq!(sh.heap.colors().get(obj.granule()), Color::Black);
        }
        assert_eq!(sh.heap.colors().get(d.granule()), Color::White);
        assert_eq!(cx.counters.objects_traced, 3);
        assert!(sh.gray.is_empty());
    }

    #[test]
    fn trace_does_not_traverse_old_generation() {
        let (sh, mut cx) = setup();
        sh.colors.toggle();
        // Black (old) object referencing a white object: trace must not
        // traverse it unless it was explicitly grayed via a dirty card.
        let young = alloc(&sh, 0, Color::White);
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.arena().store_ref_slot(old, 0, young);
        // No roots at all.
        sh.trace(&mut cx);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::White);
        assert_eq!(cx.counters.objects_traced, 0);
    }

    #[test]
    fn trace_through_regrayed_black_parent() {
        let (sh, mut cx) = setup();
        sh.colors.toggle();
        let young = alloc(&sh, 0, Color::White);
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.arena().store_ref_slot(old, 0, young);
        assert!(sh.mark_gray_from_black(old)); // as ClearCards would
        sh.trace(&mut cx);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::Black);
        assert_eq!(cx.counters.objects_traced, 2);
    }

    #[test]
    fn trace_ignores_allocation_colored_objects() {
        let (sh, mut cx) = setup();
        sh.colors.toggle(); // allocation = Yellow
        let infant = alloc(&sh, 0, Color::Yellow);
        let root = alloc(&sh, 1, Color::White);
        sh.heap.arena().store_ref_slot(root, 0, infant);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        // The yellow infant is not traced (not promoted, §4).
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(sh.heap.colors().get(root.granule()), Color::Black);
    }

    #[test]
    fn trace_waits_for_in_flight_barrier() {
        use std::sync::atomic::Ordering;
        use std::sync::Arc;
        let (sh, mut cx) = setup();
        let sh = Arc::new(sh);
        sh.colors.toggle();
        let hidden = alloc(&sh, 0, Color::White);
        let m = sh.register_mutator();

        // Simulate a mutator stuck inside the write barrier: epoch odd,
        // color already CASed to gray, push not yet performed.
        m.epoch_enter();
        assert!(sh
            .heap
            .colors()
            .cas(hidden.granule(), Color::White, Color::Gray));

        let sh2 = Arc::clone(&sh);
        let m2 = Arc::clone(&m);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            sh2.gray.push(hidden);
            m2.epoch.fetch_add(1, Ordering::SeqCst); // epoch_exit
        });

        // Trace must not terminate before the delayed push arrives.
        sh.trace(&mut cx);
        pusher.join().unwrap();
        assert_eq!(sh.heap.colors().get(hidden.granule()), Color::Black);
    }

    #[test]
    fn non_generational_trace_uses_allocation_color() {
        let sh = GcShared::new(
            GcConfig::non_generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        let mut cx = CycleCx::new(&sh);
        sh.colors.toggle(); // allocation Yellow, clear White
        let a = alloc(&sh, 0, Color::White);
        sh.mark_gray_clear(a);
        sh.trace(&mut cx);
        // Marked with the allocation color, not literal black.
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Yellow);
    }

    /// Builds a wide two-level tree (fanout² + fanout + 1 objects) and
    /// returns the root plus the total object count.
    fn build_tree(sh: &GcShared, fanout: usize) -> (ObjectRef, u64) {
        let root = alloc(sh, fanout, Color::White);
        let mut count = 1u64;
        for i in 0..fanout {
            let mid = alloc(sh, fanout, Color::White);
            sh.heap.arena().store_ref_slot(root, i, mid);
            count += 1;
            for j in 0..fanout {
                let leaf = alloc(sh, 0, Color::White);
                sh.heap.arena().store_ref_slot(mid, j, leaf);
                count += 1;
            }
        }
        (root, count)
    }

    #[test]
    fn parallel_trace_marks_everything_exactly_once() {
        let (sh, mut cx) = setup_threads(4);
        sh.colors.toggle();
        let (root, count) = build_tree(&sh, 24);
        let dead = alloc(&sh, 0, Color::White);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        // CAS-claimed marking counts every reachable object exactly once
        // even with 4 workers racing over shared subtrees.
        assert_eq!(cx.counters.objects_traced, count);
        assert_eq!(sh.heap.colors().get(root.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::White);
        assert!(sh.gray.is_empty());
    }

    #[test]
    fn parallel_counters_match_serial_on_identical_heap() {
        // Satellite: merged per-worker counters must equal the
        // single-threaded totals on an identical heap.
        let build = |sh: &GcShared| {
            sh.colors.toggle();
            let (root, _) = build_tree(sh, 16);
            sh.mark_gray_clear(root);
        };
        let (serial_sh, mut serial_cx) = setup_threads(1);
        build(&serial_sh);
        serial_sh.trace(&mut serial_cx);
        let (par_sh, mut par_cx) = setup_threads(4);
        build(&par_sh);
        par_sh.trace(&mut par_cx);
        assert_eq!(
            serial_cx.counters.objects_traced,
            par_cx.counters.objects_traced
        );
        // Both observe identical page touch-sets (same addresses).
        assert_eq!(serial_cx.pages.touched(), par_cx.pages.touched());
    }

    #[test]
    fn parallel_trace_waits_for_in_flight_barrier() {
        use std::sync::atomic::Ordering;
        use std::sync::Arc;
        // The §4.4 termination protocol at N=4 must not terminate while
        // a mutator's delayed gray push is in flight, even with every
        // worker idle and all deques empty.
        let (sh, mut cx) = setup_threads(4);
        let sh = Arc::new(sh);
        sh.colors.toggle();
        let hidden = alloc(&sh, 0, Color::White);
        let m = sh.register_mutator();
        m.epoch_enter();
        assert!(sh
            .heap
            .colors()
            .cas(hidden.granule(), Color::White, Color::Gray));
        let sh2 = Arc::clone(&sh);
        let m2 = Arc::clone(&m);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            sh2.gray.push(hidden);
            m2.epoch.fetch_add(1, Ordering::SeqCst);
        });
        sh.trace(&mut cx);
        pusher.join().unwrap();
        assert_eq!(sh.heap.colors().get(hidden.granule()), Color::Black);
        assert_eq!(cx.counters.objects_traced, 1);
    }

    #[test]
    fn parallel_workers_record_observability() {
        let (sh, mut cx) = setup_threads(2);
        sh.colors.toggle();
        let (root, _) = build_tree(&sh, 8);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        assert_eq!(sh.obs.workers.len(), 2);
        // Every worker records one mark-phase sample per trace.
        for w in &sh.obs.workers {
            assert_eq!(w.mark_ns.count(), 1);
        }
    }
}
