//! *Anagram* — the IBM-internal anagram generator (paper §8.2).
//!
//! "This program implements an anagram generator using a simple, recursive
//! routine to generate all permutations of the characters in the input
//! string.  If all resulting words in a permuted string are found in the
//! dictionary, the permuted string is displayed.  This program is
//! collection-intensive, creating and freeing many strings."
//!
//! Generational signature reproduced (Figures 10–12, 22–23): the heaviest
//! GC load of all benchmarks (62.8% of run time in GC without
//! generations), essentially **zero inter-generational pointers** (the
//! dictionary is built once and never mutated), and ~93% of young objects
//! reclaimed by partial collections — the perfect generational citizen.

use otf_gc::{Mutator, ObjectRef};

use crate::toolkit::{alloc_array, alloc_data, check_data, fill_data, mix, pick, rng_for};
use crate::Workload;

/// String payload size in words (a short Java string).
const WORD_PAYLOAD: usize = 3;

/// The anagram workload.
#[derive(Clone, Debug)]
pub struct Anagram {
    /// Dictionary size (long-lived word objects).
    pub dict_size: usize,
    /// Number of input strings to permute.
    pub inputs: usize,
    /// Permutations generated per input (each allocates fresh strings).
    pub permutations_per_input: usize,
}

impl Anagram {
    /// The default configuration (≈ 190 MB of string churn).
    pub fn new() -> Anagram {
        Anagram {
            dict_size: 120_000,
            inputs: 50_000,
            permutations_per_input: 24,
        }
    }

    /// Scales the amount of work (live-set sizes stay fixed so the
    /// generational behavior is unchanged).
    pub fn scaled(mut self, scale: f64) -> Anagram {
        self.inputs = ((self.inputs as f64 * scale) as usize).max(1);
        self
    }
}

impl Default for Anagram {
    fn default() -> Self {
        Anagram::new()
    }
}

impl Workload for Anagram {
    fn name(&self) -> &'static str {
        "anagram"
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);

        // Build the dictionary: a chunked spine of references to word
        // objects.  This is the only long-lived state and it is never
        // mutated again.
        const DICT_CHUNK: usize = 1024;
        let n_chunks = self.dict_size.div_ceil(DICT_CHUNK);
        let dict: ObjectRef = alloc_array(m, n_chunks);
        m.root_push(dict);
        for c in 0..n_chunks {
            let chunk = alloc_array(m, DICT_CHUNK);
            m.write_ref(dict, c, chunk);
            for i in 0..DICT_CHUNK.min(self.dict_size - c * DICT_CHUNK) {
                let word = alloc_data(m, WORD_PAYLOAD);
                fill_data(
                    m,
                    word,
                    WORD_PAYLOAD,
                    0xD1C7_0000 + (c * DICT_CHUNK + i) as u64,
                );
                m.write_ref(chunk, i, word);
            }
            m.cooperate();
        }

        // Permutation churn: every permutation allocates a fresh string
        // (plus per-word fragments) that dies as soon as the dictionary
        // probe is done.
        let mut found = 0u64;
        for input in 0..self.inputs {
            let frame = m.root_len();
            for p in 0..self.permutations_per_input {
                // The permuted string...
                let s = alloc_data(m, WORD_PAYLOAD);
                fill_data(m, s, WORD_PAYLOAD, (input * 131 + p) as u64);
                m.root_push(s);
                // "Permute the characters": hash work per string.
                let h = mix((input * 131 + p) as u64, 192);
                // ...split into two candidate words, each probed against
                // the dictionary.
                for half in 0..2u64 {
                    let fragment = alloc_data(m, 2);
                    m.write_data(fragment, 0, half);
                    let probe = (mix(h ^ half, 8) as usize) % self.dict_size;
                    let _ = pick(&mut rng, 2);
                    let chunk = m.read_ref(dict, probe / DICT_CHUNK);
                    let w = m.read_ref(chunk, probe % DICT_CHUNK);
                    check_data(m, w, WORD_PAYLOAD, 0xD1C7_0000 + probe as u64);
                    if m.read_data(w, 0) & 0xFF == half {
                        found += 1;
                    }
                }
                m.root_pop();
            }
            m.root_truncate(frame);
            m.cooperate();
        }
        std::hint::black_box(found);
        m.root_pop();
    }
}
