//! Criterion micro-benchmarks for the collector's hot paths: allocation,
//! the three write-barrier variants, reads, safe-point polling, and whole
//! collection cycles over a populated heap.
//!
//! Run with `cargo bench -p otf-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use otf_gc::{Gc, GcConfig, Mutator, ObjShape, ObjectRef};

/// A quiet heap: no triggers fire during the measurement.
fn quiet(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(64 << 20)
        .with_initial_heap(64 << 20)
        .with_young_size(48 << 20)
}

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc");
    g.throughput(Throughput::Elements(1));
    for (label, cfg) in [
        ("generational", quiet(GcConfig::generational())),
        ("non_generational", quiet(GcConfig::non_generational())),
        ("aging", quiet(GcConfig::aging(4))),
    ] {
        let gc = Gc::new(cfg);
        let mut m = gc.mutator();
        let shape = ObjShape::new(1, 2);
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(m.alloc(&shape).unwrap()));
        });
        drop(m);
        gc.shutdown();
    }
    g.finish();
}

fn setup_pair(gc: &Gc, m: &mut Mutator) -> (ObjectRef, ObjectRef) {
    let shape = ObjShape::new(2, 0);
    let a = m.alloc(&shape).unwrap();
    m.root_push(a);
    let b = m.alloc(&shape).unwrap();
    m.root_push(b);
    let _ = gc;
    (a, b)
}

fn bench_write_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_barrier");
    g.throughput(Throughput::Elements(1));
    for (label, cfg) in [
        ("simple_async", quiet(GcConfig::generational())),
        ("non_generational_async", quiet(GcConfig::non_generational())),
        ("aging_async", quiet(GcConfig::aging(4))),
    ] {
        let gc = Gc::new(cfg);
        let mut m = gc.mutator();
        let (a, b) = setup_pair(&gc, &mut m);
        g.bench_function(label, |bch| {
            bch.iter(|| m.write_ref(std::hint::black_box(a), 0, std::hint::black_box(b)));
        });
        drop(m);
        gc.shutdown();
    }
    g.finish();
}

fn bench_reads_and_safepoint(c: &mut Criterion) {
    let gc = Gc::new(quiet(GcConfig::generational()));
    let mut m = gc.mutator();
    let (a, b) = setup_pair(&gc, &mut m);
    m.write_ref(a, 0, b);
    c.bench_function("read_ref", |bch| {
        bch.iter(|| std::hint::black_box(m.read_ref(std::hint::black_box(a), 0)))
    });
    c.bench_function("cooperate_no_handshake", |bch| bch.iter(|| m.cooperate()));
    drop(m);
    gc.shutdown();
}

/// Builds a binary tree of `n` nodes rooted on the shadow stack.
fn build_tree(m: &mut Mutator, n: usize) {
    let shape = ObjShape::new(2, 1);
    let root = m.alloc(&shape).unwrap();
    m.root_push(root);
    let mut frontier = vec![root];
    let mut count = 1;
    while count < n {
        let parent = frontier[count / 2 % frontier.len()];
        let child = m.alloc(&shape).unwrap();
        let slot = count % 2;
        m.write_ref(parent, slot, child);
        frontier.push(child);
        if frontier.len() > 64 {
            frontier.remove(0);
        }
        count += 1;
    }
    // Keep only the root rooted: the tree hangs off it... but interior
    // nodes were overwritten? No: each parent gets at most 2 children via
    // distinct slots over time — good enough for a trace benchmark.
}

fn bench_collection_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("collection_cycle");
    g.sample_size(20);
    for live in [10_000usize, 100_000] {
        for (label, cfg) in [
            ("generational", GcConfig::generational()),
            ("non_generational", GcConfig::non_generational()),
        ] {
            let gc = Gc::new(
                cfg.with_max_heap(64 << 20).with_initial_heap(64 << 20).with_young_size(56 << 20),
            );
            let mut m = gc.mutator();
            build_tree(&mut m, live);
            g.bench_function(format!("{label}/live_{live}"), |bch| {
                bch.iter_batched(
                    || (),
                    |_| m.parked(|| gc.collect_full_blocking()),
                    BatchSize::PerIteration,
                )
            });
            drop(m);
            gc.shutdown();
        }
    }
    g.finish();
}

fn bench_alloc_collect_steady_state(c: &mut Criterion) {
    // End-to-end: allocate through repeated on-the-fly collections.
    let mut g = c.benchmark_group("steady_state");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(32 * 50_000));
    for (label, cfg) in [
        ("generational", GcConfig::generational()),
        ("non_generational", GcConfig::non_generational()),
    ] {
        let gc = Gc::new(cfg.with_max_heap(8 << 20).with_young_size(512 << 10));
        let mut m = gc.mutator();
        let shape = ObjShape::new(0, 2); // 32-byte objects
        g.bench_function(format!("churn_50k_objs/{label}"), |bch| {
            bch.iter(|| {
                for _ in 0..50_000 {
                    std::hint::black_box(m.alloc(&shape).unwrap());
                }
            })
        });
        drop(m);
        gc.shutdown();
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_alloc,
    bench_write_barrier,
    bench_reads_and_safepoint,
    bench_collection_cycle,
    bench_alloc_collect_steady_state
);
criterion_main!(benches);
