//! The card table (§3.1, §8.5.3): one dedicated byte per card.
//!
//! The heap is partitioned into power-of-two *cards*; a mutator marks a
//! card dirty when it stores a pointer into an object whose header lies on
//! that card (the pseudo-code's `MarkCard(x)` takes the object `x`, so the
//! card of the *object start* is marked, and the collector's dirty-card
//! scan likewise enumerates objects *starting* on the card).
//!
//! The paper keeps "a table with a designated byte for each card holding
//! the card mark; the byte does not have any other use" (§7) — exactly this
//! type.  Card sizes from 16 bytes ("object marking") to 4096 bytes
//! ("block marking") are supported, the range swept in Figure 21.

use std::sync::atomic::{AtomicU8, Ordering};

use otf_support::tablescan;

use crate::addr::{GRANULE, GRANULE_LOG2};

/// Smallest supported card size in bytes (object marking).
pub const MIN_CARD_SIZE: usize = 16;
/// Largest supported card size in bytes (block marking).
pub const MAX_CARD_SIZE: usize = 4096;

const CLEAN: u8 = 0;
const DIRTY: u8 = 1;

/// One atomic mark byte per card of the arena.
#[derive(Debug)]
pub struct CardTable {
    bytes: Box<[AtomicU8]>,
    shift: u32,
}

impl CardTable {
    /// Creates a table for a heap of `heap_bytes` bytes with the given
    /// `card_size`.
    ///
    /// # Panics
    ///
    /// Panics if `card_size` is not a power of two in
    /// `[MIN_CARD_SIZE, MAX_CARD_SIZE]`.
    pub fn new(heap_bytes: usize, card_size: usize) -> CardTable {
        assert!(
            card_size.is_power_of_two()
                && (MIN_CARD_SIZE..=MAX_CARD_SIZE).contains(&card_size),
            "card size must be a power of two in [{MIN_CARD_SIZE}, {MAX_CARD_SIZE}], got {card_size}"
        );
        let cards = heap_bytes.div_ceil(card_size);
        let mut v = Vec::with_capacity(cards);
        v.resize_with(cards, || AtomicU8::new(CLEAN));
        CardTable {
            bytes: v.into_boxed_slice(),
            shift: card_size.trailing_zeros(),
        }
    }

    /// The card size in bytes.
    #[inline]
    pub fn card_size(&self) -> usize {
        1 << self.shift
    }

    /// Number of cards.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the table has zero cards.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Size of the table itself in bytes (for page-touch accounting).
    #[inline]
    pub fn table_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The card index covering byte offset `byte`.
    #[inline]
    pub fn card_of_byte(&self, byte: usize) -> usize {
        byte >> self.shift
    }

    /// Marks dirty the card containing byte offset `byte` (the mutator's
    /// `MarkCard`).  A relaxed store suffices: the §7.2 clear/check/re-mark
    /// protocol tolerates any interleaving as long as the mutator's data
    /// store precedes its card mark in program order, which the write
    /// barrier guarantees.
    #[inline]
    pub fn mark_byte(&self, byte: usize) {
        self.bytes[byte >> self.shift].store(DIRTY, Ordering::Release);
    }

    /// Whether card `card` is dirty.
    #[inline]
    pub fn is_dirty(&self, card: usize) -> bool {
        self.bytes[card].load(Ordering::Acquire) == DIRTY
    }

    /// Clears card `card` (collector only).
    #[inline]
    pub fn clear(&self, card: usize) {
        self.bytes[card].store(CLEAN, Ordering::Release);
    }

    /// Re-marks card `card` dirty (step 3 of the §7.2 protocol).
    #[inline]
    pub fn mark_card(&self, card: usize) {
        self.bytes[card].store(DIRTY, Ordering::Release);
    }

    /// Clears every card with word-wide stores (used by
    /// `InitFullCollection` in the simple variant, Figure 3).  A mutator
    /// concurrently re-marking a card in the same word is linearized per
    /// byte by coherence — either its mark lands after the wipe and
    /// survives, or before and is cleared, exactly as with the
    /// byte-at-a-time loop (safe here because a full collection traces
    /// everything, so a wiped mark loses no inter-generational pointer).
    pub fn clear_all(&self) {
        tablescan::bulk_zero(&self.bytes, 0, self.bytes.len());
    }

    /// The granule range `[start, end)` covered by card `card`.
    #[inline]
    pub fn granule_range(&self, card: usize) -> (usize, usize) {
        let granules_per_card = (1usize << self.shift) / GRANULE;
        let start = card << (self.shift - GRANULE_LOG2);
        (start, start + granules_per_card)
    }

    /// Returns the first dirty card in `[from, to)`, or `None` if every
    /// card in the range is clean — the card scan's word-at-a-time skip
    /// over clean runs (typically the vast majority of the table).
    ///
    /// The skip itself uses relaxed word loads; before returning, the
    /// found card's byte is re-loaded with acquire, pairing with the
    /// mutator's release [`mark_byte`](CardTable::mark_byte) so the
    /// pointer store that preceded the mark is visible to the caller's
    /// subsequent object scan (the same re-load-before-acting protocol
    /// the color table uses).  Only mutators dirty cards and only the
    /// collector — the caller — cleans them, so the re-read cannot
    /// observe the card clean again.
    #[inline]
    pub fn next_dirty(&self, from: usize, to: usize) -> Option<usize> {
        let to = to.min(self.bytes.len());
        let i = tablescan::find_byte_not_in(&self.bytes, from.min(to), to, CLEAN);
        if i < to {
            let _ = self.bytes[i].load(Ordering::Acquire);
            Some(i)
        } else {
            None
        }
    }

    /// Calls `f(card)` for every dirty card index in `[0, cards)`,
    /// word-skipping clean runs via [`next_dirty`](CardTable::next_dirty).
    #[inline]
    pub fn for_each_dirty<F: FnMut(usize)>(&self, cards: usize, mut f: F) {
        let mut from = 0;
        while let Some(card) = self.next_dirty(from, cards) {
            f(card);
            from = card + 1;
        }
    }

    /// Number of dirty cards among the first `cards` cards.
    pub fn count_dirty(&self, cards: usize) -> usize {
        tablescan::count_matching(&self.bytes, 0, cards.min(self.bytes.len()), DIRTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let t = CardTable::new(1 << 20, 512);
        assert_eq!(t.card_size(), 512);
        assert_eq!(t.len(), 2048);
        assert_eq!(t.card_of_byte(0), 0);
        assert_eq!(t.card_of_byte(511), 0);
        assert_eq!(t.card_of_byte(512), 1);
    }

    #[test]
    fn mark_clear_cycle() {
        let t = CardTable::new(4096, 16);
        assert!(!t.is_dirty(3));
        t.mark_byte(3 * 16 + 5);
        assert!(t.is_dirty(3));
        t.clear(3);
        assert!(!t.is_dirty(3));
        t.mark_card(3);
        assert!(t.is_dirty(3));
    }

    #[test]
    fn granule_range_for_object_marking() {
        // 16-byte cards: one granule per card.
        let t = CardTable::new(1024, 16);
        assert_eq!(t.granule_range(5), (5, 6));
    }

    #[test]
    fn granule_range_for_block_marking() {
        // 4096-byte cards: 256 granules per card.
        let t = CardTable::new(1 << 16, 4096);
        assert_eq!(t.granule_range(2), (512, 768));
    }

    #[test]
    fn clear_all_and_count() {
        let t = CardTable::new(4096, 256);
        t.mark_byte(0);
        t.mark_byte(300);
        t.mark_byte(4000);
        assert_eq!(t.count_dirty(t.len()), 3);
        t.clear_all();
        assert_eq!(t.count_dirty(t.len()), 0);
    }

    #[test]
    fn next_dirty_skips_clean_runs() {
        let t = CardTable::new(1 << 16, 16); // 4096 cards
        assert_eq!(t.next_dirty(0, t.len()), None);
        t.mark_card(0);
        t.mark_card(1234);
        t.mark_card(4095);
        assert_eq!(t.next_dirty(0, t.len()), Some(0));
        assert_eq!(t.next_dirty(1, t.len()), Some(1234));
        assert_eq!(t.next_dirty(1235, t.len()), Some(4095));
        assert_eq!(t.next_dirty(4096, t.len()), None);
        // Range end caps the scan, and an out-of-range `from` is safe.
        assert_eq!(t.next_dirty(1235, 4095), None);
        assert_eq!(t.next_dirty(9999, 99999), None);
    }

    #[test]
    fn for_each_dirty_enumerates_in_order() {
        let t = CardTable::new(1 << 14, 64); // 256 cards
        for c in [3usize, 7, 64, 65, 255] {
            t.mark_card(c);
        }
        let mut seen = Vec::new();
        t.for_each_dirty(t.len(), |c| seen.push(c));
        assert_eq!(seen, vec![3, 7, 64, 65, 255]);
        // A bounded scan stops at the bound.
        seen.clear();
        t.for_each_dirty(65, |c| seen.push(c));
        assert_eq!(seen, vec![3, 7, 64]);
    }

    #[test]
    #[should_panic(expected = "card size")]
    fn rejects_non_power_of_two() {
        let _ = CardTable::new(4096, 48);
    }

    #[test]
    #[should_panic(expected = "card size")]
    fn rejects_too_large() {
        let _ = CardTable::new(1 << 20, 8192);
    }
}
