//! Poison-free synchronization primitives with the `parking_lot`-style
//! API over `std::sync`.
//!
//! The collector's hot paths lock at every allocation and every handshake
//! probe; threading `Result`s (std's poison bookkeeping) through them
//! buys nothing — a panic while holding a collector lock leaves the heap
//! in an undefined state anyway, so poisoning is ignored: a poisoned
//! guard is recovered with `into_inner` and handed out normally.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock.  [`lock`](Mutex::lock) returns the guard
/// directly (no poison `Result`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    #[inline]
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for a [`Mutex`].  The `Option` exists only so a [`Condvar`]
/// wait can momentarily take the underlying std guard by value; it is
/// `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable operating on [`MutexGuard`]s in place
/// (`parking_lot` style: `wait(&mut guard)` instead of consuming and
/// returning the guard).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.  Spurious wakeups are possible, as with any
    /// condition variable — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.  Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        result.timed_out()
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with the same poison-free guard API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    #[inline]
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Exponential backoff for spin-wait loops: a few `spin_loop` hints,
/// then `yield_now`, then short bounded sleeps.
///
/// The collector's quiescence loops (trace termination waiting on odd
/// mutator epochs, workers waiting for steals) previously burned a full
/// `yield_now` per probe.  `Backoff` ramps the wait instead: the first
/// probes cost only pipeline hints (the common case — the condition
/// flips within nanoseconds), repeated failures escalate to yielding
/// the timeslice, and a persistently false condition parks the thread
/// in capped micro-sleeps so a single-core box can run the thread we
/// are waiting *for*.  Call [`reset`](Backoff::reset) after useful work
/// so the next wait starts cheap again.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin-hint for up to `2^SPIN_LIMIT` iterations per snooze.
    const SPIN_LIMIT: u32 = 6;
    /// Yield (instead of sleeping) until this step.
    const YIELD_LIMIT: u32 = 10;
    /// Sleep quantum once past the yield phase.
    const PARK: Duration = Duration::from_micros(50);

    /// Creates a backoff at the cheapest (pure spin) step.
    #[inline]
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Waits a little longer than the previous `snooze` call did.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
        } else if self.step <= Self::YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Self::PARK);
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Returns to the cheapest step — call after the awaited condition
    /// made progress.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once the backoff has escalated past pure spinning — a hint
    /// that the waiter should recheck slow-path conditions (e.g. take a
    /// fresh registry snapshot) rather than keep spinning on a cache.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A std mutex would now be poisoned; ours just hands out the lock.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
        // Guard is intact after the timed-out wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        // Completed backoff keeps sleeping without overflowing the step.
        b.snooze();
        b.snooze();
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn backoff_spin_phase_is_fast() {
        // The first few snoozes must be pure spin hints — no syscalls —
        // so a tight loop of them completes in well under a millisecond.
        let start = std::time::Instant::now();
        let mut b = Backoff::new();
        for _ in 0..Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }
}
