//! Work-packet scheduler: typed packets drained from phase *buckets*
//! that open in a declared order, executed by a small worker pool over
//! the same conservative-length [`WorkerDeque`]s the mark phase steals
//! from.
//!
//! The shape is MMTk's (see PAPERS.md): a *plan* enqueues typed
//! [`Packet`]s into the buckets of a [`Schedule`]; buckets open
//! strictly in declaration order; a bucket closes only when it is
//! *provably drained* — queue empty **and** no packet in flight — and,
//! if the bucket has a [`Drained`] hook, when that hook agrees.  The
//! hook is how a phase expresses a nontrivial termination condition
//! (e.g. the on-the-fly §4.4 check "every mutator outside its barrier
//! epoch, then every queue still empty") as a bucket-closing condition:
//! it may close the bucket, refill it with newly discovered packets, or
//! ask the pool to wait and re-poll.
//!
//! Guarantees:
//!
//! * **Ordered opening** — bucket *i*+1 opens only after bucket *i*
//!   closed; `on_open`/`on_close` hooks run exactly once, on the worker
//!   that performed the transition, serialized under the advance lock.
//! * **Conservative drain check** — a worker increments the bucket's
//!   `in_flight` *before* trying to take a packet and decrements it
//!   only after the packet ran (or the take failed), and the queue's
//!   length is itself conservative ([`WorkerDeque`] bumps `len` before
//!   publishing an item); so "queue empty ∧ `in_flight` = 0" proves no
//!   packet exists or is running, with no hidden window.  Packets may
//!   enqueue follow-ons, but only into their own (still open, hence
//!   `in_flight` > 0) bucket or a later one — so the check can never
//!   race with a packet it missed.
//! * **Serial buckets** — at most one packet in flight, taken FIFO.
//!   With one worker *every* bucket degenerates to exactly this, so a
//!   single-threaded schedule runs packets in enqueue order, bucket by
//!   bucket — byte-for-byte the sequential phase order.
//! * **Span accounting** — each bucket's open→close wall time is
//!   sampled once at close and handed to `on_close`; [`Schedule::span`]
//!   returns the same sample afterwards, so phase attribution and trace
//!   events cannot disagree about a phase's duration.
//! * **Overlappable buckets** — a bucket may be declared
//!   [*overlappable with its successor*](Schedule::overlap_with_next):
//!   when it opens, its successor opens too (recursively, so a chain of
//!   declarations forms one *overlap group* whose buckets are all open
//!   at once), and the predecessor holds one `in_flight` token in the
//!   successor for its whole open lifetime.  The token makes the
//!   successor's drain check (`empty ∧ in_flight = 0`) unsatisfiable
//!   until the predecessor closed, so a group still closes strictly in
//!   declaration order and `current` remains the *earliest open*
//!   bucket; its drained hook is likewise never consulted while a
//!   producer is open.  Workers that find the earliest bucket
//!   empty-but-unclosable spill into the later open buckets of the
//!   group, which is what lets consumer packets drain work the
//!   producers are still publishing.  `on_open` hooks of a group run in
//!   declaration order on the worker that opened the group.  A serial
//!   bucket should not be an overlap *successor*: the predecessor's
//!   token would keep its one-in-flight gate closed, so its packets
//!   would only run after the predecessor closed (safe, but no overlap).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::steal::WorkerDeque;
use crate::sync::{Backoff, Mutex};

/// One unit of schedulable work.
///
/// A packet runs at most once, on one worker, with exclusive access to
/// that worker's context `Cx`.  While running it may enqueue follow-on
/// packets into its own bucket or any later bucket via `sched`.
pub trait Packet<'s, Cx>: Send + 's {
    /// Short static name, used in debug assertions and panic messages.
    fn name(&self) -> &'static str;
    /// Executes the packet on worker `worker`.
    fn run(self: Box<Self>, worker: usize, cx: &mut Cx, sched: &Schedule<'s, Cx>);
}

/// Verdict of a bucket's [`Drained`] hook, consulted when the bucket's
/// queue is empty and no packet is in flight.
pub enum Drained<'s, Cx> {
    /// The phase is complete: close the bucket and open the next.
    Close,
    /// More work was discovered: enqueue these packets and stay open.
    Refill(Vec<Box<dyn Packet<'s, Cx>>>),
    /// Not drained yet (progress pending outside the scheduler, e.g. a
    /// mutator inside its barrier epoch): back off and re-poll.
    Wait,
}

/// Hook run once when a bucket opens (on the advancing worker).
type OpenHook<'s> = Box<dyn Fn() + Send + Sync + 's>;
/// Hook run once when a bucket closes, with the open→close span.
type CloseHook<'s> = Box<dyn Fn(Duration) + Send + Sync + 's>;
/// Closing condition for a bucket whose emptiness is not sufficient.
type DrainHook<'s, Cx> = Box<dyn Fn() -> Drained<'s, Cx> + Send + Sync + 's>;

const PENDING: u8 = 0;
const OPEN: u8 = 1;
const CLOSED: u8 = 2;

/// Releases an in-flight slot on every exit path, unwind included: a
/// leaked slot would make "queue empty ∧ `in_flight` = 0"
/// unsatisfiable forever.
struct InFlight<'f>(&'f AtomicUsize);
impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Bucket<'s, Cx> {
    name: &'static str,
    /// Serial buckets admit at most one packet in flight.
    serial: bool,
    /// Opens together with its successor and holds one `in_flight`
    /// token there until closed (see the module docs).
    overlap_with_next: bool,
    queue: WorkerDeque<Box<dyn Packet<'s, Cx>>>,
    in_flight: AtomicUsize,
    state: AtomicU8,
    opened_at: Mutex<Option<Instant>>,
    span_ns: AtomicU64,
    on_open: Option<OpenHook<'s>>,
    on_close: Option<CloseHook<'s>>,
    drained: Option<DrainHook<'s, Cx>>,
}

/// Identifies a bucket within its [`Schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketId(usize);

/// An ordered sequence of phase buckets plus the pool that drains them.
pub struct Schedule<'s, Cx> {
    buckets: Vec<Bucket<'s, Cx>>,
    /// Index of the currently open bucket (`buckets.len()` when done).
    current: AtomicUsize,
    /// Serializes bucket transitions and drained-hook evaluation.
    advance: Mutex<()>,
    /// Set when any worker unwinds out of [`Schedule::drive`] — a packet
    /// or hook panicked.  The surviving workers stop driving so the
    /// panic can propagate out of [`Schedule::run`]'s thread scope
    /// (instead of deadlocking behind the dead worker's abandoned
    /// bucket), where the collector's supervisor can catch it.
    failed: AtomicBool,
}

impl<'s, Cx: Send + 's> Schedule<'s, Cx> {
    /// Creates an empty schedule.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Schedule {
            buckets: Vec::new(),
            current: AtomicUsize::new(0),
            advance: Mutex::new(()),
            failed: AtomicBool::new(false),
        }
    }

    /// Appends a bucket that drains with full worker parallelism.
    pub fn add_bucket(&mut self, name: &'static str) -> BucketId {
        self.push_bucket(name, false)
    }

    /// Appends a bucket that admits at most one packet in flight,
    /// taken in enqueue (FIFO) order.
    pub fn add_serial_bucket(&mut self, name: &'static str) -> BucketId {
        self.push_bucket(name, true)
    }

    fn push_bucket(&mut self, name: &'static str, serial: bool) -> BucketId {
        self.buckets.push(Bucket {
            name,
            serial,
            overlap_with_next: false,
            queue: WorkerDeque::new(),
            in_flight: AtomicUsize::new(0),
            state: AtomicU8::new(PENDING),
            opened_at: Mutex::new(None),
            span_ns: AtomicU64::new(0),
            on_open: None,
            on_close: None,
            drained: None,
        });
        BucketId(self.buckets.len() - 1)
    }

    /// Declares `b` overlappable with its successor: opening `b` also
    /// opens `b`+1, and `b` holds one `in_flight` token there until it
    /// closes, so `b`+1 cannot close (nor consult its drained hook)
    /// while `b` is still open.  Chaining declarations forms an overlap
    /// group that opens as one and closes in declaration order.
    ///
    /// Call after the successor bucket was declared.
    pub fn overlap_with_next(&mut self, b: BucketId) {
        assert!(
            b.0 + 1 < self.buckets.len(),
            "overlappable bucket `{}` has no successor",
            self.buckets[b.0].name
        );
        self.buckets[b.0].overlap_with_next = true;
    }

    /// Whether any earlier bucket of `b`'s overlap group is still open
    /// (i.e. a producer feeding `b` has not finished publishing).
    /// False for a bucket that is not an overlap successor.
    pub fn predecessors_open(&self, b: BucketId) -> bool {
        let mut i = b.0;
        while i > 0 && self.buckets[i - 1].overlap_with_next {
            i -= 1;
            if self.buckets[i].state.load(Ordering::SeqCst) != CLOSED {
                return true;
            }
        }
        false
    }

    /// Installs the hook run once when `b` opens.
    pub fn on_open(&mut self, b: BucketId, f: impl Fn() + Send + Sync + 's) {
        self.buckets[b.0].on_open = Some(Box::new(f));
    }

    /// Installs the hook run once when `b` closes (gets the span).
    pub fn on_close(&mut self, b: BucketId, f: impl Fn(Duration) + Send + Sync + 's) {
        self.buckets[b.0].on_close = Some(Box::new(f));
    }

    /// Installs `b`'s closing condition, consulted only when the queue
    /// is empty and nothing is in flight.  Without one, empty ⇒ close.
    pub fn on_drained(&mut self, b: BucketId, f: impl Fn() -> Drained<'s, Cx> + Send + Sync + 's) {
        self.buckets[b.0].drained = Some(Box::new(f));
    }

    /// Enqueues a packet into bucket `b`.
    ///
    /// Legal before the schedule runs, or — from a running packet —
    /// into its own bucket or any later (not yet closed) one.  In debug
    /// builds enqueuing into a closed bucket panics: the drain check
    /// already proved that bucket empty, so the packet would be lost.
    pub fn enqueue<P: Packet<'s, Cx>>(&self, b: BucketId, p: P) {
        self.enqueue_boxed(b, Box::new(p));
    }

    /// [`Schedule::enqueue`] for an already-boxed packet.
    pub fn enqueue_boxed(&self, b: BucketId, p: Box<dyn Packet<'s, Cx>>) {
        let bucket = &self.buckets[b.0];
        #[cfg(debug_assertions)]
        if bucket.state.load(Ordering::SeqCst) == CLOSED {
            panic!(
                "packet `{}` enqueued to closed bucket `{}`",
                p.name(),
                bucket.name
            );
        }
        bucket.queue.push(p);
    }

    /// The open→close span of `b`; zero until `b` has closed.
    pub fn span(&self, b: BucketId) -> Duration {
        Duration::from_nanos(self.buckets[b.0].span_ns.load(Ordering::Acquire))
    }

    /// The name `b` was declared with.
    pub fn bucket_name(&self, b: BucketId) -> &'static str {
        self.buckets[b.0].name
    }

    /// Runs the schedule to completion.
    ///
    /// The caller's thread drives packets with context `main`; each
    /// entry of `helpers` staffs one additional scoped worker thread.
    /// With no helpers everything runs inline on the caller — packets
    /// in enqueue order, buckets in declaration order — so a serial
    /// schedule *is* the sequential algorithm, not a simulation of it.
    pub fn run(&self, main: &mut Cx, helpers: &mut [Cx]) {
        if self.buckets.is_empty() {
            return;
        }
        self.open_bucket(0);
        if helpers.is_empty() {
            self.drive(0, main);
            return;
        }
        std::thread::scope(|scope| {
            for (i, cx) in helpers.iter_mut().enumerate() {
                let sched = &*self;
                scope.spawn(move || sched.drive(i + 1, cx));
            }
            self.drive(0, main);
        });
    }

    /// Worker loop: drain the open bucket, advance when provably done.
    ///
    /// Panic-safe: an unwinding worker releases its in-flight slot and
    /// raises [`Schedule::failed`] so its peers return instead of
    /// spinning on a bucket that can no longer drain.  A panicking
    /// packet therefore surfaces from [`Schedule::run`] — rethrown by
    /// the thread scope if it died on a helper — rather than wedging
    /// the schedule, which is what the collector's supervisor needs to
    /// catch it and abort the cycle.
    fn drive(&self, worker: usize, cx: &mut Cx) {
        /// Flags the schedule failed if dropped during a panic.
        struct FailFlag<'f>(&'f AtomicBool);
        impl Drop for FailFlag<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::SeqCst);
                }
            }
        }
        let _fail = FailFlag(&self.failed);
        let mut backoff = Backoff::new();
        loop {
            if self.failed.load(Ordering::SeqCst) {
                return;
            }
            let b = self.current.load(Ordering::SeqCst);
            if b >= self.buckets.len() {
                return;
            }
            let bucket = &self.buckets[b];
            // Claim an in-flight slot *before* looking at the queue so
            // the drain check (`empty ∧ in_flight = 0`) is conservative.
            let prev = bucket.in_flight.fetch_add(1, Ordering::SeqCst);
            if bucket.serial && prev > 0 {
                bucket.in_flight.fetch_sub(1, Ordering::SeqCst);
                if bucket.overlap_with_next && self.drive_window(worker, b, cx) {
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
                continue;
            }
            // FIFO end: packets run in enqueue order when serial.
            match bucket.queue.steal() {
                Some(p) => {
                    let _slot = InFlight(&bucket.in_flight);
                    p.run(worker, cx, self);
                    drop(_slot);
                    backoff.reset();
                }
                None => {
                    bucket.in_flight.fetch_sub(1, Ordering::SeqCst);
                    if self.try_advance(b) {
                        backoff.reset();
                    } else if bucket.overlap_with_next && self.drive_window(worker, b, cx) {
                        // The earliest bucket is empty but unclosable
                        // (its producers or drained hook say wait):
                        // spill into the open successors of its overlap
                        // group instead of idling.
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    /// Runs at most one packet from the open successors of overlappable
    /// bucket `b` (earliest first).  Returns whether a packet ran.
    ///
    /// Only buckets reached through an unbroken `overlap_with_next`
    /// chain are eligible — those are provably OPEN while `b` is, so
    /// this never runs a packet from a pending (unopened) bucket.
    fn drive_window(&self, worker: usize, b: usize, cx: &mut Cx) -> bool {
        let mut i = b;
        while self.buckets[i].overlap_with_next {
            i += 1;
            let bucket = &self.buckets[i];
            if bucket.state.load(Ordering::SeqCst) != OPEN {
                break;
            }
            let prev = bucket.in_flight.fetch_add(1, Ordering::SeqCst);
            if bucket.serial && prev > 0 {
                // The predecessor's lifetime token (or a running
                // packet) holds the serial gate shut.
                bucket.in_flight.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            match bucket.queue.steal() {
                Some(p) => {
                    let _slot = InFlight(&bucket.in_flight);
                    p.run(worker, cx, self);
                    return true;
                }
                None => {
                    bucket.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        false
    }

    /// Attempts to close bucket `b` and open its successor.  Returns
    /// true when the caller made progress (closed or refilled).
    fn try_advance(&self, b: usize) -> bool {
        let bucket = &self.buckets[b];
        // Cheap pre-check outside the lock.
        if !bucket.queue.is_empty() || bucket.in_flight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        let _adv = self.advance.lock();
        // Someone else may have advanced (or refilled) while we waited.
        if self.current.load(Ordering::SeqCst) != b {
            return false;
        }
        if !bucket.queue.is_empty() || bucket.in_flight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        // Queue empty and nothing running: ask the bucket's closing
        // condition (default: empty ⇒ done).
        match bucket.drained.as_ref().map_or(Drained::Close, |d| d()) {
            Drained::Refill(packets) => {
                for p in packets {
                    bucket.queue.push(p);
                }
                true
            }
            Drained::Wait => false,
            Drained::Close => {
                // The hook may itself have observed late work (it runs
                // under the advance lock, but mutator-fed queues change
                // underneath it); re-verify before committing.
                if !bucket.queue.is_empty() || bucket.in_flight.load(Ordering::SeqCst) != 0 {
                    return false;
                }
                let span = bucket
                    .opened_at
                    .lock()
                    .expect("closing a bucket that never opened")
                    .elapsed();
                bucket
                    .span_ns
                    .store(span.as_nanos() as u64, Ordering::Release);
                bucket.state.store(CLOSED, Ordering::SeqCst);
                if let Some(f) = &bucket.on_close {
                    f(span);
                }
                let next = b + 1;
                if bucket.overlap_with_next {
                    // The successor opened with us and has been holding
                    // our lifetime token; release it instead of opening.
                    self.buckets[next].in_flight.fetch_sub(1, Ordering::SeqCst);
                } else if next < self.buckets.len() {
                    self.open_bucket(next);
                }
                // Publish the new position only after the next bucket's
                // on_open ran, so its packets observe the hook's effects.
                self.current.store(next, Ordering::SeqCst);
                true
            }
        }
    }

    fn open_bucket(&self, b: usize) {
        let bucket = &self.buckets[b];
        if bucket.overlap_with_next {
            // Lifetime token: deposited before either bucket opens, so
            // the successor is unclosable for our whole open lifetime.
            self.buckets[b + 1].in_flight.fetch_add(1, Ordering::SeqCst);
        }
        // Stamp the clock before on_open so the span covers the hook
        // (phase-begin events are part of the phase they announce).
        *bucket.opened_at.lock() = Some(Instant::now());
        bucket.state.store(OPEN, Ordering::SeqCst);
        if let Some(f) = &bucket.on_open {
            f();
        }
        if bucket.overlap_with_next {
            // Chain-open the rest of the overlap group; on_open hooks
            // therefore run in declaration order.
            self.open_bucket(b + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Test context: a per-worker tally.
    #[derive(Default)]
    struct Tally {
        ran: usize,
    }

    /// A packet that bumps a shared counter and the worker tally.
    struct Count {
        hits: Arc<AtomicUsize>,
    }
    impl<'s> Packet<'s, Tally> for Count {
        fn name(&self) -> &'static str {
            "count"
        }
        fn run(self: Box<Self>, _w: usize, cx: &mut Tally, _s: &Schedule<'s, Tally>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            cx.ran += 1;
        }
    }

    /// A packet that appends its tag to a shared order log.
    struct Tag {
        tag: usize,
        log: Arc<Mutex<Vec<usize>>>,
    }
    impl<'s> Packet<'s, Tally> for Tag {
        fn name(&self) -> &'static str {
            "tag"
        }
        fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, _s: &Schedule<'s, Tally>) {
            self.log.lock().push(self.tag);
        }
    }

    /// A packet that panics when run.
    struct Boom;
    impl<'s> Packet<'s, Tally> for Boom {
        fn name(&self) -> &'static str {
            "boom"
        }
        fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, _s: &Schedule<'s, Tally>) {
            panic!("injected packet panic");
        }
    }

    /// Whichever worker takes the poisoned packet, the panic must
    /// surface from `run` (rethrown by the thread scope if a helper
    /// died) while the surviving workers stop driving — not deadlock
    /// behind the dead worker's leaked in-flight slot.
    #[test]
    fn panicking_packet_propagates_instead_of_wedging_the_pool() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..8 {
            let hits = Arc::new(AtomicUsize::new(0));
            let mut sched: Schedule<Tally> = Schedule::new();
            let b = sched.add_bucket("work");
            for _ in 0..4 {
                sched.enqueue(
                    b,
                    Count {
                        hits: Arc::clone(&hits),
                    },
                );
            }
            sched.enqueue(b, Boom);
            let mut main = Tally::default();
            let mut helpers = [Tally::default(), Tally::default(), Tally::default()];
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sched.run(&mut main, &mut helpers);
            }));
            assert!(r.is_err(), "packet panic must escape the schedule");
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn serial_schedule_runs_packets_in_bucket_then_fifo_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b0 = sched.add_serial_bucket("first");
        let b1 = sched.add_serial_bucket("second");
        // Enqueue out of bucket order: bucket order must still win.
        sched.enqueue(
            b1,
            Tag {
                tag: 20,
                log: Arc::clone(&log),
            },
        );
        sched.enqueue(
            b0,
            Tag {
                tag: 10,
                log: Arc::clone(&log),
            },
        );
        sched.enqueue(
            b0,
            Tag {
                tag: 11,
                log: Arc::clone(&log),
            },
        );
        sched.enqueue(
            b1,
            Tag {
                tag: 21,
                log: Arc::clone(&log),
            },
        );
        sched.run(&mut Tally::default(), &mut []);
        assert_eq!(*log.lock(), vec![10, 11, 20, 21]);
    }

    #[test]
    fn follow_on_packets_extend_their_own_bucket() {
        /// Enqueues a `Tag` into its own bucket while running.
        struct Spawner {
            bucket: BucketId,
            log: Arc<Mutex<Vec<usize>>>,
        }
        impl<'s> Packet<'s, Tally> for Spawner {
            fn name(&self) -> &'static str {
                "spawner"
            }
            fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, s: &Schedule<'s, Tally>) {
                self.log.lock().push(1);
                s.enqueue(
                    self.bucket,
                    Tag {
                        tag: 2,
                        log: Arc::clone(&self.log),
                    },
                );
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b0 = sched.add_serial_bucket("grows");
        let b1 = sched.add_serial_bucket("after");
        sched.enqueue(
            b0,
            Spawner {
                bucket: b0,
                log: Arc::clone(&log),
            },
        );
        sched.enqueue(
            b1,
            Tag {
                tag: 3,
                log: Arc::clone(&log),
            },
        );
        sched.run(&mut Tally::default(), &mut []);
        assert_eq!(*log.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn drained_hook_can_refill_then_close() {
        let hits = Arc::new(AtomicUsize::new(0));
        let rounds = Arc::new(AtomicUsize::new(0));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b = sched.add_bucket("refilled");
        {
            let hits = Arc::clone(&hits);
            let rounds = Arc::clone(&rounds);
            sched.on_drained(b, move || {
                if rounds.fetch_add(1, Ordering::SeqCst) < 3 {
                    Drained::Refill(vec![Box::new(Count {
                        hits: Arc::clone(&hits),
                    })])
                } else {
                    Drained::Close
                }
            });
        }
        sched.enqueue(
            b,
            Count {
                hits: Arc::clone(&hits),
            },
        );
        sched.run(&mut Tally::default(), &mut []);
        // 1 seed + 3 refills, and the hook saw the bucket drained 4 times.
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(rounds.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn drained_hook_wait_delays_close_until_it_agrees() {
        let polls = Arc::new(AtomicUsize::new(0));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b = sched.add_bucket("waits");
        {
            let polls = Arc::clone(&polls);
            sched.on_drained(b, move || {
                if polls.fetch_add(1, Ordering::SeqCst) < 5 {
                    Drained::Wait
                } else {
                    Drained::Close
                }
            });
        }
        sched.run(&mut Tally::default(), &mut []);
        assert!(polls.load(Ordering::SeqCst) >= 6);
    }

    #[test]
    fn open_and_close_hooks_fire_once_per_bucket_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b0 = sched.add_bucket("a");
        let b1 = sched.add_bucket("b");
        for (i, b) in [b0, b1].into_iter().enumerate() {
            let l = Arc::clone(&log);
            sched.on_open(b, move || l.lock().push(i * 10));
            let l = Arc::clone(&log);
            sched.on_close(b, move |_| l.lock().push(i * 10 + 1));
        }
        sched.run(&mut Tally::default(), &mut []);
        assert_eq!(*log.lock(), vec![0, 1, 10, 11]);
    }

    #[test]
    fn bucket_span_covers_packet_runtime() {
        struct Sleep;
        impl<'s> Packet<'s, Tally> for Sleep {
            fn name(&self) -> &'static str {
                "sleep"
            }
            fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, _s: &Schedule<'s, Tally>) {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let mut sched: Schedule<Tally> = Schedule::new();
        let b = sched.add_bucket("slept");
        sched.enqueue(b, Sleep);
        sched.run(&mut Tally::default(), &mut []);
        assert!(sched.span(b) >= Duration::from_millis(5));
    }

    #[test]
    fn parallel_run_executes_every_packet_exactly_once() {
        const N: usize = 4;
        const PACKETS: usize = 200;
        let hits = Arc::new(AtomicUsize::new(0));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b = sched.add_bucket("fanout");
        for _ in 0..PACKETS {
            sched.enqueue(
                b,
                Count {
                    hits: Arc::clone(&hits),
                },
            );
        }
        let mut main = Tally::default();
        let mut helpers: Vec<Tally> = (1..N).map(|_| Tally::default()).collect();
        sched.run(&mut main, &mut helpers);
        assert_eq!(hits.load(Ordering::SeqCst), PACKETS);
        // Per-worker contexts saw each run exactly once too.
        let total: usize = main.ran + helpers.iter().map(|t| t.ran).sum::<usize>();
        assert_eq!(total, PACKETS);
    }

    #[test]
    fn serial_bucket_admits_one_packet_at_a_time() {
        /// Asserts it is never concurrent with another `Exclusive`.
        struct Exclusive {
            live: Arc<AtomicUsize>,
            peak: Arc<AtomicUsize>,
        }
        impl<'s> Packet<'s, Tally> for Exclusive {
            fn name(&self) -> &'static str {
                "exclusive"
            }
            fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, _s: &Schedule<'s, Tally>) {
                let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
                self.peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(200));
                self.live.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b = sched.add_serial_bucket("one-lane");
        for _ in 0..16 {
            sched.enqueue(
                b,
                Exclusive {
                    live: Arc::clone(&live),
                    peak: Arc::clone(&peak),
                },
            );
        }
        let mut main = Tally::default();
        let mut helpers: Vec<Tally> = (1..4).map(|_| Tally::default()).collect();
        sched.run(&mut main, &mut helpers);
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn overlap_group_opens_together_and_closes_in_declaration_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sched: Schedule<Tally> = Schedule::new();
        let b0 = sched.add_bucket("cards");
        let b1 = sched.add_bucket("roots");
        let b2 = sched.add_bucket("trace");
        sched.overlap_with_next(b0);
        sched.overlap_with_next(b1);
        for (i, b) in [b0, b1, b2].into_iter().enumerate() {
            let l = Arc::clone(&log);
            sched.on_open(b, move || l.lock().push(i * 10));
            let l = Arc::clone(&log);
            sched.on_close(b, move |_| l.lock().push(i * 10 + 1));
        }
        sched.run(&mut Tally::default(), &mut []);
        // All three open as one group (in declaration order), then
        // close strictly in declaration order.
        assert_eq!(*log.lock(), vec![0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn overlap_successor_cannot_close_while_predecessor_is_open() {
        /// Sleeps with the producer bucket open, then publishes a late
        /// packet into the (already open, token-pinned) consumer.
        struct LateProducer {
            consumer: BucketId,
            hits: Arc<AtomicUsize>,
        }
        impl<'s> Packet<'s, Tally> for LateProducer {
            fn name(&self) -> &'static str {
                "late-producer"
            }
            fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, s: &Schedule<'s, Tally>) {
                assert!(s.predecessors_open(self.consumer));
                std::thread::sleep(Duration::from_millis(20));
                // Without the lifetime token an idle helper would have
                // closed the empty consumer bucket by now and this
                // enqueue would hit a closed bucket.
                s.enqueue(
                    self.consumer,
                    Count {
                        hits: Arc::clone(&self.hits),
                    },
                );
            }
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sched: Schedule<Tally> = Schedule::new();
        let producer = sched.add_bucket("producer");
        let consumer = sched.add_bucket("consumer");
        sched.overlap_with_next(producer);
        for (i, b) in [producer, consumer].into_iter().enumerate() {
            let l = Arc::clone(&log);
            sched.on_close(b, move |_| l.lock().push(i));
        }
        sched.enqueue(
            producer,
            LateProducer {
                consumer,
                hits: Arc::clone(&hits),
            },
        );
        let mut main = Tally::default();
        let mut helpers: Vec<Tally> = (1..4).map(|_| Tally::default()).collect();
        sched.run(&mut main, &mut helpers);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "late packet must run");
        assert_eq!(*log.lock(), vec![0, 1], "producer closes first");
    }

    #[test]
    fn overlap_window_runs_successor_packets_while_predecessor_busy() {
        /// Blocks until a consumer packet (in the *later* bucket of the
        /// overlap group) has run — only possible if workers drain the
        /// successor while this producer is still in flight.
        struct Rendezvous {
            seen: Arc<AtomicUsize>,
        }
        impl<'s> Packet<'s, Tally> for Rendezvous {
            fn name(&self) -> &'static str {
                "rendezvous"
            }
            fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, _s: &Schedule<'s, Tally>) {
                let start = Instant::now();
                while self.seen.load(Ordering::SeqCst) == 0 {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "consumer packet never ran concurrently with the producer"
                    );
                    std::thread::yield_now();
                }
            }
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let mut sched: Schedule<Tally> = Schedule::new();
        let producer = sched.add_bucket("producer");
        let consumer = sched.add_bucket("consumer");
        sched.overlap_with_next(producer);
        sched.enqueue(
            producer,
            Rendezvous {
                seen: Arc::clone(&seen),
            },
        );
        sched.enqueue(
            consumer,
            Count {
                hits: Arc::clone(&seen),
            },
        );
        let mut main = Tally::default();
        let mut helpers = [Tally::default()];
        sched.run(&mut main, &mut helpers);
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "closed bucket")]
    fn enqueue_to_closed_bucket_panics_in_debug() {
        let mut sched: Schedule<Tally> = Schedule::new();
        let b0 = sched.add_bucket("closes");
        let b1 = sched.add_bucket("tail");
        /// Enqueues into the already-closed first bucket.
        struct Late {
            closed: BucketId,
        }
        impl<'s> Packet<'s, Tally> for Late {
            fn name(&self) -> &'static str {
                "late"
            }
            fn run(self: Box<Self>, _w: usize, _cx: &mut Tally, s: &Schedule<'s, Tally>) {
                s.enqueue(
                    self.closed,
                    Late {
                        closed: self.closed,
                    },
                );
            }
        }
        sched.enqueue(b1, Late { closed: b0 });
        sched.run(&mut Tally::default(), &mut []);
    }
}
