//! Cycle inspector: runs a benchmark under a chosen collector variant and
//! prints a per-phase breakdown of every collection cycle — the tool used
//! to calibrate this reproduction against the paper's Figures 10–15.
//!
//! Usage:
//! `cargo run --release --example cycle_inspector -- [workload] [gen|nogen|aging] [scale]`

use otf_gengc::gc::{CycleKind, GcConfig};
use otf_gengc::workloads::driver::run_workload;
use otf_gengc::workloads::{Anagram, Compress, Db, Jack, Javac, Jess, RayTracer, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("jess");
    let variant = args.get(2).map(String::as_str).unwrap_or("gen");
    let scale: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let w: Box<dyn Workload> = match name {
        "anagram" => Box::new(Anagram::new().scaled(scale)),
        "mtrt" => Box::new(RayTracer::mtrt().scaled(scale)),
        "compress" => Box::new(Compress::new().scaled(scale)),
        "db" => Box::new(Db::new().scaled(scale)),
        "jess" => Box::new(Jess::new().scaled(scale)),
        "javac" => Box::new(Javac::new().scaled(scale)),
        "jack" => Box::new(Jack::new().scaled(scale)),
        other => panic!("unknown workload {other}"),
    };
    let cfg = match variant {
        "gen" => GcConfig::generational(),
        "nogen" => GcConfig::non_generational(),
        "aging" => GcConfig::aging(4),
        other => panic!("unknown variant {other} (gen|nogen|aging)"),
    };

    let r = run_workload(w.as_ref(), cfg, 42);
    println!(
        "{} under {variant}: elapsed {:?}, GC active {:.1}%, allocated {} MB\n",
        w.name(),
        r.elapsed,
        r.percent_gc_active(),
        r.stats.bytes_allocated >> 20
    );
    println!(
        "{:>3} {:>7} {:>8} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>7} {:>7}",
        "#",
        "kind",
        "dur ms",
        "init",
        "hshk",
        "cards",
        "sweep",
        "traced",
        "igen",
        "freed",
        "usedMB",
        "pages"
    );
    for (i, c) in r.stats.cycles.iter().enumerate() {
        println!(
            "{:>3} {:>7} {:>8.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>8} {:>8} {:>8} {:>7.1} {:>7}",
            i,
            c.kind.to_string(),
            c.duration.as_secs_f64() * 1e3,
            c.phases.init.as_secs_f64() * 1e3,
            c.phases.handshakes.as_secs_f64() * 1e3,
            c.phases.cards.as_secs_f64() * 1e3,
            c.phases.sweep.as_secs_f64() * 1e3,
            c.objects_traced,
            c.intergen_objects,
            c.objects_freed,
            c.used_before as f64 / 1048576.0,
            c.pages_touched,
        );
    }
    for kind in [CycleKind::Partial, CycleKind::Full] {
        if let Some(ms) = r.stats.avg_cycle_ms(kind) {
            println!(
                "\navg {kind}: {ms:.2} ms, {:.0} objects traced, {:.0} freed, {:.0} pages",
                r.stats.avg_objects_traced(kind).unwrap_or(0.0),
                r.stats.avg_objects_freed(kind).unwrap_or(0.0),
                r.stats.avg_pages_touched(kind).unwrap_or(0.0)
            );
        }
    }
}
