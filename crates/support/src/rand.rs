//! A small, seedable, deterministic PRNG: SplitMix64 seeding into
//! xoshiro256++ (Blackman & Vigna), behind the minimal `rand`-shaped API
//! the workloads and tests consume ([`SeedableRng`], [`RngExt`],
//! [`rngs::StdRng`]).
//!
//! Not cryptographic — the workloads need reproducible distributions, not
//! secrecy.  Every stream is fully determined by its `u64` seed, so
//! `--seed N` reproduces a run bit-for-bit on any platform.

/// SplitMix64 step: the standard seeding sequence for xoshiro (fills the
/// state from a single `u64` so that no seed yields a degenerate state).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The derived sampling methods used by the workloads.  Blanket-implemented
/// for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (half-open, `start < end` required).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

/// Unbiased uniform draw from `[0, bound)` by rejection sampling.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject the final partial copy of [0, bound) in u64 space.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// xoshiro256++ — the workspace's standard generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256PlusPlus {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The default workload generator: xoshiro256++.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the all-SplitMix64(0) seeding of xoshiro256++,
        // pinned so cross-platform determinism regressions are caught.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = StdRng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().any(|&x| x != 0), "degenerate zero state");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: usize = r.random_range(3..17);
            assert!((3..17).contains(&v));
        }
        // Single-element range is always that element.
        assert_eq!(r.random_range(5..6u32), 5);
        let v: i64 = r.random_range(-10..-3);
        assert!((-10..-3).contains(&v));
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _: usize = r.random_range(5..5);
    }
}
