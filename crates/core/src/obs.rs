//! Pause-time observability: latency histograms for every
//! latency-bearing mutator path, and a bounded ring of structured GC
//! events drainable as JSONL.
//!
//! The paper's headline property is that an on-the-fly collector bounds
//! mutator pauses by **handshake response time**, not heap size.  This
//! module is how the reproduction measures that claim:
//!
//! * [`Obs::pause`] — every GC-induced mutator pause: the
//!   [`cooperate`](crate::Mutator::cooperate) slow path (adopting a
//!   posted handshake, including third-handshake root marking) and
//!   allocation stalls (blocked on a full collection).
//! * [`Obs::handshake`] — handshake **response latency**: from the
//!   collector's `postHandshake` to each mutator's adoption in
//!   `cooperate` (the quantity §7 argues stays small).
//! * [`Obs::alloc_stall`] — allocation stalls alone (also folded into
//!   `pause`), the only path where a mutator waits for the collector.
//! * [`Obs::barrier_slow`] — write-barrier slow-path hits (barriers that
//!   took a graying branch rather than a plain store + card mark).
//!
//! Histogram recording is always on: the record path is lock-free and
//! allocation-free (see [`otf_support::hist`]) and only runs on paths
//! that are already slow (a handshake transition, a blocking
//! allocation), never on the per-store barrier fast path, where only a
//! single relaxed counter increment is added to the *graying* branches.
//!
//! Event tracing is off by default.  [`Obs::event`] costs exactly one
//! predictable branch on a plain `bool` loaded from the `Obs` struct
//! when disabled; when enabled (config flag or the `OTF_GC_TRACE`
//! environment variable) events go into a fixed ring of 2¹⁴ slots via a
//! wait-free claimed-slot protocol (`fetch_add` on the head, fields
//! written, then a sequence stamp released).  The ring keeps the most
//! recent events; draining skips any slot whose stamp does not match,
//! so a drain racing active recording yields only whole events.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Saturating nanoseconds of a `Duration` (for histograms and events).
#[inline]
pub(crate) fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

use otf_support::hist::Histogram;

use crate::state::Status;
use crate::stats::CycleKind;

/// Phase identifiers used in [`EventKind::PhaseBegin`]/`PhaseEnd` events
/// (the `a` field).
pub mod phase {
    /// `InitFullCollection` (full collections of the generational modes).
    pub const INIT: u64 = 0;
    /// A handshake window (posted status → all mutators responded).
    pub const HANDSHAKE: u64 = 1;
    /// Dirty-card scanning (`ClearCards`).
    pub const CARDS: u64 = 2;
    /// Transitive marking.
    pub const TRACE: u64 = 3;
    /// The sweep pass.
    pub const SWEEP: u64 = 4;
    /// Global-root marking (between the third post and its wait).
    pub const ROOTS: u64 = 5;

    /// Human-readable phase name (for the JSONL trace).
    pub fn name(p: u64) -> &'static str {
        match p {
            INIT => "init",
            HANDSHAKE => "handshake",
            CARDS => "cards",
            TRACE => "trace",
            SWEEP => "sweep",
            ROOTS => "roots",
            _ => "unknown",
        }
    }
}

/// What a [`GcEvent`] describes.  The meaning of the event's `a`/`b`
/// payload words depends on the kind (documented per variant).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// A collection cycle began.  `a` = 0 for partial, 1 for full.
    CycleBegin = 0,
    /// A collection cycle finished.  `a` = 0/1 as above, `b` = cycle
    /// duration in nanoseconds.
    CycleEnd = 1,
    /// A collector phase began.  `a` = phase id (see [`phase`]).
    PhaseBegin = 2,
    /// A collector phase finished.  `a` = phase id, `b` = phase duration
    /// in nanoseconds.
    PhaseEnd = 3,
    /// The collector posted a handshake.  `a` = posted status
    /// (0 = async, 1 = sync1, 2 = sync2).
    HandshakePost = 4,
    /// A mutator adopted a posted handshake in `cooperate`.  `a` = the
    /// adopted status, `b` = response latency in nanoseconds.
    HandshakeAck = 5,
    /// A `ClearCards` pass finished.  `a` = dirty cards found, `b` =
    /// cards scanned.
    CardClear = 6,
    /// Sweep progress.  `a` = granules processed so far, `b` = the
    /// frontier granule (total to process).
    SweepProgress = 7,
    /// The collector supervisor caught a panic and began the safe
    /// cycle-abort + restart protocol (DESIGN.md §4.8).  `a` = the open
    /// schedule bucket when the panic unwound (see
    /// [`bucket_label`](crate::shared::bucket_label); 0 = none).
    RecoveryBegin = 8,
    /// Recovery finished and the collector is about to respawn.  `a` =
    /// restarts consumed so far (including this one), `b` = recovery
    /// duration in nanoseconds.
    RecoveryEnd = 9,
    /// A collection cycle was aborted mid-flight and rolled forward to a
    /// no-op (garbage floats; nothing was freed).  `a` = the open bucket
    /// when the cycle died (0 = none).
    CycleAborted = 10,
}

impl EventKind {
    fn from_word(w: u64) -> EventKind {
        match w {
            0 => EventKind::CycleBegin,
            1 => EventKind::CycleEnd,
            2 => EventKind::PhaseBegin,
            3 => EventKind::PhaseEnd,
            4 => EventKind::HandshakePost,
            5 => EventKind::HandshakeAck,
            6 => EventKind::CardClear,
            8 => EventKind::RecoveryBegin,
            9 => EventKind::RecoveryEnd,
            10 => EventKind::CycleAborted,
            _ => EventKind::SweepProgress,
        }
    }

    fn name(self) -> &'static str {
        match self {
            EventKind::CycleBegin => "cycle_begin",
            EventKind::CycleEnd => "cycle_end",
            EventKind::PhaseBegin => "phase_begin",
            EventKind::PhaseEnd => "phase_end",
            EventKind::HandshakePost => "handshake_post",
            EventKind::HandshakeAck => "handshake_ack",
            EventKind::CardClear => "card_clear",
            EventKind::SweepProgress => "sweep_progress",
            EventKind::RecoveryBegin => "recovery_begin",
            EventKind::RecoveryEnd => "recovery_end",
            EventKind::CycleAborted => "cycle_aborted",
        }
    }
}

fn status_name(s: u64) -> &'static str {
    match s {
        0 => "async",
        1 => "sync1",
        2 => "sync2",
        _ => "unknown",
    }
}

fn cycle_name(k: u64) -> &'static str {
    if k == 0 {
        "partial"
    } else {
        "full"
    }
}

/// One structured GC event from the trace ring.
#[derive(Copy, Clone, Debug)]
pub struct GcEvent {
    /// Nanoseconds since the collector was created.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

impl GcEvent {
    /// The event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let head = format!("{{\"t_ns\":{},\"ev\":\"{}\"", self.t_ns, self.kind.name());
        let tail = match self.kind {
            EventKind::CycleBegin => format!(",\"cycle\":\"{}\"}}", cycle_name(self.a)),
            EventKind::CycleEnd => {
                format!(
                    ",\"cycle\":\"{}\",\"dur_ns\":{}}}",
                    cycle_name(self.a),
                    self.b
                )
            }
            EventKind::PhaseBegin => format!(",\"phase\":\"{}\"}}", phase::name(self.a)),
            EventKind::PhaseEnd => {
                format!(
                    ",\"phase\":\"{}\",\"dur_ns\":{}}}",
                    phase::name(self.a),
                    self.b
                )
            }
            EventKind::HandshakePost => format!(",\"status\":\"{}\"}}", status_name(self.a)),
            EventKind::HandshakeAck => format!(
                ",\"status\":\"{}\",\"latency_ns\":{}}}",
                status_name(self.a),
                self.b
            ),
            EventKind::CardClear => format!(",\"dirty\":{},\"scanned\":{}}}", self.a, self.b),
            EventKind::SweepProgress => {
                format!(",\"granules\":{},\"frontier\":{}}}", self.a, self.b)
            }
            EventKind::RecoveryBegin => {
                format!(",\"bucket\":\"{}\"}}", crate::shared::bucket_label(self.a))
            }
            EventKind::RecoveryEnd => {
                format!(",\"restarts\":{},\"dur_ns\":{}}}", self.a, self.b)
            }
            EventKind::CycleAborted => {
                format!(",\"bucket\":\"{}\"}}", crate::shared::bucket_label(self.a))
            }
        };
        head + &tail
    }
}

/// Ring capacity in events (a power of two).  The ring keeps the most
/// recent `RING_CAP` events; older ones are overwritten.
const RING_CAP: usize = 1 << 14;

/// One ring slot.  `seq` is stored *last* with release ordering and
/// holds `position + 1`; a reader accepts the slot only when the
/// sequence matches the position it expects, so overwritten or
/// in-flight slots are skipped rather than torn.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

#[derive(Debug)]
struct EventRing {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    fn new() -> EventRing {
        EventRing {
            head: AtomicU64::new(0),
            slots: (0..RING_CAP)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    t_ns: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Events pushed out of the ring by newer ones: everything recorded
    /// beyond the ring's capacity has overwritten an older event.
    fn dropped(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(RING_CAP as u64)
    }

    /// Wait-free multi-producer record.
    fn record(&self, t_ns: u64, kind: EventKind, a: u64, b: u64) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[pos as usize & (RING_CAP - 1)];
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(pos + 1, Ordering::Release);
    }

    /// Snapshot of the retained events, oldest first.  Slots being
    /// overwritten concurrently are skipped (sequence mismatch).
    fn drain(&self) -> Vec<GcEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_CAP as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for pos in start..head {
            let slot = &self.slots[pos as usize & (RING_CAP - 1)];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                continue;
            }
            out.push(GcEvent {
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                kind: EventKind::from_word(slot.kind.load(Ordering::Relaxed)),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
        }
        out
    }
}

/// Per-collector-worker observability: phase latency histograms plus a
/// steal counter, one instance per configured GC thread (§4.4).  Worker
/// 0 is the collector thread itself; at `gc_threads = 1` its histograms
/// are the whole story and `steals` stays 0.
#[derive(Debug)]
pub(crate) struct WorkerObs {
    /// Time this worker spent in the mark phase per cycle, in ns.
    pub mark_ns: Histogram,
    /// Time this worker spent in the sweep phase per cycle, in ns.
    pub sweep_ns: Histogram,
    /// Objects this worker obtained by stealing (from a sibling's deque
    /// or the shared gray queue while idle).
    pub steals: AtomicU64,
}

impl WorkerObs {
    fn new() -> WorkerObs {
        WorkerObs {
            mark_ns: Histogram::new(),
            sweep_ns: Histogram::new(),
            steals: AtomicU64::new(0),
        }
    }
}

/// The collector's observability state, owned by `GcShared`.
#[derive(Debug)]
pub(crate) struct Obs {
    /// All GC-induced mutator pauses (cooperate slow path + alloc
    /// stalls), in nanoseconds.
    pub pause: Histogram,
    /// Handshake response latency: `postHandshake` → `cooperate`
    /// adoption, in nanoseconds.
    pub handshake: Histogram,
    /// Allocation stalls: time a mutator spent blocked on a full
    /// collection, in nanoseconds.
    pub alloc_stall: Histogram,
    /// LAB refill latency (chunk acquisition at the refill slow path),
    /// in nanoseconds — recorded in both sweep modes, so sweep work the
    /// lazy back-end moves onto the allocation path shows up in p99.99
    /// comparisons instead of hiding outside the stall histogram.
    pub lab_refill: Histogram,
    /// Write-barrier slow-path hits (graying branches taken).
    pub barrier_slow: AtomicU64,
    /// Handshake-watchdog trips: times a handshake stalled past the
    /// configured threshold and the collector reported instead of hanging
    /// silently.
    pub watchdog_trips: AtomicU64,
    /// Times the supervisor respawned the collector thread after a panic
    /// (DESIGN.md §4.8).
    pub collector_restarts: AtomicU64,
    /// Collection cycles that were aborted mid-flight and rolled forward
    /// to a no-op by the safe abort protocol.
    pub cycles_aborted: AtomicU64,
    /// Duration of each safe cycle-abort (handshake restore + repaint +
    /// epoch finalize), in nanoseconds.
    pub recovery: Histogram,
    /// Per-worker phase histograms and steal counters, one per
    /// configured GC thread.
    pub workers: Vec<WorkerObs>,
    /// Whether event tracing is enabled.  Plain bool fixed at
    /// construction: the disabled cost of [`Obs::event`] is one
    /// predictable load + branch.
    enabled: bool,
    /// Timestamp origin for `t_ns`.
    start: Instant,
    /// When the collector last posted a handshake (ns since `start`).
    hs_posted_ns: AtomicU64,
    ring: EventRing,
}

impl Obs {
    pub(crate) fn new(enabled: bool, gc_threads: usize) -> Obs {
        Obs {
            pause: Histogram::new(),
            handshake: Histogram::new(),
            alloc_stall: Histogram::new(),
            lab_refill: Histogram::new(),
            barrier_slow: AtomicU64::new(0),
            watchdog_trips: AtomicU64::new(0),
            collector_restarts: AtomicU64::new(0),
            cycles_aborted: AtomicU64::new(0),
            recovery: Histogram::new(),
            workers: (0..gc_threads.max(1)).map(|_| WorkerObs::new()).collect(),
            enabled,
            start: Instant::now(),
            hs_posted_ns: AtomicU64::new(0),
            ring: EventRing::new(),
        }
    }

    /// Whether event tracing is on.
    pub(crate) fn tracing_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since collector creation (saturating).
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Emits a trace event.  When tracing is disabled this is a single
    /// predictable load-and-branch.
    #[inline]
    pub(crate) fn event(&self, kind: EventKind, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        self.ring.record(self.now_ns(), kind, a, b);
    }

    /// Collector side: a handshake was posted.  Must be called *before*
    /// the status store so every mutator that observes the new status
    /// also observes a post timestamp at least this fresh.
    pub(crate) fn note_handshake_post(&self, s: Status) {
        self.hs_posted_ns.store(self.now_ns(), Ordering::Relaxed);
        self.event(EventKind::HandshakePost, s as u64, 0);
    }

    /// Mutator side: `cooperate` adopted status `s` after `pause_ns`
    /// nanoseconds of safe-point work.  Records the handshake response
    /// latency (post → now) and the pause itself.
    pub(crate) fn note_handshake_ack(&self, s: Status, pause_ns: u64) {
        let latency = self
            .now_ns()
            .saturating_sub(self.hs_posted_ns.load(Ordering::Relaxed));
        self.handshake.record(latency);
        self.pause.record(pause_ns);
        self.event(EventKind::HandshakeAck, s as u64, latency);
    }

    /// Mutator side: an allocation blocked on a full collection for
    /// `stall_ns` nanoseconds.
    pub(crate) fn note_alloc_stall(&self, stall_ns: u64) {
        self.alloc_stall.record(stall_ns);
        self.pause.record(stall_ns);
    }

    /// Mutator side: a LAB refill acquired its chunk after `ns`
    /// nanoseconds (lazy segment sweep and/or allocator call).
    pub(crate) fn note_lab_refill(&self, ns: u64) {
        self.lab_refill.record(ns);
    }

    /// Worker side: worker `w` finished its share of a mark phase after
    /// `ns` nanoseconds, having stolen `steals` objects.
    pub(crate) fn note_worker_mark(&self, w: usize, ns: u64, steals: u64) {
        let worker = &self.workers[w];
        worker.mark_ns.record(ns);
        worker.steals.fetch_add(steals, Ordering::Relaxed);
    }

    /// Worker side: worker `w` finished its share of a sweep phase after
    /// `ns` nanoseconds.
    pub(crate) fn note_worker_sweep(&self, w: usize, ns: u64) {
        self.workers[w].sweep_ns.record(ns);
    }

    /// Collector side: a cycle began.
    pub(crate) fn note_cycle_begin(&self, kind: CycleKind) {
        self.event(EventKind::CycleBegin, cycle_word(kind), 0);
    }

    /// Collector side: a cycle finished after `dur_ns` nanoseconds.
    pub(crate) fn note_cycle_end(&self, kind: CycleKind, dur_ns: u64) {
        self.event(EventKind::CycleEnd, cycle_word(kind), dur_ns);
    }

    /// The retained trace events, oldest first.
    pub(crate) fn events(&self) -> Vec<GcEvent> {
        self.ring.drain()
    }

    /// Events that were overwritten before they could be drained (the
    /// ring keeps only the most recent 2¹⁴): nonzero means a drained
    /// trace is truncated at its old end.
    pub(crate) fn events_dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Writes the retained events as JSON lines.
    pub(crate) fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for e in self.events() {
            writeln!(w, "{}", e.to_json())?;
        }
        Ok(())
    }
}

fn cycle_word(kind: CycleKind) -> u64 {
    match kind {
        CycleKind::Partial => 0,
        CycleKind::Full => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let obs = Obs::new(false, 1);
        obs.event(EventKind::CycleBegin, 1, 0);
        obs.note_cycle_begin(CycleKind::Full);
        assert!(obs.events().is_empty());
        // Histograms still record regardless of the tracing flag.
        obs.note_alloc_stall(500);
        assert_eq!(obs.alloc_stall.count(), 1);
        assert_eq!(obs.pause.count(), 1);
    }

    #[test]
    fn enabled_ring_round_trips_events() {
        let obs = Obs::new(true, 1);
        obs.note_cycle_begin(CycleKind::Full);
        obs.event(EventKind::PhaseBegin, phase::SWEEP, 0);
        obs.event(EventKind::PhaseEnd, phase::SWEEP, 1234);
        obs.note_cycle_end(CycleKind::Full, 9999);
        let evs = obs.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].kind, EventKind::CycleBegin);
        assert_eq!(evs[0].a, 1);
        assert_eq!(evs[2].b, 1234);
        assert_eq!(evs[3].kind, EventKind::CycleEnd);
        // Timestamps never go backwards for single-threaded recording.
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn ring_keeps_most_recent_on_overflow() {
        let obs = Obs::new(true, 1);
        let total = RING_CAP as u64 + 100;
        for i in 0..total {
            obs.event(EventKind::SweepProgress, i, total);
        }
        let evs = obs.events();
        assert_eq!(evs.len(), RING_CAP);
        assert_eq!(evs.first().unwrap().a, 100);
        assert_eq!(evs.last().unwrap().a, total - 1);
        // The 100 overwritten events are accounted, not silently lost.
        assert_eq!(obs.events_dropped(), 100);
    }

    #[test]
    fn no_drops_below_capacity() {
        let obs = Obs::new(true, 1);
        for i in 0..100 {
            obs.event(EventKind::SweepProgress, i, 100);
        }
        assert_eq!(obs.events_dropped(), 0);
    }

    #[test]
    fn handshake_latency_measured_from_post() {
        let obs = Obs::new(false, 1);
        obs.note_handshake_post(Status::Sync1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.note_handshake_ack(Status::Sync1, 10);
        assert_eq!(obs.handshake.count(), 1);
        assert!(
            obs.handshake.max() >= 1_000_000,
            "latency {} ns should cover the 2 ms sleep",
            obs.handshake.max()
        );
        assert_eq!(obs.pause.max(), 10);
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let obs = Obs::new(true, 1);
        obs.note_handshake_post(Status::Sync2);
        obs.note_handshake_ack(Status::Sync2, 77);
        obs.event(EventKind::CardClear, 5, 300);
        let mut buf = Vec::new();
        obs.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"t_ns\":"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
            // Balanced quotes: an even count of '"'.
            assert_eq!(line.matches('"').count() % 2, 0);
        }
        assert!(lines[0].contains("\"ev\":\"handshake_post\""));
        assert!(lines[0].contains("\"status\":\"sync2\""));
        assert!(lines[1].contains("\"latency_ns\":"));
        assert!(lines[2].contains("\"dirty\":5"));
    }

    #[test]
    fn recovery_events_round_trip() {
        let obs = Obs::new(true, 1);
        obs.event(EventKind::RecoveryBegin, 6, 0);
        obs.event(EventKind::CycleAborted, 6, 0);
        obs.event(EventKind::RecoveryEnd, 1, 1234);
        let evs = obs.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::RecoveryBegin);
        assert_eq!(evs[1].kind, EventKind::CycleAborted);
        assert_eq!(evs[2].kind, EventKind::RecoveryEnd);
        assert!(evs[0].to_json().contains("\"ev\":\"recovery_begin\""));
        assert!(evs[1].to_json().contains("\"bucket\":\"trace\""));
        assert!(evs[2].to_json().contains("\"restarts\":1"));
        assert!(evs[2].to_json().contains("\"dur_ns\":1234"));
    }

    #[test]
    fn concurrent_recording_yields_whole_events() {
        let obs = std::sync::Arc::new(Obs::new(true, 1));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let obs = std::sync::Arc::clone(&obs);
                s.spawn(move || {
                    for i in 0..5000u64 {
                        obs.event(EventKind::SweepProgress, t, i);
                    }
                });
            }
        });
        let evs = obs.events();
        assert_eq!(evs.len(), RING_CAP.min(20_000));
        // Every drained event is one that some thread actually wrote.
        assert!(evs.iter().all(|e| e.a < 4 && e.b < 5000));
    }
}
