//! End-to-end tests for the pause-time observability pipeline: every
//! `cooperate()` that adopts a handshake during a collection must land in
//! the handshake/pause histograms, the trace ring must tell a coherent
//! story (cycles begin and end, handshakes are posted and acked), and
//! `Gc::shutdown` must return statistics that include the final cycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use otf_gengc::gc::{phase, EventKind, Gc, GcConfig};

fn tiny(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(4 << 20)
        .with_initial_heap(1 << 20)
        .with_young_size(64 << 10)
}

/// Runs `cycles` blocking full collections while one mutator thread does
/// nothing but `cooperate()` — so every handshake of every cycle is
/// answered by a live (never parked, never allocating) mutator — and
/// returns the Gc for inspection.
fn run_cooperating_cycles(cfg: GcConfig, cycles: usize) -> Gc {
    let gc = Gc::new(tiny(cfg));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut m = gc.mutator();
        let stop = &stop;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                m.cooperate();
                std::hint::spin_loop();
            }
        });
        for _ in 0..cycles {
            gc.collect_full_blocking();
        }
        stop.store(true, Ordering::Relaxed);
    });
    gc
}

#[test]
fn every_cooperate_during_a_cycle_lands_in_the_histograms() {
    let gc = run_cooperating_cycles(GcConfig::generational(), 2);
    let stats = gc.stats();

    // Each full cycle posts three handshakes (Sync1, Sync2, Async) and the
    // cooperating mutator acks each one exactly once.
    assert!(
        stats.handshake.count() >= 6,
        "expected >= 6 handshake acks for 2 full cycles, got {}",
        stats.handshake.count()
    );
    // Every ack is also a recorded mutator pause.
    assert!(
        stats.pause.count() >= 6,
        "expected >= 6 pauses, got {}",
        stats.pause.count()
    );
    assert!(stats.max_pause() > Duration::ZERO);
    assert_eq!(stats.pause_quantile(1.0), stats.max_pause());

    // Quantiles must be monotone in q, and the handshake histogram's
    // latencies are real (post -> adoption takes nonzero time).
    let qs = [0.5, 0.9, 0.99, 0.999, 1.0];
    for w in qs.windows(2) {
        assert!(
            stats.pause_quantile(w[0]) <= stats.pause_quantile(w[1]),
            "pause quantiles not monotone at q={} vs q={}",
            w[0],
            w[1]
        );
        assert!(
            stats.handshake_quantile(w[0]) <= stats.handshake_quantile(w[1]),
            "handshake quantiles not monotone at q={} vs q={}",
            w[0],
            w[1]
        );
    }
    assert!(stats.handshake_quantile(1.0) > Duration::ZERO);
}

#[test]
fn trace_ring_records_a_coherent_cycle_story() {
    let gc = run_cooperating_cycles(GcConfig::generational().with_event_trace(true), 2);
    assert!(gc.tracing_enabled());

    let events = gc.events();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();

    assert!(count(EventKind::CycleBegin) >= 2, "events: {events:?}");
    assert!(count(EventKind::CycleEnd) >= 2);
    // 3 handshakes per full cycle, each posted once and acked by the one
    // cooperating mutator.
    assert!(count(EventKind::HandshakePost) >= 6);
    assert!(count(EventKind::HandshakeAck) >= 6);
    // Begin/end pairing and timestamps are sane.
    assert_eq!(count(EventKind::PhaseBegin), count(EventKind::PhaseEnd));
    for w in events.windows(2) {
        assert!(w[0].t_ns <= w[1].t_ns, "events out of order: {w:?}");
    }

    // The JSONL form is one object per line with the documented keys.
    let mut buf = Vec::new();
    gc.write_events_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), events.len());
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(
            line.contains("\"t_ns\":") && line.contains("\"ev\":"),
            "{line}"
        );
    }
}

#[test]
fn handshake_posts_and_nested_work_land_inside_handshake_windows() {
    // Every handshake is posted inside an open HANDSHAKE phase window
    // (the old cycle posted sync2 *before* emitting the window's
    // PhaseBegin, landing the post — and the acks — outside any phase),
    // and the card scan and root marking nest inside those windows as
    // their own phases.
    let gc = run_cooperating_cycles(GcConfig::generational().with_event_trace(true), 2);
    let events = gc.events();

    let mut depth = 0i64;
    let mut posts = 0;
    let mut nested_cards = 0;
    let mut nested_roots = 0;
    for e in &events {
        match e.kind {
            EventKind::PhaseBegin if e.a == phase::HANDSHAKE => depth += 1,
            EventKind::PhaseEnd if e.a == phase::HANDSHAKE => depth -= 1,
            EventKind::HandshakePost => {
                posts += 1;
                assert!(
                    depth > 0,
                    "handshake posted outside any handshake phase window: {e:?}"
                );
            }
            EventKind::PhaseBegin if e.a == phase::CARDS => {
                assert!(depth > 0, "card scan outside its handshake window: {e:?}");
                nested_cards += 1;
            }
            EventKind::PhaseBegin if e.a == phase::ROOTS => {
                assert!(
                    depth > 0,
                    "root marking outside its handshake window: {e:?}"
                );
                nested_roots += 1;
            }
            _ => {}
        }
        assert!(depth >= 0, "handshake window closed twice: {e:?}");
    }
    // Three posts per full cycle; one card scan and one root-marking
    // pass per cycle in the simple generational mode.
    assert!(posts >= 6, "expected >= 6 posts over 2 cycles, got {posts}");
    assert!(nested_cards >= 2, "expected a card scan per cycle");
    assert!(nested_roots >= 2, "expected root marking per cycle");
}

#[test]
fn tracing_is_off_by_default_and_histograms_still_work() {
    let gc = run_cooperating_cycles(GcConfig::generational(), 1);
    assert!(!gc.tracing_enabled());
    assert!(gc.events().is_empty());
    assert!(gc.stats().handshake.count() >= 3);
}

/// Supervision satellite: an injected collector panic (mid-trace, with
/// restarts enabled) must leave a coherent abort→restart story in the
/// event ring — `RecoveryBegin` (naming the open bucket), then
/// `CycleAborted`, then `RecoveryEnd` — matching counters in `GcStats`,
/// and a post-recovery cycle whose end state passes `verify_heap`.
#[test]
fn injected_panic_produces_a_coherent_recovery_event_story() {
    use otf_gengc::support::fault::{self, FaultPlan, FaultRule};
    let _serial = fault::exclusive();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    // Phase hit 4 of the first cycle is the trace bucket's open hook.
    fault::install(
        FaultPlan::new(9).rule(
            FaultRule::at("collector.phase")
                .failing(1.0)
                .after(4)
                .max_fires(1),
        ),
    );
    let mut gc = Gc::new(
        tiny(GcConfig::generational().with_event_trace(true))
            .with_max_collector_restarts(3)
            .with_collector_restart_backoff_ms(1),
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut m = gc.mutator();
        let stop = &stop;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                m.cooperate();
                std::hint::spin_loop();
            }
        });
        gc.collect_full_blocking(); // killed mid-trace, served by recovery
        gc.collect_full_blocking(); // clean post-recovery cycle
        stop.store(true, Ordering::Relaxed);
    });
    let log = fault::uninstall();
    std::panic::set_hook(prev_hook);
    assert_eq!(log.len(), 1, "exactly one injected panic: {log:?}");

    let stats = gc.stats();
    assert!(!stats.collector_poisoned);
    assert_eq!(stats.collector_restarts, 1);
    assert_eq!(stats.cycles_aborted, 1);
    assert_eq!(
        stats.recovery.count(),
        1,
        "one recovery duration must be recorded"
    );

    let events = gc.events();
    let idx = |k: EventKind| events.iter().position(|e| e.kind == k);
    let begin = idx(EventKind::RecoveryBegin).expect("no RecoveryBegin event");
    let aborted = idx(EventKind::CycleAborted).expect("no CycleAborted event");
    let end = idx(EventKind::RecoveryEnd).expect("no RecoveryEnd event");
    assert!(
        begin < aborted && aborted < end,
        "recovery story out of order: begin={begin} aborted={aborted} end={end}"
    );
    // The JSONL rendering names the bucket the panic unwound out of.
    let mut buf = Vec::new();
    gc.write_events_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(
        text.contains("\"ev\":\"recovery_begin\"") && text.contains("\"bucket\":\"trace\""),
        "recovery events missing from JSONL: {text}"
    );
    // The post-recovery cycle completed and left a consistent heap.
    assert!(
        events
            .iter()
            .filter(|e| e.kind == EventKind::CycleEnd)
            .count()
            >= 2,
        "expected the recovery full and the follow-up cycle to complete"
    );
    gc.stop_collector();
    assert!(gc.verify_heap().is_empty());
}

#[test]
fn shutdown_returns_stats_including_the_final_cycle() {
    let gc = run_cooperating_cycles(GcConfig::non_generational(), 2);
    let live = gc.stats();
    let final_stats = gc.shutdown();

    assert!(final_stats.cycles.len() >= 2);
    // Shutdown snapshots after the collector joins, so nothing recorded
    // before the live snapshot can be missing from the final one.
    assert!(final_stats.cycles.len() >= live.cycles.len());
    assert!(final_stats.pause.count() >= live.pause.count());
    assert!(final_stats.max_pause() >= live.max_pause());
}
