//! Plan/packet equivalence through the public API: every
//! (mode × sweep-backend) plan must produce an identical end state
//! whether the packet schedule runs on one worker (byte-for-byte the
//! verified DLG sequence) or on four (DESIGN.md §4.7).
//!
//! The driver is deterministic: a single mutator builds the same object
//! graph, parks for every collection (so handshakes are proxied and no
//! allocation races the cycle), and the heap never grows past its
//! initial commitment — so any divergence between worker counts is a
//! scheduler bug, not workload noise.  The kind-level matrix (partial
//! vs full per plan) is covered by the `plan` unit tests in
//! `crates/core`; here full blocking cycles exercise the whole stack:
//! collector thread, schedule, packets, and the real handshake path.

use otf_gengc::gc::{Gc, GcConfig, Mutator};
use otf_gengc::heap::{Color, ObjShape, ObjectRef};

fn tiny(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(8 << 20).with_initial_heap(2 << 20)
}

/// Builds a linked list of `n` nodes and roots the head on the shadow
/// stack; returns the head.
fn build_list(m: &mut Mutator, n: usize, seed: u64) -> ObjectRef {
    let node = ObjShape::new(1, 1);
    let head = m.alloc(&node).unwrap();
    m.write_data(head, 0, seed);
    let root = m.root_push(head);
    let mut tail = head;
    for i in 1..n {
        let next = m.alloc(&node).unwrap();
        m.write_data(next, 0, seed + i as u64);
        m.write_ref(tail, 0, next);
        tail = next;
    }
    let head = m.root_get(root);
    m.root_pop();
    head
}

/// Everything we compare across worker counts: the settled heap totals,
/// the keeper list's per-node (color, age), and the per-cycle trace /
/// reclamation counters.
#[derive(Debug, PartialEq, Eq)]
struct EndState {
    used_bytes: usize,
    free_granules: u64,
    keeper: Vec<(Color, u8)>,
    traced: Vec<u64>,
    freed: Option<Vec<(u64, u64)>>,
}

fn run_plan(cfg: GcConfig, threads: usize) -> EndState {
    let gc = Gc::new(tiny(cfg).with_gc_threads(threads));
    let mut m = gc.mutator();

    // A long-lived list that must survive (and promote through) every
    // cycle, plus fresh garbage before each collection.
    let keeper = build_list(&mut m, 200, 7_000);
    let kroot = m.root_push(keeper);
    for round in 0..3u64 {
        for g in 0..8u64 {
            let _ = build_list(&mut m, 50, round * 1_000 + g * 100);
        }
        m.parked(|| gc.collect_full_blocking());
    }
    assert_eq!(m.root_get(kroot), keeper);

    // Settle the lazy backend (verify_heap finalizes any open sweep
    // epoch first) and require a clean heap in every cell.
    let violations = gc.verify_heap();
    assert!(violations.is_empty(), "heap violations: {violations:?}");

    let mut colors = Vec::new();
    let mut cur = keeper;
    while !cur.is_null() {
        colors.push((gc.debug_color_of(cur), gc.debug_age_of(cur)));
        cur = m.read_ref(cur, 0);
    }

    let stats = gc.stats();
    let traced = stats.cycles.iter().map(|c| c.objects_traced).collect();
    // Reclamation counters are per-cycle identical only for the eager
    // backend; the lazy backend defers them by an epoch and the tail
    // folds into the finalize outside any cycle.
    let freed = if gc.config().lazy_sweep {
        None
    } else {
        Some(
            stats
                .cycles
                .iter()
                .map(|c| (c.objects_freed, c.bytes_freed))
                .collect(),
        )
    };

    drop(m);
    EndState {
        used_bytes: gc.used_bytes(),
        free_granules: gc.free_granules(),
        keeper: colors,
        traced,
        freed,
    }
}

fn assert_plan_parity(cfg: fn() -> GcConfig) {
    for lazy in [false, true] {
        let make = || cfg().with_lazy_sweep(lazy);
        let one = run_plan(make(), 1);
        let four = run_plan(make(), 4);
        assert_eq!(
            one,
            four,
            "plan {} diverges between 1 and 4 workers",
            make().plan_name()
        );
    }
}

#[test]
fn generational_plans_match_across_worker_counts() {
    assert_plan_parity(GcConfig::generational);
}

#[test]
fn non_generational_plans_match_across_worker_counts() {
    assert_plan_parity(GcConfig::non_generational);
}

#[test]
fn aging_plans_match_across_worker_counts() {
    assert_plan_parity(|| GcConfig::aging(3));
}
