//! `_201_compress` (paper §8.2, SPECjvm98).
//!
//! A Lempel–Ziv compressor: computation-bound over a handful of large,
//! long-lived buffers, with very little allocation churn.
//!
//! Generational signature reproduced (Figures 10–12): GC is a tiny
//! fraction of the run (1.7% with generations), objects do *not* die
//! young (only ~40% of young objects are reclaimed by partials, by far
//! the lowest of all benchmarks — "in the benchmark `_201_compress`,
//! objects do not tend to die young"), collections are dominated by fulls
//! triggered as the big buffers accumulate, and generations neither help
//! nor hurt (±0% in Figure 9).

use otf_gc::{Mutator, ObjectRef};

use crate::toolkit::{alloc_data, pick, rng_for};
use crate::Workload;

/// Buffer size in words (128 KB).
const BUFFER_WORDS: usize = 16 * 1024;

/// The compress workload.
#[derive(Clone, Debug)]
pub struct Compress {
    /// File segments to compress (each allocates one large buffer).
    pub segments: usize,
    /// Live window: how many segment buffers stay referenced.
    pub window: usize,
    /// Compression work per segment (word operations).
    pub work_per_segment: usize,
}

impl Compress {
    /// The default configuration.
    pub fn new() -> Compress {
        Compress {
            segments: 300,
            window: 28,
            work_per_segment: 400_000,
        }
    }

    /// Scales the amount of work.
    pub fn scaled(mut self, scale: f64) -> Compress {
        self.segments = ((self.segments as f64 * scale) as usize).max(self.window + 1);
        self
    }
}

impl Default for Compress {
    fn default() -> Self {
        Compress::new()
    }
}

impl Workload for Compress {
    fn name(&self) -> &'static str {
        "_201_compress"
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);
        // The live window of segment buffers sits on the shadow stack.
        let mut window: Vec<ObjectRef> = Vec::new();
        let mut checksum = 0u64;
        for seg in 0..self.segments {
            let buf = alloc_data(m, BUFFER_WORDS);
            m.root_push(buf);
            window.push(buf);
            if window.len() > self.window {
                // Rebuild the shadow stack without the oldest buffer (it
                // becomes garbage — but it is long-lived by now, so only a
                // full collection reclaims it).
                window.remove(0);
                m.root_truncate(0);
                for &b in &window {
                    m.root_push(b);
                }
            }

            // The compression loop: pure data-word computation, plus a
            // couple of small bookkeeping objects per segment.
            let dict_entry = alloc_data(m, 4);
            m.write_data(dict_entry, 0, seg as u64);
            let mut hash = seg as u64;
            for step in 0..self.work_per_segment {
                let idx = (hash as usize).wrapping_add(step * 31) % BUFFER_WORDS;
                let v = m.read_data(buf, idx);
                hash = hash
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(v ^ step as u64);
                if step % 4096 == 0 {
                    m.write_data(buf, idx, hash);
                    m.cooperate();
                }
            }
            // Occasional reads of older segments (keeps the window hot).
            if !window.is_empty() {
                let w = pick(&mut rng, window.len());
                checksum = checksum.wrapping_add(m.read_data(window[w], 0));
            }
            checksum = checksum.wrapping_add(hash);
        }
        std::hint::black_box(checksum);
        m.root_truncate(0);
    }
}
