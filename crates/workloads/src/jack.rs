//! `_228_jack` (paper §8.2, SPECjvm98) — mildly anti-generational.
//!
//! A parser generator that makes repeated passes over its input, each
//! pass materializing a token stream and intermediate structures that
//! live exactly as long as the pass.
//!
//! Generational signature reproduced (Figures 10–12): pass-local data
//! outlives the young-generation budget, so most of it is promoted and
//! then dies at end of pass — 90.8% of objects are freed by *full*
//! collections, partials free a similar fraction to fulls ("if
//! non-generational collections can free a similar percentage of objects
//! as partial collections, then we do not gain efficiency with the
//! partial collections, whereas we do pay the overhead cost"), and the
//! net effect of generations is a small loss (−2.1%/−7.7%, Figure 9).

use otf_gc::{Mutator, ObjectRef};

use crate::toolkit::{alloc_array, alloc_data, alloc_node, mix, pick, rng_for};
use crate::Workload;

/// Tokens per stream chunk.
const TOKEN_CHUNK: usize = 2048;

/// The jack workload.
#[derive(Clone, Debug)]
pub struct Jack {
    /// Parse passes over the input.
    pub passes: usize,
    /// Tokens materialized per pass (alive for the whole pass).
    pub tokens_per_pass: usize,
    /// Short-lived analysis temporaries per pass (the bulk of jack's
    /// allocation — they die young; only the token stream gets tenured).
    pub temps_per_pass: usize,
}

impl Jack {
    /// The default configuration: each pass allocates ≈ 11 MB, of which
    /// ≈ 1.5 MB (the token stream) lives to the end of the pass — long
    /// enough to be tenured by the partial collections that land mid-pass,
    /// and dead immediately after (the paper's Figure 12: fulls free 90.8%
    /// of jack's objects, nearly the same fraction partials do).
    pub fn new() -> Jack {
        Jack {
            passes: 18,
            tokens_per_pass: 20_000,
            temps_per_pass: 300_000,
        }
    }

    /// Scales the amount of work.
    pub fn scaled(mut self, scale: f64) -> Jack {
        self.passes = ((self.passes as f64 * scale) as usize).max(1);
        self
    }
}

impl Default for Jack {
    fn default() -> Self {
        Jack::new()
    }
}

impl Workload for Jack {
    fn name(&self) -> &'static str {
        "_228_jack"
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);
        let mut checksum = 0u64;

        for pass in 0..self.passes {
            // The token stream: chunked arrays of token objects, all
            // alive until the end of the pass.
            let n_chunks = self.tokens_per_pass.div_ceil(TOKEN_CHUNK);
            let stream: ObjectRef = alloc_array(m, n_chunks);
            m.root_push(stream);
            for c in 0..n_chunks {
                let chunk = alloc_array(m, TOKEN_CHUNK);
                m.write_ref(stream, c, chunk);
                for i in 0..TOKEN_CHUNK.min(self.tokens_per_pass - c * TOKEN_CHUNK) {
                    let token = alloc_node(m, 1, 1);
                    m.write_data(
                        token,
                        0,
                        mix((pass * 1_000_000 + c * TOKEN_CHUNK + i) as u64, 96),
                    );
                    // Store the token before allocating its lexeme: the
                    // allocation is a safe point.
                    m.write_ref(chunk, i, token);
                    // Every few tokens carry a lexeme payload.
                    if i % 4 == 0 {
                        let lexeme = alloc_data(m, 2);
                        m.write_data(lexeme, 0, i as u64);
                        m.write_ref(token, 0, lexeme);
                    }
                }
                m.cooperate();
            }

            // Grammar analysis over the stream: short-lived temporaries,
            // random token reads.
            for t in 0..self.temps_per_pass {
                if t % 4096 == 0 {
                    m.cooperate();
                }
                let c = pick(&mut rng, n_chunks);
                let chunk = m.read_ref(stream, c);
                let t = pick(&mut rng, TOKEN_CHUNK);
                let token = m.read_ref(chunk, t);
                if !token.is_null() {
                    let _production = alloc_data(m, 2);
                    checksum = checksum.wrapping_add(mix(m.read_data(token, 0), 96));
                }
            }

            // End of pass: the whole stream dies at once — but it has
            // already been promoted.
            m.root_pop();
            m.cooperate();
        }
        std::hint::black_box(checksum);
    }
}
