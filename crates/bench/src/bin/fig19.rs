//! Regenerates Figure 19 of the paper (aging, thresholds 8 and 10).
fn main() {
    let ctx = otf_bench::figures::Ctx::new(otf_bench::Options::from_args());
    otf_bench::figures::fig18_19(&ctx, [8, 10], "19").print();
}
