//! The color table: one atomic byte per granule.
//!
//! The paper's collector colors every object white, yellow, gray, black or
//! blue (free).  We keep the color in a side table rather than the object
//! header so the concurrent sweep can *parse the heap from the table alone*:
//!
//! * the byte of an object's **start granule** holds its color,
//! * the bytes of its interior granules hold [`Color::Interior`],
//! * unallocated granules hold [`Color::Free`] (the paper's *blue*).
//!
//! This makes a linear left-to-right scan of the table a race-free heap
//! walk even while mutators allocate concurrently: an allocating mutator
//! publishes the header and interior bytes first and the start-granule
//! color last (release store), so a scanner that still sees `Free` or
//! `Interior` at an in-flight object's granules simply skips one granule —
//! which is always safe, because a freshly allocated object carries the
//! allocation color and is never a reclamation candidate.
//!
//! Nothing here assumes *who* performs the sweep-side scan: in the lazy
//! back-end (DESIGN.md §4.6) it is mutators, not collector workers, that
//! walk the table and fill reclaimed runs with `Free` — but they do so
//! only between cycles under the epoch's pinned clear color, so every
//! ordering argument above is unchanged.

use std::sync::atomic::{AtomicU8, Ordering};

use otf_support::tablescan;

/// Object colors, including the two table-only pseudo-colors `Free` (the
/// paper's blue) and `Interior`.
///
/// `White` and `Yellow` do not have fixed meanings: the *color toggle* (§5)
/// swaps which of them is the allocation color and which is the clear
/// color each cycle.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Color {
    /// Unallocated space (the paper's *blue*).
    Free = 0,
    /// A non-start granule of a live object.
    Interior = 1,
    /// One of the two toggled young colors.
    White = 2,
    /// The other toggled young color (allocated-during-collection, §4).
    Yellow = 3,
    /// Traced but sons not yet scanned.
    Gray = 4,
    /// Traced, sons scanned; in the simple generational variant black also
    /// means *old* (§3).
    Black = 5,
}

impl Color {
    /// All real object colors (excludes `Free`/`Interior`).
    pub const OBJECT_COLORS: [Color; 4] = [Color::White, Color::Yellow, Color::Gray, Color::Black];

    /// Decodes a raw table byte.
    ///
    /// # Panics
    ///
    /// Panics if `byte` is not a valid color encoding.
    #[inline]
    pub fn from_byte(byte: u8) -> Color {
        match byte {
            0 => Color::Free,
            1 => Color::Interior,
            2 => Color::White,
            3 => Color::Yellow,
            4 => Color::Gray,
            5 => Color::Black,
            other => panic!("invalid color byte {other}"),
        }
    }

    /// Whether the byte denotes the start granule of an object (any real
    /// object color).
    #[inline]
    pub fn is_object(self) -> bool {
        matches!(
            self,
            Color::White | Color::Yellow | Color::Gray | Color::Black
        )
    }
}

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Color::Free => "free",
            Color::Interior => "interior",
            Color::White => "white",
            Color::Yellow => "yellow",
            Color::Gray => "gray",
            Color::Black => "black",
        };
        f.write_str(name)
    }
}

/// One atomic color byte per granule of the arena.
#[derive(Debug)]
pub struct ColorTable {
    bytes: Box<[AtomicU8]>,
}

impl ColorTable {
    /// Creates a table covering `granules` granules, all `Free`.
    pub fn new(granules: usize) -> ColorTable {
        let mut v = Vec::with_capacity(granules);
        v.resize_with(granules, || AtomicU8::new(Color::Free as u8));
        ColorTable {
            bytes: v.into_boxed_slice(),
        }
    }

    /// Number of granules covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the table covers zero granules.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Size of the table itself in bytes (for page-touch accounting).
    #[inline]
    pub fn table_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Reads the color of `granule` with acquire ordering (pairs with the
    /// release publication store in the allocator).
    #[inline]
    pub fn get(&self, granule: usize) -> Color {
        Color::from_byte(self.bytes[granule].load(Ordering::Acquire))
    }

    /// Stores a color with release ordering.
    #[inline]
    pub fn set(&self, granule: usize, color: Color) {
        self.bytes[granule].store(color as u8, Ordering::Release);
    }

    /// Atomically recolors `granule` from `from` to `to`.  Returns `true`
    /// on success.  This is the mutator/collector graying primitive: only
    /// the winner of the race pushes the object on the gray queue.
    #[inline]
    pub fn cas(&self, granule: usize, from: Color, to: Color) -> bool {
        self.bytes[granule]
            .compare_exchange(from as u8, to as u8, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Fills `[start, start + len)` with `color` (used for interiors at
    /// allocation and for freeing at sweep) — word-wide release stores.
    ///
    /// The word stores alone do not *publish* an object: the allocator's
    /// protocol still ends with the release store of the start-granule
    /// color ([`set`](ColorTable::set)), which orders the whole fill
    /// before the object becomes visible.
    pub fn fill(&self, start: usize, len: usize, color: Color) {
        tablescan::bulk_fill(&self.bytes, start, start + len, color as u8);
    }

    /// Relaxed raw read of the color byte.  A non-object byte read relaxed
    /// is definitive (granules only leave the `Free`/`Interior` states
    /// through this same collector thread or through an allocation the
    /// sweep may legitimately miss); before reading an object's *header*
    /// the caller must re-load the byte with [`get`](ColorTable::get)
    /// (acquire) to pair with the allocator's publication store.  The
    /// word-at-a-time scans ([`skip_non_object`](ColorTable::skip_non_object),
    /// [`object_end`](ColorTable::object_end)) are the same protocol eight
    /// bytes at a time; `otf_support::tablescan` documents the mixed-size
    /// memory-model argument.
    #[inline]
    pub fn get_raw_relaxed(&self, granule: usize) -> u8 {
        self.bytes[granule].load(Ordering::Relaxed)
    }

    /// Advances from `from` over `Free`/`Interior` granules, returning the
    /// first granule in `[from, to)` that holds an object color (or `to`).
    /// This is the sweep's fast-skip loop over reclaimed and unallocated
    /// space — a word-at-a-time relaxed scan (see
    /// [`get_raw_relaxed`](ColorTable::get_raw_relaxed) for why relaxed
    /// suffices; the caller re-loads the found byte with acquire before
    /// touching the object).
    #[inline]
    pub fn skip_non_object(&self, from: usize, to: usize) -> usize {
        self.next_color_above(from, to, Color::Interior)
    }

    /// Returns the first granule in `[from, to)` whose byte encodes a
    /// color strictly above `floor` (or `to`).  `floor = Interior` is the
    /// sweep's [`skip_non_object`](ColorTable::skip_non_object);
    /// `floor = Yellow` finds black/gray bytes directly — the whole of
    /// `InitFullCollection`'s search, since `Gray` and `Black` are the
    /// only byte values above `Yellow` and interior granules always hold
    /// `Interior`.
    #[inline]
    pub fn next_color_above(&self, from: usize, to: usize, floor: Color) -> usize {
        tablescan::find_byte_not_in(&self.bytes, from, to, floor as u8)
    }

    /// Returns one-past-the-end of the object starting at `start`, found
    /// by scanning its `Interior` bytes word-at-a-time — the color table
    /// alone encodes object extents, so a sweep never needs to read
    /// headers out of the arena.  `start`'s own byte is not examined.
    #[inline]
    pub fn object_end(&self, start: usize, to: usize) -> usize {
        tablescan::find_run_end(&self.bytes, (start + 1).min(to), to, Color::Interior as u8)
    }

    /// Number of granules in `[from, to)` holding exactly `color`
    /// (diagnostics and differential tests).
    pub fn count_matching(&self, from: usize, to: usize, color: Color) -> usize {
        tablescan::count_matching(&self.bytes, from, to, color as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_free() {
        let t = ColorTable::new(8);
        assert_eq!(t.len(), 8);
        for g in 0..8 {
            assert_eq!(t.get(g), Color::Free);
        }
    }

    #[test]
    fn set_get_round_trip() {
        let t = ColorTable::new(4);
        for c in Color::OBJECT_COLORS {
            t.set(2, c);
            assert_eq!(t.get(2), c);
        }
    }

    #[test]
    fn cas_only_succeeds_from_expected() {
        let t = ColorTable::new(2);
        t.set(0, Color::White);
        assert!(!t.cas(0, Color::Yellow, Color::Gray));
        assert_eq!(t.get(0), Color::White);
        assert!(t.cas(0, Color::White, Color::Gray));
        assert_eq!(t.get(0), Color::Gray);
        // Second gray attempt loses.
        assert!(!t.cas(0, Color::White, Color::Gray));
    }

    #[test]
    fn fill_covers_range() {
        let t = ColorTable::new(10);
        t.fill(3, 4, Color::Interior);
        assert_eq!(t.get(2), Color::Free);
        for g in 3..7 {
            assert_eq!(t.get(g), Color::Interior);
        }
        assert_eq!(t.get(7), Color::Free);
    }

    #[test]
    fn object_color_predicate() {
        assert!(!Color::Free.is_object());
        assert!(!Color::Interior.is_object());
        for c in Color::OBJECT_COLORS {
            assert!(c.is_object());
        }
    }

    #[test]
    fn color_byte_round_trip() {
        for c in [
            Color::Free,
            Color::Interior,
            Color::White,
            Color::Yellow,
            Color::Gray,
            Color::Black,
        ] {
            assert_eq!(Color::from_byte(c as u8), c);
        }
    }

    #[test]
    #[should_panic(expected = "invalid color byte")]
    fn bad_byte_panics() {
        let _ = Color::from_byte(17);
    }
}
