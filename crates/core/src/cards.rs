//! Dirty-card scanning (`ClearCards`) and full-collection initialization
//! (`InitFullCollection`) — Figures 3 and 6 of the paper.
//!
//! Both run as packets of the cycle schedule (DESIGN.md §4.7): the card
//! scan inside the second handshake window (before or after the color
//! toggle, per plan — Figure 2 vs Figure 5 order), the initialization
//! pass in the init bucket of full collections.

use otf_heap::{Color, GRANULE};

use crate::cycle::CycleCx;
use crate::obs::EventKind;
use crate::shared::GcShared;

impl GcShared {
    /// Number of cards covering the allocated extent of the heap.
    fn cards_in_use(&self) -> usize {
        let frontier_byte = self.heap.frontier_granule() * GRANULE;
        if frontier_byte == 0 {
            0
        } else {
            self.cards.card_of_byte(frontier_byte - 1) + 1
        }
    }

    /// Overlapped plans (DESIGN.md §4.9): move the grays accumulated on
    /// the private mark stack to the shared gray queue, where the
    /// concurrently-open `TraceDrain` packets steal them while this
    /// scan keeps producing.
    fn publish_grays(&self, cx: &mut CycleCx) {
        for obj in cx.mark_stack.drain(..) {
            self.gray.push(obj);
        }
    }

    /// `ClearCards`, simple variant (Figure 3): for every dirty card,
    /// clear the mark and shade gray every *black* (old) object starting
    /// on the card, so the trace re-scans it and discovers any
    /// inter-generational pointers it holds.
    ///
    /// With `overlap = false` this runs between the first and second
    /// handshakes, when every mutator is in `sync1`/`sync2` and
    /// therefore performs no card marking (§7.1) — clear-then-scan
    /// needs no re-marking protocol, and no allocation-colored object
    /// exists yet (the toggle has not happened), so a cleared card
    /// cannot describe a pointer to an unpromoted son.
    ///
    /// With `overlap = true` the scan runs *after* the toggle and the
    /// third handshake, concurrent with the trace (DESIGN.md §4.9).
    /// Two differences keep that placement sound: grays publish to the
    /// shared queue card-by-card (the concurrently-open trace bucket
    /// consumes them), and a card whose black object still references
    /// an *allocation-colored* son is re-marked after the clear — such
    /// a son is not promoted by this cycle's trace (it already carries
    /// the safe color), so the inter-generational pointer must be
    /// re-examined next cycle, exactly the §7.1 hazard the pre-toggle
    /// placement avoided by timing.
    pub(crate) fn clear_cards_simple(&self, overlap: bool, cx: &mut CycleCx) {
        let n_cards = self.cards_in_use();
        cx.counters.cards_in_use = n_cards as u64;
        cx.touch_card_range(0, n_cards);
        let dirty_before = cx.counters.dirty_cards;
        let alloc = self.colors.allocation_color();
        // The per-card list of black objects to gray lives on the cycle
        // context, reused across cards instead of allocated per card.
        let mut grayed = std::mem::take(&mut cx.scratch_grayed);
        // Word-skip the (typically long) clean runs between dirty cards.
        let mut from = 0;
        while let Some(card) = self.cards.next_dirty(from, n_cards) {
            from = card + 1;
            cx.counters.dirty_cards += 1;
            self.cards.clear(card);
            let (gs, ge) = self.cards.granule_range(card);
            cx.touch_color_range(gs, ge.min(self.heap.frontier_granule()));
            grayed.clear();
            let mut remark = false;
            self.heap
                .for_each_object_start(gs, ge, |obj, color, header| {
                    if color == Color::Black {
                        grayed.push((obj, header.size_granules()));
                        if overlap && !remark {
                            for i in 0..header.ref_slots() {
                                let son = self.heap.arena().load_ref_slot(obj, i);
                                if !son.is_null() && self.heap.colors().get(son.granule()) == alloc
                                {
                                    remark = true;
                                    break;
                                }
                            }
                        }
                    }
                });
            for &(obj, size) in &grayed {
                if self
                    .heap
                    .colors()
                    .cas(obj.granule(), Color::Black, Color::Gray)
                {
                    cx.mark_stack.push(obj);
                    cx.counters.intergen_objects += 1;
                    cx.counters.intergen_bytes += (size * GRANULE) as u64;
                    cx.touch_object_granules(obj.granule(), size);
                }
            }
            if remark {
                self.cards.mark_card(card);
            }
            if overlap {
                self.publish_grays(cx);
            }
        }
        cx.scratch_grayed = grayed;
        self.obs.event(
            EventKind::CardClear,
            cx.counters.dirty_cards - dirty_before,
            n_cards as u64,
        );
    }

    /// `ClearCards`, aging variant (Figure 6, with the §7.2 three-step
    /// clear/check/re-mark protocol): for every dirty card,
    ///
    /// 1. clear the mark,
    /// 2. scan the objects on the card: tenured objects (black with age at
    ///    the threshold) act as inter-generational roots — their sons are
    ///    shaded gray; and
    /// 3. re-mark the card if any object on it still references a young
    ///    object, so the inter-generational pointer is re-examined next
    ///    cycle.
    ///
    /// Step 3 deliberately considers *all* objects on the card, not only
    /// tenured ones: a young parent holding a young son will eventually be
    /// tenured while its son is still young, and the card mark must
    /// survive until then (see DESIGN.md §4 — this widens Figure 6's
    /// literal re-mark condition, which checks only tenured parents and
    /// would otherwise drop the pointer).
    ///
    /// Unlike the simple variant, this protocol is already safe against
    /// concurrent mutator card marking (the clear/check/re-mark dance
    /// exists for exactly that), so the overlapped placement
    /// (DESIGN.md §4.9) needs no extra compensation: `publish = true`
    /// only switches the grays from the private mark stack to the
    /// shared queue, card by card, for the concurrently-open trace.
    pub(crate) fn clear_cards_aging(&self, threshold: u8, publish: bool, cx: &mut CycleCx) {
        let n_cards = self.cards_in_use();
        cx.counters.cards_in_use = n_cards as u64;
        cx.touch_card_range(0, n_cards);
        let dirty_before = cx.counters.dirty_cards;
        let ages = self.heap.ages();
        // Per-card tenured-root list, reused across cards (and cycles).
        let mut tenured_roots = std::mem::take(&mut cx.scratch_tenured);
        // Word-skip clean runs; next_dirty's acquire re-read of the dirty
        // byte pairs with the mutator's release mark, so the pointer
        // stores that preceded a mark we observe are visible to step 2.
        let mut from = 0;
        while let Some(card) = self.cards.next_dirty(from, n_cards) {
            from = card + 1;
            cx.counters.dirty_cards += 1;
            // Step 1: clear first (the mutator stores first and marks
            // second, so either we see its pointer in step 2 or its mark
            // survives our clear).
            self.cards.clear(card);
            let (gs, ge) = self.cards.granule_range(card);
            cx.touch_color_range(gs, ge.min(self.heap.frontier_granule()));
            // Step 2: scan.
            tenured_roots.clear();
            let mut remark = false;
            self.heap
                .for_each_object_start(gs, ge, |obj, color, header| {
                    let g = obj.granule();
                    let is_tenured = color == Color::Black && ages.get(g) >= threshold;
                    if is_tenured {
                        tenured_roots.push((obj, header.ref_slots(), header.size_granules()));
                    } else if !remark {
                        // A non-tenured object with any reference keeps the
                        // card dirty if one of its sons is young: once this
                        // parent is tenured the pointer becomes (or stays)
                        // inter-generational.
                        for i in 0..header.ref_slots() {
                            let son = self.heap.arena().load_ref_slot(obj, i);
                            if !son.is_null() && ages.get(son.granule()) < threshold {
                                remark = true;
                                break;
                            }
                        }
                    }
                });
            for &(obj, ref_slots, size) in &tenured_roots {
                cx.counters.intergen_objects += 1;
                cx.counters.intergen_bytes += (size * GRANULE) as u64;
                cx.touch_object(obj, 1 + ref_slots);
                for i in 0..ref_slots {
                    let son = self.heap.arena().load_ref_slot(obj, i);
                    if son.is_null() {
                        continue;
                    }
                    self.mark_gray_clear_local(son, &mut cx.mark_stack);
                    if ages.get(son.granule()) < threshold {
                        remark = true;
                    }
                }
            }
            // Step 3: re-mark if a young object is still referenced from
            // this card.
            if remark {
                self.cards.mark_card(card);
            }
            if publish {
                self.publish_grays(cx);
            }
        }
        cx.scratch_tenured = tenured_roots;
        self.obs.event(
            EventKind::CardClear,
            cx.counters.dirty_cards - dirty_before,
            n_cards as u64,
        );
    }

    /// `InitFullCollection` (Figures 3 and 6): recolor every black (and
    /// leaked gray) object to the current allocation color so the
    /// subsequent toggle makes the whole heap traceable, and — in the
    /// simple variant only — clear all card marks (the aging variant keeps
    /// them: they may still describe inter-generational pointers relevant
    /// to later partial collections, §6).
    ///
    /// Runs before the first handshake, concurrently with fully-running
    /// mutators; this is safe because mutators never recolor black
    /// objects.
    ///
    /// The pass is a single word-at-a-time skip: `Gray` and `Black` are
    /// the only byte values above `Yellow`, and interior granules always
    /// hold `Interior`, so scanning for "first byte > `Yellow`" lands
    /// exactly on the start granules that need recoloring — no object
    /// parsing (headers, extents) at all.  Concurrent allocation only
    /// publishes `White`/`Yellow` start bytes, which the scan correctly
    /// passes over, and no other thread writes `Black`/`Gray` while the
    /// collector is here, so a relaxed scan plus release recoloring
    /// store is sound.
    pub(crate) fn init_full_collection(&self, clear_cards: bool, cx: &mut CycleCx) {
        let alloc = self.colors.allocation_color();
        let colors = self.heap.colors();
        let end = self.heap.frontier_granule();
        cx.touch_color_range(1, end);
        let mut g = 1;
        loop {
            g = colors.next_color_above(g, end, Color::Yellow);
            if g >= end {
                break;
            }
            colors.set(g, alloc);
            g += 1;
        }
        if clear_cards {
            self.cards.clear_all();
            cx.touch_card_range(0, self.cards.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::{ObjShape, ObjectRef};

    fn setup(cfg: GcConfig) -> (GcShared, CycleCx) {
        let sh = GcShared::new(cfg.with_max_heap(1 << 20).with_initial_heap(1 << 20));
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, refs: usize, color: Color) -> ObjectRef {
        let shape = ObjShape::new(refs, 0);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn clear_cards_simple_grays_black_objects() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let old = alloc(&sh, 2, Color::Black);
        let young = alloc(&sh, 0, Color::White);
        sh.heap.arena().store_ref_slot(old, 0, young);
        sh.cards.mark_byte(old.byte());
        sh.clear_cards_simple(false, &mut cx);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Gray);
        assert_eq!(cx.mark_stack.pop(), Some(old));
        assert_eq!(cx.counters.dirty_cards, 1);
        assert_eq!(cx.counters.intergen_objects, 1);
        // Card got cleared and stays clear (simple variant).
        assert!(!sh.cards.is_dirty(sh.cards.card_of_byte(old.byte())));
    }

    #[test]
    fn clear_cards_simple_ignores_young_objects_on_dirty_cards() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let young = alloc(&sh, 1, Color::White);
        sh.cards.mark_byte(young.byte());
        sh.clear_cards_simple(false, &mut cx);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::White);
        assert!(sh.gray.is_empty());
        assert_eq!(cx.counters.intergen_objects, 0);
    }

    #[test]
    fn overlap_simple_scan_publishes_and_remarks_for_fresh_sons() {
        // Post-toggle placement (DESIGN.md §4.9): a black parent holding
        // an allocation-colored son (allocated after the toggle) must
        // keep its card — the son is not promoted by this cycle's trace,
        // so the inter-generational pointer survives it.  Grays publish
        // to the shared queue, not the private mark stack.
        let (sh, mut cx) = setup(GcConfig::generational());
        let old = alloc(&sh, 1, Color::Black);
        let fresh = alloc(&sh, 0, sh.colors.allocation_color());
        sh.heap.arena().store_ref_slot(old, 0, fresh);
        sh.cards.mark_byte(old.byte());
        sh.clear_cards_simple(true, &mut cx);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Gray);
        assert!(cx.mark_stack.is_empty());
        assert_eq!(sh.gray.pop(), Some(old));
        assert!(sh.cards.is_dirty(sh.cards.card_of_byte(old.byte())));
    }

    #[test]
    fn overlap_simple_scan_clears_card_for_clear_colored_sons() {
        // A son carrying the clear color (allocated before the toggle)
        // is promoted when the trace reaches it through the grayed
        // parent, so the card can go — same outcome as the sequential
        // pre-toggle scan.
        let (sh, mut cx) = setup(GcConfig::generational());
        let old = alloc(&sh, 1, Color::Black);
        let young = alloc(&sh, 0, sh.colors.clear_color());
        sh.heap.arena().store_ref_slot(old, 0, young);
        sh.cards.mark_byte(old.byte());
        sh.clear_cards_simple(true, &mut cx);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Gray);
        assert_eq!(sh.gray.pop(), Some(old));
        assert!(!sh.cards.is_dirty(sh.cards.card_of_byte(old.byte())));
    }

    #[test]
    fn aging_scan_publishes_grays_when_asked() {
        let threshold = 4;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(old.granule(), threshold);
        let son = alloc(&sh, 0, sh.colors.clear_color());
        sh.heap.arena().store_ref_slot(old, 0, son);
        sh.cards.mark_byte(old.byte());
        sh.clear_cards_aging(threshold, true, &mut cx);
        assert!(cx.mark_stack.is_empty());
        assert_eq!(sh.gray.pop(), Some(son));
        assert!(sh.cards.is_dirty(sh.cards.card_of_byte(old.byte())));
    }

    #[test]
    fn clear_cards_aging_roots_tenured_and_remarks() {
        let threshold = 4;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(old.granule(), threshold);
        // Young son has the clear color so it must be grayed.
        let son = alloc(&sh, 0, sh.colors.clear_color());
        sh.heap.arena().store_ref_slot(old, 0, son);
        sh.cards.mark_byte(old.byte());

        sh.clear_cards_aging(threshold, false, &mut cx);
        assert_eq!(sh.heap.colors().get(son.granule()), Color::Gray);
        assert_eq!(cx.mark_stack.pop(), Some(son));
        // Young son referenced => card re-marked (step 3).
        assert!(sh.cards.is_dirty(sh.cards.card_of_byte(old.byte())));
        assert_eq!(cx.counters.intergen_objects, 1);
    }

    #[test]
    fn clear_cards_aging_clears_when_sons_are_old() {
        let threshold = 4;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(old.granule(), threshold);
        let son = alloc(&sh, 0, Color::Black);
        sh.heap.ages().set(son.granule(), threshold);
        sh.heap.arena().store_ref_slot(old, 0, son);
        sh.cards.mark_byte(old.byte());

        sh.clear_cards_aging(threshold, false, &mut cx);
        // Old son: no young reference left, card cleared for good.
        assert!(!sh.cards.is_dirty(sh.cards.card_of_byte(old.byte())));
        // Black son is not grayed by mark_gray_clear.
        assert_eq!(sh.heap.colors().get(son.granule()), Color::Black);
    }

    #[test]
    fn clear_cards_aging_keeps_card_for_young_parent_with_young_son() {
        // The DESIGN.md §4 soundness widening: a young parent whose son is
        // young must keep the card dirty even though the parent is not yet
        // a tenured inter-generational root.
        let threshold = 4;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        let parent = alloc(&sh, 1, Color::White);
        sh.heap.ages().set(parent.granule(), 2); // young
        let son = alloc(&sh, 0, Color::White);
        sh.heap.arena().store_ref_slot(parent, 0, son);
        sh.cards.mark_byte(parent.byte());

        sh.clear_cards_aging(threshold, false, &mut cx);
        assert!(sh.cards.is_dirty(sh.cards.card_of_byte(parent.byte())));
        // But the son is NOT grayed from here: young parents are traced
        // through normal reachability.
        assert_eq!(sh.heap.colors().get(son.granule()), Color::White);
    }

    #[test]
    fn init_full_recolors_black_and_gray() {
        let (sh, mut cx) = setup(GcConfig::generational());
        let a = alloc(&sh, 0, Color::Black);
        let b = alloc(&sh, 0, Color::Gray);
        let c = alloc(&sh, 0, Color::White);
        sh.cards.mark_byte(a.byte());
        sh.init_full_collection(true, &mut cx);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::White);
        assert_eq!(sh.heap.colors().get(b.granule()), Color::White);
        assert_eq!(sh.heap.colors().get(c.granule()), Color::White);
        assert_eq!(sh.cards.count_dirty(sh.cards.len()), 0);
    }

    #[test]
    fn init_full_aging_preserves_cards() {
        let (sh, mut cx) = setup(GcConfig::aging(4));
        let a = alloc(&sh, 0, Color::Black);
        sh.cards.mark_byte(a.byte());
        sh.init_full_collection(false, &mut cx);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::White);
        assert_eq!(sh.cards.count_dirty(sh.cards.len()), 1);
    }

    #[test]
    fn block_marking_card_covers_many_objects() {
        let (sh, mut cx) = setup(GcConfig::generational().with_card_size(4096));
        // Several black objects share the single 4096-byte card.
        let a = alloc(&sh, 0, Color::Black);
        let b = alloc(&sh, 0, Color::Black);
        let c = alloc(&sh, 0, Color::White);
        sh.cards.mark_byte(b.byte());
        sh.clear_cards_simple(false, &mut cx);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Gray);
        assert_eq!(sh.heap.colors().get(b.granule()), Color::Gray);
        assert_eq!(sh.heap.colors().get(c.granule()), Color::White);
        assert_eq!(cx.counters.intergen_objects, 2);
    }
}
