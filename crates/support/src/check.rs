//! Deterministic randomized testing — the workspace's `proptest`
//! replacement.
//!
//! [`run_cases`] drives a test closure through `cases` generated inputs.
//! Each case draws its values from a [`Gen`] seeded as
//! `splitmix(base_seed, case_index)`, so every run of the suite exercises
//! the *same* inputs — failures reproduce without a persistence file.
//!
//! On failure the case is **shrunk by halving**: the same case seed is
//! replayed with an increasing shrink level, under which every drawn
//! value collapses toward the low end of its range (`lo + (offset >>
//! level)`) and every generated collection toward its minimum length.
//! The deepest level that still fails — the smallest failing input this
//! generator can express — is reported with its exact `(seed, case,
//! shrink)` coordinates.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rand::{RngCore, RngExt, SeedableRng, StdRng};

/// The deterministic value source handed to a test case.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
    shrink: u32,
}

impl Gen {
    /// A generator for `(base_seed, case)` at full size (shrink level 0).
    pub fn new(base_seed: u64, case: u64) -> Gen {
        Gen::with_shrink(base_seed, case, 0)
    }

    fn with_shrink(base_seed: u64, case: u64, shrink: u32) -> Gen {
        // Mix the case index in multiplicatively so neighboring cases get
        // unrelated streams.
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03));
        Gen {
            rng: StdRng::seed_from_u64(seed),
            shrink,
        }
    }

    /// The current shrink level (0 = unshrunk).
    pub fn shrink_level(&self) -> u32 {
        self.shrink
    }

    /// Applies the shrink level to an offset.
    #[inline]
    fn shrunk(&self, offset: u64) -> u64 {
        offset >> self.shrink.min(63)
    }

    /// A `usize` in `[range.start, range.end)`, collapsing toward
    /// `range.start` under shrinking.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        let raw = self.rng.random_range(range.start as u64..range.end as u64);
        range.start + self.shrunk(raw - range.start as u64) as usize
    }

    /// A `u32` in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.usize_in(range.start as usize..range.end as usize) as u32
    }

    /// A `u64` in `[range.start, range.end)`.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        let raw = self.rng.random_range(range.clone());
        range.start + self.shrunk(raw - range.start)
    }

    /// An unbiased bool (not affected by shrinking — both values are
    /// minimal).
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A vector with length drawn from `len` (collapsing toward
    /// `len.start`), elements produced by `f`.
    pub fn vec_of<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A vector of bools of exactly `n` elements.
    pub fn bools(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.bool()).collect()
    }
}

/// Maximum shrink level tried after a failure (beyond ~40 every practical range has
/// collapsed to its lower bound).
const MAX_SHRINK: u32 = 40;

/// Runs `body` against `cases` deterministic inputs derived from
/// `base_seed`.  Panics (with reproduction coordinates) if any case
/// fails; the reported case is the most-shrunk failing input.
pub fn run_cases(name: &str, base_seed: u64, cases: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::new(base_seed, case);
        if catch_unwind(AssertUnwindSafe(|| body(&mut g))).is_ok() {
            continue;
        }
        // Shrink by halving: find the deepest level that still fails.
        let mut failing_level = 0;
        for level in 1..=MAX_SHRINK {
            let mut g = Gen::with_shrink(base_seed, case, level);
            if catch_unwind(AssertUnwindSafe(|| body(&mut g))).is_err() {
                failing_level = level;
            } else {
                break;
            }
        }
        // Replay the minimal case outside catch_unwind so the original
        // assertion message is the one the harness reports.
        eprintln!(
            "[check] {name}: case {case} failed (seed {base_seed}); \
             minimal failing shrink level {failing_level} — replaying"
        );
        let mut g = Gen::with_shrink(base_seed, case, failing_level);
        body(&mut g);
        unreachable!("[check] {name}: case {case} failed under catch_unwind but not on replay");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run_cases("collect", 11, 5, |g| {
            first.push((g.usize_in(0..100), g.bool()));
        });
        let mut second = Vec::new();
        run_cases("collect", 11, 5, |g| {
            second.push((g.usize_in(0..100), g.bool()));
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn ranges_respected_at_every_shrink_level() {
        for level in 0..8 {
            let mut g = Gen::with_shrink(3, 1, level);
            for _ in 0..100 {
                let v = g.usize_in(10..20);
                assert!((10..20).contains(&v));
            }
        }
    }

    #[test]
    fn shrinking_collapses_to_lower_bound() {
        let mut g = Gen::with_shrink(5, 0, MAX_SHRINK);
        assert_eq!(g.usize_in(7..1_000_000), 7);
        assert_eq!(g.u64_in(3..1 << 40), 3);
        assert!(g.vec_of(0..50, |g| g.bool()).is_empty());
    }

    #[test]
    fn failure_reports_and_shrinks() {
        // A predicate that fails for large values: the reported minimal
        // case must still fail but be smaller than the original draw.
        let err = catch_unwind(|| {
            run_cases("shrinks", 1, 50, |g| {
                let v = g.usize_in(0..1_000_000);
                assert!(v < 10, "too big: {v}");
            });
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("too big"), "unexpected panic payload: {msg}");
    }

    #[test]
    fn passing_suite_runs_all_cases() {
        let mut n = 0;
        run_cases("passes", 2, 32, |g| {
            let _ = g.u32_in(0..10);
            n += 1;
        });
        assert_eq!(n, 32);
    }
}
