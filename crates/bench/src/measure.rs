//! Repeated-measurement helpers: every figure datum is the median of
//! several runs (the paper repeated each parallel run 8 times; we default
//! to 3 and expose `--reps`).

use std::time::Duration;

use otf_gc::GcConfig;
use otf_workloads::driver::{self, RunResult};
use otf_workloads::Workload;

/// Harness options shared by all figure binaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Options {
    /// Workload scale factor (1.0 = full size).
    pub scale: f64,
    /// Repetitions per measurement (median taken).
    pub reps: usize,
    /// Concurrent application copies for the "multiprocessor" metric
    /// (the paper ran 4 on its 4-way machine).
    pub copies: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1.0,
            reps: 3,
            copies: 4,
            seed: 42,
        }
    }
}

/// Result of parsing a figure binary's command line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Parsed {
    /// Run with these options.
    Run(Options),
    /// `--help`/`-h` was given: print usage and exit successfully.
    Help,
}

impl Options {
    /// Usage text shared by every figure binary.
    pub const USAGE: &'static str = "\
Options (every fig* binary accepts the same set):
  --scale X    workload scale factor (1.0 = full size; default 1.0)
  --reps N     repetitions per measurement, median taken (default 3)
  --copies N   concurrent application copies for the multiprocessor
               metric (default 4)
  --seed N     base RNG seed (default 42)
  --quick      smoke configuration (= --scale 0.15 --reps 1 --copies 2)
  --help, -h   print this help and exit";

    /// Parses harness options from an argument list (the program name
    /// must already be stripped).  Never panics: unknown flags and
    /// malformed or missing values produce a warning on stderr and are
    /// ignored, so a figure binary always runs to completion with sane
    /// options; `--help`/`-h` yields [`Parsed::Help`].
    pub fn parse<I, S>(args: I) -> Parsed
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        fn take<T: std::str::FromStr>(flag: &str, value: Option<&str>, what: &str, into: &mut T) {
            match value.map(str::parse) {
                Some(Ok(v)) => *into = v,
                Some(Err(_)) => {
                    eprintln!("warning: {flag} takes {what}; keeping the default")
                }
                None => eprintln!("warning: {flag} is missing its {what}; keeping the default"),
            }
        }

        let mut o = Options::default();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            // A flag's value is the next argument unless it is itself a flag.
            let mut value = || args.next_if(|a| !a.as_ref().starts_with("--"));
            match arg.as_ref() {
                "--help" | "-h" => return Parsed::Help,
                "--quick" => {
                    o.scale = 0.15;
                    o.reps = 1;
                    o.copies = 2;
                }
                "--scale" => take(
                    "--scale",
                    value().as_ref().map(|s| s.as_ref()),
                    "a float",
                    &mut o.scale,
                ),
                "--reps" => take(
                    "--reps",
                    value().as_ref().map(|s| s.as_ref()),
                    "an integer",
                    &mut o.reps,
                ),
                "--copies" => take(
                    "--copies",
                    value().as_ref().map(|s| s.as_ref()),
                    "an integer",
                    &mut o.copies,
                ),
                "--seed" => take(
                    "--seed",
                    value().as_ref().map(|s| s.as_ref()),
                    "an integer",
                    &mut o.seed,
                ),
                other => eprintln!("warning: ignoring unknown argument {other:?} (try --help)"),
            }
        }
        Parsed::Run(o)
    }

    /// Parses `std::env::args()`; on `--help` prints usage and exits 0.
    pub fn from_args() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Parsed::Run(o) => o,
            Parsed::Help => {
                println!("{}", Options::USAGE);
                std::process::exit(0);
            }
        }
    }
}

/// Pins a measured configuration against the collector-supervision env
/// knobs: restarts are forced to zero so an exported
/// `OTF_GC_MAX_RESTARTS` (the CI recovery cell) cannot leak into a
/// benchmark process, and so a real collector panic mid-measurement
/// fails loudly (permanent poison) instead of silently restarting and
/// folding a recovery pause into the reported numbers.
pub fn pinned(cfg: GcConfig) -> GcConfig {
    cfg.with_max_collector_restarts(0)
}

/// Runs one copy of `workload` `reps` times; returns the run with the
/// median elapsed time.
pub fn median_run(w: &dyn Workload, cfg: GcConfig, o: &Options) -> RunResult {
    let cfg = pinned(cfg);
    let mut runs: Vec<RunResult> = (0..o.reps.max(1))
        .map(|r| driver::run_workload(w, cfg, o.seed + r as u64))
        .collect();
    runs.sort_by_key(|r| r.elapsed);
    runs.swap_remove(runs.len() / 2)
}

/// Runs `copies` concurrent copies `reps` times; returns the median batch
/// elapsed time (the paper's multiprocessor measurement).
pub fn median_copies(w: &dyn Workload, cfg: GcConfig, o: &Options) -> Duration {
    let cfg = pinned(cfg);
    let mut times: Vec<Duration> = (0..o.reps.max(1))
        .map(|r| driver::run_copies(w, cfg, o.seed + r as u64, o.copies).0)
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Percentage improvement of generational over non-generational for both
/// the multiprocessor (concurrent copies) and uniprocessor (single copy)
/// methodologies: `(multi, uni)`.
pub fn improvements(
    w: &dyn Workload,
    gen_cfg: GcConfig,
    nogen_cfg: GcConfig,
    o: &Options,
) -> (f64, f64) {
    let multi_nogen = median_copies(w, nogen_cfg, o);
    let multi_gen = median_copies(w, gen_cfg, o);
    let uni_nogen = median_run(w, nogen_cfg, o).elapsed;
    let uni_gen = median_run(w, gen_cfg, o).elapsed;
    (
        driver::percent_improvement(multi_nogen, multi_gen),
        driver::percent_improvement(uni_nogen, uni_gen),
    )
}

/// Uniprocessor-only improvement (used by the parameter-sweep figures,
/// which the paper also measured on a single configuration axis).
pub fn uni_improvement(
    w: &dyn Workload,
    gen_cfg: GcConfig,
    nogen_cfg: GcConfig,
    o: &Options,
) -> f64 {
    let nogen = median_run(w, nogen_cfg, o).elapsed;
    let gen = median_run(w, gen_cfg, o).elapsed;
    driver::percent_improvement(nogen, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        Options::parse(args.iter().copied())
    }

    #[test]
    fn defaults_with_no_args() {
        let Parsed::Run(o) = parse(&[]) else {
            panic!("expected Run")
        };
        assert_eq!((o.scale, o.reps, o.copies, o.seed), (1.0, 3, 4, 42));
    }

    #[test]
    fn all_flags_parse() {
        let Parsed::Run(o) = parse(&[
            "--scale", "0.5", "--reps", "7", "--copies", "2", "--seed", "9",
        ]) else {
            panic!("expected Run")
        };
        assert_eq!((o.scale, o.reps, o.copies, o.seed), (0.5, 7, 2, 9));
    }

    #[test]
    fn quick_preset() {
        let Parsed::Run(o) = parse(&["--quick"]) else {
            panic!("expected Run")
        };
        assert_eq!((o.scale, o.reps, o.copies), (0.15, 1, 2));
    }

    #[test]
    fn help_short_and_long() {
        assert_eq!(parse(&["--help"]), Parsed::Help);
        assert_eq!(parse(&["-h"]), Parsed::Help);
        assert_eq!(parse(&["--reps", "2", "--help"]), Parsed::Help);
    }

    #[test]
    fn unknown_flags_are_ignored_not_fatal() {
        let Parsed::Run(o) = parse(&["--bogus", "--reps", "5", "also-bogus"]) else {
            panic!("expected Run")
        };
        assert_eq!(o.reps, 5);
    }

    #[test]
    fn malformed_and_missing_values_keep_defaults() {
        let Parsed::Run(o) = parse(&["--scale", "not-a-float", "--reps"]) else {
            panic!("expected Run")
        };
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.reps, 3);
        // A flag directly following another flag is not consumed as its value.
        let Parsed::Run(o) = parse(&["--reps", "--seed", "5"]) else {
            panic!("expected Run")
        };
        assert_eq!(o.reps, 3);
        assert_eq!(o.seed, 5);
    }
}
