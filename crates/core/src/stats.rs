//! Collection statistics — every quantity the paper's evaluation reports
//! (Figures 10–15 and 21–23), plus the pause-time histograms the paper's
//! §8.2 latency discussion calls for.

use std::time::Duration;

use otf_support::hist::Snapshot;

/// Kind of a collection cycle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CycleKind {
    /// Collection of the young generation only (§3.2).
    Partial,
    /// Collection of the entire heap.  Every non-generational cycle is
    /// `Full`.
    Full,
}

impl std::fmt::Display for CycleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CycleKind::Partial => "partial",
            CycleKind::Full => "full",
        })
    }
}

/// Per-phase timing breakdown of one cycle.
#[derive(Copy, Clone, Debug, Default)]
pub struct PhaseTimes {
    /// `InitFullCollection` heap pass (full collections only).
    pub init: Duration,
    /// Handshake latency (all three handshakes).
    pub handshakes: Duration,
    /// Dirty-card scanning (`ClearCards`).
    pub cards: Duration,
    /// Global-root marking inside the third handshake window (trace
    /// work, not handshake latency — its own slot so handshake SLOs
    /// aren't inflated by root-set size).
    pub roots: Duration,
    /// Transitive marking.  Sequential schedules report the trace
    /// bucket's wall span; overlapped schedules
    /// (`GcConfig::overlap_phases`) report the summed per-lane CPU time
    /// instead, since the bucket span also covers the concurrent
    /// card/root producers.
    pub trace: Duration,
    /// The sweep pass.
    pub sweep: Duration,
    /// Overlapped schedules only: critical-path wall time of the
    /// cards∥roots∥trace overlap window (group open → trace-bucket
    /// close).  Zero in the sequential schedule.  When nonzero,
    /// `cards + roots + trace` are per-phase CPU times that can
    /// legitimately sum past this wall time (that is the point of the
    /// overlap) — CPU-sum accounting checks must use it in place of
    /// those three slots.
    pub mark_wall: Duration,
}

/// Everything measured about one collection cycle.
#[derive(Copy, Clone, Debug)]
pub struct CycleStats {
    /// Partial or full.
    pub kind: CycleKind,
    /// Wall-clock duration of the whole cycle (the paper's "time active
    /// GC", Figure 13 — on-the-fly, so mutators keep running meanwhile).
    pub duration: Duration,
    /// Phase breakdown.
    pub phases: PhaseTimes,
    /// Objects traced (marked) during the cycle — the paper's "objects
    /// scanned in collection" (Figure 11).
    pub objects_traced: u64,
    /// Old objects scanned *because they sat on dirty cards* — the paper's
    /// "objects scanned for inter-generational pointers" (Figure 11).
    pub intergen_objects: u64,
    /// Bytes of old objects scanned on dirty cards — the paper's "area
    /// scanned for dirty cards" (Figure 23).
    pub intergen_bytes: u64,
    /// Dirty cards found at the start of the cycle (Figure 22).
    pub dirty_cards: u64,
    /// Cards covering the allocated part of the heap (denominator for the
    /// percentage of dirty cards, Figure 22).
    pub cards_in_use: u64,
    /// Objects reclaimed by sweep (Figure 14).
    pub objects_freed: u64,
    /// Bytes reclaimed by sweep (Figure 14).
    pub bytes_freed: u64,
    /// Live objects that survived the sweep.
    pub objects_survived: u64,
    /// Bytes of surviving objects.
    pub bytes_survived: u64,
    /// Bytes of survivors that were created *during* the cycle (the
    /// allocation color) — allocation racing the collection, not yet part
    /// of the settled live set.
    pub bytes_alloc_colored: u64,
    /// Distinct 4 KB pages the collector touched (arena + side tables) —
    /// Figure 15.
    pub pages_touched: u64,
    /// Heap bytes in use when the cycle began.
    pub used_before: usize,
    /// Heap bytes in use when the cycle finished.
    pub used_after: usize,
    /// Bytes allocated since the previous cycle (the §3.3 trigger input).
    pub allocated_since_last: u64,
}

impl CycleStats {
    /// Fraction of young objects reclaimed this cycle:
    /// freed / (freed + survived-young).  For partial collections this is
    /// the paper's "percentage of objects freed in partial collections"
    /// (Figure 12).
    pub fn percent_objects_freed(&self) -> f64 {
        let survivors = match self.kind {
            // The young generation of a partial collection is what it
            // freed plus what it promoted (newly traced objects, minus
            // old objects re-scanned off dirty cards); old-generation
            // bystanders don't belong in the denominator.
            CycleKind::Partial => self.objects_traced.saturating_sub(self.intergen_objects),
            CycleKind::Full => self.objects_survived,
        };
        let total = self.objects_freed + survivors;
        if total == 0 {
            0.0
        } else {
            100.0 * self.objects_freed as f64 / total as f64
        }
    }

    /// Fraction of bytes reclaimed this cycle (Figure 12, bytes column).
    pub fn percent_bytes_freed(&self) -> f64 {
        let total = self.bytes_freed + self.bytes_survived;
        if total == 0 {
            0.0
        } else {
            100.0 * self.bytes_freed as f64 / total as f64
        }
    }

    /// Percentage of in-use cards that were dirty (Figure 22).
    pub fn percent_dirty_cards(&self) -> f64 {
        if self.cards_in_use == 0 {
            0.0
        } else {
            100.0 * self.dirty_cards as f64 / self.cards_in_use as f64
        }
    }
}

/// A point-in-time snapshot of all collector statistics, returned by
/// [`Gc::stats`](crate::Gc::stats).
#[derive(Clone, Debug, Default)]
pub struct GcStats {
    /// Per-cycle records, oldest first.
    pub cycles: Vec<CycleStats>,
    /// Total objects ever allocated.
    pub objects_allocated: u64,
    /// Total bytes ever allocated (granule-rounded).
    pub bytes_allocated: u64,
    /// Wall-clock time since the collector was created.
    pub elapsed: Duration,
    /// Total time a collection cycle was active (sum of cycle durations).
    pub gc_active: Duration,
    /// Histogram of every GC-induced mutator pause, in nanoseconds: the
    /// `cooperate` slow path (handshake adoption, including root marking
    /// on the third handshake) and allocation stalls.  The paper's
    /// central claim is that these stay bounded by handshake response
    /// time rather than heap size.
    pub pause: Snapshot,
    /// Histogram of handshake response latency (`postHandshake` → a
    /// mutator's adoption in `cooperate`), in nanoseconds.
    pub handshake: Snapshot,
    /// Histogram of allocation stalls (mutator blocked on a full
    /// collection), in nanoseconds.  Also folded into [`pause`].
    ///
    /// [`pause`]: GcStats::pause
    pub alloc_stall: Snapshot,
    /// Write-barrier slow-path hits: barriers that took a graying branch
    /// rather than a plain store (+ card mark).
    pub barrier_slow_hits: u64,
    /// Trace-ring events overwritten before they could be drained.
    /// Nonzero means any drained event trace is truncated at its old end
    /// (the ring keeps only the most recent 2¹⁴ events).
    pub dropped_events: u64,
    /// Handshake-watchdog trips: times a handshake stalled past
    /// [`GcConfig::handshake_stall_ms`](crate::GcConfig) and the
    /// collector reported the unresponsive mutators instead of hanging
    /// silently.
    pub watchdog_trips: u64,
    /// Whether the collector thread has panicked (poisoned shutdown):
    /// no further collection will run; allocation continues in grow-only
    /// mode and fails with `AllocError::CollectorUnavailable`.  With
    /// [`GcConfig::max_collector_restarts`](crate::GcConfig) > 0 a panic
    /// only poisons once the restart budget is exhausted (or the abort
    /// protocol itself panics); until then the supervisor recovers and
    /// this stays `false`.
    pub collector_poisoned: bool,
    /// Times the supervisor respawned the collector thread after a panic
    /// (bounded by `GcConfig::max_collector_restarts`; DESIGN.md §4.8).
    pub collector_restarts: u64,
    /// Collection cycles aborted mid-flight by the safe abort protocol
    /// and rolled forward to a no-op.  An aborted cycle frees nothing —
    /// its garbage floats to the next completed collection.
    pub cycles_aborted: u64,
    /// Histogram of safe cycle-abort durations (handshake restore +
    /// live repaint + lazy-epoch finalization), in nanoseconds.
    pub recovery: Snapshot,
    /// Per-collector-worker statistics (one entry per configured GC
    /// thread, §4.4).  Worker 0 is the collector thread itself; at
    /// `gc_threads = 1` this is a single entry with zero steals.
    pub workers: Vec<WorkerStats>,
    /// Number of allocation shards (1 = the unsharded single free-list
    /// allocator; see `GcConfig::alloc_shards`).
    pub alloc_shards: usize,
    /// Free granules pooled per shard at snapshot time (empty for the
    /// unsharded back-end).  Together with [`store_free_granules`] this
    /// sums to the heap's total free-list granules — the balance the
    /// shard property tests check.
    ///
    /// [`store_free_granules`]: GcStats::store_free_granules
    pub shard_free_granules: Vec<u64>,
    /// Free granules held by the global block store (unsharded: the
    /// single free list).
    pub store_free_granules: u64,
    /// Histogram of LAB-refill chunk-acquisition latency, in
    /// nanoseconds, recorded in both sweep modes.  Under
    /// `GcConfig::lazy_sweep` the refill sweeps an epoch segment first,
    /// so sweep work moved onto mutators is visible here (and in the
    /// p99.99 comparison against eager mode) instead of hiding.
    pub lab_refill: Snapshot,
    /// Lazy sweep only: cumulative granules reclaimed *at allocation* —
    /// by mutator segment sweeps (LAB refill sweep-to-allocate and the
    /// allocation-pressure drain).  Zero in eager mode.
    pub lazy_freed_at_alloc_granules: u64,
    /// Lazy sweep only: cumulative granules reclaimed *at cycle
    /// finalization* — by the collector's between-cycle drain and the
    /// cycle-start / shutdown epoch finalization.  Zero in eager mode.
    pub lazy_freed_at_final_granules: u64,
    /// Lazy sweep only: sweep epochs published (one per completed
    /// cycle).  Zero in eager mode.
    pub lazy_epochs: u64,
    /// Heap bytes in use at snapshot time (object bytes plus leased
    /// LABs).  In a post-shutdown snapshot every LAB has been retired
    /// and any lazy epoch finalized, so this is exactly the surviving
    /// live set — the end-state figure the sweep-mode parity gates
    /// compare.
    pub used_bytes: usize,
}

/// Per-collector-worker phase latency and steal counts (§4.4).
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Histogram of this worker's per-cycle mark-phase time, in ns.
    pub mark: Snapshot,
    /// Histogram of this worker's per-cycle sweep-phase time, in ns.
    pub sweep: Snapshot,
    /// Objects this worker obtained by stealing (sibling deques or the
    /// shared gray queue while out of local work).
    pub steals: u64,
}

impl GcStats {
    /// Cycles of the given kind.
    pub fn cycles_of(&self, kind: CycleKind) -> impl Iterator<Item = &CycleStats> {
        self.cycles.iter().filter(move |c| c.kind == kind)
    }

    /// Number of partial collections.
    pub fn partial_count(&self) -> usize {
        self.cycles_of(CycleKind::Partial).count()
    }

    /// Number of full collections.
    pub fn full_count(&self) -> usize {
        self.cycles_of(CycleKind::Full).count()
    }

    /// Percentage of wall-clock time a collection was active (Figure 10).
    pub fn percent_time_gc_active(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            100.0 * self.gc_active.as_secs_f64() / self.elapsed.as_secs_f64()
        }
    }

    /// Mean of `f` over cycles of `kind`; `None` if there were none.
    pub fn mean_over<F: Fn(&CycleStats) -> f64>(&self, kind: CycleKind, f: F) -> Option<f64> {
        let mut n = 0u64;
        let mut sum = 0.0;
        for c in self.cycles_of(kind) {
            n += 1;
            sum += f(c);
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Average cycle duration in milliseconds for `kind` (Figure 13).
    pub fn avg_cycle_ms(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.duration.as_secs_f64() * 1e3)
    }

    /// Average objects freed per cycle of `kind` (Figure 14).
    pub fn avg_objects_freed(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.objects_freed as f64)
    }

    /// Average bytes freed per cycle of `kind` (Figure 14).
    pub fn avg_bytes_freed(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.bytes_freed as f64)
    }

    /// Average objects traced per cycle of `kind` (Figure 11).
    pub fn avg_objects_traced(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.objects_traced as f64)
    }

    /// Average old objects scanned for inter-generational pointers per
    /// cycle of `kind` (Figure 11, first column).
    pub fn avg_intergen_objects(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.intergen_objects as f64)
    }

    /// Average pages touched per cycle of `kind` (Figure 15).
    pub fn avg_pages_touched(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.pages_touched as f64)
    }

    /// Average percentage of objects freed per cycle of `kind` (Figure 12).
    pub fn avg_percent_objects_freed(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, CycleStats::percent_objects_freed)
    }

    /// Average percentage of bytes freed per cycle of `kind` (Figure 12).
    pub fn avg_percent_bytes_freed(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, CycleStats::percent_bytes_freed)
    }

    /// Average percentage of dirty cards per cycle of `kind` (Figure 22).
    pub fn avg_percent_dirty_cards(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, CycleStats::percent_dirty_cards)
    }

    /// Average bytes scanned on dirty cards per cycle of `kind`
    /// (Figure 23).
    pub fn avg_intergen_bytes(&self, kind: CycleKind) -> Option<f64> {
        self.mean_over(kind, |c| c.intergen_bytes as f64)
    }

    /// The longest GC-induced mutator pause observed.
    pub fn max_pause(&self) -> Duration {
        Duration::from_nanos(self.pause.max())
    }

    /// The `q`-quantile (`0.0..=1.0`) of GC-induced mutator pauses.
    pub fn pause_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.pause.quantile(q))
    }

    /// The `q`-quantile (`0.0..=1.0`) of handshake response latency.
    pub fn handshake_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.handshake.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(kind: CycleKind, freed: u64, survived: u64) -> CycleStats {
        CycleStats {
            kind,
            duration: Duration::from_millis(10),
            phases: PhaseTimes::default(),
            objects_traced: survived,
            intergen_objects: 1,
            intergen_bytes: 64,
            dirty_cards: 5,
            cards_in_use: 50,
            objects_freed: freed,
            bytes_freed: freed * 32,
            objects_survived: survived,
            bytes_survived: survived * 32,
            bytes_alloc_colored: 0,
            pages_touched: 7,
            used_before: 1000,
            used_after: 500,
            allocated_since_last: 4096,
        }
    }

    #[test]
    fn percentages() {
        // Partial: denominator is the young generation = freed + newly
        // promoted (traced − intergen re-scans): 75 / (75 + 25 - 1).
        let c = cycle(CycleKind::Partial, 75, 25);
        assert!((c.percent_objects_freed() - 100.0 * 75.0 / 99.0).abs() < 1e-9);
        assert!((c.percent_bytes_freed() - 75.0).abs() < 1e-9);
        assert!((c.percent_dirty_cards() - 10.0).abs() < 1e-9);
        // Full: denominator is everything allocated = freed + survivors.
        let c = cycle(CycleKind::Full, 75, 25);
        assert!((c.percent_objects_freed() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cycle_percentages_are_zero() {
        let mut c = cycle(CycleKind::Full, 0, 0);
        c.cards_in_use = 0;
        assert_eq!(c.percent_objects_freed(), 0.0);
        assert_eq!(c.percent_bytes_freed(), 0.0);
        assert_eq!(c.percent_dirty_cards(), 0.0);
    }

    #[test]
    fn aggregation_by_kind() {
        let stats = GcStats {
            cycles: vec![
                cycle(CycleKind::Partial, 10, 10),
                cycle(CycleKind::Partial, 30, 10),
                cycle(CycleKind::Full, 100, 100),
            ],
            objects_allocated: 260,
            bytes_allocated: 260 * 32,
            elapsed: Duration::from_millis(100),
            gc_active: Duration::from_millis(30),
            ..GcStats::default()
        };
        assert_eq!(stats.partial_count(), 2);
        assert_eq!(stats.full_count(), 1);
        assert_eq!(stats.avg_objects_freed(CycleKind::Partial), Some(20.0));
        assert_eq!(stats.avg_objects_freed(CycleKind::Full), Some(100.0));
        assert!((stats.percent_time_gc_active() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn pause_helpers_read_histograms() {
        let h = otf_support::hist::Histogram::new();
        h.record(1_000);
        h.record(2_000);
        let stats = GcStats {
            pause: h.snapshot(),
            ..GcStats::default()
        };
        assert_eq!(stats.max_pause(), Duration::from_nanos(2_000));
        assert!(stats.pause_quantile(0.5) <= stats.pause_quantile(1.0));
        assert_eq!(stats.pause_quantile(1.0), stats.max_pause());
        // Empty histograms answer zero, not garbage.
        assert_eq!(stats.handshake_quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn means_over_empty_are_none() {
        let stats = GcStats::default();
        assert_eq!(stats.avg_cycle_ms(CycleKind::Partial), None);
        assert_eq!(stats.avg_pages_touched(CycleKind::Full), None);
        assert_eq!(stats.percent_time_gc_active(), 0.0);
    }
}
