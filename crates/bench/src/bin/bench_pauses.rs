//! Pause-time benchmark: the paper's latency claim, measured.
//!
//! An on-the-fly collector's mutator pauses are bounded by handshake
//! response time, not by heap size or live-set size (§2, §8.2).  This
//! binary runs four allocation-heavy workloads under the generational
//! and non-generational collectors and reports the max / p99 / p99.9
//! GC-induced mutator pause per configuration, straight from the
//! collector's always-on pause histograms (merged across repetitions —
//! histogram mergeability is what makes multi-rep quantiles exact).
//!
//! Also measured: the event-tracing overhead A/B (same workload with the
//! trace ring enabled vs disabled), since the ring's record path is on
//! the collector's phase boundaries and every handshake.
//!
//! Results are printed as a table and emitted machine-readable to
//! `BENCH_pauses.json` (set `OTF_BENCH_OUT` to override).  The binary
//! exits non-zero if any pause-quantile sequence is non-monotone
//! (p50 ≤ p99 ≤ p99.9 ≤ max must hold by construction) or the JSON
//! cannot be written, so CI can gate on it.
//!
//! Accepts the standard figure-harness flags (`--scale`, `--reps`,
//! `--seed`, `--quick`).

use std::time::Duration;

use otf_bench::measure::{pinned, Options};
use otf_bench::table::Table;
use otf_gc::GcConfig;
use otf_support::hist::Snapshot;
use otf_workloads::driver;
use otf_workloads::{Anagram, Db, Jess, RayTracer, Workload};

/// Merged measurement of one workload × collector configuration.
struct PauseResult {
    workload: &'static str,
    config: &'static str,
    /// Median elapsed wall time across reps.
    elapsed: Duration,
    /// Total cycles across reps.
    cycles: usize,
    pause: Snapshot,
    handshake: Snapshot,
    alloc_stall: Snapshot,
    barrier_slow: u64,
    /// Sum over all cycles of the per-phase durations (init + handshakes
    /// + cards + roots + trace + sweep).
    phase_ns: u128,
    /// Sum over all cycles of the cycle's CPU-equivalent time: the cycle
    /// wall time, with the overlap window's wall span (`mark_wall`, when
    /// nonzero) substituted by its CPU content — under an overlapped
    /// schedule the cards/roots/trace slots are per-phase CPU times
    /// whose sum legitimately exceeds the window's wall span.
    cycle_ns: u128,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Runs `reps` repetitions and merges the histograms (sums counters,
/// takes the median elapsed time).
fn run_case(
    workload: &'static str,
    w: &dyn Workload,
    cfg: GcConfig,
    config: &'static str,
    o: &Options,
) -> PauseResult {
    let mut pause = Snapshot::default();
    let mut handshake = Snapshot::default();
    let mut alloc_stall = Snapshot::default();
    let mut barrier_slow = 0u64;
    let mut cycles = 0usize;
    let mut phase_ns = 0u128;
    let mut cycle_ns = 0u128;
    let mut elapses = Vec::new();
    for rep in 0..o.reps.max(1) {
        let r = driver::run_workload(w, pinned(cfg), o.seed + rep as u64);
        pause.merge(&r.stats.pause);
        handshake.merge(&r.stats.handshake);
        alloc_stall.merge(&r.stats.alloc_stall);
        barrier_slow += r.stats.barrier_slow_hits;
        cycles += r.stats.cycles.len();
        for c in &r.stats.cycles {
            let p = c.phases;
            phase_ns += (p.init + p.handshakes + p.cards + p.roots + p.trace + p.sweep).as_nanos();
            let wall = c.duration.as_nanos();
            cycle_ns += if p.mark_wall.is_zero() {
                wall
            } else {
                // Overlapped schedule: replace the overlap window's
                // wall span with its CPU content so the gate compares
                // CPU-sum to CPU-sum.
                wall.saturating_sub(p.mark_wall.as_nanos())
                    + (p.cards + p.roots + p.trace).as_nanos()
            };
        }
        elapses.push(r.elapsed);
    }
    elapses.sort_unstable();
    PauseResult {
        workload,
        config,
        elapsed: elapses[elapses.len() / 2],
        cycles,
        pause,
        handshake,
        alloc_stall,
        barrier_slow,
        phase_ns,
        cycle_ns,
    }
}

/// Phase-accounting gate: across every cycle of every row, the per-phase
/// durations must sum to within 5% of the cycle's CPU-equivalent time.
/// The phase breakdown reads the packet schedule's bucket spans back
/// (each span sampled exactly once at bucket close, nested card/root
/// work subtracted out of its handshake window), so the sum telescopes
/// the whole cycle minus only prologue/epilogue overhead — a ratio
/// outside [0.95, 1.05] means a phase is double-sampled, unattributed,
/// or billed to two slots.  For overlapped schedules
/// (`OTF_GC_OVERLAP=1`) the denominator substitutes the overlap
/// window's CPU content for its wall span (see [`PauseResult`]), so
/// the gate holds in CPU-sum form even though the overlapping phases'
/// wall spans no longer telescope.
fn phase_sum_ratio(rows: &[PauseResult]) -> f64 {
    let phase_ns: u128 = rows.iter().map(|r| r.phase_ns).sum();
    let cycle_ns: u128 = rows.iter().map(|r| r.cycle_ns).sum();
    if cycle_ns == 0 {
        1.0
    } else {
        phase_ns as f64 / cycle_ns as f64
    }
}

/// The quantiles every row reports, in required-monotone order.
const QS: [(f64, &str); 4] = [(0.5, "p50"), (0.99, "p99"), (0.999, "p99.9"), (1.0, "max")];

/// Checks that the pause quantiles are monotone in q and that the last
/// one equals the recorded maximum.  A violation is a histogram bug, not
/// measurement noise — fail loudly.
fn check_monotone(r: &PauseResult) -> Result<(), String> {
    let vals: Vec<u64> = QS.iter().map(|&(q, _)| r.pause.quantile(q)).collect();
    for i in 1..vals.len() {
        if vals[i - 1] > vals[i] {
            return Err(format!(
                "{}/{}: pause {} = {} ns > {} = {} ns (non-monotone quantiles)",
                r.workload,
                r.config,
                QS[i - 1].1,
                vals[i - 1],
                QS[i].1,
                vals[i]
            ));
        }
    }
    if vals[QS.len() - 1] != r.pause.max() {
        return Err(format!(
            "{}/{}: pause quantile(1.0) = {} ns != max = {} ns",
            r.workload,
            r.config,
            vals[QS.len() - 1],
            r.pause.max()
        ));
    }
    Ok(())
}

/// Event-tracing overhead A/B on one workload: elapsed with the trace
/// ring enabled over elapsed with it disabled.
struct TraceOverhead {
    workload: &'static str,
    off: Duration,
    on: Duration,
}

impl TraceOverhead {
    fn ratio(&self) -> f64 {
        if self.off.is_zero() {
            0.0
        } else {
            self.on.as_secs_f64() / self.off.as_secs_f64()
        }
    }
}

fn trace_overhead(w: &dyn Workload, o: &Options) -> TraceOverhead {
    let off = run_case("db", w, GcConfig::generational(), "gen", o).elapsed;
    let on = run_case(
        "db",
        w,
        GcConfig::generational().with_event_trace(true),
        "gen+trace",
        o,
    )
    .elapsed;
    TraceOverhead {
        workload: "db",
        off,
        on,
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn write_json(rows: &[PauseResult], trace: &TraceOverhead, o: &Options, path: &str) {
    let ratio = phase_sum_ratio(rows);
    let mut j = String::from("{\n  \"bench\": \"pauses\",\n");
    j.push_str(&format!(
        "  \"scale\": {}, \"reps\": {}, \"seed\": {},\n",
        o.scale, o.reps, o.seed
    ));
    j.push_str(&format!(
        "  \"phase_sum_ratio\": {:.4}, \"phase_sum_ok\": {},\n",
        ratio,
        (0.95..=1.05).contains(&ratio)
    ));
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"elapsed_ms\": {:.2}, \
             \"cycles\": {}, \"pauses\": {}, \"max_us\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"handshake_p99_us\": {:.1}, \
             \"stall_max_us\": {:.1}, \"barrier_slow\": {}}}{}\n",
            json_escape_free(r.workload),
            json_escape_free(r.config),
            r.elapsed.as_secs_f64() * 1e3,
            r.cycles,
            r.pause.count(),
            us(r.pause.max()),
            us(r.pause.quantile(0.5)),
            us(r.pause.quantile(0.99)),
            us(r.pause.quantile(0.999)),
            us(r.handshake.quantile(0.99)),
            us(r.alloc_stall.max()),
            r.barrier_slow,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"trace_overhead\": {{\"workload\": \"{}\", \"off_ms\": {:.2}, \
         \"on_ms\": {:.2}, \"ratio\": {:.3}}}\n",
        json_escape_free(trace.workload),
        trace.off.as_secs_f64() * 1e3,
        trace.on.as_secs_f64() * 1e3,
        trace.ratio()
    ));
    j.push_str("}\n");
    if let Err(e) = std::fs::write(path, &j) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}

fn main() {
    let o = Options::from_args();
    let quick = std::env::var_os("OTF_BENCH_QUICK").is_some() || o.scale < 0.2;
    let wl_scale = if quick { o.scale.min(0.1) } else { o.scale };

    let workloads: [(&'static str, Box<dyn Workload>); 4] = [
        ("db", Box::new(Db::new().scaled(wl_scale))),
        ("jess", Box::new(Jess::new().scaled(wl_scale))),
        ("mtrt", Box::new(RayTracer::mtrt().scaled(wl_scale))),
        ("anagram", Box::new(Anagram::new().scaled(wl_scale))),
    ];
    let configs: [(&'static str, GcConfig); 2] = [
        ("gen", GcConfig::generational()),
        ("nogen", GcConfig::non_generational()),
    ];

    println!("== GC-induced mutator pauses (handshakes + allocation stalls) ==\n");
    let mut rows = Vec::new();
    for (name, w) in &workloads {
        for &(cfg_name, cfg) in &configs {
            let r = run_case(name, w.as_ref(), cfg, cfg_name, &o);
            println!(
                "{name}/{cfg_name:<6} {:>6} pauses  max {:>9.1} us  p99 {:>9.1} us  \
                 ({} cycles, {:.1} ms)",
                r.pause.count(),
                us(r.pause.max()),
                us(r.pause.quantile(0.99)),
                r.cycles,
                r.elapsed.as_secs_f64() * 1e3,
            );
            rows.push(r);
        }
    }

    let mut violations = 0;
    for r in &rows {
        if let Err(e) = check_monotone(r) {
            eprintln!("error: {e}");
            violations += 1;
        }
    }
    let ratio = phase_sum_ratio(&rows);
    println!("\nphase-sum / cycle-wall ratio: {ratio:.4} (gate: within 5% of 1.0)");
    if !(0.95..=1.05).contains(&ratio) {
        eprintln!(
            "error: phase durations sum to {ratio:.4}x cycle wall time (outside [0.95, 1.05])"
        );
        violations += 1;
    }

    let mut t = Table::new("GC pause quantiles (microseconds, merged across reps)");
    t.header([
        "workload",
        "config",
        "pauses",
        "p50",
        "p99",
        "p99.9",
        "max",
        "hs p99",
        "stall max",
        "barrier slow",
        "cycles",
    ]);
    for r in &rows {
        t.row([
            r.workload.to_string(),
            r.config.to_string(),
            r.pause.count().to_string(),
            format!("{:.1}", us(r.pause.quantile(0.5))),
            format!("{:.1}", us(r.pause.quantile(0.99))),
            format!("{:.1}", us(r.pause.quantile(0.999))),
            format!("{:.1}", us(r.pause.max())),
            format!("{:.1}", us(r.handshake.quantile(0.99))),
            format!("{:.1}", us(r.alloc_stall.max())),
            r.barrier_slow.to_string(),
            r.cycles.to_string(),
        ]);
    }
    println!();
    t.print();

    println!("\n== event-tracing overhead (db, generational) ==\n");
    let trace = trace_overhead(&Db::new().scaled(wl_scale), &o);
    println!(
        "trace off {:.1} ms, trace on {:.1} ms  -> ratio {:.3}",
        trace.off.as_secs_f64() * 1e3,
        trace.on.as_secs_f64() * 1e3,
        trace.ratio()
    );

    let path = std::env::var("OTF_BENCH_OUT").unwrap_or_else(|_| "BENCH_pauses.json".to_string());
    write_json(&rows, &trace, &o, &path);

    if violations > 0 {
        eprintln!("{violations} quantile violation(s)");
        std::process::exit(1);
    }
}
