//! Randomized tests for the heap substrate's core invariants, on the
//! deterministic `otf_support::check` harness (fixed seeds, shrink by
//! halving).

use otf_heap::{CardTable, Chunk, Color, FreeLists, Header, HeapSpace, ObjShape, GRANULE};
use otf_support::check::run_cases;

const CASES: u64 = 256;

/// Header encode/decode is a bijection over the valid field ranges.
#[test]
fn header_round_trip() {
    run_cases("header_round_trip", 0x4EAD, CASES, |g| {
        let refs = g.usize_in(0..5000);
        let data = g.usize_in(0..5000);
        let class = g.u32_in(0..1_000_000);
        let shape = ObjShape::new(refs, data).with_class(class);
        let h = Header::decode(shape.encode_header());
        assert_eq!(h.ref_slots(), refs);
        assert_eq!(h.class_id(), class);
        assert_eq!(h.size_granules(), shape.size_granules());
        assert_eq!(h.size_granules(), (1 + refs + data).div_ceil(2));
    });
}

/// Shape sizes are monotone and granule-rounded.
#[test]
fn shape_size_invariants() {
    run_cases("shape_size_invariants", 0x5A47, CASES, |g| {
        let refs = g.usize_in(0..1000);
        let data = g.usize_in(0..1000);
        let s = ObjShape::new(refs, data);
        assert!(s.size_granules() >= 1);
        assert_eq!(s.size_bytes() % GRANULE, 0);
        assert!(s.size_bytes() >= (1 + refs + data) * 8);
        assert!(s.size_bytes() < (1 + refs + data) * 8 + GRANULE);
    });
}

/// Free lists conserve granules and never hand out overlapping chunks.
#[test]
fn freelist_no_overlap_and_conservation() {
    run_cases("freelist_no_overlap_and_conservation", 0xF4EE, 128, |g| {
        let ops = g.vec_of(1..120, |g| (g.u32_in(1..200), g.u32_in(1..400)));
        let f = FreeLists::new();
        // Seed with one large region [0, 100_000).
        let total = 100_000u64;
        f.insert(Chunk::new(0, total as u32));
        let mut held: Vec<Chunk> = Vec::new();
        let mut held_granules = 0u64;

        for (i, (min, pref)) in ops.into_iter().enumerate() {
            let (min, pref) = (min, min.max(pref));
            if i % 3 == 2 && !held.is_empty() {
                // Give one back.
                let c = held.swap_remove(i % held.len());
                held_granules -= c.len as u64;
                f.insert(c);
            } else if let Some(c) = f.alloc(min, pref) {
                assert!(c.len >= min && c.len <= pref);
                // No overlap with anything we already hold.
                for h in &held {
                    assert!(
                        c.end() <= h.start || h.end() <= c.start,
                        "overlap: {c:?} vs {h:?}"
                    );
                }
                held_granules += c.len as u64;
                held.push(c);
            }
            assert_eq!(f.free_granules() + held_granules, total);
        }
    });
}

/// Card geometry: every byte maps into exactly one card whose granule
/// range covers it.
#[test]
fn card_geometry() {
    run_cases("card_geometry", 0xCA4D, CASES, |g| {
        let shift = g.u32_in(4..13);
        let byte = g.usize_in(0..1 << 20);
        let card_size = 1usize << shift;
        let t = CardTable::new(1 << 20, card_size);
        let card = t.card_of_byte(byte);
        let (gs, ge) = t.granule_range(card);
        let granule = byte / GRANULE;
        assert!(gs <= granule && granule < ge);
        assert_eq!(ge - gs, card_size / GRANULE);
        // Marking the byte dirties exactly that card.
        t.mark_byte(byte);
        assert!(t.is_dirty(card));
        assert_eq!(t.count_dirty(t.len()), 1);
    });
}

/// The color table is a faithful parse map: installing random objects
/// back-to-back and walking the heap sees exactly those objects, in
/// address order, with correct headers.
#[test]
fn heap_parse_integrity() {
    run_cases("heap_parse_integrity", 0x9A45E, 128, |g| {
        let shapes = g.vec_of(1..60, |g| (g.usize_in(0..6), g.usize_in(0..10)));
        let heap = HeapSpace::new(1 << 20, 1 << 20);
        let mut installed = Vec::new();
        for (refs, data) in shapes {
            let shape = ObjShape::new(refs, data).with_class((refs * 16 + data) as u32);
            let n = shape.size_granules() as u32;
            let chunk = heap.alloc_chunk(n, n).unwrap();
            let obj = heap.install_object(chunk.start as usize, &shape, Color::White);
            installed.push((obj, shape));
        }
        let mut seen = Vec::new();
        heap.for_each_object_start(1, heap.frontier_granule(), |obj, color, header| {
            seen.push((obj, color, header.ref_slots(), header.class_id()));
        });
        assert_eq!(seen.len(), installed.len());
        for ((obj, shape), (sobj, scolor, srefs, sclass)) in installed.iter().zip(&seen) {
            assert_eq!(obj, sobj);
            assert_eq!(*scolor, Color::White);
            assert_eq!(shape.ref_slots(), *srefs);
            assert_eq!(shape.class_id(), *sclass);
        }
    });
}

/// `object_end` (interior scanning) always agrees with the header.
#[test]
fn object_end_matches_header() {
    run_cases("object_end_matches_header", 0x0B1E, 128, |g| {
        let shapes = g.vec_of(1..40, |g| (g.usize_in(0..4), g.usize_in(0..12)));
        let heap = HeapSpace::new(1 << 20, 1 << 20);
        for (refs, data) in shapes {
            let shape = ObjShape::new(refs, data);
            let n = shape.size_granules() as u32;
            let chunk = heap.alloc_chunk(n, n).unwrap();
            let obj = heap.install_object(chunk.start as usize, &shape, Color::Yellow);
            let end = heap
                .colors()
                .object_end(obj.granule(), heap.frontier_granule());
            assert_eq!(end - obj.granule(), shape.size_granules());
        }
    });
}
