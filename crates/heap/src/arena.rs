//! The arena: one contiguous, word-atomic memory reservation.
//!
//! The whole maximum heap is reserved up front as an array of `AtomicU64`
//! words (so every slot access is naturally atomic, which the fine-grained
//! DLG collector requires — mutators and the collector read and write
//! reference slots concurrently without locks).  A soft *committed*
//! watermark models the paper's growing heap: runs start at 1 MB committed
//! and may grow up to the 32 MB maximum.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::addr::{ObjectRef, GRANULE, MAX_HEAP_GRANULES, WORD};
use crate::layout::Header;

/// The word-addressed heap memory.
#[derive(Debug)]
pub struct Arena {
    words: Box<[AtomicU64]>,
    bytes: usize,
    committed: AtomicUsize,
}

impl Arena {
    /// Reserves an arena of `max_bytes` (rounded up to a granule) with
    /// `initial_bytes` committed.
    ///
    /// # Panics
    ///
    /// Panics if `initial_bytes > max_bytes`, `max_bytes` is zero, or
    /// `max_bytes` exceeds the `u32` object-offset address space
    /// ([`MAX_HEAP_GRANULES`] granules) — beyond it, `ObjectRef` and
    /// `Chunk` offsets would wrap silently.  Checked before the backing
    /// memory is reserved so an oversized request fails fast.
    pub fn new(max_bytes: usize, initial_bytes: usize) -> Arena {
        assert!(max_bytes > 0, "arena must be non-empty");
        assert!(initial_bytes <= max_bytes, "initial exceeds maximum");
        assert!(
            max_bytes.div_ceil(GRANULE) <= MAX_HEAP_GRANULES,
            "arena of {max_bytes} bytes exceeds the u32 object-offset space \
             ({} bytes max)",
            MAX_HEAP_GRANULES as u64 * GRANULE as u64,
        );
        let bytes = max_bytes.div_ceil(GRANULE) * GRANULE;
        let n_words = bytes / WORD;
        let mut v = Vec::with_capacity(n_words);
        v.resize_with(n_words, || AtomicU64::new(0));
        Arena {
            words: v.into_boxed_slice(),
            bytes,
            committed: AtomicUsize::new(initial_bytes.div_ceil(GRANULE) * GRANULE),
        }
    }

    /// Total reserved size in bytes.
    #[inline]
    pub fn max_bytes(&self) -> usize {
        self.bytes
    }

    /// Total reserved size in granules.
    #[inline]
    pub fn max_granules(&self) -> usize {
        self.bytes / GRANULE
    }

    /// Currently committed size in bytes (the soft heap limit used by the
    /// triggering policy).
    #[inline]
    pub fn committed_bytes(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    /// Currently committed size in granules.
    #[inline]
    pub fn committed_granules(&self) -> usize {
        self.committed_bytes() / GRANULE
    }

    /// Grows the committed watermark to exactly `min(target, max)` (no-op
    /// if already at least that big).  Returns the new committed size.
    /// Exact-size growth keeps the almost-full trigger's gap at its
    /// intended width; doubling would overshoot it.
    pub fn grow_to(&self, target: usize) -> usize {
        let goal = target.div_ceil(GRANULE) * GRANULE;
        let goal = goal.min(self.bytes);
        loop {
            let cur = self.committed.load(Ordering::Acquire);
            if cur >= goal {
                return cur;
            }
            if self
                .committed
                .compare_exchange(cur, goal, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return goal;
            }
        }
    }

    /// Sets the committed watermark to exactly
    /// `clamp(target, floor, max)` — unlike [`grow_to`](Arena::grow_to)
    /// this may shrink, as long as `floor` (the caller's allocation
    /// high-watermark) is respected.
    pub fn commit_to(&self, target: usize, floor: usize) -> usize {
        let goal = target.max(floor).div_ceil(GRANULE) * GRANULE;
        let goal = goal.min(self.bytes);
        self.committed.store(goal, Ordering::Release);
        goal
    }

    /// Grows the committed watermark to `min(committed * 2, max)`.
    /// Returns the new committed size, or `None` if already at maximum.
    pub fn grow(&self) -> Option<usize> {
        loop {
            let cur = self.committed.load(Ordering::Acquire);
            if cur >= self.bytes {
                return None;
            }
            let next = (cur * 2).min(self.bytes);
            if self
                .committed
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(next);
            }
        }
    }

    /// Loads the raw word at word index `idx`.
    #[inline]
    pub fn load_word(&self, idx: usize, order: Ordering) -> u64 {
        self.words[idx].load(order)
    }

    /// Stores the raw word at word index `idx`.
    #[inline]
    pub fn store_word(&self, idx: usize, value: u64, order: Ordering) {
        self.words[idx].store(value, order);
    }

    /// Reads and decodes the header of `obj` (acquire: pairs with the
    /// allocation publication).
    ///
    /// # Panics
    ///
    /// Debug builds panic if the word is not a valid header.
    #[inline]
    pub fn header(&self, obj: ObjectRef) -> Header {
        Header::decode(self.words[obj.word()].load(Ordering::Acquire))
    }

    /// Writes the header word for a new object (release).
    #[inline]
    pub fn write_header(&self, obj: ObjectRef, header_word: u64) {
        self.words[obj.word()].store(header_word, Ordering::Release);
    }

    /// Loads reference slot `slot` of `obj` as a raw slot value.
    #[inline]
    pub fn load_ref_slot(&self, obj: ObjectRef, slot: usize) -> ObjectRef {
        ObjectRef::from_slot(self.words[obj.word() + 1 + slot].load(Ordering::Acquire))
    }

    /// Stores reference slot `slot` of `obj`.
    #[inline]
    pub fn store_ref_slot(&self, obj: ObjectRef, slot: usize, value: ObjectRef) {
        self.words[obj.word() + 1 + slot].store(value.to_slot(), Ordering::Release);
    }

    /// Loads data word `idx` (indexed after the reference slots) of an
    /// object with `ref_slots` reference slots.
    #[inline]
    pub fn load_data_word(&self, obj: ObjectRef, ref_slots: usize, idx: usize) -> u64 {
        self.words[obj.word() + 1 + ref_slots + idx].load(Ordering::Relaxed)
    }

    /// Stores data word `idx` of an object with `ref_slots` reference slots.
    #[inline]
    pub fn store_data_word(&self, obj: ObjectRef, ref_slots: usize, idx: usize, value: u64) {
        self.words[obj.word() + 1 + ref_slots + idx].store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ObjShape;

    #[test]
    fn sizes_and_commit() {
        let a = Arena::new(1 << 20, 1 << 16);
        assert_eq!(a.max_bytes(), 1 << 20);
        assert_eq!(a.committed_bytes(), 1 << 16);
        assert_eq!(a.grow(), Some(1 << 17));
        assert_eq!(a.committed_bytes(), 1 << 17);
    }

    #[test]
    fn grow_saturates_at_max() {
        let a = Arena::new(4096, 4096);
        assert_eq!(a.grow(), None);
        let b = Arena::new(4096, 1024);
        assert_eq!(b.grow(), Some(2048));
        assert_eq!(b.grow(), Some(4096));
        assert_eq!(b.grow(), None);
    }

    #[test]
    fn header_and_slots_round_trip() {
        let a = Arena::new(4096, 4096);
        let obj = ObjectRef::from_granule(2);
        let shape = ObjShape::new(2, 1).with_class(9);
        a.write_header(obj, shape.encode_header());
        let h = a.header(obj);
        assert_eq!(h.ref_slots(), 2);
        assert_eq!(h.class_id(), 9);

        let target = ObjectRef::from_granule(5);
        a.store_ref_slot(obj, 0, target);
        a.store_ref_slot(obj, 1, ObjectRef::NULL);
        assert_eq!(a.load_ref_slot(obj, 0), target);
        assert!(a.load_ref_slot(obj, 1).is_null());

        a.store_data_word(obj, 2, 0, 0xDEAD_BEEF);
        assert_eq!(a.load_data_word(obj, 2, 0), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "initial exceeds maximum")]
    fn initial_larger_than_max_panics() {
        let _ = Arena::new(1024, 2048);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 object-offset space")]
    #[cfg(target_pointer_width = "64")]
    fn oversized_arena_rejected_before_reservation() {
        // 8 GiB of granules cannot be addressed by u32 byte offsets; the
        // assert fires before any backing memory is allocated.
        let _ = Arena::new(1usize << 33, 1 << 20);
    }
}
