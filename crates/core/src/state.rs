//! Shared collector/mutator state primitives: handshake statuses, the
//! color toggle, and the per-mutator shared record.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use otf_heap::{Color, ObjectRef};
use otf_support::sync::Mutex;

/// Handshake statuses (§7): `sync1` between the first and second
/// handshake, `sync2` between the second and third, `async` otherwise.
/// Each mutator has its own perception of the current period.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Status {
    /// After the third handshake, up to the start of the next cycle.
    Async = 0,
    /// Between the first and second handshakes.
    Sync1 = 1,
    /// Between the second and third handshakes.
    Sync2 = 2,
}

impl Status {
    /// Decodes a raw status byte.
    #[inline]
    pub fn from_byte(b: u8) -> Status {
        match b {
            0 => Status::Async,
            1 => Status::Sync1,
            2 => Status::Sync2,
            other => unreachable!("invalid status byte {other}"),
        }
    }
}

/// The color toggle (§5): which of the two young colors is currently the
/// *allocation* color and which is the *clear* color.  Encoded in a single
/// atomic byte so mutators always observe a consistent pair.
#[derive(Debug)]
pub struct ColorState {
    /// 0 ⇒ allocation = White, clear = Yellow; 1 ⇒ swapped.
    flipped: AtomicU8,
}

impl ColorState {
    /// Initial state: allocation color White, clear color Yellow (§5).
    pub fn new() -> ColorState {
        ColorState {
            flipped: AtomicU8::new(0),
        }
    }

    /// The current allocation color.
    #[inline]
    pub fn allocation_color(&self) -> Color {
        if self.flipped.load(Ordering::Acquire) == 0 {
            Color::White
        } else {
            Color::Yellow
        }
    }

    /// The current clear color (reclaimed by sweep).
    #[inline]
    pub fn clear_color(&self) -> Color {
        if self.flipped.load(Ordering::Acquire) == 0 {
            Color::Yellow
        } else {
            Color::White
        }
    }

    /// `SwitchAllocationClearColors` (Figure 3): exchanges the meanings of
    /// the two young colors.  Called only by the collector, between the
    /// first and third handshakes.
    pub fn toggle(&self) {
        self.flipped.fetch_xor(1, Ordering::AcqRel);
    }
}

impl Default for ColorState {
    fn default() -> Self {
        Self::new()
    }
}

/// Park-state of a mutator: while parked (blocked on allocation, in a long
/// non-heap computation, or already dropped) the collector performs
/// handshake responses on the mutator's behalf using the published root
/// snapshot.  Both parties act under the same lock, so a response can
/// never race an unpark.
#[derive(Debug, Default)]
pub struct ParkState {
    /// Whether the mutator is currently parked.
    pub parked: bool,
    /// Snapshot of the mutator's shadow stack taken when it parked.
    pub roots: Vec<ObjectRef>,
}

/// The collector-visible half of a mutator.
#[derive(Debug)]
pub struct MutatorShared {
    /// Registration id, unique per collector instance — the name the
    /// handshake watchdog uses to identify a non-cooperating mutator.
    pub id: u64,
    /// The mutator's handshake status (its "perception of the period").
    pub status: AtomicU8,
    /// Write-barrier epoch: odd while the mutator is inside a gray-producing
    /// operation.  The collector's trace-termination check only believes an
    /// empty gray queue after observing every epoch even (closing the
    /// CAS-color-then-push window).
    pub epoch: AtomicUsize,
    /// Park state (see [`ParkState`]).
    pub park: Mutex<ParkState>,
}

impl MutatorShared {
    /// Creates the shared record with the given initial status and id.
    pub fn new(status: Status, id: u64) -> MutatorShared {
        MutatorShared {
            id,
            status: AtomicU8::new(status as u8),
            epoch: AtomicUsize::new(0),
            park: Mutex::new(ParkState::default()),
        }
    }

    /// The mutator's current status.
    #[inline]
    #[allow(dead_code)] // used by tests and diagnostics
    pub fn status(&self) -> Status {
        Status::from_byte(self.status.load(Ordering::Acquire))
    }

    /// Recovery: force-adopts `Async` on the mutator's behalf.  Used by
    /// the supervisor's cycle abort to complete an in-flight handshake by
    /// fiat — the collector that posted it is gone, so waiting for a
    /// voluntary ack could hang on a mutator that is itself parked on
    /// the aborted collection.  Safe at any point: a mutator that still
    /// holds a stale `Sync` view acts more conservatively than `Async`
    /// requires (its barrier grays both young colors), which at worst
    /// floats garbage into the next cycle.
    pub fn force_async(&self) {
        self.status.store(Status::Async as u8, Ordering::Release);
    }

    /// Enters a gray-producing region (write barrier / root marking).
    #[inline]
    pub fn epoch_enter(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Leaves a gray-producing region.
    #[inline]
    pub fn epoch_exit(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Whether the mutator is currently outside any gray-producing region.
    #[inline]
    pub fn epoch_is_even(&self) -> bool {
        self.epoch.load(Ordering::SeqCst).is_multiple_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_swaps_roles() {
        let s = ColorState::new();
        assert_eq!(s.allocation_color(), Color::White);
        assert_eq!(s.clear_color(), Color::Yellow);
        s.toggle();
        assert_eq!(s.allocation_color(), Color::Yellow);
        assert_eq!(s.clear_color(), Color::White);
        s.toggle();
        assert_eq!(s.allocation_color(), Color::White);
    }

    #[test]
    fn roles_always_distinct() {
        let s = ColorState::new();
        for _ in 0..5 {
            assert_ne!(s.allocation_color(), s.clear_color());
            s.toggle();
        }
    }

    #[test]
    fn status_round_trip() {
        for s in [Status::Async, Status::Sync1, Status::Sync2] {
            assert_eq!(Status::from_byte(s as u8), s);
        }
    }

    #[test]
    fn epoch_parity() {
        let m = MutatorShared::new(Status::Async, 0);
        assert!(m.epoch_is_even());
        m.epoch_enter();
        assert!(!m.epoch_is_even());
        m.epoch_exit();
        assert!(m.epoch_is_even());
    }

    #[test]
    fn park_state_default_unparked() {
        let m = MutatorShared::new(Status::Async, 0);
        assert!(!m.park.lock().parked);
        assert_eq!(m.status(), Status::Async);
    }
}
