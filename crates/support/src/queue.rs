//! A mutex-sharded MPMC injector queue — the gray-object work list.
//!
//! Many mutators push (after winning the gray-coloring CAS); the
//! collector pops.  Contention is spread across `SHARDS` independent
//! locked deques; pushers pick a shard round-robin, poppers scan from a
//! rotating start so no shard starves.
//!
//! A global length counter makes emptiness checks **conservative** for
//! the trace-termination protocol: the counter is incremented *before*
//! the item is inserted into its shard and decremented only *after* an
//! item has been removed, so once a `push` call has returned, no
//! concurrent [`is_empty`](SegQueue::is_empty) can report the queue
//! empty while the item is still present.  [`pop`](SegQueue::pop) gives
//! the matching guarantee from the consumer side: when the counter says
//! items are present but a full shard scan finds none (an in-flight push
//! has incremented the counter and not yet inserted, or another popper
//! removed an item and has not yet decremented), the scan *retries*
//! instead of reporting a spurious `None` — so the collector's
//! termination loop never spins on misses for items that were already
//! pushed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sync::Mutex;

const SHARDS: usize = 8;

/// An unbounded MPMC queue (named for the `crossbeam` type it replaces).
pub struct SegQueue<T> {
    shards: [Mutex<VecDeque<T>>; SHARDS],
    /// Items logically in the queue (incremented pre-insert).
    len: AtomicUsize,
    /// Round-robin cursor for pushers.
    push_cursor: AtomicUsize,
    /// Rotating scan start for poppers.
    pop_cursor: AtomicUsize,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> SegQueue<T> {
        SegQueue {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            len: AtomicUsize::new(0),
            push_cursor: AtomicUsize::new(0),
            pop_cursor: AtomicUsize::new(0),
        }
    }

    /// Appends `value` to the queue.
    pub fn push(&self, value: T) {
        let shard = self.push_cursor.fetch_add(1, Ordering::Relaxed) % SHARDS;
        self.len.fetch_add(1, Ordering::SeqCst);
        self.shards[shard].lock().push_back(value);
    }

    /// Removes and returns one item, or `None` only when the queue is
    /// logically empty (every completed push has been popped).
    ///
    /// A shard scan that comes up dry while the length counter is
    /// positive has raced an in-flight push (counter incremented, item
    /// not yet inserted) or an in-flight pop (item removed, counter not
    /// yet decremented); both windows close in a bounded number of the
    /// other thread's steps, so the scan retries rather than returning a
    /// transient `None`.
    pub fn pop(&self) -> Option<T> {
        loop {
            if self.len.load(Ordering::SeqCst) == 0 {
                return None;
            }
            let start = self.pop_cursor.fetch_add(1, Ordering::Relaxed);
            for i in 0..SHARDS {
                let shard = (start + i) % SHARDS;
                if let Some(v) = self.shards[shard].lock().pop_front() {
                    self.len.fetch_sub(1, Ordering::SeqCst);
                    return Some(v);
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Whether the queue is (conservatively) empty: `false` whenever any
    /// completed push has not yet been popped.
    pub fn is_empty(&self) -> bool {
        self.len.load(Ordering::SeqCst) == 0
    }

    /// Number of items logically in the queue.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_single() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(42);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(42));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn drains_all_items_across_shards() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        let mut got: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: usize = 4;
        const PER: usize = 5_000;
        let q = Arc::new(SegQueue::new());
        let done = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.push(p * PER + i);
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || loop {
                match q.pop() {
                    Some(v) => {
                        sum.fetch_add(v + 1, Ordering::SeqCst);
                    }
                    None => {
                        if done.load(Ordering::SeqCst) == PRODUCERS && q.is_empty() {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = PRODUCERS * PER;
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2 + n);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_never_spuriously_none_when_items_remain() {
        // Each thread pushes then immediately pops.  A pop may steal
        // another thread's item, but at the moment any pop runs, its own
        // push has completed and at most (pops completed so far) items
        // have been removed — so some completed push is always still
        // queued and pop must succeed.  The old pop could return a
        // transient None here when its shard scan raced an in-flight
        // push.
        const THREADS: usize = 8;
        const ITERS: usize = 5_000;
        let q = Arc::new(SegQueue::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..ITERS {
                        q.push(t * ITERS + i);
                        assert!(q.pop().is_some(), "spurious None with items queued");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn completed_push_is_never_invisible() {
        // is_empty must be false from the instant push returns.
        let q = Arc::new(SegQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            for i in 0..1_000 {
                q2.push(i);
                assert!(!q2.is_empty());
                q2.pop();
            }
        });
        h.join().unwrap();
    }
}
