//! Collection triggering and collector-thread control (§3.3).
//!
//! Mutators request collections (partial when the young-generation
//! allocation budget is exhausted, full when the heap is almost full or an
//! allocation fails); the collector thread sleeps on a condition variable
//! until a request (or shutdown) arrives.  A second condition variable lets
//! an allocation-blocked mutator wait for a full collection to complete.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use otf_support::sync::{Condvar, Mutex};

use crate::stats::CycleKind;

#[derive(Debug, Default)]
struct Pending {
    partial: bool,
    full: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct Done {
    cycles: u64,
    fulls: u64,
}

/// Trigger state shared between mutators and the collector thread.
#[derive(Debug)]
pub(crate) struct Control {
    pending: Mutex<Pending>,
    wake: Condvar,
    done: Mutex<Done>,
    done_cond: Condvar,
    bytes_since_cycle: AtomicU64,
    shutdown: AtomicBool,
    /// The collector thread panicked: no collection will ever complete
    /// again.  Like shutdown, but reported to blocked allocators as
    /// [`AllocError::CollectorUnavailable`](crate::AllocError) instead of
    /// silently degrading to grow-only mode.
    poisoned: AtomicBool,
}

impl Control {
    pub(crate) fn new() -> Control {
        Control {
            pending: Mutex::new(Pending::default()),
            wake: Condvar::new(),
            done: Mutex::new(Done::default()),
            done_cond: Condvar::new(),
            bytes_since_cycle: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Requests a partial collection (idempotent).
    pub(crate) fn request_partial(&self) {
        let mut p = self.pending.lock();
        if !p.partial && !p.full {
            p.partial = true;
            self.wake.notify_all();
        }
    }

    /// Requests a full collection (idempotent; supersedes a pending
    /// partial).
    pub(crate) fn request_full(&self) {
        let mut p = self.pending.lock();
        if !p.full {
            p.full = true;
            self.wake.notify_all();
        }
    }

    /// Collector thread: blocks until a request or shutdown.  Returns
    /// `None` on shutdown.
    pub(crate) fn next_request(&self) -> Option<CycleKind> {
        let mut p = self.pending.lock();
        loop {
            if self.shutdown.load(Ordering::Acquire) || self.poisoned.load(Ordering::Acquire) {
                return None;
            }
            if p.full {
                p.full = false;
                p.partial = false;
                return Some(CycleKind::Full);
            }
            if p.partial {
                p.partial = false;
                return Some(CycleKind::Partial);
            }
            self.wake.wait(&mut p);
        }
    }

    /// Non-blocking peek: is a cycle request pending?  Used by the
    /// lazy-sweep background drain so between-cycle sweeping yields to
    /// cycle requests segment-by-segment instead of delaying them.
    pub(crate) fn has_request(&self) -> bool {
        let p = self.pending.lock();
        p.partial || p.full
    }

    /// Collector thread: records a completed cycle and wakes waiters.
    pub(crate) fn note_cycle_done(&self, kind: CycleKind) {
        let mut d = self.done.lock();
        d.cycles += 1;
        if kind == CycleKind::Full {
            d.fulls += 1;
        }
        self.done_cond.notify_all();
    }

    /// Number of full collections completed so far.
    pub(crate) fn fulls_done(&self) -> u64 {
        self.done.lock().fulls
    }

    /// Number of cycles completed so far.
    pub(crate) fn cycles_done(&self) -> u64 {
        self.done.lock().cycles
    }

    /// Blocks until more than `observed_fulls` full collections have
    /// completed.  Returns `false` if the collector shut down first.
    /// The caller must be *parked* (the collector may need to handshake
    /// while we wait).
    pub(crate) fn wait_for_full(&self, observed_fulls: u64) -> bool {
        let mut d = self.done.lock();
        while d.fulls <= observed_fulls {
            if self.shutdown.load(Ordering::Acquire) || self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            self.done_cond.wait(&mut d);
        }
        true
    }

    /// Adds to the §3.3 allocation accumulator; returns the new total.
    pub(crate) fn add_allocated(&self, bytes: u64) -> u64 {
        self.bytes_since_cycle.fetch_add(bytes, Ordering::Relaxed) + bytes
    }

    /// Reads the §3.3 allocation accumulator.
    pub(crate) fn bytes_since_cycle(&self) -> u64 {
        self.bytes_since_cycle.load(Ordering::Relaxed)
    }

    /// Consumes `bytes` from the accumulator (at cycle end, the amount
    /// that was pending when the cycle *started*).  Allocation performed
    /// while the cycle ran keeps counting toward the next trigger —
    /// exactly the objects that form the next young generation.
    pub(crate) fn consume_allocated(&self, bytes: u64) {
        self.bytes_since_cycle.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Cycle-abort recovery: drops any stale pending request and re-arms
    /// a *full* collection in its place.  The aborted cycle conservatively
    /// repainted the whole heap live, so only a full trace from roots can
    /// rebuild real liveness — and because a pending full supersedes any
    /// partial in [`next_request`](Control::next_request), the restarted
    /// collector is guaranteed to run it first.  Allocators parked in
    /// [`wait_for_full`](Control::wait_for_full) are then served by that
    /// cycle's completion instead of being poisoned awake.
    pub(crate) fn reset_for_recovery(&self) {
        let mut p = self.pending.lock();
        p.partial = false;
        p.full = true;
        self.wake.notify_all();
    }

    /// Signals shutdown and wakes everything.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
        self.done_cond.notify_all();
    }

    /// Whether shutdown has been signalled.
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Marks the control poisoned (the collector thread died) and wakes
    /// every waiter: the collector's request queue (its thread is gone,
    /// but a re-spawned loop would observe the flag) and — critically —
    /// every mutator parked in [`wait_for_full`](Control::wait_for_full),
    /// which would otherwise sleep forever on a collection that can no
    /// longer happen.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        // Lock-then-notify on both condvars so a waiter between its flag
        // check and its wait cannot miss the wakeup.
        {
            let _p = self.pending.lock();
            self.wake.notify_all();
        }
        {
            let _d = self.done.lock();
            self.done_cond.notify_all();
        }
    }

    /// Whether the collector thread has panicked.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_supersedes_partial() {
        let c = Control::new();
        c.request_partial();
        c.request_full();
        assert_eq!(c.next_request(), Some(CycleKind::Full));
        // The pending partial was absorbed by the full.
        c.begin_shutdown();
        assert_eq!(c.next_request(), None);
    }

    #[test]
    fn partial_then_nothing() {
        let c = Control::new();
        c.request_partial();
        assert_eq!(c.next_request(), Some(CycleKind::Partial));
        c.begin_shutdown();
        assert_eq!(c.next_request(), None);
    }

    #[test]
    fn allocation_accumulator() {
        let c = Control::new();
        assert_eq!(c.add_allocated(100), 100);
        assert_eq!(c.add_allocated(50), 150);
        assert_eq!(c.bytes_since_cycle(), 150);
        // A cycle that started when 100 bytes were pending consumes only
        // those 100; the 50 allocated "during" it roll over.
        c.consume_allocated(100);
        assert_eq!(c.bytes_since_cycle(), 50);
    }

    #[test]
    fn done_counters() {
        let c = Control::new();
        c.note_cycle_done(CycleKind::Partial);
        c.note_cycle_done(CycleKind::Full);
        assert_eq!(c.cycles_done(), 2);
        assert_eq!(c.fulls_done(), 1);
    }

    #[test]
    fn wait_for_full_wakes_on_completion() {
        let c = Arc::new(Control::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.wait_for_full(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.note_cycle_done(CycleKind::Full);
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_full_bails_on_poison() {
        let c = Arc::new(Control::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.wait_for_full(5));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!c.is_poisoned());
        c.poison();
        assert!(!h.join().unwrap());
        assert!(c.is_poisoned());
        // Poison also unblocks the collector's request wait.
        assert_eq!(c.next_request(), None);
    }

    #[test]
    fn wait_for_full_bails_on_shutdown() {
        let c = Arc::new(Control::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.wait_for_full(5));
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.begin_shutdown();
        assert!(!h.join().unwrap());
    }
}
