//! The concurrent sweep (Figures 2 and 5).
//!
//! Sweep walks the color table linearly from the first granule to the
//! allocation frontier:
//!
//! * **clear-colored** objects are reclaimed: their granules become `Free`
//!   and contiguous reclaimed runs are coalesced into one chunk for the
//!   free lists;
//! * **black** objects stay black — in the simple generational variant
//!   this *is* promotion ("if we do not turn these objects white during
//!   the sweep, then black objects are in the old generation", §3);
//! * **allocation-colored** objects (created during the cycle — the
//!   paper's yellow) are left untouched, so they are *not* promoted (§4);
//!   thanks to the color toggle they need no recoloring either (§5);
//! * in the **aging** variant, survivors below the tenuring threshold are
//!   recolored to the allocation color and their age incremented
//!   (Figure 5), so only objects that reach the threshold stay black.
//!
//! Races with concurrent allocation are benign by construction: sweep
//! skips `Free`/`Interior` bytes one granule at a time and never re-inserts
//! already-free space into the free lists (see `otf_heap::freelist`).
//!
//! With `gc_threads > 1` the sweep is **page-partitioned** (DESIGN.md
//! §4.4): `[1, frontier)` is cut into page-aligned segments claimed from a
//! shared cursor.  An object belongs to the segment its *start* granule
//! falls in; a worker snaps its segment start past any leading `Interior`
//! run (the straddling object is swept whole by the previous segment's
//! owner, with `object_end` bounded by the frontier, not the segment).
//! Reclaimed runs never coalesce across a segment boundary, and each
//! worker flushes its own chunk batches to the free lists independently.
//! On the sharded heap back-end (DESIGN.md §4.5) a flush routes each
//! chunk to the shard owning its blocks — `free_chunk_batch` splits
//! batches at block-ownership boundaries and takes one lock per touched
//! shard — so sweep workers contend with mutators only on the shards
//! whose memory their segment actually reclaimed.  Colors are filled
//! `Free` *before* a chunk enters a batch, so every pooled chunk covers
//! only `Free` granules whichever pool it lands in (the `verify_heap`
//! free-list pass holds unchanged).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use otf_heap::{Chunk, Color, PageTracker, GRANULE};
use otf_support::fault;

use crate::config::{Mode, Promotion};
use crate::cycle::{Counters, CycleCx};
use crate::obs::{dur_ns, EventKind};
use crate::shared::GcShared;

/// Reclaimed chunks accumulate in a batch and are published to the free
/// lists whenever this many are pending, so concurrent allocation never
/// starves behind a long sweep.  The batch is pre-sized to this
/// threshold.
pub(crate) const SWEEP_FLUSH_CHUNKS: usize = 256;

/// Emit a `SweepProgress` event every time the sweep cursor advances this
/// many granules, independent of chunk-batch flushes, so the event ring
/// can reconstruct the sweep rate even on a heap that frees little.
pub(crate) const SWEEP_PROGRESS_STRIDE: usize = 1 << 15;

/// Parallel sweep segment size in granules: 64 pages of arena
/// (16 KiB-granule heap pages × 256 granules/page), which is also
/// page-aligned in the color table (one byte per granule).  The lazy
/// (allocation-time) sweep claims the same segments from its epoch
/// cursor (`crate::lazy`).
pub(crate) const SWEEP_SEGMENT_GRANULES: usize = 64 * 256;

/// Sweep configuration pinned once per sweep epoch: the cycle's clear /
/// allocation colors and promotion policy.  The eager sweep captures it
/// at sweep start; the lazy back-end captures it when the collector
/// publishes a sweep epoch and keeps using the *pinned* copy even after
/// the next cycle's color toggle — re-reading `ColorState` mid-epoch
/// would reclaim the wrong color (DESIGN.md §4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SweepParams {
    /// The color being reclaimed (the dead color of the finished trace).
    pub clear: Color,
    /// The epoch's allocation color (left untouched / re-applied to
    /// young survivors under aging).
    pub alloc: Color,
    /// `Some(threshold)` in the aging variant (Figure 5).
    pub aging: Option<u8>,
    /// The color a leaked gray is conservatively promoted to in the
    /// non-aging arms (pinned: for the non-generational baseline this is
    /// the epoch's mark color, which toggles).
    pub trace_target: Color,
}

/// Per-sweeper scratch threaded through [`GcShared::sweep_range`]: the
/// open reclaimed run, the pending chunk batch, and the granule mark for
/// the next stride `SweepProgress` event.
pub(crate) struct SweepBuf {
    pub run: Option<Chunk>,
    pub batch: Vec<Chunk>,
    pub next_mark: usize,
}

impl SweepBuf {
    pub(crate) fn new(next_mark: usize) -> SweepBuf {
        SweepBuf {
            run: None,
            batch: Vec::with_capacity(SWEEP_FLUSH_CHUNKS),
            next_mark,
        }
    }
}

impl GcShared {
    /// Captures the current cycle's sweep configuration (see
    /// [`SweepParams`]).  Both sweep back-ends call this at the same
    /// protocol point — after the trace, before any reclamation — so the
    /// pinned copy is identical to what the eager sweep used to re-read
    /// per range.
    pub(crate) fn sweep_params(&self) -> SweepParams {
        SweepParams {
            clear: self.colors.clear_color(),
            alloc: self.colors.allocation_color(),
            aging: match self.config.mode {
                Mode::Generational(Promotion::Aging { threshold }) => Some(threshold),
                _ => None,
            },
            trace_target: self.trace_target(),
        }
    }

    /// Runs the sweep for the current cycle: serial at `gc_threads == 1`
    /// (the verified-default DLG configuration), page-partitioned
    /// parallel otherwise — run as a standalone one-bucket schedule (the
    /// full cycle builds this same bucket via
    /// [`GcShared::build_cycle_schedule`]; this entry point exists for
    /// the sweep-phase tests).
    #[allow(dead_code)]
    pub(crate) fn sweep(&self, cx: &mut CycleCx) {
        let workers = self.config.gc_threads;
        if workers > 1 {
            let frame = crate::plan::CycleFrame::new(workers);
            let mut sched = otf_support::packet::Schedule::new();
            self.add_reclaim_bucket(&mut sched, &frame, workers, false, false);
            self.run_schedule(&sched, cx, workers);
        } else {
            self.sweep_serial(cx);
        }
    }

    /// The serial sweep kernel: one pass over `[1, frontier)`, emitting
    /// its own final `SweepProgress` event.
    pub(crate) fn sweep_serial(&self, cx: &mut CycleCx) {
        let t0 = Instant::now();
        let end = self.heap.frontier_granule();
        let params = self.sweep_params();

        // Sweep reads every color byte up to the frontier.
        cx.touch_color_range(1, end);

        let mut buf = SweepBuf::new(1 + SWEEP_PROGRESS_STRIDE);
        self.sweep_range(
            &params,
            1,
            end,
            end,
            &mut cx.counters,
            Some(&mut cx.pages),
            &mut buf,
        );
        Self::flush_run(&mut buf.run, &mut buf.batch);
        self.heap.free_chunk_batch(&buf.batch);
        self.obs
            .event(EventKind::SweepProgress, end as u64, end as u64);
        self.obs.note_worker_sweep(0, dur_ns(t0.elapsed()));
    }

    /// One page-partitioned sweep lane (the body of a `SweepLane`
    /// packet): claim segments from the shared cursor until the frontier
    /// is reached.
    pub(crate) fn sweep_worker(
        &self,
        w: usize,
        frontier: usize,
        cursor: &AtomicUsize,
        params: &SweepParams,
        cx: &mut CycleCx,
    ) {
        let t0 = Instant::now();
        let colors = self.heap.colors();
        let mut buf = SweepBuf::new(SWEEP_PROGRESS_STRIDE);
        loop {
            let seg_start = cursor.fetch_add(SWEEP_SEGMENT_GRANULES, Ordering::SeqCst);
            if seg_start >= frontier {
                break;
            }
            // Delay/yield injection at segment claims.  A "failing" rule
            // cannot skip the segment — every claimed segment must be
            // swept exactly once — so the verdict is ignored.
            let _ = fault::point("collector.worker");
            let seg_stop = (seg_start + SWEEP_SEGMENT_GRANULES).min(frontier);
            // Snap to the first object boundary at or after seg_start: a
            // leading Interior run belongs to an object starting in an
            // earlier segment, and that segment's owner sweeps it whole.
            // If the previous owner is concurrently filling that dead
            // straddler `Free`, snapping may stop early inside its extent
            // — harmless, since `sweep_range` only acts on start bytes
            // and skips Free/Interior space.
            let snapped = if seg_start == 1 {
                1
            } else {
                colors.object_end(seg_start - 1, frontier)
            };
            if snapped < seg_stop {
                self.sweep_range(
                    params,
                    snapped,
                    seg_stop,
                    frontier,
                    &mut cx.counters,
                    Some(&mut cx.pages),
                    &mut buf,
                );
            }
            // Never coalesce a reclaimed run across a segment boundary —
            // the adjacent segment may belong to another worker.
            Self::flush_run(&mut buf.run, &mut buf.batch);
        }
        self.heap.free_chunk_batch(&buf.batch);
        self.obs.note_worker_sweep(w, dur_ns(t0.elapsed()));
    }

    /// Sweeps every object whose start granule lies in `[start, stop)`.
    /// `frontier` bounds the *extent* parse, so an object straddling
    /// `stop` is still processed whole by this call.
    ///
    /// This is the kernel shared by both sweep back-ends.  The eager
    /// collector paths pass their `CycleCx` split into `counters` +
    /// `Some(pages)`; the lazy allocation-time path (`crate::lazy`)
    /// passes standalone counters and `None` for the page tracker — a
    /// `PageTracker` is a heap-sized bitmap far too heavy to build per
    /// LAB refill, so lazy sweeps are simply absent from the page-touch
    /// figures (documented in DESIGN.md §4.6).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sweep_range(
        &self,
        params: &SweepParams,
        start: usize,
        stop: usize,
        frontier: usize,
        counters: &mut Counters,
        mut pages: Option<&mut PageTracker>,
        buf: &mut SweepBuf,
    ) {
        let SweepParams {
            clear,
            alloc,
            aging,
            trace_target,
        } = *params;
        let colors = self.heap.colors();
        let ages = self.heap.ages();

        let mut g = start;
        while g < stop {
            if g >= buf.next_mark {
                self.obs
                    .event(EventKind::SweepProgress, g as u64, frontier as u64);
                buf.next_mark = g + SWEEP_PROGRESS_STRIDE;
            }
            // Fast path: skip reclaimed / unallocated / in-flight space
            // with relaxed word-at-a-time loads.  Such space is never
            // reclaimed again, so any pending run must be flushed before
            // crossing it (we must not merge chunks into space someone
            // else may own).
            let next = colors.skip_non_object(g, stop);
            if next != g {
                Self::flush_run(&mut buf.run, &mut buf.batch);
                if buf.batch.len() >= SWEEP_FLUSH_CHUNKS {
                    self.heap.free_chunk_batch(&buf.batch);
                    buf.batch.clear();
                    self.obs
                        .event(EventKind::SweepProgress, g as u64, frontier as u64);
                }
                g = next;
                continue;
            }
            // The color table alone drives the parse: the object's
            // extent is its run of Interior bytes, so sweep never touches
            // the arena at all (headers included) — the non-moving
            // free-chunk records live in side storage too.
            let color = colors.get(g); // acquire pairs with allocation
            let obj_end = colors.object_end(g, frontier);
            let size = obj_end - g;
            if color == clear {
                // Reclaim: free ← free ∪ x; color(x) ← blue.
                counters.objects_freed += 1;
                counters.bytes_freed += (size * GRANULE) as u64;
                colors.fill(g, size, Color::Free);
                ages.set(g, 0);
                buf.run = Some(match buf.run.take() {
                    Some(r) if r.end() as usize == g => Chunk::new(r.start, r.len + size as u32),
                    Some(r) => {
                        buf.batch.push(r);
                        Chunk::new(g as u32, size as u32)
                    }
                    None => Chunk::new(g as u32, size as u32),
                });
            } else {
                // Survivor (traced, created-during-cycle, or — for
                // robustness — a leaked gray, treated as live).
                Self::flush_run(&mut buf.run, &mut buf.batch);
                if buf.batch.len() >= SWEEP_FLUSH_CHUNKS {
                    self.heap.free_chunk_batch(&buf.batch);
                    buf.batch.clear();
                    self.obs
                        .event(EventKind::SweepProgress, g as u64, frontier as u64);
                }
                counters.objects_survived += 1;
                counters.bytes_survived += (size * GRANULE) as u64;
                if color == alloc {
                    counters.bytes_alloc_colored += (size * GRANULE) as u64;
                }
                match aging {
                    Some(threshold) => {
                        if let Some(p) = pages.as_mut() {
                            p.touch_byte(otf_heap::Space::AgeTable, g);
                        }
                        let age = ages.get(g);
                        if age < threshold {
                            // Young survivor: stays in the young
                            // generation with one more birthday.
                            colors.set(g, alloc);
                            ages.set(g, age + 1);
                        } else if color == Color::Gray {
                            colors.set(g, Color::Black);
                        }
                    }
                    None => {
                        if color == Color::Gray {
                            // A gray that escaped the trace: keep it
                            // conservatively as marked.
                            colors.set(g, trace_target);
                        }
                        // Simple variant: black stays black (promotion);
                        // allocation color untouched.
                    }
                }
            }
            g = obj_end;
        }
    }

    /// Moves a finished reclaimed run into the pending batch (inserted
    /// into the free lists in bulk at the end of the sweep).
    pub(crate) fn flush_run(run: &mut Option<Chunk>, batch: &mut Vec<Chunk>) {
        if let Some(r) = run.take() {
            batch.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::{ObjShape, ObjectRef};

    fn setup(cfg: GcConfig) -> (GcShared, CycleCx) {
        let sh = GcShared::new(cfg.with_max_heap(1 << 20).with_initial_heap(1 << 20));
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, granules: usize, color: Color) -> ObjectRef {
        // granules*2 - 1 words total => exactly `granules` granules.
        let shape = ObjShape::new(0, granules * 2 - 1);
        assert_eq!(shape.size_granules(), granules);
        let c = sh
            .heap
            .alloc_chunk(granules as u32, granules as u32)
            .unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn sweep_frees_clear_colored_only() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle(); // clear = White, allocation = Yellow
        let dead = alloc(&sh, 2, Color::White);
        let black = alloc(&sh, 2, Color::Black);
        let infant = alloc(&sh, 2, Color::Yellow);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
        assert_eq!(sh.heap.colors().get(black.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(cx.counters.objects_freed, 1);
        assert_eq!(cx.counters.bytes_freed, 32);
        assert_eq!(cx.counters.objects_survived, 2);
    }

    #[test]
    fn sweep_coalesces_adjacent_dead_objects() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let a = alloc(&sh, 2, Color::White);
        let _b = alloc(&sh, 3, Color::White);
        let _c = alloc(&sh, 1, Color::White);
        let live = alloc(&sh, 1, Color::Black);
        sh.sweep(&mut cx);
        assert_eq!(cx.counters.objects_freed, 3);
        // One coalesced chunk of 6 granules is available again.
        let chunk = sh.heap.alloc_chunk(6, 6).expect("coalesced chunk");
        assert_eq!(chunk.start as usize, a.granule());
        assert_eq!(chunk.len, 6);
        assert_eq!(sh.heap.colors().get(live.granule()), Color::Black);
    }

    #[test]
    fn sweep_run_not_merged_across_live_object() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let _a = alloc(&sh, 2, Color::White);
        let _live = alloc(&sh, 1, Color::Black);
        let _b = alloc(&sh, 2, Color::White);
        sh.sweep(&mut cx);
        // Two separate 2-granule chunks, not one 4-granule chunk.
        assert!(sh.heap.alloc_chunk(4, 4).is_none() || sh.heap.frontier_granule() > 6);
        assert!(sh.heap.alloc_chunk(2, 2).is_some());
        assert!(sh.heap.alloc_chunk(2, 2).is_some());
    }

    #[test]
    fn sweep_promotes_gray_leak() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let gray = alloc(&sh, 1, Color::Gray);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.colors().get(gray.granule()), Color::Black);
    }

    #[test]
    fn aging_sweep_ages_and_demotes_young_survivors() {
        let threshold = 3;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        sh.colors.toggle(); // allocation = Yellow, clear = White
                            // A traced (black) object of age 1: young survivor.
        let young = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(young.granule(), 1);
        // A traced object at the threshold: tenured, stays black.
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(old.granule(), threshold);
        // An infant created during the cycle.
        let infant = alloc(&sh, 1, Color::Yellow);
        assert_eq!(sh.heap.ages().get(infant.granule()), 1);

        sh.sweep(&mut cx);

        assert_eq!(sh.heap.colors().get(young.granule()), Color::Yellow);
        assert_eq!(sh.heap.ages().get(young.granule()), 2);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Black);
        assert_eq!(sh.heap.ages().get(old.granule()), threshold);
        // The infant also ages (Figure 5 increments every non-tenured
        // survivor) and keeps the allocation color.
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(sh.heap.ages().get(infant.granule()), 2);
    }

    #[test]
    fn aging_sweep_tenures_at_threshold() {
        let threshold = 2;
        let (sh, mut cx) = setup(GcConfig::aging(threshold));
        sh.colors.toggle();
        let obj = alloc(&sh, 1, Color::Black);
        sh.heap.ages().set(obj.granule(), 1);
        sh.sweep(&mut cx);
        // age 1 -> 2 == threshold, but recolored young this time.
        assert_eq!(sh.heap.ages().get(obj.granule()), 2);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Yellow);
        // Next cycle it is traced black again and now stays black.
        sh.colors.toggle();
        sh.heap.colors().set(obj.granule(), Color::Black);
        let mut cx2 = CycleCx::new(&sh);
        sh.sweep(&mut cx2);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Black);
        assert_eq!(sh.heap.ages().get(obj.granule()), threshold);
    }

    #[test]
    fn sweep_clears_age_of_freed_objects() {
        let (sh, mut cx) = setup(GcConfig::aging(4));
        sh.colors.toggle();
        let dead = alloc(&sh, 1, Color::White);
        sh.heap.ages().set(dead.granule(), 3);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.ages().get(dead.granule()), 0);
    }

    #[test]
    fn non_generational_sweep_keeps_marked() {
        let (sh, mut cx) = setup(GcConfig::non_generational());
        sh.colors.toggle(); // allocation (= mark) Yellow, clear White
        let marked = alloc(&sh, 1, Color::Yellow);
        let dead = alloc(&sh, 1, Color::White);
        sh.sweep(&mut cx);
        assert_eq!(sh.heap.colors().get(marked.granule()), Color::Yellow);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
    }

    #[test]
    fn reclaimed_space_is_reusable() {
        let (sh, mut cx) = setup(GcConfig::generational());
        sh.colors.toggle();
        let dead = alloc(&sh, 4, Color::White);
        sh.sweep(&mut cx);
        let c = sh.heap.alloc_chunk(4, 4).unwrap();
        assert_eq!(c.start as usize, dead.granule());
    }

    /// Deterministically fills a heap with a color-mixed population that
    /// spans several sweep segments, including one huge dead object that
    /// straddles segment boundaries.  Returns `(object, color)` pairs.
    fn build_mixed_heap(sh: &GcShared) -> Vec<(ObjectRef, Color)> {
        sh.colors.toggle(); // clear = White, allocation = Yellow
        let mut objs = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..4000usize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            let granules = 1 + (r % 9) as usize;
            let color = match r % 3 {
                0 => Color::White,
                1 => Color::Black,
                _ => Color::Yellow,
            };
            objs.push((alloc(sh, granules, color), color));
            if i == 2000 {
                // Dead giant spanning more than one 16384-granule segment.
                objs.push((alloc(sh, 18_000, Color::White), Color::White));
            }
        }
        assert!(
            sh.heap.frontier_granule() > 2 * SWEEP_SEGMENT_GRANULES,
            "population must span several segments"
        );
        objs
    }

    #[test]
    fn parallel_sweep_matches_serial_on_identical_heap() {
        let (serial, mut scx) = setup(GcConfig::generational());
        let (parallel, mut pcx) = setup(GcConfig::generational().with_gc_threads(4));
        let sobjs = build_mixed_heap(&serial);
        let pobjs = build_mixed_heap(&parallel);

        serial.sweep(&mut scx);
        parallel.sweep(&mut pcx);

        assert_eq!(scx.counters.objects_freed, pcx.counters.objects_freed);
        assert_eq!(scx.counters.bytes_freed, pcx.counters.bytes_freed);
        assert_eq!(scx.counters.objects_survived, pcx.counters.objects_survived);
        assert_eq!(scx.counters.bytes_survived, pcx.counters.bytes_survived);
        assert_eq!(
            scx.counters.bytes_alloc_colored,
            pcx.counters.bytes_alloc_colored
        );
        // Identical allocation sequences place objects identically, so
        // the post-sweep color of every object must agree byte-for-byte.
        for ((so, _), (po, pc)) in sobjs.iter().zip(pobjs.iter()) {
            assert_eq!(so.granule(), po.granule());
            let sc = serial.heap.colors().get(so.granule());
            let pcolor = parallel.heap.colors().get(po.granule());
            assert_eq!(sc, pcolor, "color mismatch at granule {}", po.granule());
            if *pc == Color::White {
                assert_eq!(pcolor, Color::Free);
            }
        }
        // Freed space totals agree (chunk boundaries may differ at
        // segment edges, but not the amount reclaimed).
        assert_eq!(
            serial.heap.free_list_granules(),
            parallel.heap.free_list_granules()
        );
    }

    #[test]
    fn parallel_sweep_frees_segment_straddler_exactly_once() {
        let (sh, mut cx) = setup(GcConfig::generational().with_gc_threads(4));
        sh.colors.toggle();
        // Pad so the straddler starts just before a segment boundary.
        let pad = SWEEP_SEGMENT_GRANULES - 1 - 4;
        let _live = alloc(&sh, pad, Color::Black);
        let dead = alloc(&sh, 3 * SWEEP_SEGMENT_GRANULES, Color::White);
        let tail = alloc(&sh, 2, Color::Black);
        sh.sweep(&mut cx);
        assert_eq!(cx.counters.objects_freed, 1);
        assert_eq!(
            cx.counters.bytes_freed,
            (3 * SWEEP_SEGMENT_GRANULES * GRANULE) as u64
        );
        // Every granule of the straddler is Free, and the space comes
        // back as one chunk covering the full extent.
        let colors = sh.heap.colors();
        assert_eq!(colors.get(dead.granule()), Color::Free);
        assert_eq!(
            colors.object_end(dead.granule() - 1, sh.heap.frontier_granule()),
            dead.granule()
        );
        assert_eq!(colors.get(tail.granule()), Color::Black);
        let c = sh
            .heap
            .alloc_chunk(
                3 * SWEEP_SEGMENT_GRANULES as u32,
                3 * SWEEP_SEGMENT_GRANULES as u32,
            )
            .expect("straddler reclaimed as one chunk");
        assert_eq!(c.start as usize, dead.granule());
    }

    #[test]
    fn sweep_emits_stride_progress_events_without_flushes() {
        // All-survivor heap: no chunk batches ever flush, yet the sweep
        // must still report progress on the granule stride.
        let (sh, mut cx) = setup(GcConfig::generational().with_event_trace(true));
        sh.colors.toggle();
        while sh.heap.frontier_granule() < SWEEP_PROGRESS_STRIDE + 64 {
            alloc(&sh, 512, Color::Black);
        }
        sh.sweep(&mut cx);
        let end = sh.heap.frontier_granule() as u64;
        let mid_sweep = sh
            .obs
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SweepProgress) && e.a < end)
            .count();
        assert!(
            mid_sweep >= 1,
            "expected at least one stride progress event before the end"
        );
    }

    #[test]
    fn parallel_aging_sweep_matches_serial() {
        let (serial, mut scx) = setup(GcConfig::aging(3));
        let (parallel, mut pcx) = setup(GcConfig::aging(3).with_gc_threads(3));
        let sobjs = build_mixed_heap(&serial);
        let pobjs = build_mixed_heap(&parallel);
        for (o, c) in &sobjs {
            if *c == Color::Black {
                serial.heap.ages().set(o.granule(), 2);
            }
        }
        for (o, c) in &pobjs {
            if *c == Color::Black {
                parallel.heap.ages().set(o.granule(), 2);
            }
        }

        serial.sweep(&mut scx);
        parallel.sweep(&mut pcx);

        assert_eq!(scx.counters.objects_survived, pcx.counters.objects_survived);
        assert_eq!(scx.counters.bytes_freed, pcx.counters.bytes_freed);
        for ((so, _), (po, _)) in sobjs.iter().zip(pobjs.iter()) {
            assert_eq!(
                serial.heap.colors().get(so.granule()),
                parallel.heap.colors().get(po.granule())
            );
            assert_eq!(
                serial.heap.ages().get(so.granule()),
                parallel.heap.ages().get(po.granule())
            );
        }
    }
}
