//! # otf-bench — the figure harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Figures 7–23).  Each `fig*` binary prints the corresponding table;
//! `figall` runs everything and appends the results to `EXPERIMENTS.md`.
//!
//! All binaries accept `--scale X --reps N --copies N --seed N` and
//! `--quick` (a fast smoke configuration).

pub mod figures;
pub mod measure;
pub mod table;

pub use measure::Options;
