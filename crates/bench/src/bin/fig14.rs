//! Regenerates Figure 14 of the paper.  See `otf_bench::Options` for flags.
fn main() {
    let ctx = otf_bench::figures::Ctx::new(otf_bench::Options::from_args());
    otf_bench::figures::fig14(&ctx).print();
}
