//! End-to-end behavior tests for the aging mechanism (§6), global roots,
//! and workload determinism.

use otf_gengc::gc::{Gc, GcConfig};
use otf_gengc::heap::{Color, ObjShape};

fn tiny(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(8 << 20)
        .with_initial_heap(1 << 20)
        .with_young_size(128 << 10)
}

/// Forces one partial collection by allocating past the young budget and
/// waiting for the cycle counter to move (then settle).
fn force_partial(gc: &Gc, m: &mut otf_gengc::gc::Mutator) {
    // `stats().cycles` records only *completed* cycles, so polling it
    // both forces a collection and waits for its sweep to finish.
    let before = gc.stats().cycles.len();
    let junk = ObjShape::new(0, 6);
    while gc.stats().cycles.len() == before {
        for _ in 0..2000 {
            let _ = m.alloc(&junk).unwrap();
        }
        m.cooperate();
    }
}

#[test]
fn aging_object_ages_then_tenures() {
    let threshold = 3;
    let gc = Gc::new(tiny(GcConfig::aging(threshold)));
    let mut m = gc.mutator();
    let obj = m.alloc(&ObjShape::new(0, 1)).unwrap();
    m.write_data(obj, 0, 77);
    m.root_push(obj);
    assert_eq!(gc.debug_age_of(obj), 1, "allocated with age 1 (§8.5.2)");

    let mut last_age = 1;
    for _round in 0..6 {
        force_partial(&gc, &mut m);
        let age = gc.debug_age_of(obj);
        assert!(age >= last_age, "ages never decrease");
        assert!(age <= threshold, "age saturates at the threshold");
        last_age = age;
        if age < threshold {
            // Still young: must not be black between collections.
            assert_ne!(
                gc.debug_color_of(obj),
                Color::Black,
                "young object black before tenuring age"
            );
        }
    }
    assert_eq!(last_age, threshold, "object should have reached tenure");
    assert_eq!(
        gc.debug_color_of(obj),
        Color::Black,
        "tenured objects stay black"
    );
    assert_eq!(m.read_data(obj, 0), 77);
    drop(m);
    gc.shutdown();
}

#[test]
fn simple_promotion_tenures_after_one_collection() {
    let gc = Gc::new(tiny(GcConfig::generational()));
    let mut m = gc.mutator();
    let obj = m.alloc(&ObjShape::new(0, 1)).unwrap();
    m.root_push(obj);
    assert_ne!(gc.debug_color_of(obj), Color::Black);
    force_partial(&gc, &mut m);
    assert_eq!(
        gc.debug_color_of(obj),
        Color::Black,
        "survive one collection ⇒ old (§3)"
    );
    drop(m);
    gc.shutdown();
}

#[test]
fn global_roots_keep_objects_alive_without_stacks() {
    let gc = Gc::new(tiny(GcConfig::generational()));
    let table = {
        let mut m = gc.mutator();
        let table = m.alloc(&ObjShape::new(1, 1)).unwrap();
        m.write_data(table, 0, 1234);
        m.root_push(table);
        m.add_global_root(table);
        table
        // mutator dropped: its shadow stack is gone; only the global root
        // protects the object now.
    };
    {
        let mut m = gc.mutator();
        for _ in 0..5 {
            force_partial(&gc, &mut m);
        }
        m.parked(|| gc.collect_full_blocking());
        assert_eq!(
            m.read_data(table, 0),
            1234,
            "global root did not protect object"
        );
        assert!(m.remove_global_root(table));
        drop(m);
    }
    gc.shutdown();
}

#[test]
fn dropping_mutator_mid_cycle_is_safe() {
    let gc = Gc::new(tiny(GcConfig::generational()));
    // Spawn mutators that exit while collections are likely in flight.
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let mut m = gc.mutator();
            s.spawn(move || {
                let shape = ObjShape::new(1, 1);
                for i in 0..5_000 {
                    let obj = m.alloc(&shape).unwrap();
                    m.write_data(obj, 0, t * 100_000 + i);
                }
                // Drop without waiting for any cycle to finish.
            });
        }
    });
    gc.collect_full_blocking();
    gc.shutdown();
}

#[test]
fn workloads_are_deterministic_per_seed() {
    use otf_gengc::workloads::{driver, Jess};
    let w = Jess::new().scaled(0.02);
    let a = driver::run_workload(&w, GcConfig::generational(), 9);
    let b = driver::run_workload(&w, GcConfig::generational(), 9);
    // Allocation totals are identical run to run (collections may differ —
    // they're timing-dependent — but the application behavior may not).
    assert_eq!(a.stats.objects_allocated, b.stats.objects_allocated);
    assert_eq!(a.stats.bytes_allocated, b.stats.bytes_allocated);
}

#[test]
fn stats_snapshot_is_consistent() {
    let gc = Gc::new(tiny(GcConfig::generational()));
    let mut m = gc.mutator();
    for _ in 0..3 {
        force_partial(&gc, &mut m);
    }
    m.parked(|| gc.collect_full_blocking());
    let stats = gc.stats();
    assert_eq!(
        stats.cycles.len(),
        stats.partial_count() + stats.full_count()
    );
    for c in &stats.cycles {
        // Freed + survived should roughly account for what the sweep saw.
        assert!(c.duration.as_nanos() > 0);
        assert!(c.pages_touched > 0);
        assert!(
            c.used_after <= c.used_before + (4 << 20),
            "sweep grew the heap?"
        );
    }
    assert!(stats.gc_active <= stats.elapsed);
    drop(m);
    gc.shutdown();
}
