//! Shared building blocks for the synthetic workloads.

use otf_gc::{Mutator, ObjShape, ObjectRef};
use otf_support::rand::{RngExt, SeedableRng, StdRng};

/// Class id for reference-array objects.
pub const CLASS_ARRAY: u32 = 1;
/// Class id for plain data objects ("strings", buffers).
pub const CLASS_DATA: u32 = 2;
/// Class id for record/node objects (refs + data).
pub const CLASS_NODE: u32 = 3;

/// Allocates an array of `len` reference slots.
///
/// # Panics
///
/// Panics on out-of-memory — the workloads are sized to fit the paper's
/// 32 MB heap, so exhaustion is a configuration error.
pub fn alloc_array(m: &mut Mutator, len: usize) -> ObjectRef {
    m.alloc(&ObjShape::new(len, 0).with_class(CLASS_ARRAY))
        .expect("workload out of memory")
}

/// Allocates a pure data object of `words` payload words.
///
/// # Panics
///
/// Panics on out-of-memory.
pub fn alloc_data(m: &mut Mutator, words: usize) -> ObjectRef {
    m.alloc(&ObjShape::new(0, words).with_class(CLASS_DATA))
        .expect("workload out of memory")
}

/// Allocates a node with `refs` reference slots and `words` data words.
///
/// # Panics
///
/// Panics on out-of-memory.
pub fn alloc_node(m: &mut Mutator, refs: usize, words: usize) -> ObjectRef {
    m.alloc(&ObjShape::new(refs, words).with_class(CLASS_NODE))
        .expect("workload out of memory")
}

/// A deterministic RNG for workload `seed` and stream `stream`.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream),
    )
}

/// Fills the data words of `obj` with a checkable pattern derived from
/// `tag`.
pub fn fill_data(m: &mut Mutator, obj: ObjectRef, words: usize, tag: u64) {
    for i in 0..words {
        m.write_data(obj, i, tag.wrapping_add(i as u64));
    }
}

/// Verifies the pattern written by [`fill_data`]; panics on corruption
/// (this is how workloads double as correctness checks).
pub fn check_data(m: &Mutator, obj: ObjectRef, words: usize, tag: u64) {
    for i in 0..words {
        let got = m.read_data(obj, i);
        assert_eq!(
            got,
            tag.wrapping_add(i as u64),
            "heap corruption in {obj} word {i}"
        );
    }
}

/// Picks a random element index for a container of `len` items.
pub fn pick(rng: &mut StdRng, len: usize) -> usize {
    rng.random_range(0..len)
}

/// A small computation kernel: `rounds` of integer mixing over `x`.
///
/// The synthetic workloads intersperse this "think time" with their
/// allocations so that the ratio of mutator work to allocation rate is in
/// the same regime as the paper's 1999 JVM benchmarks — a compiled Rust
/// loop that only allocates would outrun the collector by an order of
/// magnitude more than SPECjvm ever did.
#[inline]
pub fn mix(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
    }
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otf_gc::{Gc, GcConfig};

    #[test]
    fn allocators_tag_class_ids() {
        let gc = Gc::new(
            GcConfig::generational()
                .with_max_heap(2 << 20)
                .with_initial_heap(2 << 20),
        );
        let mut m = gc.mutator();
        let a = alloc_array(&mut m, 4);
        let d = alloc_data(&mut m, 4);
        let n = alloc_node(&mut m, 2, 2);
        assert_eq!(m.header(a).class_id(), CLASS_ARRAY);
        assert_eq!(m.header(d).class_id(), CLASS_DATA);
        assert_eq!(m.header(n).class_id(), CLASS_NODE);
        assert_eq!(m.header(a).ref_slots(), 4);
        assert_eq!(m.header(d).ref_slots(), 0);
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn fill_and_check_round_trip() {
        let gc = Gc::new(
            GcConfig::generational()
                .with_max_heap(2 << 20)
                .with_initial_heap(2 << 20),
        );
        let mut m = gc.mutator();
        let d = alloc_data(&mut m, 8);
        fill_data(&mut m, d, 8, 1000);
        check_data(&m, d, 8, 1000);
        drop(m);
        gc.shutdown();
    }

    #[test]
    fn rng_is_deterministic_per_seed_and_stream() {
        let mut a = rng_for(7, 1);
        let mut b = rng_for(7, 1);
        let mut c = rng_for(7, 2);
        let (x, y, z) = (pick(&mut a, 1000), pick(&mut b, 1000), pick(&mut c, 1000));
        assert_eq!(x, y);
        // Different stream almost surely differs; don't assert inequality
        // (could collide), just exercise it.
        let _ = z;
    }

    #[test]
    fn mix_is_pure_and_varies_with_rounds() {
        assert_eq!(mix(42, 8), mix(42, 8));
        assert_ne!(mix(42, 8), mix(42, 9));
        assert_ne!(mix(42, 8), mix(43, 8));
    }
}
