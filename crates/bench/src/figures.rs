//! One function per figure of the paper's evaluation section (§8).
//!
//! Each function returns a rendered [`Table`] whose rows mirror the
//! corresponding figure.  Measurements are memoized inside a [`Ctx`] so
//! that `figall` (and figures sharing a baseline) never repeat a run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;

use otf_gc::{CycleKind, GcConfig, GcStats};
use otf_workloads::driver::{percent_improvement, RunResult};
use otf_workloads::{suite, Anagram, RayTracer, Workload};

use crate::measure::{median_copies, median_run, Options};
use crate::table::{f0_opt, f1, f1_opt, pct, Table};

/// Memoizing measurement context shared by all figures.
#[derive(Debug)]
pub struct Ctx {
    /// Harness options.
    pub o: Options,
    runs: RefCell<HashMap<String, RunResult>>,
    copy_times: RefCell<HashMap<String, Duration>>,
}

impl Ctx {
    /// Creates a context.
    pub fn new(o: Options) -> Ctx {
        Ctx {
            o,
            runs: RefCell::new(HashMap::new()),
            copy_times: RefCell::new(HashMap::new()),
        }
    }

    fn cfg_key(cfg: &GcConfig) -> String {
        format!(
            "{:?}-y{}-c{}",
            cfg.mode,
            cfg.young_size >> 20,
            cfg.card_size
        )
    }

    /// Median single-copy run of `w` under `cfg`, memoized by
    /// `(label, cfg)`.
    pub fn run(&self, label: &str, w: &dyn Workload, cfg: GcConfig) -> RunResult {
        let key = format!("{label}|{}", Self::cfg_key(&cfg));
        if let Some(r) = self.runs.borrow().get(&key) {
            return r.clone();
        }
        eprintln!("  [run] {key}");
        let r = median_run(w, cfg, &self.o);
        self.runs.borrow_mut().insert(key, r.clone());
        r
    }

    /// Median concurrent-copies elapsed time (multiprocessor metric),
    /// memoized.
    pub fn copies(&self, label: &str, w: &dyn Workload, cfg: GcConfig) -> Duration {
        let key = format!("{label}|copies|{}", Self::cfg_key(&cfg));
        if let Some(t) = self.copy_times.borrow().get(&key) {
            return *t;
        }
        eprintln!("  [run x{}] {key}", self.o.copies);
        let t = median_copies(w, cfg, &self.o);
        self.copy_times.borrow_mut().insert(key, t);
        t
    }

    /// `(multi, uni)` improvement of `gen_cfg` over `nogen_cfg` on `w`.
    pub fn improvements(
        &self,
        label: &str,
        w: &dyn Workload,
        gen_cfg: GcConfig,
        nogen_cfg: GcConfig,
    ) -> (f64, f64) {
        let multi_n = self.copies(label, w, nogen_cfg);
        let multi_g = self.copies(label, w, gen_cfg);
        let uni_n = self.run(label, w, nogen_cfg).elapsed;
        let uni_g = self.run(label, w, gen_cfg).elapsed;
        (
            percent_improvement(multi_n, multi_g),
            percent_improvement(uni_n, uni_g),
        )
    }

    /// Uniprocessor-only improvement.
    pub fn uni_improvement(
        &self,
        label: &str,
        w: &dyn Workload,
        gen_cfg: GcConfig,
        nogen_cfg: GcConfig,
    ) -> f64 {
        let n = self.run(label, w, nogen_cfg).elapsed;
        let g = self.run(label, w, gen_cfg).elapsed;
        percent_improvement(n, g)
    }
}

fn gen_cfg() -> GcConfig {
    GcConfig::generational()
}

fn nogen_cfg() -> GcConfig {
    GcConfig::non_generational()
}

/// Figure 7: percentage improvement (elapsed time) for the multithreaded
/// Ray Tracer with 2–10 application threads.
pub fn fig07(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 7: % improvement for multithreaded Ray Tracer (2-10 threads)");
    t.header(["No. of threads", "2", "4", "6", "8", "10"]);
    let mut row = vec!["Improvement".to_string()];
    for threads in [2usize, 4, 6, 8, 10] {
        let w = RayTracer::multithreaded(threads).scaled(ctx.o.scale);
        let label = format!("mtrt-t{threads}");
        let imp = ctx.uni_improvement(&label, &w, gen_cfg(), nogen_cfg());
        row.push(format!("{}%", pct(imp)));
    }
    t.row(row);
    t
}

/// Figure 8: percentage improvement for Anagram (multiprocessor proxy and
/// uniprocessor).
pub fn fig08(ctx: &Ctx) -> Table {
    let w = Anagram::new().scaled(ctx.o.scale);
    let (multi, uni) = ctx.improvements("anagram", &w, gen_cfg(), nogen_cfg());
    let mut t = Table::new("Figure 8: % improvement for Anagram");
    t.header(["Benchmark", "Multiprocessor", "Uniprocessor"]);
    t.row([
        "Anagram".into(),
        format!("{}%", pct(multi)),
        format!("{}%", pct(uni)),
    ]);
    t
}

/// Figure 9: percentage improvement for the SPECjvm benchmarks.
pub fn fig09(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 9: % improvement for SPECjvm benchmarks");
    t.header(["Benchmark", "Multiprocessor", "Uniprocessor"]);
    for w in suite(ctx.o.scale) {
        if w.name() == "anagram" {
            continue; // Figure 8's subject
        }
        let (multi, uni) = ctx.improvements(w.name(), w.as_ref(), gen_cfg(), nogen_cfg());
        t.row([
            w.name().to_string(),
            format!("{}%", pct(multi)),
            format!("{}%", pct(uni)),
        ]);
    }
    t
}

fn stats_pair(ctx: &Ctx, w: &dyn Workload) -> (GcStats, GcStats, RunResult, RunResult) {
    let g = ctx.run(w.name(), w, gen_cfg());
    let n = ctx.run(w.name(), w, nogen_cfg());
    (g.stats.clone(), n.stats.clone(), g, n)
}

/// Figure 10: use of garbage collection in the applications.
pub fn fig10(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 10: use of garbage collection in application");
    t.header([
        "Benchmark",
        "% time GC active",
        "No. partial GC",
        "No. full GC",
        "% time GC w/o gen",
        "No. GC w/o gen",
    ]);
    for w in suite(ctx.o.scale) {
        let (gs, ns, g, n) = stats_pair(ctx, w.as_ref());
        t.row([
            w.name().to_string(),
            format!("{}%", f1(g.percent_gc_active())),
            gs.partial_count().to_string(),
            gs.full_count().to_string(),
            format!("{}%", f1(n.percent_gc_active())),
            ns.cycles.len().to_string(),
        ]);
    }
    t
}

/// Figure 11: generational characterization, part 1 (objects scanned).
pub fn fig11(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 11: generational characterization - objects scanned");
    t.header([
        "Benchmark",
        "Avg old objs scanned (inter-gen)",
        "Avg objs scanned partial",
        "Avg objs scanned full",
        "Avg objs scanned w/o gen",
    ]);
    for w in suite(ctx.o.scale) {
        let (gs, ns, _, _) = stats_pair(ctx, w.as_ref());
        t.row([
            w.name().to_string(),
            f0_opt(gs.avg_intergen_objects(CycleKind::Partial)),
            f0_opt(gs.avg_objects_traced(CycleKind::Partial)),
            f0_opt(gs.avg_objects_traced(CycleKind::Full)),
            f0_opt(ns.avg_objects_traced(CycleKind::Full)),
        ]);
    }
    t
}

/// Figure 12: generational characterization, part 2 (percent freed).
pub fn fig12(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 12: generational characterization - percent freed");
    t.header([
        "Benchmark",
        "% bytes freed partial",
        "% objs freed partial",
        "% objs freed full",
        "% objs freed w/o gen",
    ]);
    for w in suite(ctx.o.scale) {
        let (gs, ns, _, _) = stats_pair(ctx, w.as_ref());
        t.row([
            w.name().to_string(),
            format!(
                "{}%",
                f1_opt(gs.avg_percent_bytes_freed(CycleKind::Partial))
            ),
            format!(
                "{}%",
                f1_opt(gs.avg_percent_objects_freed(CycleKind::Partial))
            ),
            format!("{}%", f1_opt(gs.avg_percent_objects_freed(CycleKind::Full))),
            format!("{}%", f1_opt(ns.avg_percent_objects_freed(CycleKind::Full))),
        ]);
    }
    t
}

/// Figure 13: elapsed time of collection cycles.
pub fn fig13(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 13: elapsed time of collection cycles (ms)");
    t.header([
        "Benchmark",
        "Avg time partial GC (ms)",
        "Avg time full GC (ms)",
        "Avg time GC w/o gen (ms)",
    ]);
    for w in suite(ctx.o.scale) {
        let (gs, ns, _, _) = stats_pair(ctx, w.as_ref());
        t.row([
            w.name().to_string(),
            f1_opt(gs.avg_cycle_ms(CycleKind::Partial)),
            f1_opt(gs.avg_cycle_ms(CycleKind::Full)),
            f1_opt(ns.avg_cycle_ms(CycleKind::Full)),
        ]);
    }
    t
}

/// Figure 14: average gain from collections.
pub fn fig14(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 14: average gain from collections");
    t.header([
        "Benchmark",
        "Avg objs freed partial",
        "Avg objs freed full",
        "Avg objs freed w/o gen",
        "Avg bytes freed partial",
        "Avg bytes freed full",
        "Avg bytes freed w/o gen",
    ]);
    for w in suite(ctx.o.scale) {
        let (gs, ns, _, _) = stats_pair(ctx, w.as_ref());
        t.row([
            w.name().to_string(),
            f0_opt(gs.avg_objects_freed(CycleKind::Partial)),
            f0_opt(gs.avg_objects_freed(CycleKind::Full)),
            f0_opt(ns.avg_objects_freed(CycleKind::Full)),
            f0_opt(gs.avg_bytes_freed(CycleKind::Partial)),
            f0_opt(gs.avg_bytes_freed(CycleKind::Full)),
            f0_opt(ns.avg_bytes_freed(CycleKind::Full)),
        ]);
    }
    t
}

/// Figure 15: average number of pages touched by a collection.
pub fn fig15(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 15: average no. of pages touched by a GC");
    t.header(["Benchmark", "Partial", "Full", "w/o generations"]);
    for w in suite(ctx.o.scale) {
        let (gs, ns, _, _) = stats_pair(ctx, w.as_ref());
        t.row([
            w.name().to_string(),
            f0_opt(gs.avg_pages_touched(CycleKind::Partial)),
            f0_opt(gs.avg_pages_touched(CycleKind::Full)),
            f0_opt(ns.avg_pages_touched(CycleKind::Full)),
        ]);
    }
    t
}

const YOUNG_SIZES_MB: [usize; 4] = [1, 2, 4, 8];

/// Figure 16: young-generation size tuning for the multithreaded Ray
/// Tracer (block and object marking × 1/2/4/8 MB young).
pub fn fig16(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "Figure 16: tuning young-generation size - % improvement, multithreaded Ray Tracer",
    );
    t.header(["Configuration", "2", "4", "6", "8", "10"]);
    for (mark, card) in [("Block marking", 4096usize), ("Object marking", 16)] {
        for young_mb in YOUNG_SIZES_MB {
            let mut row = vec![format!("{mark} with {young_mb}m young generation")];
            for threads in [2usize, 4, 6, 8, 10] {
                let w = RayTracer::multithreaded(threads).scaled(ctx.o.scale);
                let label = format!("mtrt-t{threads}");
                let cfg = gen_cfg()
                    .with_card_size(card)
                    .with_young_size(young_mb << 20);
                let imp = ctx.uni_improvement(&label, &w, cfg, nogen_cfg());
                row.push(pct(imp));
            }
            t.row(row);
        }
    }
    t
}

/// Figure 17: young-generation size tuning for the SPECjvm benchmarks.
pub fn fig17(ctx: &Ctx) -> Table {
    let mut t =
        Table::new("Figure 17: tuning young-generation size - % improvement, SPECjvm benchmarks");
    let mut header = vec!["Benchmark".to_string()];
    for mark in ["block", "object"] {
        for y in YOUNG_SIZES_MB {
            header.push(format!("{mark} {y}m"));
        }
    }
    t.header(header);
    for w in suite(ctx.o.scale) {
        let mut row = vec![w.name().to_string()];
        for card in [4096usize, 16] {
            for young_mb in YOUNG_SIZES_MB {
                let cfg = gen_cfg()
                    .with_card_size(card)
                    .with_young_size(young_mb << 20);
                let imp = ctx.uni_improvement(w.name(), w.as_ref(), cfg, nogen_cfg());
                row.push(pct(imp));
            }
        }
        t.row(row);
    }
    t
}

/// Figures 18 and 19: the aging mechanism versus the non-generational
/// collector, for tenuring thresholds in `thresholds` and young sizes
/// 1/2/4/8 MB (object marking).
pub fn fig18_19(ctx: &Ctx, thresholds: [u8; 2], figure: &str) -> Table {
    let mut t = Table::new(format!(
        "Figure {figure}: % improvement of aging over non-generational (object marking)"
    ));
    let mut header = vec!["Benchmark".to_string()];
    for th in thresholds {
        for y in YOUNG_SIZES_MB {
            header.push(format!("age{th} {y}m"));
        }
    }
    t.header(header);
    for w in suite(ctx.o.scale) {
        let mut row = vec![w.name().to_string()];
        for th in thresholds {
            for young_mb in YOUNG_SIZES_MB {
                let cfg = GcConfig::aging(th).with_young_size(young_mb << 20);
                let imp = ctx.uni_improvement(w.name(), w.as_ref(), cfg, nogen_cfg());
                row.push(pct(imp));
            }
        }
        t.row(row);
    }
    t
}

/// Figure 20: the cost of the aging mechanism itself — aging with
/// threshold 2 versus the simple promotion method.
pub fn fig20(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 20: % improvement of aging (threshold 2) over simple promotion");
    let mut header = vec!["Benchmark".to_string()];
    for y in YOUNG_SIZES_MB {
        header.push(format!("{y}m"));
    }
    t.header(header);
    for w in suite(ctx.o.scale) {
        let mut row = vec![w.name().to_string()];
        for young_mb in YOUNG_SIZES_MB {
            let aging = GcConfig::aging(2).with_young_size(young_mb << 20);
            let simple = gen_cfg().with_young_size(young_mb << 20);
            let imp = ctx.uni_improvement(w.name(), w.as_ref(), aging, simple);
            row.push(pct(imp));
        }
        t.row(row);
    }
    t
}

const CARD_SIZES: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Figure 21: percentage improvement for the various card sizes (4 MB
/// young generation).
pub fn fig21(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 21: % improvement for the various card sizes (4m young)");
    let mut header = vec!["Benchmark".to_string()];
    for c in CARD_SIZES {
        header.push(format!("{c}B"));
    }
    t.header(header);
    for w in suite(ctx.o.scale) {
        let mut row = vec![w.name().to_string()];
        for card in CARD_SIZES {
            let cfg = gen_cfg().with_card_size(card);
            let imp = ctx.uni_improvement(w.name(), w.as_ref(), cfg, nogen_cfg());
            row.push(pct(imp));
        }
        t.row(row);
    }
    t
}

/// Figure 22: percentage of dirty cards (of cards in use) per card size.
pub fn fig22(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 22: card size - % of dirty cards from allocated cards");
    let mut header = vec!["Benchmark".to_string()];
    for c in CARD_SIZES {
        header.push(format!("{c}B"));
    }
    t.header(header);
    for w in suite(ctx.o.scale) {
        let mut row = vec![w.name().to_string()];
        for card in CARD_SIZES {
            let cfg = gen_cfg().with_card_size(card);
            let r = ctx.run(w.name(), w.as_ref(), cfg);
            row.push(f1_opt(r.stats.avg_percent_dirty_cards(CycleKind::Partial)));
        }
        t.row(row);
    }
    t
}

/// Figure 23: area scanned for dirty cards (KB per partial collection).
pub fn fig23(ctx: &Ctx) -> Table {
    let mut t = Table::new("Figure 23: card size - area scanned for dirty cards (KB)");
    let mut header = vec!["Benchmark".to_string()];
    for c in CARD_SIZES {
        header.push(format!("{c}B"));
    }
    t.header(header);
    for w in suite(ctx.o.scale) {
        let mut row = vec![w.name().to_string()];
        for card in CARD_SIZES {
            let cfg = gen_cfg().with_card_size(card);
            let r = ctx.run(w.name(), w.as_ref(), cfg);
            row.push(f0_opt(
                r.stats
                    .avg_intergen_bytes(CycleKind::Partial)
                    .map(|b| b / 1024.0),
            ));
        }
        t.row(row);
    }
    t
}
