//! `_209_db` (paper §8.2, SPECjvm98).
//!
//! An in-memory database: a large long-lived index of records, probed and
//! occasionally updated by a stream of operations.
//!
//! Generational signature reproduced (Figures 10–12, 22–23): GC is a
//! small fraction of the run (~2–3%), operation temporaries die young
//! (99.8% freed in partials), updates write into the *old* record region
//! — but the records were allocated together, so the dirty objects are
//! **concentrated** and the area scanned for dirty cards is almost
//! independent of the card size (Figure 23: 2696 → 2893 across 16→4096
//! bytes), with ~20% of cards dirty at every card size (Figure 22).
//! Generations are roughly performance-neutral (−0.9%/+0.7%, Figure 9).

use otf_gc::{Mutator, ObjectRef};
use otf_support::rand::RngExt;

use crate::toolkit::{alloc_array, alloc_data, alloc_node, fill_data, mix, pick, rng_for};
use crate::Workload;

/// Records per index chunk.
const CHUNK: usize = 1024;

/// The database workload.
#[derive(Clone, Debug)]
pub struct Db {
    /// Number of records in the database (long-lived).
    pub records: usize,
    /// Operations to execute.
    pub operations: usize,
    /// Percentage of operations that are updates (the rest are lookups).
    pub update_percent: u32,
}

impl Db {
    /// The default configuration.
    pub fn new() -> Db {
        Db {
            records: 40_000,
            operations: 2_500_000,
            update_percent: 3,
        }
    }

    /// Scales the amount of work.
    pub fn scaled(mut self, scale: f64) -> Db {
        self.operations = ((self.operations as f64 * scale) as usize).max(1);
        self
    }
}

impl Default for Db {
    fn default() -> Self {
        Db::new()
    }
}

impl Workload for Db {
    fn name(&self) -> &'static str {
        "_209_db"
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);

        // Build the database: an index of chunks, each chunk an array of
        // record references; every record points at its value object.
        // Everything is allocated together, so the record region is
        // spatially concentrated — the paper's explanation for db's
        // card-size insensitivity.
        let n_chunks = self.records.div_ceil(CHUNK);
        let index: ObjectRef = alloc_array(m, n_chunks);
        m.root_push(index);
        for c in 0..n_chunks {
            let chunk = alloc_array(m, CHUNK);
            m.write_ref(index, c, chunk);
            for i in 0..CHUNK.min(self.records - c * CHUNK) {
                let record = alloc_node(m, 1, 2);
                m.write_data(record, 0, (c * CHUNK + i) as u64);
                // Store the record before allocating its value: allocation
                // is a safe point, and an unrooted, unstored ref does not
                // survive one.
                m.write_ref(chunk, i, record);
                let value = alloc_data(m, 2);
                fill_data(m, value, 2, (c * CHUNK + i) as u64);
                m.write_ref(record, 0, value);
            }
            m.cooperate();
        }

        let mut checksum = 0u64;
        for op in 0..self.operations {
            let r = pick(&mut rng, self.records);
            let chunk = m.read_ref(index, r / CHUNK);
            let record = m.read_ref(chunk, r % CHUNK);
            // Every operation allocates a couple of short-lived
            // temporaries (cursor, result holder).
            let cursor = alloc_data(m, 2);
            m.write_data(cursor, 0, mix(op as u64, 192));
            if rng.random_range(0..100) < self.update_percent {
                // Update: a fresh value object stored into the *old*
                // record — an inter-generational pointer write.
                let value = alloc_data(m, 2);
                fill_data(m, value, 2, op as u64);
                m.write_ref(record, 0, value);
            } else {
                let value = m.read_ref(record, 0);
                checksum = checksum.wrapping_add(m.read_data(value, 0));
            }
            if op % 512 == 0 {
                m.cooperate();
            }
        }
        std::hint::black_box(checksum);
        m.root_pop();
    }
}
