//! Allocator scalability benchmark: allocation throughput as the mutator
//! thread count scales, sharded vs. unsharded heap back-end.
//!
//! Runs a linked-list allocation churn at 1/4/16 mutator threads under
//! two arms: the original single free-list allocator (`alloc_shards = 0`)
//! and the sharded block-store back-end (DESIGN.md §4.5, 16 shards).
//! Every run ends at a quiescent point and is heap-verified.  Reported
//! per row: wall time, allocation throughput, allocation-stall
//! p99.9/max, and heap violations.
//!
//! Gates (generous slack — this harness must pass on a single-core
//! container, where threads only add scheduling noise):
//!
//! * **N=1 parity** — one mutator on the sharded arm takes an
//!   uncontended single-shard path, so its throughput must track the
//!   unsharded arm's (within 2x).
//! * **alloc-stall non-regression** — sharding must not introduce
//!   allocation stalls: at every thread count the sharded arm's p99.9
//!   stall stays within 10x + 20 ms of the unsharded arm's.
//! * **zero heap violations** — hard failure.
//!
//! The 16-thread throughput speedup over 1 thread is *recorded* (with
//! the machine's available parallelism) but never gated: on one core the
//! honest expectation is ~1.0x or below.
//!
//! Emits `BENCH_scale.json` (override with `OTF_BENCH_OUT`); exits
//! non-zero on heap violations or a gate failure.  Accepts the standard
//! figure-harness flags (`--scale`, `--reps`, `--seed`, `--quick`).

use std::time::{Duration, Instant};

use otf_bench::measure::{pinned, Options};
use otf_bench::table::Table;
use otf_gc::{Gc, GcConfig, Mutator, ObjShape};
use otf_support::hist::Snapshot;

const THREAD_COUNTS: [usize; 3] = [1, 4, 16];
const SHARDS: usize = 16;
/// Nodes per rooted chain before it is dropped (becomes garbage).
const CHAIN: usize = 256;

struct ScaleResult {
    arm: &'static str,
    threads: usize,
    elapsed: Duration,
    /// Bytes allocated across all threads and reps.
    bytes: u64,
    objects: u64,
    alloc_stall: Snapshot,
    violations: usize,
    /// Allocation failures (OOM under pressure) — expected zero.
    failures: usize,
}

impl ScaleResult {
    fn mb_per_s(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// One thread's allocation churn: rooted chains of small linked nodes,
/// dropped after completion so the collector has garbage to reclaim.
fn churn(m: &mut Mutator, objects: usize) -> usize {
    let shape = ObjShape::new(1, 1); // 2 granules: 1 ref, 1 data word
    let mut failures = 0usize;
    let mut done = 0usize;
    while done < objects {
        let chain = CHAIN.min(objects - done);
        match m.alloc(&shape) {
            Ok(head) => {
                let idx = m.root_push(head);
                let mut prev = head;
                for _ in 1..chain {
                    match m.alloc(&shape) {
                        Ok(o) => {
                            m.write_ref(o, 0, prev);
                            m.root_set(idx, o);
                            prev = o;
                        }
                        Err(_) => failures += 1,
                    }
                }
                m.root_pop();
            }
            Err(_) => failures += chain,
        }
        done += chain;
        m.cooperate();
    }
    failures
}

fn run_case(
    arm: &'static str,
    shards: usize,
    threads: usize,
    per_thread: usize,
    o: &Options,
) -> ScaleResult {
    let mut elapsed = Duration::ZERO;
    let mut bytes = 0u64;
    let mut objects = 0u64;
    let mut alloc_stall = Snapshot::default();
    let mut violations = 0usize;
    let mut failures = 0usize;
    for _rep in 0..o.reps.max(1) {
        let mut gc = Gc::new(pinned(GcConfig::generational().with_alloc_shards(shards)));
        let t0 = Instant::now();
        let rep_failures: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let mut m = gc.mutator();
                    s.spawn(move || churn(&mut m, per_thread))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        elapsed += t0.elapsed();
        failures += rep_failures;
        gc.stop_collector();
        violations += gc.verify_heap().len();
        let stats = gc.stats();
        bytes += stats.bytes_allocated;
        objects += stats.objects_allocated;
        alloc_stall.merge(&stats.alloc_stall);
    }
    ScaleResult {
        arm,
        threads,
        elapsed,
        bytes,
        objects,
        alloc_stall,
        violations,
        failures,
    }
}

/// Sharded N=1 throughput must track the unsharded arm (within 2x).
fn n1_parity(rows: &[ScaleResult]) -> bool {
    let unsharded = rows
        .iter()
        .find(|r| r.arm == "unsharded" && r.threads == 1)
        .map(|r| r.mb_per_s())
        .unwrap_or(0.0);
    let sharded = rows
        .iter()
        .find(|r| r.arm == "sharded" && r.threads == 1)
        .map(|r| r.mb_per_s())
        .unwrap_or(0.0);
    let ok = sharded * 2.0 >= unsharded;
    if !ok {
        eprintln!(
            "error: sharded N=1 throughput {sharded:.1} MB/s vs unsharded \
             {unsharded:.1} MB/s — parity broken"
        );
    }
    ok
}

/// The sharded arm must not introduce allocation stalls: p99.9 within
/// 10x + 20 ms of the unsharded arm at the same thread count.
fn alloc_stall_ok(rows: &[ScaleResult]) -> bool {
    rows.iter().filter(|r| r.arm == "sharded").all(|r| {
        let base = rows
            .iter()
            .find(|b| b.arm == "unsharded" && b.threads == r.threads)
            .map(|b| b.alloc_stall.quantile(0.999))
            .unwrap_or(0);
        let bound = base.saturating_mul(10) + 20_000_000;
        let ok = r.alloc_stall.quantile(0.999) <= bound;
        if !ok {
            eprintln!(
                "error: sharded N={} alloc-stall p99.9 {:.1} us vs unsharded \
                 {:.1} us — stall regression",
                r.threads,
                us(r.alloc_stall.quantile(0.999)),
                us(base)
            );
        }
        ok
    })
}

/// Sharded 16-thread / 1-thread throughput ratio (informational only).
fn speedup_16(rows: &[ScaleResult]) -> f64 {
    let t1 = rows
        .iter()
        .find(|r| r.arm == "sharded" && r.threads == 1)
        .map(|r| r.mb_per_s())
        .unwrap_or(0.0);
    let t16 = rows
        .iter()
        .find(|r| r.arm == "sharded" && r.threads == 16)
        .map(|r| r.mb_per_s())
        .unwrap_or(0.0);
    if t1 == 0.0 {
        0.0
    } else {
        t16 / t1
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn write_json(
    rows: &[ScaleResult],
    cores: usize,
    parity: bool,
    stall_ok: bool,
    speedup: f64,
    o: &Options,
    path: &str,
) {
    let mut j = String::from("{\n  \"bench\": \"scale\",\n");
    j.push_str(&format!(
        "  \"cores\": {cores}, \"shards\": {SHARDS}, \"scale\": {}, \"reps\": {}, \"seed\": {},\n",
        o.scale, o.reps, o.seed
    ));
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"arm\": \"{}\", \"threads\": {}, \"elapsed_ms\": {:.2}, \
             \"mb_per_s\": {:.2}, \"objects\": {}, \"alloc_stall_p999_us\": {:.1}, \
             \"alloc_stall_max_us\": {:.1}, \"failures\": {}, \"violations\": {}}}{}\n",
            json_escape_free(r.arm),
            r.threads,
            r.elapsed.as_secs_f64() * 1e3,
            r.mb_per_s(),
            r.objects,
            us(r.alloc_stall.quantile(0.999)),
            us(r.alloc_stall.max()),
            r.failures,
            r.violations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"n1_parity\": {parity}, \"alloc_stall_ok\": {stall_ok}, \
         \"speedup_16\": {speedup:.3}\n}}\n"
    ));
    if let Err(e) = std::fs::write(path, &j) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}

fn main() {
    let o = Options::from_args();
    let quick = std::env::var_os("OTF_BENCH_QUICK").is_some() || o.scale < 0.2;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Work per thread (weak scaling: throughput should rise with the
    // thread count on a multi-core host).
    let per_thread = if quick {
        20_000
    } else {
        (200_000.0 * o.scale) as usize
    }
    .max(CHAIN);

    println!(
        "== allocator scalability ({cores} core(s) available, \
         {per_thread} objects/thread) ==\n"
    );

    let arms: [(&'static str, usize); 2] = [("unsharded", 0), ("sharded", SHARDS)];
    let mut rows = Vec::new();
    for (arm, shards) in arms {
        for n in THREAD_COUNTS {
            let r = run_case(arm, shards, n, per_thread, &o);
            println!(
                "{arm:<9} N={n:<2}  {:>8.1} MB/s  stall p99.9 {:>9.1} us  \
                 violations {}",
                r.mb_per_s(),
                us(r.alloc_stall.quantile(0.999)),
                r.violations,
            );
            rows.push(r);
        }
    }

    let total_violations: usize = rows.iter().map(|r| r.violations).sum();
    let parity = n1_parity(&rows);
    let stall_ok = alloc_stall_ok(&rows);
    let speedup = speedup_16(&rows);

    let mut t = Table::new("allocator scalability: throughput by mutator thread count");
    t.header([
        "arm",
        "threads",
        "throughput",
        "stall p99.9",
        "stall max",
        "failures",
        "violations",
    ]);
    for r in &rows {
        t.row([
            r.arm.to_string(),
            r.threads.to_string(),
            format!("{:.1} MB/s", r.mb_per_s()),
            format!("{:.1} us", us(r.alloc_stall.quantile(0.999))),
            format!("{:.1} us", us(r.alloc_stall.max())),
            r.failures.to_string(),
            r.violations.to_string(),
        ]);
    }
    println!();
    t.print();
    println!(
        "\nsharded 16-thread throughput speedup {speedup:.2}x over 1 thread \
         on {cores} core(s) — informational, not gated"
    );

    let path = std::env::var("OTF_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    write_json(&rows, cores, parity, stall_ok, speedup, &o, &path);

    if total_violations > 0 {
        eprintln!("{total_violations} heap violation(s) across the matrix");
        std::process::exit(1);
    }
    if !parity || !stall_ok {
        eprintln!("gate failure: n1_parity={parity} alloc_stall_ok={stall_ok}");
        std::process::exit(1);
    }
}
