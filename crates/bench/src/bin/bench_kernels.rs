//! Side-table kernel microbenchmark: byte-loop reference vs
//! word-at-a-time (`otf_support::tablescan`) on dense, sparse and
//! alternating table contents, plus an end-to-end A/B of the real
//! collector's sweep/card/init phases on the `db` and `compress`
//! workloads (same binary, kernels switched via
//! [`tablescan::force_reference`]).
//!
//! Results are printed as a table and emitted machine-readable to
//! `BENCH_kernels.json` (set `OTF_BENCH_OUT` to override the path) so
//! successive PRs can track the kernel-performance trajectory.
//!
//! Accepts the standard figure-harness flags (`--scale`, `--reps`,
//! `--seed`, `--quick`); combine `--quick` with `OTF_BENCH_QUICK=1` for
//! the CI smoke configuration.

use std::sync::atomic::AtomicU8;
use std::time::Duration;

use otf_bench::measure::{median_run, Options};
use otf_bench::table::Table;
use otf_gc::{CycleKind, GcConfig};
use otf_support::bench::Harness;
use otf_support::tablescan::{self, reference};
use otf_workloads::{Compress, Db, Workload};

/// One kernel measurement: reference vs word timing on one pattern.
struct KernelResult {
    kernel: &'static str,
    pattern: &'static str,
    bytes: usize,
    ref_ns: f64,
    word_ns: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        if self.word_ns > 0.0 {
            self.ref_ns / self.word_ns
        } else {
            0.0
        }
    }
}

/// One end-to-end workload phase measurement under one kernel mode.
struct WorkloadResult {
    workload: &'static str,
    mode: &'static str,
    elapsed: Duration,
    cycles: usize,
    init: Duration,
    cards: Duration,
    sweep: Duration,
}

/// A color-table-like byte pattern: `White` starts, `Interior` bodies,
/// `Free` gaps (encodings 2 / 1 / 0, matching `otf_heap::Color`).
fn color_pattern(bytes: usize, object_granules: usize, gap: usize) -> Vec<AtomicU8> {
    let mut v = Vec::with_capacity(bytes);
    while v.len() < bytes {
        v.push(AtomicU8::new(2)); // object start
        for _ in 1..object_granules.min(bytes - v.len() + 1) {
            if v.len() < bytes {
                v.push(AtomicU8::new(1)); // interior
            }
        }
        for _ in 0..gap {
            if v.len() < bytes {
                v.push(AtomicU8::new(0)); // free
            }
        }
    }
    v
}

/// A card-table-like pattern: one dirty byte every `period` cards.
fn card_pattern(bytes: usize, period: usize) -> Vec<AtomicU8> {
    (0..bytes)
        .map(|i| AtomicU8::new(u8::from(i % period == 0)))
        .collect()
}

/// The sweep's table walk: skip non-object bytes, then scan the found
/// object's interior run; repeat to the end.  Returns the object count
/// so the closure has a data dependency the optimizer must keep.
fn sweep_walk(
    t: &[AtomicU8],
    skip: fn(&[AtomicU8], usize, usize, u8) -> usize,
    run_end: fn(&[AtomicU8], usize, usize, u8) -> usize,
) -> usize {
    let end = t.len();
    let mut objects = 0;
    let mut g = 0;
    while g < end {
        g = skip(t, g, end, 1);
        if g >= end {
            break;
        }
        objects += 1;
        g = run_end(t, g + 1, end, 1);
    }
    objects
}

/// The card scan's walk: hop from dirty byte to dirty byte.
fn card_walk(t: &[AtomicU8], skip: fn(&[AtomicU8], usize, usize, u8) -> usize) -> usize {
    let end = t.len();
    let mut dirty = 0;
    let mut g = 0;
    while g < end {
        g = skip(t, g, end, 0);
        if g >= end {
            break;
        }
        dirty += 1;
        g += 1;
    }
    dirty
}

/// Benchmarks `f_ref` vs `f_word` and records the pair.
fn bench_pair(
    h: &mut Harness,
    out: &mut Vec<KernelResult>,
    kernel: &'static str,
    pattern: &'static str,
    bytes: usize,
    mut f_ref: impl FnMut() -> usize,
    mut f_word: impl FnMut() -> usize,
) {
    assert_eq!(f_ref(), f_word(), "{kernel}/{pattern}: kernels disagree");
    h.bench(&format!("{kernel}/{pattern}/ref"), &mut f_ref);
    let ref_ns = h.results().last().unwrap().1.median.as_nanos() as f64;
    h.bench(&format!("{kernel}/{pattern}/word"), &mut f_word);
    let word_ns = h.results().last().unwrap().1.median.as_nanos() as f64;
    out.push(KernelResult {
        kernel,
        pattern,
        bytes,
        ref_ns,
        word_ns,
    });
}

fn bench_kernels(table_bytes: usize) -> Vec<KernelResult> {
    let mut h = Harness::new();
    let mut out = Vec::new();

    // The three color-table regimes: sparse (mostly-free heap after a
    // major reclamation — the sweep's dominant case), alternating
    // (object / small gap), dense (back-to-back survivors).
    let patterns: [(&'static str, Vec<AtomicU8>); 3] = [
        ("sparse", color_pattern(table_bytes, 2, 254)),
        ("alternating", color_pattern(table_bytes, 2, 6)),
        ("dense", color_pattern(table_bytes, 2, 0)),
    ];
    for (name, t) in &patterns {
        bench_pair(
            &mut h,
            &mut out,
            "sweep_walk",
            name,
            t.len(),
            || sweep_walk(t, reference::find_byte_not_in, reference::find_run_end),
            || sweep_walk(t, tablescan::find_byte_not_in, tablescan::find_run_end),
        );
    }

    // Card-table regimes: 0.05% dirty, ~3% dirty, every card dirty.
    let cards: [(&'static str, Vec<AtomicU8>); 3] = [
        ("sparse", card_pattern(table_bytes / 4, 2048)),
        ("alternating", card_pattern(table_bytes / 4, 32)),
        ("dense", card_pattern(table_bytes / 4, 1)),
    ];
    for (name, t) in &cards {
        bench_pair(
            &mut h,
            &mut out,
            "card_walk",
            name,
            t.len(),
            || card_walk(t, reference::find_byte_not_in),
            || card_walk(t, tablescan::find_byte_not_in),
        );
        bench_pair(
            &mut h,
            &mut out,
            "count_dirty",
            name,
            t.len(),
            || reference::count_matching(t, 0, t.len(), 1),
            || tablescan::count_matching(t, 0, t.len(), 1),
        );
    }

    // Bulk clears (InitFullCollection's clear_all; sweep's fill-to-free).
    let t = card_pattern(table_bytes / 4, 1);
    bench_pair(
        &mut h,
        &mut out,
        "bulk_zero",
        "full_table",
        t.len(),
        || {
            reference::bulk_zero(&t, 0, t.len());
            t.len()
        },
        || {
            tablescan::bulk_zero(&t, 0, t.len());
            t.len()
        },
    );
    out
}

/// Runs `workload` once per kernel mode and reports the cycle-phase
/// sums.  The mode switch covers every table scan in the process, so
/// this is a true same-binary A/B of the word kernels.
fn bench_workload(
    name: &'static str,
    w: &dyn Workload,
    o: &Options,
    out: &mut Vec<WorkloadResult>,
) {
    for (mode, forced) in [("reference", true), ("word", false)] {
        tablescan::force_reference(forced);
        let r = median_run(w, GcConfig::generational(), o);
        tablescan::force_reference(false);
        let (mut init, mut cards, mut sweep) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        for c in &r.stats.cycles {
            init += c.phases.init;
            cards += c.phases.cards;
            sweep += c.phases.sweep;
        }
        let full = r.stats.cycles_of(CycleKind::Full).count();
        let partial = r.stats.cycles_of(CycleKind::Partial).count();
        println!(
            "{name}/{mode:<9} elapsed {:>8.1} ms  sweep {:>8.2} ms  cards {:>7.2} ms  \
             init {:>7.2} ms  ({partial} partial + {full} full cycles)",
            r.elapsed.as_secs_f64() * 1e3,
            sweep.as_secs_f64() * 1e3,
            cards.as_secs_f64() * 1e3,
            init.as_secs_f64() * 1e3,
        );
        out.push(WorkloadResult {
            workload: name,
            mode,
            elapsed: r.elapsed,
            cycles: r.stats.cycles.len(),
            init,
            cards,
            sweep,
        });
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    if b.is_zero() {
        0.0
    } else {
        a.as_secs_f64() / b.as_secs_f64()
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn write_json(kernels: &[KernelResult], workloads: &[WorkloadResult], o: &Options, path: &str) {
    let mut j = String::from("{\n  \"bench\": \"kernels\",\n");
    j.push_str(&format!(
        "  \"scale\": {}, \"reps\": {}, \"seed\": {},\n",
        o.scale, o.reps, o.seed
    ));
    j.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"pattern\": \"{}\", \"bytes\": {}, \
             \"ref_ns\": {:.1}, \"word_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            json_escape_free(k.kernel),
            json_escape_free(k.pattern),
            k.bytes,
            k.ref_ns,
            k.word_ns,
            k.speedup(),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"elapsed_ms\": {:.2}, \
             \"cycles\": {}, \"init_ms\": {:.3}, \"cards_ms\": {:.3}, \"sweep_ms\": {:.3}}}{}\n",
            json_escape_free(w.workload),
            json_escape_free(w.mode),
            w.elapsed.as_secs_f64() * 1e3,
            w.cycles,
            w.init.as_secs_f64() * 1e3,
            w.cards.as_secs_f64() * 1e3,
            w.sweep.as_secs_f64() * 1e3,
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n  \"sweep_reduction\": [\n");
    let pairs: Vec<(&WorkloadResult, &WorkloadResult)> = workloads
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|c| (&c[0], &c[1]))
        .collect();
    for (i, (r, w)) in pairs.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"sweep_speedup\": {:.2}, \"cards_speedup\": {:.2}, \
             \"init_speedup\": {:.2}}}{}\n",
            json_escape_free(r.workload),
            ratio(r.sweep, w.sweep),
            ratio(r.cards, w.cards),
            ratio(r.init, w.init),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    match std::fs::write(path, &j) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn main() {
    let o = Options::from_args();
    let quick = std::env::var_os("OTF_BENCH_QUICK").is_some() || o.scale < 0.2;
    let table_bytes = if quick { 1 << 18 } else { 4 << 20 };

    println!("== side-table kernels: byte loop vs word-at-a-time ==\n");
    let kernels = bench_kernels(table_bytes);

    let mut t = Table::new("kernel microbenchmarks (full-table walk, median)");
    t.header(["kernel", "pattern", "ref ns", "word ns", "speedup"]);
    for k in &kernels {
        t.row([
            k.kernel.to_string(),
            k.pattern.to_string(),
            format!("{:.0}", k.ref_ns),
            format!("{:.0}", k.word_ns),
            format!("{:.2}x", k.speedup()),
        ]);
    }
    println!();
    t.print();

    println!("== end-to-end collector phases (generational, db/compress) ==\n");
    let wl_scale = if quick {
        o.scale.min(0.1)
    } else {
        o.scale * 0.5
    };
    let mut workloads = Vec::new();
    bench_workload("db", &Db::new().scaled(wl_scale), &o, &mut workloads);
    bench_workload(
        "compress",
        &Compress::new().scaled(wl_scale),
        &o,
        &mut workloads,
    );

    for pair in workloads.chunks(2) {
        if let [r, w] = pair {
            println!(
                "\n{}: sweep {:.2}x faster, cards {:.2}x, init {:.2}x (word vs byte loop)",
                r.workload,
                ratio(r.sweep, w.sweep),
                ratio(r.cards, w.cards),
                ratio(r.init, w.init),
            );
        }
    }

    let path = std::env::var("OTF_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    write_json(&kernels, &workloads, &o, &path);
}
