//! `GcShared`: the state shared by every mutator and the collector thread,
//! plus the graying primitives and the soft-handshake protocol.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use otf_heap::{CardTable, Color, HeapSpace, ObjectRef};
use otf_support::queue::SegQueue;
use otf_support::sync::{Condvar, Mutex};

use crate::config::{GcConfig, StallPolicy};
use crate::control::Control;
use crate::lazy::LazySweep;
use crate::obs::Obs;
use crate::state::{ColorState, MutatorShared, Status};
use crate::stats::CycleStats;

/// Codes for the cycle bucket currently open, published in
/// [`GcShared::open_bucket`] so the supervisor's abort routine and the
/// watchdog's stall reports can name where a cycle was interrupted.
/// `0` means no bucket is open (no cycle in flight).
pub(crate) mod bucket {
    pub const NONE: u8 = 0;
    pub const LAZY_FINALIZE: u8 = 1;
    pub const INIT: u8 = 2;
    pub const HANDSHAKE_1: u8 = 3;
    pub const HANDSHAKE_2: u8 = 4;
    pub const HANDSHAKE_3: u8 = 5;
    pub const TRACE: u8 = 6;
    pub const RECLAIM: u8 = 7;
    // Overlapped plans only (DESIGN.md §4.9): the producer buckets open
    // concurrently with `TRACE`; the published code is whichever bucket
    // opened last, which for the overlap group is always `TRACE`.
    pub const CARDS: u8 = 8;
    pub const ROOTS: u8 = 9;
}

/// Human-readable name for an [`bucket`] code (also used by the event
/// ring's JSON rendering, which carries the code as a `u64` payload).
pub(crate) fn bucket_label(code: u64) -> &'static str {
    match code as u8 {
        bucket::LAZY_FINALIZE => "lazy-finalize",
        bucket::INIT => "init",
        bucket::HANDSHAKE_1 => "handshake-1",
        bucket::HANDSHAKE_2 => "handshake-2",
        bucket::HANDSHAKE_3 => "handshake-3",
        bucket::TRACE => "trace",
        bucket::RECLAIM => "reclaim",
        bucket::CARDS => "cards",
        bucket::ROOTS => "roots",
        _ => "none",
    }
}

#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub cycles: Vec<CycleStats>,
    pub gc_active: Duration,
}

/// State shared between all mutators and the collector.
pub(crate) struct GcShared {
    pub config: GcConfig,
    pub heap: HeapSpace,
    pub cards: CardTable,
    pub colors: ColorState,
    /// The collector's status (`status_c` in the pseudo-code).
    pub status_c: AtomicU8,
    /// True while the collector is tracing ("Collector is tracing" in the
    /// write barrier, Figure 1).
    pub tracing: AtomicBool,
    /// True while any collection cycle is in progress.
    pub collecting: AtomicBool,
    /// The [`bucket`] code of the schedule bucket currently open (0 =
    /// none).  Written by the cycle schedule's open hooks; read by the
    /// watchdog (report enrichment) and the supervisor's abort routine
    /// (which bucket the panic unwound out of).
    pub open_bucket: AtomicU8,
    /// The gray-object work queue.  Mutators push after winning the
    /// gray-coloring CAS; only the collector pops.
    pub gray: SegQueue<ObjectRef>,
    /// Registered mutators.
    pub mutators: Mutex<Vec<Arc<MutatorShared>>>,
    /// Registration-id counter for mutators (watchdog diagnostics).
    next_mutator_id: AtomicU64,
    /// Global (static) roots, marked by the collector at the third
    /// handshake.
    pub globals: Mutex<Vec<ObjectRef>>,
    pub control: Control,
    /// Lazy (allocation-time) sweep epoch state — inert unless
    /// `config.lazy_sweep` is set (DESIGN.md §4.6).
    pub lazy: LazySweep,
    pub stats: Mutex<StatsInner>,
    /// Pause histograms and the GC event trace ring.
    pub obs: Obs,
    pub start: Instant,
    /// Handshake wakeup: mutators notify after adopting a posted status
    /// (and when parking), so the collector sleeps instead of spinning —
    /// essential on machines with fewer cores than threads.
    hs_lock: Mutex<()>,
    hs_cond: Condvar,
}

impl std::fmt::Debug for GcShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcShared")
            .field("config", &self.config)
            .field("status_c", &self.status_c)
            .field("collecting", &self.collecting)
            .finish_non_exhaustive()
    }
}

impl GcShared {
    pub(crate) fn new(config: GcConfig) -> GcShared {
        config.validate().expect("invalid GcConfig");
        let heap = if config.alloc_shards > 0 {
            HeapSpace::with_shards(config.max_heap, config.initial_heap, config.alloc_shards)
        } else {
            HeapSpace::new(config.max_heap, config.initial_heap)
        };
        let cards = CardTable::new(config.max_heap, config.card_size);
        GcShared {
            config,
            heap,
            cards,
            colors: ColorState::new(),
            status_c: AtomicU8::new(Status::Async as u8),
            tracing: AtomicBool::new(false),
            collecting: AtomicBool::new(false),
            open_bucket: AtomicU8::new(bucket::NONE),
            gray: SegQueue::new(),
            mutators: Mutex::new(Vec::new()),
            next_mutator_id: AtomicU64::new(1),
            globals: Mutex::new(Vec::new()),
            control: Control::new(),
            lazy: LazySweep::default(),
            stats: Mutex::new(StatsInner::default()),
            obs: Obs::new(
                config.trace_events || std::env::var_os("OTF_GC_TRACE").is_some(),
                config.gc_threads,
            ),
            start: Instant::now(),
            hs_lock: Mutex::new(()),
            hs_cond: Condvar::new(),
        }
    }

    /// Wakes a collector blocked in [`wait_handshake`].  Called by
    /// mutators right after adopting a posted status or parking.
    ///
    /// [`wait_handshake`]: GcShared::wait_handshake
    pub(crate) fn notify_handshake(&self) {
        let _guard = self.hs_lock.lock();
        self.hs_cond.notify_all();
    }

    /// The collector's current status.
    #[inline]
    pub(crate) fn status_c(&self) -> Status {
        Status::from_byte(self.status_c.load(Ordering::Acquire))
    }

    /// The color that "black" plays during trace: literal black for the
    /// generational variants (black ⇔ traced, and in the simple variant
    /// also ⇔ old); for the non-generational baseline the *allocation*
    /// color is the mark color, which is how the black/white color toggle
    /// of Remark 5.1 avoids any recoloring pass.
    #[inline]
    pub(crate) fn trace_target(&self) -> Color {
        if self.config.is_generational() {
            Color::Black
        } else {
            self.colors.allocation_color()
        }
    }

    /// `MarkGray` as the collector (and the async-phase write barrier)
    /// performs it: shade the object only if it has the clear color.
    #[inline]
    pub(crate) fn mark_gray_clear(&self, obj: ObjectRef) {
        if obj.is_null() {
            return;
        }
        let clear = self.colors.clear_color();
        if self.heap.colors().cas(obj.granule(), clear, Color::Gray) {
            self.gray.push(obj);
        }
    }

    /// `MarkGray` as performed in the sync1/sync2 window and at root
    /// marking: both young colors are shaded (the §7.1 yellow exception —
    /// "whenever the DLG write barrier would shade a white object gray, it
    /// will also shade a yellow object gray").
    #[inline]
    pub(crate) fn mark_gray_snapshot(&self, obj: ObjectRef) {
        if obj.is_null() {
            return;
        }
        let g = obj.granule();
        let ct = self.heap.colors();
        if ct.cas(g, Color::White, Color::Gray) || ct.cas(g, Color::Yellow, Color::Gray) {
            self.gray.push(obj);
        }
    }

    /// Grays an old (black) object found on a dirty card so the trace will
    /// re-scan it (simple variant `ClearCards`, Figure 3).  Returns whether
    /// this call performed the shading.
    #[inline]
    #[allow(dead_code)] // exercised by unit tests
    pub(crate) fn mark_gray_from_black(&self, obj: ObjectRef) -> bool {
        let shaded = self
            .heap
            .colors()
            .cas(obj.granule(), Color::Black, Color::Gray);
        if shaded {
            self.gray.push(obj);
        }
        shaded
    }

    /// Collector-side `MarkGray` onto the collector's private mark stack
    /// (cheaper than the shared queue; only the collector pops it).
    #[inline]
    pub(crate) fn mark_gray_clear_local(&self, obj: ObjectRef, stack: &mut Vec<ObjectRef>) {
        if obj.is_null() {
            return;
        }
        let clear = self.colors.clear_color();
        if self.heap.colors().cas(obj.granule(), clear, Color::Gray) {
            stack.push(obj);
        }
    }

    /// Collector-side snapshot `MarkGray` (both young colors) onto the
    /// private mark stack.
    #[inline]
    pub(crate) fn mark_gray_snapshot_local(&self, obj: ObjectRef, stack: &mut Vec<ObjectRef>) {
        if obj.is_null() {
            return;
        }
        let g = obj.granule();
        let ct = self.heap.colors();
        if ct.cas(g, Color::White, Color::Gray) || ct.cas(g, Color::Yellow, Color::Gray) {
            stack.push(obj);
        }
    }

    /// Evaluates the §3.3 collection triggers against the current
    /// accumulator and heap occupancy, requesting a partial and/or full
    /// collection as needed.  Shared by the allocation slow path, the
    /// collector's end-of-cycle check (so a trigger crossed *during* a
    /// cycle is not starved until the next 64 KB allocation batch), and
    /// `Mutator::drop` (which flushes its unflushed bytes first).
    ///
    /// A no-op while a cycle is running: the collector re-evaluates when
    /// it finishes.
    pub(crate) fn evaluate_triggers(&self) {
        if self.collecting.load(Ordering::Acquire) {
            return;
        }
        let since = self.control.bytes_since_cycle();
        if self.config.is_generational() && since >= self.config.young_size as u64 {
            self.control.request_partial();
        }
        // Full collection when the heap is "almost full" (§3.3) — but only
        // after some allocation progress, to avoid re-triggering endlessly
        // on a mostly-live heap.  `used_granules` counts whole LABs at
        // grant time, so subtract the leased-but-uncarved portion: with
        // many mutators (one LAB each) the raw figure reads mostly-empty
        // buffers as pressure and fires premature full collections.
        // In lazy-sweep mode, granules the published epoch has not yet
        // reclaimed still sit in `used_granules` even though they are
        // dead: subtract the epoch's unswept-garbage estimate so the
        // deferred sweep does not masquerade as occupancy and fire
        // premature full collections (DESIGN.md §4.6).
        let used = self
            .heap
            .used_bytes()
            .saturating_sub(self.heap.lab_leased_bytes())
            .saturating_sub(self.lazy.unswept_bytes() as usize) as f64;
        let committed = self.heap.committed_bytes() as f64;
        if used >= self.config.full_trigger_fraction * committed && since >= (64 << 10) {
            self.control.request_full();
        }
    }

    // ----- handshakes (§7: postHandshake / waitHandshake) -----

    /// `postHandshake(s)`: announce the new status.  The post timestamp
    /// is recorded first, so any mutator that observes the new status
    /// also observes a post time at least this fresh.
    pub(crate) fn post_handshake(&self, s: Status) {
        self.obs.note_handshake_post(s);
        self.status_c.store(s as u8, Ordering::Release);
    }

    /// `waitHandshake`: wait until every mutator has adopted the posted
    /// status.  Parked mutators are responded-to on their behalf under the
    /// park lock: if the transition is to `Async` (the third handshake),
    /// the collector marks the parked mutator's snapshot roots gray.
    pub(crate) fn wait_handshake(&self) {
        let target = self.status_c.load(Ordering::Acquire);
        let snapshot: Vec<Arc<MutatorShared>> = self.mutators.lock().clone();
        // Watchdog state: after `stall` without full adoption, name the
        // non-cooperating mutators instead of hanging silently, then keep
        // waiting — the protocol cannot proceed without the ack, but the
        // hang is now attributed.  Repeat reports are rate-limited
        // (spacing doubles each time) and escalate per
        // `handshake_stall_policy`: warn → trace-dump → abort-cycle (the
        // third report panics into the supervisor, which runs the safe
        // cycle abort and restarts the collector).
        let started = Instant::now();
        let stall = match self.config.handshake_stall_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        let mut next_report = stall;
        let mut reports = 0u32;
        loop {
            otf_support::fault::point("collector.handshake.wait");
            let mut all_responded = true;
            for m in &snapshot {
                if m.status.load(Ordering::Acquire) == target {
                    continue;
                }
                let park = m.park.lock();
                if park.parked {
                    // Respond on the parked mutator's behalf.
                    if target == Status::Async as u8 {
                        for &r in &park.roots {
                            self.mark_gray_snapshot(r);
                        }
                    }
                    m.status.store(target, Ordering::Release);
                } else {
                    all_responded = false;
                }
            }
            if all_responded {
                return;
            }
            if let Some(at) = next_report {
                let waited = started.elapsed();
                if waited >= at {
                    reports += 1;
                    self.report_handshake_stall(&snapshot, target, waited, reports);
                    if reports >= 3 && self.config.handshake_stall_policy == StallPolicy::AbortCycle
                    {
                        // Unwind into the supervisor, which aborts the
                        // wedged cycle and restarts the collector loop —
                        // a bounded degradation instead of a diagnosed
                        // hang.  With restarts disabled this degrades to
                        // the verified poison path.
                        panic!(
                            "otf-gc watchdog: aborting wedged collection cycle \
                             (handshake to status {:?} stalled for {:?})",
                            Status::from_byte(target),
                            waited,
                        );
                    }
                    // Rate limit: double the spacing after every report
                    // so a long stall logs O(log t) lines, not O(t).
                    next_report = stall.map(|s| at + s * (1u32 << reports.min(16)));
                }
            }
            // Sleep until a mutator responds.  The status re-check under
            // the handshake lock pairs with the mutators' notify-under-
            // lock, so a response cannot be missed; the timeout only
            // covers park-state transitions racing the check.
            let mut guard = self.hs_lock.lock();
            let responded_now = snapshot
                .iter()
                .all(|m| m.status.load(Ordering::Acquire) == target || m.park.lock().parked);
            if !responded_now {
                self.hs_cond.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }

    /// Watchdog report: which mutators have not acked the posted status
    /// after `waited`, on stderr, attributed to the active plan and the
    /// schedule bucket that is currently open.  The event-trace ring is
    /// dumped when tracing is on, or from the second report of a stall
    /// under the `TraceDump`/`AbortCycle` escalation policies.
    fn report_handshake_stall(
        &self,
        snapshot: &[Arc<MutatorShared>],
        target: u8,
        waited: Duration,
        nth: u32,
    ) {
        self.obs.watchdog_trips.fetch_add(1, Ordering::Relaxed);
        let stalled: Vec<u64> = snapshot
            .iter()
            .filter(|m| m.status.load(Ordering::Acquire) != target && !m.park.lock().parked)
            .map(|m| m.id)
            .collect();
        eprintln!(
            "otf-gc watchdog: handshake to status {:?} stalled for {:?} \
             (report #{nth}, plan {}, open bucket {}); \
             unresponsive mutator ids: {:?} (of {} registered)",
            Status::from_byte(target),
            waited,
            self.config.plan_name(),
            bucket_label(self.open_bucket.load(Ordering::Acquire) as u64),
            stalled,
            snapshot.len(),
        );
        let escalate_dump = nth >= 2 && self.config.handshake_stall_policy != StallPolicy::Warn;
        if self.obs.tracing_enabled() || escalate_dump {
            eprintln!("otf-gc watchdog: event-trace ring follows");
            let _ = self.obs.write_jsonl(&mut std::io::stderr().lock());
        }
    }

    /// Collector panic containment: called (from the spawn wrapper in
    /// `Gc::new`) after the collector thread's body panicked.  Restores
    /// protocol state no mutator should be left observing — tracing off,
    /// no cycle in progress, status back to `Async` so `cooperate` fast-
    /// paths — and poisons the control so every parked allocator wakes
    /// and surfaces `AllocError::CollectorUnavailable` instead of
    /// deadlocking.
    pub(crate) fn poison_after_panic(&self) {
        self.tracing.store(false, Ordering::Release);
        self.collecting.store(false, Ordering::Release);
        self.open_bucket.store(bucket::NONE, Ordering::Release);
        self.status_c.store(Status::Async as u8, Ordering::Release);
        self.control.poison();
        self.notify_handshake();
        eprintln!(
            "otf-gc: collector thread panicked; collection disabled, \
             allocation continues in grow-only mode"
        );
    }

    /// Convenience: `Handshake(s)` = post + wait (Figure 3).  The cycle
    /// schedule posts and waits as separate packets (tests).
    #[allow(dead_code)]
    pub(crate) fn handshake(&self, s: Status) {
        self.post_handshake(s);
        self.wait_handshake();
    }

    /// Registers a new mutator.  It joins with the collector's current
    /// status (it has no roots yet and has performed no updates, so it has
    /// trivially responded to any in-flight handshake).
    pub(crate) fn register_mutator(&self) -> Arc<MutatorShared> {
        let mut list = self.mutators.lock();
        let status = self.status_c();
        let id = self.next_mutator_id.fetch_add(1, Ordering::Relaxed);
        let m = Arc::new(MutatorShared::new(status, id));
        list.push(Arc::clone(&m));
        m
    }

    /// Deregisters a mutator (on `Mutator` drop).  Its shadow stack is
    /// gone, so it parks forever with an empty root snapshot; a collector
    /// mid-`waitHandshake` will proxy any outstanding response.
    pub(crate) fn deregister_mutator(&self, m: &Arc<MutatorShared>) {
        {
            let mut park = m.park.lock();
            park.parked = true;
            park.roots.clear();
        }
        {
            let mut list = self.mutators.lock();
            if let Some(pos) = list.iter().position(|x| Arc::ptr_eq(x, m)) {
                list.swap_remove(pos);
            }
        }
        self.notify_handshake();
    }

    /// Adds a global (static) root.
    pub(crate) fn add_global_root(&self, r: ObjectRef) {
        if !r.is_null() {
            self.globals.lock().push(r);
        }
    }

    /// Removes one occurrence of a global root.  Returns whether it was
    /// present.
    pub(crate) fn remove_global_root(&self, r: ObjectRef) -> bool {
        let mut g = self.globals.lock();
        if let Some(pos) = g.iter().position(|&x| x == r) {
            g.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Marks all global roots gray (between the third `postHandshake` and
    /// its `waitHandshake`, Figure 2).
    pub(crate) fn mark_global_roots_local(&self, stack: &mut Vec<ObjectRef>) {
        let globals = self.globals.lock().clone();
        for r in globals {
            self.mark_gray_snapshot_local(r, stack);
        }
    }

    /// Whether every registered mutator is outside its write-barrier
    /// epoch (§4.3): the trace bucket's closing condition observes this
    /// *before* re-checking queue emptiness.
    pub(crate) fn mutators_all_even(&self) -> bool {
        self.mutators.lock().iter().all(|m| m.epoch_is_even())
    }

    /// Queue-based variant (tests).
    #[allow(dead_code)]
    pub(crate) fn mark_global_roots(&self) {
        let globals = self.globals.lock().clone();
        for r in globals {
            self.mark_gray_snapshot(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GcShared {
        GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        )
    }

    fn alloc_white(sh: &GcShared, refs: usize) -> ObjectRef {
        let shape = otf_heap::ObjShape::new(refs, 0);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap
            .install_object(c.start as usize, &shape, sh.colors.allocation_color())
    }

    #[test]
    fn trace_target_by_mode() {
        let sh = small();
        assert_eq!(sh.trace_target(), Color::Black);
        let sh = GcShared::new(
            GcConfig::non_generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        assert_eq!(sh.trace_target(), Color::White);
        sh.colors.toggle();
        assert_eq!(sh.trace_target(), Color::Yellow);
    }

    #[test]
    fn mark_gray_clear_only_shades_clear_color() {
        let sh = small();
        let obj = alloc_white(&sh, 1); // allocated White; clear color is Yellow
        sh.mark_gray_clear(obj);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::White);
        assert!(sh.gray.is_empty());
        sh.colors.toggle(); // now White is the clear color
        sh.mark_gray_clear(obj);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Gray);
        assert_eq!(sh.gray.pop(), Some(obj));
    }

    #[test]
    fn mark_gray_snapshot_shades_both_young_colors() {
        let sh = small();
        let a = alloc_white(&sh, 0);
        sh.colors.toggle();
        let b = alloc_white(&sh, 0); // allocated Yellow
        sh.mark_gray_snapshot(a);
        sh.mark_gray_snapshot(b);
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Gray);
        assert_eq!(sh.heap.colors().get(b.granule()), Color::Gray);
        // Exactly two pushes, no duplicates on re-graying.
        sh.mark_gray_snapshot(a);
        let mut n = 0;
        while sh.gray.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn null_is_never_grayed() {
        let sh = small();
        sh.mark_gray_clear(ObjectRef::NULL);
        sh.mark_gray_snapshot(ObjectRef::NULL);
        assert!(sh.gray.is_empty());
    }

    #[test]
    fn handshake_with_parked_mutator_marks_snapshot_roots() {
        let sh = small();
        let m = sh.register_mutator();
        let obj = alloc_white(&sh, 0);
        {
            let mut p = m.park.lock();
            p.parked = true;
            p.roots.push(obj);
        }
        sh.handshake(Status::Sync1);
        sh.handshake(Status::Sync2);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::White);
        sh.handshake(Status::Async);
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Gray);
        assert_eq!(m.status(), Status::Async);
    }

    #[test]
    fn handshake_with_cooperating_mutator() {
        let sh = Arc::new(small());
        let m = sh.register_mutator();
        let sh2 = Arc::clone(&sh);
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            // Emulate a cooperating mutator: adopt whatever the collector
            // posts until Async comes around again.
            loop {
                let sc = sh2.status_c.load(Ordering::Acquire);
                let sm = m2.status.load(Ordering::Acquire);
                if sm != sc {
                    m2.status.store(sc, Ordering::Release);
                    if sc == Status::Async as u8 {
                        break;
                    }
                }
                std::thread::yield_now();
            }
        });
        sh.handshake(Status::Sync1);
        sh.handshake(Status::Sync2);
        sh.handshake(Status::Async);
        t.join().unwrap();
        assert_eq!(m.status(), Status::Async);
    }

    #[test]
    fn global_roots_add_remove_mark() {
        let sh = small();
        let obj = alloc_white(&sh, 0);
        sh.add_global_root(obj);
        sh.add_global_root(ObjectRef::NULL); // ignored
        assert!(sh.remove_global_root(obj));
        assert!(!sh.remove_global_root(obj));
        sh.add_global_root(obj);
        sh.mark_global_roots();
        assert_eq!(sh.heap.colors().get(obj.granule()), Color::Gray);
    }

    #[test]
    fn evaluate_triggers_requests_partial_past_young_budget() {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(8 << 20)
                .with_initial_heap(8 << 20)
                .with_young_size(1 << 20),
        );
        sh.control.add_allocated(1 << 20);
        sh.evaluate_triggers();
        assert_eq!(
            sh.control.next_request(),
            Some(crate::stats::CycleKind::Partial)
        );
    }

    #[test]
    fn evaluate_triggers_noop_while_collecting() {
        let sh = small();
        sh.control.add_allocated(64 << 20);
        sh.collecting.store(true, Ordering::Release);
        sh.evaluate_triggers();
        sh.control.begin_shutdown();
        assert_eq!(sh.control.next_request(), None);
    }

    #[test]
    fn evaluate_triggers_requests_full_when_almost_full() {
        let sh = small(); // 1 MB heap
                          // Fill past the 75% trigger fraction (1024-granule = 8 KB chunks).
        while sh.heap.used_bytes() * 4 < sh.heap.committed_bytes() * 3 {
            if sh.heap.alloc_chunk(1024, 1024).is_none() {
                break;
            }
        }
        sh.control.add_allocated(128 << 10); // past the progress floor
        sh.evaluate_triggers();
        assert_eq!(
            sh.control.next_request(),
            Some(crate::stats::CycleKind::Full)
        );
    }

    #[test]
    fn leased_lab_granules_do_not_fire_full_trigger() {
        // Regression: `used_granules` is bumped at LAB grant, not object
        // install, so a fleet of mostly-empty LABs used to read as heap
        // pressure and fire premature full collections.
        let sh = small(); // 1 MB heap
        let granules = (sh.heap.committed_bytes() * 4 / 5 / 16) as u32; // 80%
        let c = sh.heap.alloc_chunk(granules, granules).unwrap();
        sh.heap.note_lab_lease(c.len);
        sh.control.add_allocated(128 << 10); // past the progress floor
        sh.evaluate_triggers();
        sh.control.begin_shutdown();
        assert_eq!(
            sh.control.next_request(),
            None,
            "leased-but-empty LABs must not count as used"
        );
    }

    #[test]
    fn carved_lab_granules_still_fire_full_trigger() {
        let sh = small();
        let granules = (sh.heap.committed_bytes() * 4 / 5 / 16) as u32;
        let c = sh.heap.alloc_chunk(granules, granules).unwrap();
        sh.heap.note_lab_lease(c.len);
        sh.heap.note_lab_carve(c.len); // all of it now holds objects
        sh.control.add_allocated(128 << 10);
        sh.evaluate_triggers();
        assert_eq!(
            sh.control.next_request(),
            Some(crate::stats::CycleKind::Full)
        );
    }

    #[test]
    fn unswept_lazy_garbage_does_not_fire_full_trigger() {
        // Regression (lazy-sweep analogue of the LAB-lease tests above):
        // after a mark-only cycle the dead bytes are still counted in
        // `used_granules` until a lazy segment reclaims them.  The
        // unswept-garbage estimate published with the epoch must keep
        // that deferred garbage from reading as heap pressure, or lazy
        // mode would fire back-to-back full collections that the eager
        // sweep never would.
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_lazy_sweep(true),
        );
        let granules = (sh.heap.committed_bytes() * 4 / 5 / 16) as u32; // 80%
        sh.heap.alloc_chunk(granules, granules).unwrap();
        // Mark-only cycle ends having traced nothing: everything that is
        // used is garbage awaiting the lazy sweep.
        sh.lazy_publish(0);
        sh.control.add_allocated(128 << 10); // past the progress floor
        sh.evaluate_triggers();
        assert!(
            !sh.control.has_request(),
            "unswept lazy garbage must count as available space"
        );
    }

    #[test]
    fn lazy_traced_live_bytes_still_fire_full_trigger() {
        // Companion: when the mark phase saw the bytes alive, the epoch
        // carries no unswept-garbage credit and the full trigger fires at
        // the same effective occupancy as eager mode.
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_lazy_sweep(true),
        );
        let granules = (sh.heap.committed_bytes() * 4 / 5 / 16) as u32;
        sh.heap.alloc_chunk(granules, granules).unwrap();
        sh.lazy_publish(sh.heap.used_bytes() as u64); // all of it traced live
        sh.control.add_allocated(128 << 10);
        sh.evaluate_triggers();
        assert_eq!(
            sh.control.next_request(),
            Some(crate::stats::CycleKind::Full)
        );
    }

    #[test]
    fn sharded_config_builds_sharded_heap() {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_alloc_shards(4),
        );
        assert_eq!(sh.heap.shard_count(), 4);
        let c = sh.heap.alloc_chunk_on(3, 8, 8).unwrap();
        sh.heap.free_chunk(c);
        assert!(sh.heap.shard_free_granules(3) >= 8, "routed to owner");
    }

    #[test]
    fn deregister_removes_from_list() {
        let sh = small();
        let m = sh.register_mutator();
        assert_eq!(sh.mutators.lock().len(), 1);
        sh.deregister_mutator(&m);
        assert_eq!(sh.mutators.lock().len(), 0);
        assert!(m.park.lock().parked);
    }
}
