//! Heap invariant verification.
//!
//! [`Gc::verify_heap`] walks the heap at a quiescent point (no collection
//! in progress, no mutators running) and checks the structural invariants
//! the collector relies on.  It is meant for tests, debugging and
//! paranoid shutdown checks — it is not called on any hot path.
//!
//! Checked invariants:
//!
//! 1. **Parse integrity** — the color table describes a valid sequence of
//!    objects and free runs; every object start granule carries a valid
//!    header whose size agrees with its `Interior` run.
//! 2. **Free-pool agreement** — every chunk in the free pool covers only
//!    `Free` granules, chunks don't overlap, and the pool's total matches
//!    its accounting.
//! 3. **Reference validity** — every non-null reference slot of every
//!    live object points at a live object start (no dangling pointers
//!    into reclaimed space).
//! 4. **Inter-generational invariant** (simple generational mode, between
//!    collections) — a clear-colored or allocation-colored object
//!    referenced from a black object lies on a dirty card, so the next
//!    partial collection will find it.
//!
//! Under the lazy sweep (DESIGN.md §4.6) a quiescent heap may still hold
//! an unfinalized epoch — dead objects wearing the clear color that no
//! claimant has reclaimed yet, which invariant 2 would misread as
//! pool/table disagreement.  [`Gc::verify_heap`] therefore finalizes any
//! pending epoch before walking, so the walk always sees a fully swept
//! heap and the invariants below need no lazy-mode carve-outs.
//!
//! [`Gc::verify_heap`]: crate::Gc::verify_heap

use otf_heap::{Color, Header, ObjectRef, GRANULE};

use crate::config::Mode;
use crate::shared::GcShared;

/// A violated heap invariant, as reported by
/// [`Gc::verify_heap`](crate::Gc::verify_heap).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeapViolation {
    /// A granule that should start an object has no valid header.
    BadHeader {
        /// Granule index of the alleged object start.
        granule: usize,
    },
    /// An object's `Interior` run disagrees with its header size.
    SizeMismatch {
        /// The object.
        object: ObjectRef,
        /// Size according to the header, in granules.
        header_granules: usize,
        /// Size according to the color table, in granules.
        table_granules: usize,
    },
    /// A reference slot points at something that is not a live object
    /// start.
    DanglingReference {
        /// The referencing object.
        from: ObjectRef,
        /// The slot index.
        slot: usize,
        /// The bogus target.
        to: ObjectRef,
    },
    /// A free-pool chunk covers a granule that is not `Free`.
    FreeChunkOverObject {
        /// Start granule of the chunk.
        start: usize,
        /// The offending granule inside it.
        granule: usize,
        /// What the color table says is there.
        color: Color,
    },
    /// A black (old) object references a young object but its card is
    /// clean — the next partial collection would miss the pointer.
    MissedIntergenPointer {
        /// The old object.
        from: ObjectRef,
        /// The slot index.
        slot: usize,
        /// The young target.
        to: ObjectRef,
    },
}

impl std::fmt::Display for HeapViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapViolation::BadHeader { granule } => {
                write!(f, "granule {granule} has an object color but no valid header")
            }
            HeapViolation::SizeMismatch { object, header_granules, table_granules } => write!(
                f,
                "{object}: header says {header_granules} granules, color table says {table_granules}"
            ),
            HeapViolation::DanglingReference { from, slot, to } => {
                write!(f, "{from} slot {slot} dangles to {to}")
            }
            HeapViolation::FreeChunkOverObject { start, granule, color } => write!(
                f,
                "free chunk at granule {start} covers granule {granule} colored {color}"
            ),
            HeapViolation::MissedIntergenPointer { from, slot, to } => write!(
                f,
                "old object {from} slot {slot} references young {to} on a clean card"
            ),
        }
    }
}

impl std::error::Error for HeapViolation {}

impl GcShared {
    /// Walks the heap and returns every violated invariant (empty = OK).
    ///
    /// Only meaningful while no collection is running and mutators are
    /// quiescent; concurrent activity produces false positives, so the
    /// caller is responsible for quiescence.
    pub(crate) fn verify_heap(&self) -> Vec<HeapViolation> {
        let mut out = Vec::new();
        let colors = self.heap.colors();
        let end = self.heap.frontier_granule();

        // Pass 1: parse integrity + collect live object starts.
        let mut live_starts: Vec<ObjectRef> = Vec::new();
        let mut g = 1usize;
        while g < end {
            match colors.get(g) {
                Color::Free | Color::Interior => {
                    g += 1;
                }
                _object_color => {
                    let obj = ObjectRef::from_granule(g);
                    let raw = self
                        .heap
                        .arena()
                        .load_word(obj.word(), std::sync::atomic::Ordering::Acquire);
                    if !Header::is_valid(raw) {
                        out.push(HeapViolation::BadHeader { granule: g });
                        g += 1;
                        continue;
                    }
                    let header = Header::decode(raw);
                    let table_end = colors.object_end(g, end);
                    if table_end - g != header.size_granules() {
                        out.push(HeapViolation::SizeMismatch {
                            object: obj,
                            header_granules: header.size_granules(),
                            table_granules: table_end - g,
                        });
                    }
                    live_starts.push(obj);
                    g = table_end;
                }
            }
        }

        // Pass 2: every reference slot targets a live object start.
        let is_gen_simple = matches!(
            self.config.mode,
            Mode::Generational(crate::config::Promotion::Simple)
        );
        for &obj in &live_starts {
            let header = self.heap.arena().header(obj);
            let from_color = colors.get(obj.granule());
            for slot in 0..header.ref_slots() {
                let target = self.heap.arena().load_ref_slot(obj, slot);
                if target.is_null() {
                    continue;
                }
                let tg = target.granule();
                if tg >= end || !colors.get(tg).is_object() {
                    out.push(HeapViolation::DanglingReference {
                        from: obj,
                        slot,
                        to: target,
                    });
                    continue;
                }
                // Inter-generational invariant (simple promotion only:
                // with aging, young objects may be reachable from young
                // parents of any color between cycles).
                if is_gen_simple
                    && from_color == Color::Black
                    && matches!(colors.get(tg), Color::White | Color::Yellow)
                    && !self.cards.is_dirty(self.cards.card_of_byte(obj.byte()))
                {
                    out.push(HeapViolation::MissedIntergenPointer {
                        from: obj,
                        slot,
                        to: target,
                    });
                }
            }
        }

        // Pass 3: free pool agrees with the color table.
        let chunks = self.heap.free_list_snapshot();
        for c in &chunks {
            for gg in c.start as usize..c.end() as usize {
                let color = colors.get(gg);
                if color != Color::Free {
                    out.push(HeapViolation::FreeChunkOverObject {
                        start: c.start as usize,
                        granule: gg,
                        color,
                    });
                    break;
                }
            }
        }
        let _ = GRANULE;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use crate::stats::CycleKind;
    use otf_heap::ObjShape;

    fn setup() -> GcShared {
        GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        )
    }

    fn alloc(sh: &GcShared, refs: usize) -> ObjectRef {
        let shape = ObjShape::new(refs, 1);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap
            .install_object(c.start as usize, &shape, sh.colors.allocation_color())
    }

    #[test]
    fn clean_heap_verifies() {
        let sh = setup();
        let a = alloc(&sh, 2);
        let b = alloc(&sh, 0);
        sh.heap.arena().store_ref_slot(a, 0, b);
        assert!(sh.verify_heap().is_empty());
    }

    #[test]
    fn heap_verifies_after_cycles() {
        let sh = setup();
        let mut cx = CycleCx::new(&sh);
        let root = alloc(&sh, 1);
        sh.add_global_root(root);
        for _ in 0..50 {
            let o = alloc(&sh, 1);
            sh.heap.arena().store_ref_slot(o, 0, root);
        }
        sh.run_cycle(CycleKind::Partial, &mut cx);
        sh.run_cycle(CycleKind::Full, &mut cx);
        let violations = sh.verify_heap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn detects_dangling_reference() {
        let sh = setup();
        let a = alloc(&sh, 1);
        let b = alloc(&sh, 0);
        sh.heap.arena().store_ref_slot(a, 0, b);
        // Manually clobber b as if it were (wrongly) freed.
        sh.heap.colors().set(b.granule(), Color::Free);
        let v = sh.verify_heap();
        assert!(
            v.iter()
                .any(|x| matches!(x, HeapViolation::DanglingReference { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_missed_intergen_pointer() {
        let sh = setup();
        let old = alloc(&sh, 1);
        sh.heap.colors().set(old.granule(), Color::Black);
        let young = alloc(&sh, 0);
        sh.heap.arena().store_ref_slot(old, 0, young);
        // No card mark: the verifier must flag it...
        let v = sh.verify_heap();
        assert!(
            v.iter()
                .any(|x| matches!(x, HeapViolation::MissedIntergenPointer { .. })),
            "{v:?}"
        );
        // ...and marking the card fixes it.
        sh.cards.mark_byte(old.byte());
        assert!(sh.verify_heap().is_empty());
    }

    #[test]
    fn detects_free_chunk_over_object() {
        let sh = setup();
        let a = alloc(&sh, 0);
        // Lie to the pool: insert a "free" chunk right on top of a.
        sh.heap.free_chunk(otf_heap::Chunk::new(a.raw() / 16, 1));
        let v = sh.verify_heap();
        assert!(
            v.iter()
                .any(|x| matches!(x, HeapViolation::FreeChunkOverObject { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let v = HeapViolation::BadHeader { granule: 7 };
        assert!(v.to_string().contains("granule 7"));
    }
}
