//! # otf-workloads — the paper's benchmark programs, rebuilt
//!
//! Synthetic re-creations of the benchmarks evaluated in *"A Generational
//! On-the-fly Garbage Collector for Java"* (PLDI 2000, §8.2): six SPECjvm98
//! programs, the IBM-internal *Anagram*, and the paper's *multithreaded
//! Ray Tracer*.  We obviously cannot run Java bytecode; instead each
//! workload reproduces its original's **generational signature** — the
//! properties the paper itself identifies as deciding generational
//! performance, calibrated against the paper's own characterization
//! tables (Figures 10–12, 22, 23):
//!
//! | workload | allocation rate | lifetime distribution | old-gen writes |
//! |---|---|---|---|
//! | [`Anagram`] | extreme | dies immediately | none |
//! | [`RayTracer`] | high | per-pixel temporaries | none |
//! | [`Compress`] | minimal | long-lived buffers | none |
//! | [`Db`] | low | long-lived index + young temps | concentrated |
//! | [`Jess`] | high | dies *right after tenuring* | heavy, spread |
//! | [`Javac`] | high | medium ASTs + growing symtab | many inter-gen |
//! | [`Jack`] | high | pass-local, tenured then dead | moderate |
//!
//! Every workload verifies payload checksums as it runs, so each doubles
//! as a heap-integrity test of the collector underneath it.
//!
//! ## Example
//!
//! ```no_run
//! use otf_gc::GcConfig;
//! use otf_workloads::{driver, Anagram, Workload};
//!
//! let w = Anagram::new().scaled(0.1);
//! let gen = driver::run_workload(&w, GcConfig::generational(), 42);
//! let nogen = driver::run_workload(&w, GcConfig::non_generational(), 42);
//! println!("improvement: {:.1}%",
//!          driver::percent_improvement(nogen.elapsed, gen.elapsed));
//! ```

#![warn(missing_docs)]

mod anagram;
mod chaos;
mod compress;
mod db;
pub mod driver;
mod jack;
mod javac;
mod jess;
mod raytracer;
pub mod toolkit;

pub use anagram::Anagram;
pub use chaos::Chaos;
pub use compress::Compress;
pub use db::Db;
pub use jack::Jack;
pub use javac::Javac;
pub use jess::Jess;
pub use raytracer::RayTracer;

use otf_gc::Mutator;

/// A benchmark program that runs against the collector through the
/// mutator API.
pub trait Workload: Sync {
    /// The benchmark's name (matching the paper's tables, e.g.
    /// `_202_jess`).
    fn name(&self) -> &'static str;

    /// Number of mutator threads this workload uses.
    fn threads(&self) -> usize {
        1
    }

    /// Runs thread `thread` of the workload.  Must be deterministic for a
    /// given `(thread, seed)` pair.
    fn run(&self, thread: usize, seed: u64, m: &mut Mutator);
}

/// The paper's benchmark suite at the given scale: the six SPECjvm
/// programs of Figure 9 plus Anagram (`_200_check` and `_222_mpegaudio`
/// are omitted exactly as in the paper — "they do not perform many
/// garbage collections and their performance is indifferent to the
/// collection method").
pub fn suite(scale: f64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(RayTracer::mtrt().scaled(scale)),
        Box::new(Compress::new().scaled(scale)),
        Box::new(Db::new().scaled(scale)),
        Box::new(Jess::new().scaled(scale)),
        Box::new(Javac::new().scaled(scale)),
        Box::new(Jack::new().scaled(scale)),
        Box::new(Anagram::new().scaled(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use otf_gc::GcConfig;

    /// Each workload runs correctly (its internal checksum assertions
    /// pass) under every collector variant at a small scale, AND leaves a
    /// structurally consistent heap: after the run a settling full
    /// collection quiesces the heap and `Gc::verify_heap` must report
    /// zero violations — invariant drift is caught here, not only under
    /// chaos schedules.
    #[test]
    fn all_workloads_verify_clean_under_all_variants() {
        let scale = 0.02;
        for cfg in [
            GcConfig::generational().with_young_size(256 << 10),
            GcConfig::non_generational(),
            GcConfig::aging(3).with_young_size(256 << 10),
        ] {
            for w in suite(scale) {
                let (r, violations) = driver::run_workload_verified(w.as_ref(), cfg, 7);
                assert!(r.elapsed.as_nanos() > 0, "{} did not run", w.name());
                assert!(
                    violations.is_empty(),
                    "{} under {:?} left heap violations: {:?}",
                    w.name(),
                    cfg.mode,
                    violations
                );
            }
        }
    }

    /// The chaos workload itself is a well-behaved citizen with no fault
    /// plan installed: it runs to completion and verifies clean.
    #[test]
    fn chaos_workload_verifies_clean_without_faults() {
        let w = Chaos::new().scaled(0.2);
        for cfg in [
            GcConfig::generational().with_young_size(256 << 10),
            GcConfig::non_generational(),
            GcConfig::aging(3).with_young_size(256 << 10),
        ] {
            let (_, violations) = driver::run_workload_verified(&w, cfg, 11);
            assert!(
                violations.is_empty(),
                "chaos left violations: {violations:?}"
            );
        }
    }

    #[test]
    fn suite_matches_paper_composition() {
        let names: Vec<&str> = suite(1.0).iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "_227_mtrt",
                "_201_compress",
                "_209_db",
                "_202_jess",
                "_213_javac",
                "_228_jack",
                "anagram"
            ]
        );
    }

    #[test]
    fn raytracer_thread_counts() {
        assert_eq!(RayTracer::mtrt().threads(), 2);
        assert_eq!(RayTracer::multithreaded(8).threads(), 8);
        assert_eq!(RayTracer::multithreaded(8).name(), "mtrt");
    }

    #[test]
    fn improvement_math() {
        use std::time::Duration;
        let i = driver::percent_improvement(Duration::from_secs(4), Duration::from_secs(3));
        assert!((i - 25.0).abs() < 1e-9);
        assert_eq!(
            driver::percent_improvement(Duration::ZERO, Duration::ZERO),
            0.0
        );
    }

    #[test]
    fn run_copies_runs_each_copy() {
        let w = Anagram::new().scaled(0.01);
        let (total, results) = driver::run_copies(&w, GcConfig::generational(), 3, 2);
        assert_eq!(results.len(), 2);
        assert!(total >= results.iter().map(|r| r.elapsed).max().unwrap());
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;

    #[test]
    fn scaled_reduces_work_not_live_sets() {
        let full = Jess::new();
        let half = Jess::new().scaled(0.5);
        assert_eq!(half.buckets, full.buckets, "live-set size must not scale");
        assert_eq!(half.rounds, full.rounds / 2);

        let j = Jack::new().scaled(0.5);
        assert_eq!(j.tokens_per_pass, Jack::new().tokens_per_pass);
        assert_eq!(j.passes, Jack::new().passes / 2);

        let v = Javac::new().scaled(0.5);
        assert_eq!(v.library_nodes, Javac::new().library_nodes);

        let d = Db::new().scaled(0.5);
        assert_eq!(d.records, Db::new().records);
        assert_eq!(d.operations, Db::new().operations / 2);

        let a = Anagram::new().scaled(0.5);
        assert_eq!(a.dict_size, Anagram::new().dict_size);
    }

    #[test]
    fn scaling_never_hits_zero() {
        for w in suite(0.0001) {
            // A degenerate scale must still produce a runnable workload.
            let _ = w.name();
        }
        assert!(Jess::new().scaled(0.0).rounds >= 1);
        assert!(Jack::new().scaled(0.0).passes >= 1);
    }

    #[test]
    fn raytracer_scaling_adjusts_frames_then_rows() {
        let r = RayTracer::mtrt(); // 8 frames
        assert_eq!(r.scaled(0.5).frames, 4);
        let tiny = RayTracer::mtrt().scaled(0.05); // 0.4 frames -> 1 frame, fewer rows
        assert_eq!(tiny.frames, 1);
        assert!(tiny.height < 200);
    }
}
