//! # otf-gc — a generational on-the-fly garbage collector
//!
//! A from-scratch Rust implementation of *"A Generational On-the-fly
//! Garbage Collector for Java"* (Tamar Domani, Elliot K. Kolodner, Erez
//! Petrank — PLDI 2000): the Doligez–Leroy–Gonthier (DLG) on-the-fly
//! mark-sweep collector extended with **non-moving generations**.
//!
//! The collector never stops the world.  Application threads
//! ([`Mutator`]s) run concurrently with a single collector thread; they
//! coordinate only through three *soft handshakes* per cycle, a write
//! barrier, and fine-grained atomic color updates.  Generations are
//! *logical*: objects never move; an object's generation is encoded in its
//! color (simple promotion: black ⇔ old, §3 of the paper) or in a side age
//! table (the aging mechanism, §6).  Inter-generational pointers are
//! tracked by card marking (§3.1) with card sizes from 16 bytes ("object
//! marking") to 4096 bytes ("block marking").
//!
//! Three collector variants are provided, selected by [`GcConfig`]:
//!
//! * [`GcConfig::non_generational`] — the DLG baseline, *with* the color
//!   toggle (the paper's Remark 5.1 adds the toggle to the baseline too,
//!   so benchmark comparisons isolate the effect of generations);
//! * [`GcConfig::generational`] — simple promotion: survive one
//!   collection ⇒ old; objects created *during* a collection get the
//!   yellow color and are not promoted (§4); the color toggle removes the
//!   create/sweep race (§5);
//! * [`GcConfig::aging`] — tenure only after surviving a configurable
//!   number of collections (§6).
//!
//! ## Quickstart
//!
//! ```
//! use otf_gc::{Gc, GcConfig};
//! use otf_heap::ObjShape;
//!
//! let gc = Gc::new(GcConfig::generational());
//! let mut m = gc.mutator();
//!
//! // A list node: 1 reference slot + 1 data word.
//! let node = ObjShape::new(1, 1);
//!
//! // Build a small list, keeping the head rooted.
//! let head = m.alloc(&node)?;
//! m.root_push(head);
//! let second = m.alloc(&node)?;
//! m.write_ref(head, 0, second);       // write barrier
//! m.write_data(second, 0, 42);
//!
//! assert_eq!(m.read_data(m.read_ref(head, 0), 0), 42);
//!
//! m.root_pop();
//! drop(m);
//! // Shutdown joins the collector first, so the returned stats include
//! // any cycle that was still in flight.
//! let stats = gc.shutdown();
//! # let _ = stats;
//! # Ok::<(), otf_gc::AllocError>(())
//! ```

#![warn(missing_docs)]

mod cards;
mod collector;
mod config;
mod control;
mod cycle;
mod lazy;
mod mutator;
mod obs;
mod plan;
mod proptest_cycle;
mod shared;
mod state;
mod stats;
mod sweep;
mod trace;
mod verify;

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

pub use config::{GcConfig, Mode, Promotion, StallPolicy};
pub use mutator::{AllocError, Mutator};
pub use obs::{phase, EventKind, GcEvent};
pub use stats::{CycleKind, CycleStats, GcStats, PhaseTimes, WorkerStats};
pub use verify::HeapViolation;

// Re-export the heap vocabulary users need at the API boundary, and the
// histogram snapshot type `GcStats` exposes.
pub use otf_heap::{Color, Header, ObjShape, ObjectRef};
pub use otf_support::hist::Snapshot as HistogramSnapshot;

use shared::GcShared;

/// A garbage-collected heap with its on-the-fly collector thread.
///
/// Create one per logical "JVM"; attach application threads with
/// [`mutator`](Gc::mutator).  Dropping (or [`shutdown`](Gc::shutdown))
/// stops the collector thread.
#[derive(Debug)]
pub struct Gc {
    shared: Arc<GcShared>,
    collector: Option<JoinHandle<()>>,
}

impl Gc {
    /// Creates the heap and spawns the collector thread.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`GcConfig::validate`]).
    pub fn new(config: GcConfig) -> Gc {
        let shared = Arc::new(GcShared::new(config));
        let collector = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("otf-gc-collector".into())
                .spawn(move || supervise_collector(shared))
                .expect("spawn collector thread")
        };
        Gc {
            shared,
            collector: Some(collector),
        }
    }

    /// Attaches a new mutator (application thread context).  The returned
    /// value is `Send` — move it into the thread that will use it.
    pub fn mutator(&self) -> Mutator {
        Mutator::new(Arc::clone(&self.shared))
    }

    /// The configuration this collector runs with.
    pub fn config(&self) -> &GcConfig {
        &self.shared.config
    }

    /// Asynchronously requests a full collection.
    pub fn request_full(&self) {
        self.shared.control.request_full();
    }

    /// Asynchronously requests a partial collection (in non-generational
    /// mode the cycle still collects the full heap).
    pub fn request_partial(&self) {
        self.shared.control.request_partial();
    }

    /// Number of completed collection cycles.
    pub fn cycles_completed(&self) -> u64 {
        self.shared.control.cycles_done()
    }

    /// Blocks until at least one more full collection completes than had
    /// completed when this call was made.  Must *not* be called from a
    /// mutator thread that is expected to cooperate (wrap the call in
    /// [`Mutator::parked`] there); intended for coordinator threads and
    /// tests.
    pub fn collect_full_blocking(&self) {
        let fulls = self.shared.control.fulls_done();
        self.shared.control.request_full();
        self.shared.control.wait_for_full(fulls);
    }

    /// Heap bytes currently in use (live objects + leased LABs).
    pub fn used_bytes(&self) -> usize {
        self.shared.heap.used_bytes()
    }

    /// Committed heap size in bytes.
    pub fn committed_bytes(&self) -> usize {
        self.shared.heap.committed_bytes()
    }

    /// Free granules currently pooled across all free lists (every shard
    /// plus the block store on the sharded back-end).
    pub fn free_granules(&self) -> u64 {
        self.shared.heap.free_list_granules()
    }

    /// Total objects allocated so far.
    pub fn objects_allocated(&self) -> u64 {
        self.shared.heap.objects_allocated()
    }

    /// Total bytes allocated so far.
    pub fn bytes_allocated(&self) -> u64 {
        self.shared.heap.bytes_allocated()
    }

    /// A snapshot of all collection statistics, including the pause-time
    /// histograms.
    pub fn stats(&self) -> GcStats {
        let inner = self.shared.stats.lock();
        GcStats {
            cycles: inner.cycles.clone(),
            objects_allocated: self.shared.heap.objects_allocated(),
            bytes_allocated: self.shared.heap.bytes_allocated(),
            elapsed: self.shared.start.elapsed(),
            gc_active: inner.gc_active,
            pause: self.shared.obs.pause.snapshot(),
            handshake: self.shared.obs.handshake.snapshot(),
            alloc_stall: self.shared.obs.alloc_stall.snapshot(),
            barrier_slow_hits: self.shared.obs.barrier_slow.load(Ordering::Relaxed),
            dropped_events: self.shared.obs.events_dropped(),
            watchdog_trips: self.shared.obs.watchdog_trips.load(Ordering::Relaxed),
            collector_poisoned: self.shared.control.is_poisoned(),
            collector_restarts: self.shared.obs.collector_restarts.load(Ordering::Relaxed),
            cycles_aborted: self.shared.obs.cycles_aborted.load(Ordering::Relaxed),
            recovery: self.shared.obs.recovery.snapshot(),
            workers: self
                .shared
                .obs
                .workers
                .iter()
                .map(|w| WorkerStats {
                    mark: w.mark_ns.snapshot(),
                    sweep: w.sweep_ns.snapshot(),
                    steals: w.steals.load(Ordering::Relaxed),
                })
                .collect(),
            alloc_shards: self.shared.heap.shard_count(),
            shard_free_granules: if self.shared.config.alloc_shards > 0 {
                (0..self.shared.heap.shard_count())
                    .map(|i| self.shared.heap.shard_free_granules(i))
                    .collect()
            } else {
                Vec::new()
            },
            store_free_granules: self.shared.heap.store_free_granules(),
            lab_refill: self.shared.obs.lab_refill.snapshot(),
            lazy_freed_at_alloc_granules: self.shared.lazy.freed_at_alloc_granules(),
            lazy_freed_at_final_granules: self.shared.lazy.freed_at_final_granules(),
            lazy_epochs: self.shared.lazy.epochs_published(),
            used_bytes: self.shared.heap.used_bytes(),
        }
    }

    /// Whether the collector thread has panicked (poisoned shutdown).
    /// Once true, no collection will ever run again: allocation falls
    /// back to heap growth and fails with
    /// [`AllocError::CollectorUnavailable`] once the heap is exhausted.
    pub fn is_poisoned(&self) -> bool {
        self.shared.control.is_poisoned()
    }

    /// Whether structured event tracing is enabled for this collector
    /// ([`GcConfig::with_event_trace`] or the `OTF_GC_TRACE` environment
    /// variable at construction time).
    pub fn tracing_enabled(&self) -> bool {
        self.shared.obs.tracing_enabled()
    }

    /// The structured GC events retained in the trace ring, oldest first.
    /// Empty unless tracing was enabled, via
    /// [`GcConfig::with_event_trace`] or the `OTF_GC_TRACE` environment
    /// variable.
    pub fn events(&self) -> Vec<GcEvent> {
        self.shared.obs.events()
    }

    /// Writes the retained trace events as JSON lines (one event per
    /// line; see [`GcEvent::to_json`] for the schema).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_events_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.shared.obs.write_jsonl(w)
    }

    /// Diagnostic: the current color of `obj` (for tests and examples).
    pub fn debug_color_of(&self, obj: ObjectRef) -> Color {
        self.shared.heap.colors().get(obj.granule())
    }

    /// Diagnostic: the current age of `obj` (meaningful with the aging
    /// promotion policy).
    pub fn debug_age_of(&self, obj: ObjectRef) -> u8 {
        self.shared.heap.ages().get(obj.granule())
    }

    /// Diagnostic: whether the granule of `obj` currently holds a live
    /// object start (i.e. it has not been reclaimed).
    pub fn debug_is_object(&self, obj: ObjectRef) -> bool {
        self.shared.heap.colors().get(obj.granule()).is_object()
    }

    /// Walks the heap and checks the collector's structural invariants
    /// (parse integrity, free-pool agreement, no dangling references, and
    /// the inter-generational card invariant).  Returns every violation
    /// found — an empty vector means the heap is consistent.
    ///
    /// Only meaningful at a quiescent point: no collection in progress
    /// and no mutators mutating (tests call it after
    /// [`collect_full_blocking`](Gc::collect_full_blocking) with all
    /// mutators parked or dropped).
    pub fn verify_heap(&self) -> Vec<HeapViolation> {
        // Lazy sweep defers reclamation to allocation time: force any
        // outstanding epoch to completion first, so the verifier sees
        // the same fully-swept heap an eager cycle would leave (the
        // verifier treats unreclaimed clear-colored objects as live
        // parseable objects, but free-granule totals would differ).
        self.shared.lazy_finalize(crate::lazy::LazyWho::Collector);
        self.shared.verify_heap()
    }

    /// Stops and joins the collector thread without consuming the `Gc`,
    /// leaving the heap at a *true* quiescent point: any in-flight cycle
    /// runs to completion, no further cycle can start, and pending
    /// requests are dropped.  This is the precondition
    /// [`verify_heap`](Gc::verify_heap) needs —
    /// [`collect_full_blocking`](Gc::collect_full_blocking) alone is not
    /// enough, because the collector's end-of-cycle trigger re-evaluation
    /// may immediately launch another cycle whose sweep would race the
    /// verifier (and if a full collection was already mid-flight when it
    /// was requested, the wait can return while the requested one still
    /// runs).  Idempotent; [`shutdown`](Gc::shutdown) after this is a
    /// no-op join.
    pub fn stop_collector(&mut self) {
        self.shutdown_inner();
    }

    /// Stops the collector thread and returns the final statistics.  The
    /// snapshot is taken *after* the collector joins, so any cycle that
    /// was in flight when shutdown was requested is fully accounted —
    /// snapshotting before shutdown undercounts exactly the cycles a
    /// measurement run triggered last.  Any later allocation pressure is
    /// served by heap growth only; mutators never block on a collector
    /// again.
    pub fn shutdown(mut self) -> GcStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.control.begin_shutdown();
        if let Some(h) = self.collector.take() {
            let _ = h.join();
            // Lazy sweep: with the collector gone, nothing else will
            // drain an outstanding epoch — finalize it so the heap ends
            // fully swept (and `verify_heap` after shutdown matches an
            // eager run).
            self.shared.lazy_finalize(crate::lazy::LazyWho::Collector);
            // With the collector joined the trace ring is quiescent: dump
            // it if the user asked for a trace file.  Append, so multiple
            // collectors in one process share the file.
            if let Some(path) = std::env::var_os("OTF_GC_TRACE") {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = self.shared.obs.write_jsonl(&mut f);
                }
            }
        }
    }
}

impl Drop for Gc {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The collector supervisor (DESIGN.md §4.8): the body of the
/// `otf-gc-collector` thread.  Runs the collector loop under
/// `catch_unwind`; on a panic it either poisons the GC permanently (the
/// PR-4 behavior, kept verbatim when `max_collector_restarts == 0`, on
/// shutdown, or once the restart budget is spent) or runs the safe
/// cycle-abort protocol and respawns the loop after a capped exponential
/// backoff.  A second panic *during* the abort is terminal: recovery
/// must never itself become a crash loop, so the double-panic path falls
/// back to the verified poison behavior.
fn supervise_collector(shared: Arc<GcShared>) {
    let max_restarts = shared.config.max_collector_restarts;
    let backoff_ms = shared.config.collector_restart_backoff_ms;
    let mut restarts: u32 = 0;
    loop {
        let loop_shared = Arc::clone(&shared);
        let respawned = restarts > 0;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            // Chaos window: the respawn itself can be killed (the
            // `collector.recovery` point's first hit is the abort-repaint
            // window inside `abort_cycle`; later hits land here, in the
            // fresh incarnation, still inside this `catch_unwind`).
            if respawned && otf_support::fault::point("collector.recovery") {
                panic!("injected collector panic (respawn window)");
            }
            loop_shared.collector_loop()
        }));
        match result {
            // Clean exit: shutdown (or poison) ended the request loop.
            Ok(()) => return,
            Err(_) => {
                if shared.control.is_shutdown() || restarts >= max_restarts {
                    shared.poison_after_panic();
                    return;
                }
                // Safe cycle abort.  Without this, mutators parked on
                // `wait_for_full` would sleep forever on a collection
                // that will never complete and the heap would be left
                // with a half-run cycle's colors.
                let abort_shared = Arc::clone(&shared);
                let next = restarts as u64 + 1;
                let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    abort_shared.abort_cycle(next);
                }));
                if aborted.is_err() {
                    shared.poison_after_panic();
                    return;
                }
                shared
                    .obs
                    .collector_restarts
                    .fetch_add(1, Ordering::Relaxed);
                let delay = backoff_ms
                    .saturating_mul(1u64 << restarts.min(10))
                    .min(1_000);
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                restarts += 1;
                eprintln!(
                    "otf-gc: collector thread panicked; cycle aborted, \
                     restarting collector (attempt {restarts} of {max_restarts})"
                );
            }
        }
    }
}
