//! Collector page-touch accounting (paper Figure 15).
//!
//! The paper measures "the number of pages touched by the collector during
//! the various collections ... including all the tables the collector uses
//! (such as the card table)".  `PageTracker` is a per-cycle bitmap over
//! four address spaces — the arena, the color table, the card table and
//! the age table — at 4 KB page granularity.  The collector calls the
//! `touch_*` helpers from its trace/sweep/card-scan loops and reads the
//! count at the end of the cycle.
//!
//! The tracker is collector-private, so it needs no atomics: with one
//! collector thread there is a single tracker; with parallel workers
//! each worker writes its own tracker and the phase barrier
//! [`merge`](PageTracker::merge)s them (a page touched by two workers
//! counts once, as it would have under a single collector).

use crate::addr::PAGE;

/// Identifies which address space a touch falls in.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Space {
    /// The object heap itself.
    Arena,
    /// The color side table.
    ColorTable,
    /// The card table.
    CardTable,
    /// The age side table.
    AgeTable,
}

/// A per-cycle bitmap of touched 4 KB pages.
#[derive(Debug)]
pub struct PageTracker {
    bits: Vec<u64>,
    // Page-index bases of each space within the combined bitmap.
    base_color: usize,
    base_card: usize,
    base_age: usize,
    touched: usize,
    /// One-entry cache: the most recently touched page (collectors touch
    /// long runs of the same page).
    last: usize,
}

impl PageTracker {
    /// Creates a tracker for a heap of `arena_bytes` with side tables of
    /// the given byte sizes.
    pub fn new(
        arena_bytes: usize,
        color_bytes: usize,
        card_bytes: usize,
        age_bytes: usize,
    ) -> PageTracker {
        let arena_pages = arena_bytes.div_ceil(PAGE);
        let color_pages = color_bytes.div_ceil(PAGE);
        let card_pages = card_bytes.div_ceil(PAGE);
        let age_pages = age_bytes.div_ceil(PAGE);
        let total = arena_pages + color_pages + card_pages + age_pages;
        PageTracker {
            bits: vec![0u64; total.div_ceil(64)],
            base_color: arena_pages,
            base_card: arena_pages + color_pages,
            base_age: arena_pages + color_pages + card_pages,
            touched: 0,
            last: usize::MAX,
        }
    }

    #[inline]
    fn set(&mut self, page: usize) {
        if page == self.last {
            return;
        }
        self.last = page;
        let (w, b) = (page / 64, page % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.touched += 1;
        }
    }

    #[inline]
    fn base(&self, space: Space) -> usize {
        match space {
            Space::Arena => 0,
            Space::ColorTable => self.base_color,
            Space::CardTable => self.base_card,
            Space::AgeTable => self.base_age,
        }
    }

    /// Records a touch of the byte range `[start, end)` in `space`.
    #[inline]
    pub fn touch_range(&mut self, space: Space, start: usize, end: usize) {
        if end <= start {
            return;
        }
        let base = self.base(space);
        for p in start / PAGE..=(end - 1) / PAGE {
            self.set(base + p);
        }
    }

    /// Records a touch of a single byte offset in `space`.
    #[inline]
    pub fn touch_byte(&mut self, space: Space, byte: usize) {
        let base = self.base(space);
        self.set(base + byte / PAGE);
    }

    /// Number of distinct pages touched since the last [`reset`].
    ///
    /// [`reset`]: PageTracker::reset
    #[inline]
    pub fn touched(&self) -> usize {
        self.touched
    }

    /// Clears the bitmap for the next cycle.
    pub fn reset(&mut self) {
        self.bits.fill(0);
        self.touched = 0;
        self.last = usize::MAX;
    }

    /// Folds another worker's touch-set into this one (bitwise OR) and
    /// recounts, so pages touched by several workers count once.
    ///
    /// # Panics
    ///
    /// Panics if the trackers were built over different space layouts —
    /// merging is only meaningful between per-worker trackers of the
    /// same cycle.
    pub fn merge(&mut self, other: &PageTracker) {
        assert_eq!(self.bits.len(), other.bits.len(), "layout mismatch");
        assert_eq!(
            (self.base_color, self.base_card, self.base_age),
            (other.base_color, other.base_card, other.base_age),
            "layout mismatch"
        );
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
        self.touched = self.bits.iter().map(|w| w.count_ones() as usize).sum();
        self.last = usize::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct_pages() {
        let mut t = PageTracker::new(64 * PAGE, PAGE, PAGE, PAGE);
        t.touch_byte(Space::Arena, 0);
        t.touch_byte(Space::Arena, 100); // same page
        t.touch_byte(Space::Arena, PAGE); // next page
        assert_eq!(t.touched(), 2);
    }

    #[test]
    fn spaces_do_not_collide() {
        let mut t = PageTracker::new(PAGE, PAGE, PAGE, PAGE);
        t.touch_byte(Space::Arena, 0);
        t.touch_byte(Space::ColorTable, 0);
        t.touch_byte(Space::CardTable, 0);
        t.touch_byte(Space::AgeTable, 0);
        assert_eq!(t.touched(), 4);
    }

    #[test]
    fn range_spans_pages() {
        let mut t = PageTracker::new(64 * PAGE, PAGE, PAGE, PAGE);
        t.touch_range(Space::Arena, PAGE - 1, PAGE + 1);
        assert_eq!(t.touched(), 2);
        t.touch_range(Space::Arena, 0, 0); // empty range
        assert_eq!(t.touched(), 2);
    }

    #[test]
    fn merge_unions_without_double_counting() {
        let mut a = PageTracker::new(64 * PAGE, PAGE, PAGE, PAGE);
        let mut b = PageTracker::new(64 * PAGE, PAGE, PAGE, PAGE);
        a.touch_byte(Space::Arena, 0);
        a.touch_byte(Space::Arena, PAGE);
        b.touch_byte(Space::Arena, PAGE); // overlaps a
        b.touch_byte(Space::ColorTable, 0);
        a.merge(&b);
        assert_eq!(a.touched(), 3);
        // Merge is idempotent.
        let c = PageTracker::new(64 * PAGE, PAGE, PAGE, PAGE);
        a.merge(&c);
        assert_eq!(a.touched(), 3);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = PageTracker::new(64 * PAGE, PAGE, PAGE, PAGE);
        let b = PageTracker::new(128 * PAGE, PAGE, PAGE, PAGE);
        a.merge(&b);
    }

    #[test]
    fn reset_clears() {
        let mut t = PageTracker::new(4 * PAGE, PAGE, PAGE, PAGE);
        t.touch_byte(Space::Arena, 0);
        assert_eq!(t.touched(), 1);
        t.reset();
        assert_eq!(t.touched(), 0);
        t.touch_byte(Space::Arena, 0);
        assert_eq!(t.touched(), 1);
    }
}
