//! Word-at-a-time scanning kernels over atomic byte tables.
//!
//! The collector's concurrent phases are dominated by linear walks over
//! its side tables — the sweep parses the whole heap from the color
//! table, `ClearCards` scans the card table, and `InitFullCollection`
//! recolors every black object.  All of those tables are `[AtomicU8]`
//! and all of those walks ask byte-wise questions ("first byte that is
//! not `Free`/`Interior`", "first clean byte after this dirty run",
//! "how many dirty bytes").  Answering them one `AtomicU8` load at a
//! time wastes ~7/8 of every cache line the scan already paid for.
//!
//! This module supplies SWAR (*SIMD within a register*) kernels that
//! answer the same questions eight table bytes per `u64` load, with
//! byte-at-a-time handling of the unaligned head and tail of each range.
//! Production collectors do exactly this over their side metadata
//! (MMTk's bulk side-metadata scans, Nofl's word-level sweeps over
//! per-granule mark bytes); these kernels are the same idea reduced to
//! the five operations our tables need.
//!
//! # Memory model
//!
//! The word kernels read the table through `AtomicU64` loads at the same
//! addresses other threads access through `AtomicU8` — *mixed-size
//! atomic access*.  The Rust/C++ abstract machine does not assign this a
//! semantics, but every supported target does: the word load compiles to
//! a plain aligned load, and cache coherence guarantees each of its
//! eight lanes observes *some* value actually stored to that byte by an
//! atomic byte store (never an out-of-thin-air or torn-within-a-byte
//! value).  This is the established side-metadata idiom of production
//! collectors (MMTk's side-metadata bytespaces, crossbeam's utilities);
//! we adopt it deliberately and confine every mixed-size access to this
//! module.
//!
//! What the kernels **do not** provide is any ordering: all word loads
//! are `Relaxed`.  Soundness therefore rests on the same protocol the
//! byte-level scan already documented in `otf-heap`'s `color.rs`:
//!
//! * A **non-object byte** (`Free`/`Interior`, or a clean card) read
//!   relaxed is definitive or stale-in-a-safe-direction: granules leave
//!   those states only through the scanning thread itself or through a
//!   concurrent allocation the scan may legitimately miss (skipping an
//!   in-flight object is always safe — it carries the allocation color
//!   and is never a reclamation candidate).
//! * Before acting on an **object byte** — i.e. before touching the
//!   object's header or slots — the caller must *re-load that byte with
//!   `Acquire`*, pairing with the allocator's `Release` publication
//!   store.  The word scan only *finds* candidates; the acquire byte
//!   re-read is what licenses dereferencing them.  `CardTable::next_dirty`
//!   performs the equivalent acquire re-read of the dirty byte it
//!   returns, pairing with the mutator's release card mark.
//!
//! The write kernels ([`bulk_fill`], [`bulk_zero`]) store whole words
//! with `Release`.  A concurrent byte store into the same word (e.g. a
//! mutator re-dirtying a card while `clear_all` wipes the table) is
//! linearized per byte by coherence: each byte ends up with one of the
//! two written values, exactly the outcome the byte-at-a-time loop
//! already had.  When a fill must be *published* (an allocator coloring
//! interior granules before releasing the start byte), the caller's
//! subsequent release store of the start byte orders the whole fill, as
//! before.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Bytes per scan word.
const WORD: usize = 8;
/// Every byte lane = `0x01`.
const ONES: u64 = 0x0101_0101_0101_0101;
/// Every byte lane = `0x80` (the SWAR per-byte flag bit).
const HIGH: u64 = 0x8080_8080_8080_8080;
/// Every byte lane = `0x7f`.
const LOW7: u64 = !HIGH;

/// When set, every kernel dispatches to its byte-loop [`reference`]
/// implementation — a benchmarking hook that lets the *same* binary
/// measure byte-at-a-time vs word-at-a-time end to end (see
/// `bench_kernels` in `otf-bench`).  Not intended for production use.
static FORCE_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Forces (or restores) byte-loop reference kernels process-wide.
///
/// For differential benchmarking only; the switch is checked once per
/// kernel call, so flipping it mid-scan affects only subsequent calls.
pub fn force_reference(enabled: bool) {
    FORCE_REFERENCE.store(enabled, Ordering::Relaxed);
}

#[inline]
fn use_reference() -> bool {
    FORCE_REFERENCE.load(Ordering::Relaxed)
}

/// Adaptive byte/word mode for the two *search* kernels.
///
/// Word scans win on sparse tables (long clean runs) and lose on dense
/// ones: when nearly every call hits within its first few bytes, the
/// alignment setup and mask work are pure overhead and the plain byte
/// loop is faster (`BENCH_kernels.json` measured dense `sweep_walk` /
/// `card_walk` at 0.77x).  Both search kernels therefore byte-scan a
/// head covering the first full word *before touching any per-thread
/// state* — the dense regime resolves there at byte-loop cost, with
/// zero thread-local traffic.  Scans that survive the head consult a
/// per-thread mode: after **two consecutive** such scans hit on their
/// very first byte past the head, the kernel falls back to the byte loop;
/// once the byte loop has seen a **full clean word's worth** of bytes
/// without a hit, it re-enters word mode.  The mode changes only *which
/// loop* runs — the returned index is identical in both, so the
/// differential oracles hold regardless of mode history.
#[derive(Clone, Copy)]
struct Adapt {
    /// True in the dense regime (pure byte loop).
    byte_mode: bool,
    /// Word mode: consecutive scans that hit on their first byte.
    first_hits: u8,
    /// Byte mode: consecutive clean bytes since the last hit.
    clean_run: u8,
}

impl Adapt {
    const WORD_MODE: Adapt = Adapt {
        byte_mode: false,
        first_hits: 0,
        clean_run: 0,
    };
    const BYTE_MODE: Adapt = Adapt {
        byte_mode: true,
        first_hits: 0,
        clean_run: 0,
    };
}

/// Consecutive first-word hits that demote a kernel to byte mode.
const FIRST_HITS_TO_BYTE: u8 = 2;

thread_local! {
    /// [`find_byte_not_in`]'s mode (the sweep's `skip_non_object`, the
    /// card scan's `next_dirty`).
    static ADAPT_SKIP: Cell<Adapt> = const { Cell::new(Adapt::WORD_MODE) };
    /// [`find_run_end`]'s mode (the sweep's `object_end`).
    static ADAPT_RUN: Cell<Adapt> = const { Cell::new(Adapt::WORD_MODE) };
}

/// Updates `st` after a scan over `[from, to)` returned `found`.  Only a
/// hit on the *first byte* counts toward demotion: a hit deeper in the
/// first word still cost just one word load, which the byte loop cannot
/// beat.
#[inline]
fn note_scan_result(st: &mut Adapt, from: usize, to: usize, found: usize) {
    if found < to && found == from {
        st.first_hits += 1;
        if st.first_hits >= FIRST_HITS_TO_BYTE {
            *st = Adapt::BYTE_MODE;
        }
    } else {
        st.first_hits = 0;
    }
}

/// Splats `b` into every byte lane.
#[inline]
const fn splat(b: u8) -> u64 {
    ONES * b as u64
}

/// First index >= `i` whose *address* is word-aligned (the table's base
/// address need not be aligned — `[AtomicU8]` has alignment 1).
#[inline]
fn align_up(bytes: &[AtomicU8], i: usize) -> usize {
    let addr = bytes.as_ptr() as usize + i;
    i + (addr.wrapping_neg() & (WORD - 1))
}

/// Relaxed word load of `bytes[i..i + 8]`, byte 0 in the low lane.
///
/// # Safety
///
/// `i + 8 <= bytes.len()` and `bytes.as_ptr() + i` must be 8-aligned.
#[inline]
unsafe fn load_word(bytes: &[AtomicU8], i: usize) -> u64 {
    debug_assert!(i + WORD <= bytes.len());
    let p = bytes.as_ptr().add(i) as *const AtomicU64;
    debug_assert_eq!(p as usize % WORD, 0);
    // to_le(): make "memory byte k" = "integer byte k" on any endianness,
    // so trailing_zeros()/8 is a memory offset.
    (*p).load(Ordering::Relaxed).to_le()
}

/// Release word store of `value` to `bytes[i..i + 8]`.
///
/// # Safety
///
/// Same contract as [`load_word`].
#[inline]
unsafe fn store_word(bytes: &[AtomicU8], i: usize, value: u64) {
    debug_assert!(i + WORD <= bytes.len());
    let p = bytes.as_ptr().add(i) as *const AtomicU64;
    debug_assert_eq!(p as usize % WORD, 0);
    // Splatted values are endianness-invariant, so no to_le() needed.
    (*p).store(value, Ordering::Release);
}

/// Per-byte flag mask: `0x80` in every lane whose byte is `> max`.
/// Requires `max < 0x80`; byte values are unrestricted (lanes >= `0x80`
/// are flagged via their own high bit).
#[inline]
fn gt_mask(word: u64, max: u8) -> u64 {
    debug_assert!(max < 0x80);
    // (b & 0x7f) + (0x7f - max) carries into bit 7 iff (b & 0x7f) > max;
    // the addition cannot carry across lanes (max sum 0xfe).  OR-ing the
    // original word flags lanes with their high bit already set.
    (((word & LOW7) + splat(0x7f - max)) | word) & HIGH
}

/// Per-byte flag mask: `0x80` in every lane whose byte is zero (exact —
/// no false positives, unlike the borrow-propagating `haszero` trick).
#[inline]
fn zero_mask(word: u64) -> u64 {
    // (b & 0x7f) + 0x7f carries into bit 7 iff the low 7 bits are
    // nonzero; OR the original word to catch the high bit.  A byte is
    // zero iff its flag is still clear — so XOR with HIGH.
    ((((word & LOW7) + LOW7) | word) & HIGH) ^ HIGH
}

/// Memory byte offset of the lowest flagged lane of `mask`.
#[inline]
fn first_flag(mask: u64) -> usize {
    debug_assert!(mask != 0);
    mask.trailing_zeros() as usize / WORD
}

/// Returns the first index in `[from, to)` whose byte is **not** in
/// `0..=max`, or `to` if every byte is.  `max` must be `< 0x80`.
///
/// This is the SWAR "memchr-style" skip: the sweep's fast-forward over
/// `Free`/`Interior` runs (`max = Interior`), the card scan's skip over
/// clean cards (`max = CLEAN`), and `InitFullCollection`'s search for
/// black/gray bytes (`max = Yellow`) are all instances.  Dispatches
/// adaptively between the word path and a plain byte loop (see
/// [`Adapt`]) so dense tables are not taxed with word-path setup.
///
/// # Panics
///
/// Panics if `to > bytes.len()` or `max >= 0x80`.
pub fn find_byte_not_in(bytes: &[AtomicU8], from: usize, to: usize, max: u8) -> usize {
    assert!(to <= bytes.len());
    assert!(max < 0x80, "find_byte_not_in requires max < 0x80");
    if use_reference() {
        return reference::find_byte_not_in(bytes, from, to, max);
    }
    // Byte-scan the unaligned head *plus* the first full word before
    // touching any per-thread state: on dense tables the hit is almost
    // always within the first few bytes, and for such tiny scans even
    // the thread-local round-trip is measurable overhead.
    let mut g = from;
    let head_end = align_up(bytes, from + WORD).min(to);
    while g < head_end {
        if bytes[g].load(Ordering::Relaxed) > max {
            return g;
        }
        g += 1;
    }
    if g == to {
        return to;
    }
    skip_tail(bytes, g, to, max)
}

/// Cold continuation of [`find_byte_not_in`] past the head.  Outlined so
/// the dense-regime hot path stays a tiny leaf function — keeping the
/// TLS access and word machinery here keeps them off the common path's
/// prologue entirely.
#[cold]
#[inline(never)]
fn skip_tail(bytes: &[AtomicU8], from: usize, to: usize, max: u8) -> usize {
    ADAPT_SKIP.with(|cell| {
        let mut st = cell.get();
        let found = scan_not_in(bytes, from, to, max, &mut st);
        cell.set(st);
        found
    })
}

/// [`find_byte_not_in`] body past the head, threading the adaptive mode
/// through `st`.  `from` is word-aligned on entry (the caller byte-scanned
/// up to an alignment boundary).
fn scan_not_in(bytes: &[AtomicU8], from: usize, to: usize, max: u8, st: &mut Adapt) -> usize {
    let mut g = from;
    // Dense regime: pure byte loop — no alignment, no masks.
    if st.byte_mode {
        while g < to {
            if bytes[g].load(Ordering::Relaxed) > max {
                st.clean_run = 0;
                return g;
            }
            g += 1;
            st.clean_run += 1;
            if st.clean_run >= WORD as u8 {
                // A full clean word's worth of bytes: sparse again.
                *st = Adapt::WORD_MODE;
                break;
            }
        }
        if st.byte_mode {
            return to; // range exhausted while still dense
        }
    }
    let found = 'scan: {
        // Re-align after a byte-mode exit at an arbitrary index (no-op
        // straight off the aligned head).
        let head_end = align_up(bytes, g).min(to);
        while g < head_end {
            if bytes[g].load(Ordering::Relaxed) > max {
                break 'scan g;
            }
            g += 1;
        }
        // Aligned body, one word at a time.
        while g + WORD <= to {
            // SAFETY: g is address-aligned (align_up above, then += WORD)
            // and g + WORD <= to <= bytes.len().
            let w = unsafe { load_word(bytes, g) };
            let m = gt_mask(w, max);
            if m != 0 {
                break 'scan g + first_flag(m);
            }
            g += WORD;
        }
        // Tail.
        while g < to {
            if bytes[g].load(Ordering::Relaxed) > max {
                break 'scan g;
            }
            g += 1;
        }
        to
    };
    note_scan_result(st, from, to, found);
    found
}

/// Returns the first index in `[from, to)` whose byte differs from
/// `value`, or `to` if the whole range is a `value`-run.
///
/// This finds the end of a homogeneous run — the sweep's object-extent
/// scan over `Interior` bytes is the canonical caller.  Adaptive like
/// [`find_byte_not_in`]: a table of short runs (small objects) demotes
/// the kernel to the byte loop until runs lengthen again.
///
/// # Panics
///
/// Panics if `to > bytes.len()`.
pub fn find_run_end(bytes: &[AtomicU8], from: usize, to: usize, value: u8) -> usize {
    assert!(to <= bytes.len());
    if use_reference() {
        return reference::find_run_end(bytes, from, to, value);
    }
    // Head before any thread-local traffic — see find_byte_not_in: short
    // runs (small objects) resolve here at plain byte-loop cost.
    let mut g = from;
    let head_end = align_up(bytes, from + WORD).min(to);
    while g < head_end {
        if bytes[g].load(Ordering::Relaxed) != value {
            return g;
        }
        g += 1;
    }
    if g == to {
        return to;
    }
    run_tail(bytes, g, to, value)
}

/// Cold continuation of [`find_run_end`] past the head — see
/// [`skip_tail`].
#[cold]
#[inline(never)]
fn run_tail(bytes: &[AtomicU8], from: usize, to: usize, value: u8) -> usize {
    ADAPT_RUN.with(|cell| {
        let mut st = cell.get();
        let found = scan_run_end(bytes, from, to, value, &mut st);
        cell.set(st);
        found
    })
}

/// [`find_run_end`] body past the head, threading the adaptive mode
/// through `st`.  `from` is word-aligned on entry.
fn scan_run_end(bytes: &[AtomicU8], from: usize, to: usize, value: u8, st: &mut Adapt) -> usize {
    let mut g = from;
    if st.byte_mode {
        while g < to {
            if bytes[g].load(Ordering::Relaxed) != value {
                st.clean_run = 0;
                return g;
            }
            g += 1;
            st.clean_run += 1;
            if st.clean_run >= WORD as u8 {
                *st = Adapt::WORD_MODE;
                break;
            }
        }
        if st.byte_mode {
            return to;
        }
    }
    let found = 'scan: {
        // Re-align after a byte-mode exit (no-op off the aligned head).
        let head_end = align_up(bytes, g).min(to);
        while g < head_end {
            if bytes[g].load(Ordering::Relaxed) != value {
                break 'scan g;
            }
            g += 1;
        }
        let v = splat(value);
        while g + WORD <= to {
            // SAFETY: as in find_byte_not_in.
            let x = unsafe { load_word(bytes, g) } ^ v;
            if x != 0 {
                // Lowest nonzero lane = first byte differing from `value`.
                break 'scan g + x.trailing_zeros() as usize / WORD;
            }
            g += WORD;
        }
        while g < to {
            if bytes[g].load(Ordering::Relaxed) != value {
                break 'scan g;
            }
            g += 1;
        }
        to
    };
    note_scan_result(st, from, to, found);
    found
}

/// Number of bytes in `[from, to)` equal to `value`.
///
/// # Panics
///
/// Panics if `to > bytes.len()`.
pub fn count_matching(bytes: &[AtomicU8], from: usize, to: usize, value: u8) -> usize {
    assert!(to <= bytes.len());
    if use_reference() {
        return reference::count_matching(bytes, from, to, value);
    }
    let mut count = 0;
    let mut g = from;
    let head_end = align_up(bytes, g).min(to);
    while g < head_end {
        count += usize::from(bytes[g].load(Ordering::Relaxed) == value);
        g += 1;
    }
    let v = splat(value);
    while g + WORD <= to {
        // SAFETY: as in find_byte_not_in.
        let x = unsafe { load_word(bytes, g) } ^ v;
        count += zero_mask(x).count_ones() as usize;
        g += WORD;
    }
    while g < to {
        count += usize::from(bytes[g].load(Ordering::Relaxed) == value);
        g += 1;
    }
    count
}

/// Fills `[from, to)` with `value` (release stores, word-wide in the
/// aligned body).  See the module docs for when a fill additionally
/// needs a caller-side publication store.
///
/// # Panics
///
/// Panics if `to > bytes.len()`.
pub fn bulk_fill(bytes: &[AtomicU8], from: usize, to: usize, value: u8) {
    assert!(to <= bytes.len());
    if use_reference() {
        return reference::bulk_fill(bytes, from, to, value);
    }
    let mut g = from;
    let head_end = align_up(bytes, g).min(to);
    while g < head_end {
        bytes[g].store(value, Ordering::Release);
        g += 1;
    }
    let v = splat(value);
    while g + WORD <= to {
        // SAFETY: as in find_byte_not_in.
        unsafe { store_word(bytes, g, v) };
        g += WORD;
    }
    while g < to {
        bytes[g].store(value, Ordering::Release);
        g += 1;
    }
}

/// Zeroes `[from, to)` — [`bulk_fill`] with `0` (the card table's
/// `clear_all`).
pub fn bulk_zero(bytes: &[AtomicU8], from: usize, to: usize) {
    bulk_fill(bytes, from, to, 0);
}

/// Byte-at-a-time reference implementations of every kernel.
///
/// These are the loops the word kernels replaced, kept as the oracle for
/// differential property tests and as the baseline side of the
/// `bench_kernels` microbenchmark.  Semantics (including ordering) match
/// the word kernels byte for byte.
pub mod reference {
    use super::*;

    /// Byte-loop [`find_byte_not_in`](super::find_byte_not_in).
    pub fn find_byte_not_in(bytes: &[AtomicU8], from: usize, to: usize, max: u8) -> usize {
        assert!(to <= bytes.len());
        let mut g = from;
        while g < to && bytes[g].load(Ordering::Relaxed) <= max {
            g += 1;
        }
        g.min(to)
    }

    /// Byte-loop [`find_run_end`](super::find_run_end).
    pub fn find_run_end(bytes: &[AtomicU8], from: usize, to: usize, value: u8) -> usize {
        assert!(to <= bytes.len());
        let mut g = from;
        while g < to && bytes[g].load(Ordering::Relaxed) == value {
            g += 1;
        }
        g.min(to)
    }

    /// Byte-loop [`count_matching`](super::count_matching).
    pub fn count_matching(bytes: &[AtomicU8], from: usize, to: usize, value: u8) -> usize {
        assert!(to <= bytes.len());
        bytes[from..to]
            .iter()
            .filter(|b| b.load(Ordering::Relaxed) == value)
            .count()
    }

    /// Byte-loop [`bulk_fill`](super::bulk_fill).
    pub fn bulk_fill(bytes: &[AtomicU8], from: usize, to: usize, value: u8) {
        assert!(to <= bytes.len());
        for b in &bytes[from..to] {
            b.store(value, Ordering::Release);
        }
    }

    /// Byte-loop [`bulk_zero`](super::bulk_zero).
    pub fn bulk_zero(bytes: &[AtomicU8], from: usize, to: usize) {
        bulk_fill(bytes, from, to, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{run_cases, Gen};

    fn table(contents: &[u8]) -> Vec<AtomicU8> {
        contents.iter().map(|&b| AtomicU8::new(b)).collect()
    }

    fn snapshot(bytes: &[AtomicU8]) -> Vec<u8> {
        bytes.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    #[test]
    fn swar_masks_are_exact() {
        // Every (byte value, threshold) pair, one lane at a time.
        for b in 0..=255u8 {
            let w = splat(b);
            for max in [0u8, 1, 3, 5, 0x7f] {
                let expect = if b > max { HIGH } else { 0 };
                assert_eq!(gt_mask(w, max), expect, "b={b} max={max}");
            }
            let expect = if b == 0 { HIGH } else { 0 };
            assert_eq!(zero_mask(w), expect, "b={b}");
        }
    }

    #[test]
    fn finds_across_word_boundaries() {
        // 0..=1 run of 29 bytes, then a 2 at index 29 (straddles words
        // for every alignment of the base pointer).
        let mut v = vec![0u8; 40];
        v[13] = 1;
        v[29] = 2;
        let t = table(&v);
        assert_eq!(find_byte_not_in(&t, 0, 40, 1), 29);
        assert_eq!(find_byte_not_in(&t, 30, 40, 1), 40);
        assert_eq!(find_run_end(&t, 0, 40, 0), 13);
        assert_eq!(find_run_end(&t, 14, 40, 0), 29);
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let t = table(&[5; 16]);
        assert_eq!(find_byte_not_in(&t, 7, 7, 1), 7);
        assert_eq!(find_run_end(&t, 16, 16, 5), 16);
        assert_eq!(count_matching(&t, 3, 3, 5), 0);
        bulk_fill(&t, 9, 9, 1); // no-op
        assert_eq!(snapshot(&t), vec![5; 16]);
    }

    #[test]
    fn high_bit_bytes_are_not_in_any_set() {
        let t = table(&[0, 1, 0x80, 0, 0xff, 1, 0, 0, 0, 0]);
        assert_eq!(find_byte_not_in(&t, 0, 10, 1), 2);
        assert_eq!(find_byte_not_in(&t, 3, 10, 0x7f), 4);
        assert_eq!(count_matching(&t, 0, 10, 0xff), 1);
    }

    #[test]
    #[should_panic(expected = "max < 0x80")]
    fn rejects_high_threshold() {
        let t = table(&[0; 8]);
        let _ = find_byte_not_in(&t, 0, 8, 0x80);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_bounds_range() {
        let t = table(&[0; 8]);
        let _ = find_run_end(&t, 0, 9, 0);
    }

    /// Draws a table whose contents exercise both long runs and noise —
    /// the two regimes the kernels optimize for — plus occasional
    /// high-bit bytes to check full-value-range behavior.
    fn random_table(g: &mut Gen) -> Vec<AtomicU8> {
        let len = g.usize_in(1..200);
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            if g.bool() {
                // A run of one value (possibly straddling word limits).
                let run = g.usize_in(1..40).min(len - v.len());
                let b = g.usize_in(0..7) as u8;
                v.extend(std::iter::repeat_n(b, run));
            } else {
                let b = if g.usize_in(0..16) == 0 {
                    g.usize_in(0x80..0x100) as u8
                } else {
                    g.usize_in(0..7) as u8
                };
                v.push(b);
            }
        }
        table(&v)
    }

    #[test]
    fn differential_find_byte_not_in() {
        run_cases("diff_find_byte_not_in", 0x5CA4, 512, |g| {
            let t = random_table(g);
            let to = g.usize_in(0..t.len() + 1);
            let from = g.usize_in(0..to + 1);
            let max = g.usize_in(0..7) as u8;
            assert_eq!(
                find_byte_not_in(&t, from, to, max),
                reference::find_byte_not_in(&t, from, to, max),
                "from={from} to={to} max={max} table={:?}",
                snapshot(&t)
            );
        });
    }

    #[test]
    fn differential_find_run_end() {
        run_cases("diff_find_run_end", 0x5CA5, 512, |g| {
            let t = random_table(g);
            let to = g.usize_in(0..t.len() + 1);
            let from = g.usize_in(0..to + 1);
            let value = g.usize_in(0..7) as u8;
            assert_eq!(
                find_run_end(&t, from, to, value),
                reference::find_run_end(&t, from, to, value),
                "from={from} to={to} value={value} table={:?}",
                snapshot(&t)
            );
        });
    }

    #[test]
    fn differential_count_matching() {
        run_cases("diff_count_matching", 0x5CA6, 512, |g| {
            let t = random_table(g);
            let to = g.usize_in(0..t.len() + 1);
            let from = g.usize_in(0..to + 1);
            let value = g.usize_in(0..0x100) as u8;
            assert_eq!(
                count_matching(&t, from, to, value),
                reference::count_matching(&t, from, to, value),
                "from={from} to={to} value={value} table={:?}",
                snapshot(&t)
            );
        });
    }

    #[test]
    fn differential_bulk_fill() {
        run_cases("diff_bulk_fill", 0x5CA7, 512, |g| {
            let a = random_table(g);
            let b = table(&snapshot(&a));
            let to = g.usize_in(0..a.len() + 1);
            let from = g.usize_in(0..to + 1);
            let value = g.usize_in(0..0x100) as u8;
            bulk_fill(&a, from, to, value);
            reference::bulk_fill(&b, from, to, value);
            assert_eq!(
                snapshot(&a),
                snapshot(&b),
                "from={from} to={to} value={value}"
            );
        });
    }

    #[test]
    fn bulk_zero_is_fill_zero() {
        let t = table(&[7; 30]);
        bulk_zero(&t, 5, 27);
        let s = snapshot(&t);
        assert!(s[..5].iter().all(|&b| b == 7));
        assert!(s[5..27].iter().all(|&b| b == 0));
        assert!(s[27..].iter().all(|&b| b == 7));
    }

    #[test]
    fn adaptive_modes_agree_with_reference_across_regime_changes() {
        // A dense prefix (hit every byte) demotes both search kernels to
        // byte mode after two calls; the long clean run then promotes
        // them back.  Every call in the churn must still agree with the
        // byte-loop oracle — the mode changes cost, never results.
        let mut v = vec![0u8; 256];
        for (i, b) in v.iter_mut().enumerate().take(64) {
            *b = if i % 2 == 0 { 2 } else { 1 }; // dense: hit at every even index
        }
        // v[64..] stays 0: one long sparse run.
        let t = table(&v);
        for from in 0..80 {
            assert_eq!(
                find_byte_not_in(&t, from, 256, 1),
                reference::find_byte_not_in(&t, from, 256, 1),
                "from={from}"
            );
            assert_eq!(
                find_run_end(&t, from, 256, 1),
                reference::find_run_end(&t, from, 256, 1),
                "from={from}"
            );
        }
        // And again starting sparse (byte mode left over from the dense
        // churn must re-promote and still agree).
        for from in [64, 100, 200, 255, 256] {
            assert_eq!(
                find_byte_not_in(&t, from, 256, 1),
                reference::find_byte_not_in(&t, from, 256, 1),
                "from={from}"
            );
        }
    }

    #[test]
    fn force_reference_dispatches_and_agrees() {
        let t = table(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 0]);
        let fast = find_byte_not_in(&t, 0, t.len(), 1);
        force_reference(true);
        let slow = find_byte_not_in(&t, 0, t.len(), 1);
        force_reference(false);
        assert_eq!(fast, 10);
        assert_eq!(fast, slow);
    }
}
