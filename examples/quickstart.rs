//! Quickstart: a guided tour of the on-the-fly generational collector.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Demonstrates the whole public API surface: creating a collector,
//! attaching a mutator, allocating objects, rooting them on the shadow
//! stack, writing references through the DLG write barrier, watching
//! objects get promoted to the old generation (turn black), and reading
//! the collection statistics.

use otf_gengc::gc::{CycleKind, Gc, GcConfig};
use otf_gengc::heap::{Color, ObjShape};

fn main() {
    // The paper's best configuration: simple promotion, 4 MB young
    // generation, 16-byte cards ("object marking"), 1→32 MB heap.  We
    // shrink the young generation so collections happen quickly here.
    let config = GcConfig::generational()
        .with_max_heap(16 << 20)
        .with_young_size(512 << 10);
    let gc = Gc::new(config);
    let mut m = gc.mutator();

    println!("== 1. allocate a linked list and keep it rooted ==");
    let node = ObjShape::new(1, 1); // 1 reference slot, 1 data word
    let head = m.alloc(&node).expect("allocation failed");
    m.write_data(head, 0, 0);
    m.root_push(head); // shadow-stack root: the collector sees this
    let mut tail = head;
    for i in 1..1000u64 {
        let next = m.alloc(&node).expect("allocation failed");
        m.write_data(next, 0, i);
        m.write_ref(tail, 0, next); // the DLG write barrier
        tail = next;
    }
    println!("   head is {head}, color = {}", gc.debug_color_of(head));

    println!("== 2. allocate garbage until collections run ==");
    let junk = ObjShape::new(0, 6);
    while gc.cycles_completed() < 3 {
        for _ in 0..10_000 {
            let _ = m.alloc(&junk).expect("allocation failed");
        }
        m.cooperate(); // the safe point an on-the-fly mutator must visit
    }

    println!("== 3. the list survived and was promoted (black = old) ==");
    // Wait for the in-flight cycle to finish so colors are settled.
    m.parked(|| gc.collect_full_blocking());
    let mut cur = head;
    let mut len = 0u64;
    while !cur.is_null() {
        assert_eq!(m.read_data(cur, 0), len, "heap corruption!");
        len += 1;
        cur = m.read_ref(cur, 0);
    }
    println!("   walked {len} nodes intact");
    assert_eq!(len, 1000);
    // After a full collection everything live was re-marked; in the
    // simple generational variant surviving = promoted.
    assert_eq!(gc.debug_color_of(head), Color::Black);
    println!("   head color is now {}", gc.debug_color_of(head));

    println!("== 4. inter-generational pointers via the card table ==");
    // Store a brand-new (young) object into the old list head: the write
    // barrier marks the head's card; the next partial collection scans it
    // and keeps the young object alive.
    let young = m.alloc(&node).expect("allocation failed");
    m.write_data(young, 0, 4242);
    m.write_ref(head, 0, young);
    let before = gc.cycles_completed();
    while gc.cycles_completed() == before {
        for _ in 0..10_000 {
            let _ = m.alloc(&junk).expect("allocation failed");
        }
        m.cooperate();
    }
    m.parked(|| gc.collect_full_blocking());
    assert_eq!(m.read_data(m.read_ref(head, 0), 0), 4242);
    println!("   young object survived through the dirty card");

    println!("== 5. statistics ==");
    drop(m);
    let stats = gc.stats();
    println!(
        "   {} partial + {} full collections, {:.1}% of time GC active",
        stats.partial_count(),
        stats.full_count(),
        stats.percent_time_gc_active()
    );
    for kind in [CycleKind::Partial, CycleKind::Full] {
        if let (Some(ms), Some(freed)) = (stats.avg_cycle_ms(kind), stats.avg_objects_freed(kind)) {
            println!("   avg {kind}: {ms:.2} ms, {freed:.0} objects freed");
        }
    }
    println!(
        "   total allocated: {} objects / {} KB",
        stats.objects_allocated,
        stats.bytes_allocated / 1024
    );
    gc.shutdown();
    println!("done.");
}
