#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md).
#
# The workspace has zero external crates, so everything runs --offline
# against an empty cargo registry.  The build is warning-free; -D warnings
# keeps it that way.
set -eux

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

cargo build --release --offline --workspace --all-targets
cargo test -q --offline
cargo fmt --check
