//! Compare the three collector variants on one of the paper's benchmarks.
//!
//! Usage:
//! `cargo run --release --example compare_collectors -- [workload] [scale]`
//! where `workload` is one of `anagram`, `mtrt`, `compress`, `db`, `jess`,
//! `javac`, `jack` (default `anagram`) and `scale` is a work multiplier
//! (default `0.5`).
//!
//! Prints the paper's headline comparison — elapsed time and GC activity
//! under the non-generational DLG baseline, the simple generational
//! collector, and the aging variant.

use otf_gengc::gc::{CycleKind, GcConfig};
use otf_gengc::workloads::driver::{percent_improvement, run_workload};
use otf_gengc::workloads::{Anagram, Compress, Db, Jack, Javac, Jess, RayTracer, Workload};

fn pick_workload(name: &str, scale: f64) -> Box<dyn Workload> {
    match name {
        "anagram" => Box::new(Anagram::new().scaled(scale)),
        "mtrt" => Box::new(RayTracer::mtrt().scaled(scale)),
        "compress" => Box::new(Compress::new().scaled(scale)),
        "db" => Box::new(Db::new().scaled(scale)),
        "jess" => Box::new(Jess::new().scaled(scale)),
        "javac" => Box::new(Javac::new().scaled(scale)),
        "jack" => Box::new(Jack::new().scaled(scale)),
        other => panic!("unknown workload {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("anagram");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let w = pick_workload(name, scale);

    println!("workload: {} (scale {scale})\n", w.name());
    println!(
        "{:<26} {:>10} {:>7} {:>9} {:>7} {:>9}",
        "collector", "elapsed", "GC %", "partials", "fulls", "vs nogen"
    );

    let mut nogen_elapsed = None;
    for (label, cfg) in [
        ("non-generational (DLG)", GcConfig::non_generational()),
        ("generational (simple)", GcConfig::generational()),
        ("generational (aging, 4)", GcConfig::aging(4)),
    ] {
        let r = run_workload(w.as_ref(), cfg, 42);
        let improvement = match nogen_elapsed {
            None => {
                nogen_elapsed = Some(r.elapsed);
                "—".to_string()
            }
            Some(base) => format!("{:+.1}%", percent_improvement(base, r.elapsed)),
        };
        println!(
            "{:<26} {:>10.3?} {:>6.1}% {:>9} {:>7} {:>9}",
            label,
            r.elapsed,
            r.percent_gc_active(),
            r.stats.partial_count(),
            r.stats.full_count(),
            improvement,
        );
        if let Some(ms) = r.stats.avg_cycle_ms(CycleKind::Partial) {
            println!("{:<26}   avg partial {ms:.2} ms", "");
        }
        if let Some(ms) = r.stats.avg_cycle_ms(CycleKind::Full) {
            println!("{:<26}   avg full    {ms:.2} ms", "");
        }
    }
}
