//! A mergeable, log-bucketed concurrent latency histogram — the
//! workspace's `hdrhistogram` replacement.
//!
//! [`Histogram`] records `u64` values (nanoseconds, by convention) into
//! HDR-style **log-linear buckets**: values below 2⁵ get their own exact
//! bucket; above that, each power-of-two octave is split into 2⁵ = 32
//! sub-buckets, bounding the relative quantization error at 1/32 ≈ 3.1%
//! across the whole `u64` range with a fixed table of 1920 counters.
//!
//! The record path is **lock-free and allocation-free**: one bucket index
//! computation (a `leading_zeros` and some shifts) plus five relaxed
//! atomic RMWs.  It is safe to call concurrently from any number of
//! threads — this is what lets every mutator share one histogram without
//! a merge step on the hot path.
//!
//! Queries ([`Histogram::quantile`], [`Histogram::max`]) read the live
//! counters; [`Histogram::snapshot`] captures a plain-`u64` [`Snapshot`]
//! for storage, merging across runs, and serialization.  Quantiles use
//! the nearest-rank definition over bucket counts and report the
//! **upper bound** of the selected bucket (clamped to the exact recorded
//! maximum), so they never under-report a latency and are monotone in
//! the requested rank.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets,
/// so quantization error is bounded by `2^-SUB_BITS` of the value.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`: the `SUB` exact low buckets
/// plus `64 - SUB_BITS` octaves of `SUB` sub-buckets each (the first
/// "octave" `[SUB, 2·SUB)` reuses the same indexing formula).
pub const NUM_BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// The bucket index for a value.  Total and monotone: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let shift = msb - SUB_BITS as usize;
        let sub = (v >> shift) as usize - SUB;
        SUB + shift * SUB + sub
    }
}

/// The smallest value mapping to bucket `i`.
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUB {
        i as u64
    } else {
        let shift = (i - SUB) / SUB;
        let sub = (i - SUB) % SUB;
        ((SUB + sub) as u64) << shift
    }
}

/// The largest value mapping to bucket `i` (inclusive).
#[inline]
pub fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let shift = (i - SUB) / SUB;
        bucket_low(i) + ((1u64 << shift) - 1)
    }
}

/// Nearest-rank quantile over a bucket walk: the upper bound of the
/// bucket holding the `⌈q·n⌉`-th smallest recorded value, clamped to the
/// exact recorded maximum.
fn quantile_over(counts: impl IntoIterator<Item = u64>, n: u64, max: u64, q: f64) -> u64 {
    if n == 0 {
        return 0;
    }
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let mut cum = 0u64;
    for (i, c) in counts.into_iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_high(i).min(max);
        }
    }
    max
}

/// A concurrent log-bucketed histogram.  See the [module docs](self).
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Histogram {
    /// An empty histogram.  This is the only allocating operation.
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one value.  Lock-free and allocation-free; callable from
    /// any thread concurrently.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.max.load(Ordering::Relaxed)
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The nearest-rank `q`-quantile (`0.0 ..= 1.0`), reported as the
    /// upper bound of the selected bucket clamped to the recorded
    /// maximum — at most 1/32 above the exact order statistic, never
    /// below it.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_over(
            self.counts.iter().map(|c| c.load(Ordering::Relaxed)),
            self.count(),
            self.max(),
            q,
        )
    }

    /// Adds every recorded value of `other` into `self` (bucket-wise).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c != 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A plain-integer snapshot of the current contents.  Concurrent
    /// `record`s may or may not be included; each bucket is internally
    /// consistent.
    pub fn snapshot(&self) -> Snapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        Snapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An owned, mergeable snapshot of a [`Histogram`], with the same query
/// API.  `Default` is the empty snapshot (every query returns 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

impl Snapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile; same semantics as [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_over(self.counts.iter().copied(), self.count, self.max(), q)
    }

    /// Merges `other` into `self` bucket-wise.  Merging is commutative
    /// and associative: any merge order yields the same snapshot.
    pub fn merge(&mut self, other: &Snapshot) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{run_cases, Gen};

    /// Nearest-rank quantile over raw samples — the oracle.
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[rank as usize - 1]
    }

    /// A value drawn log-uniformly so every octave is exercised.
    fn log_uniform(g: &mut Gen) -> u64 {
        let bits = g.u32_in(0..64);
        let base = 1u64 << bits.min(63);
        g.u64_in(base / 2..base.saturating_add(base - 1).max(base / 2 + 1))
    }

    #[test]
    fn bucket_index_covers_u64_and_is_monotone() {
        // Every power-of-two boundary and its neighbors, plus extremes.
        let mut last = 0usize;
        let mut probes = vec![0u64, 1, 2, 3];
        for b in 2..64u32 {
            let p = 1u64 << b;
            probes.extend_from_slice(&[p - 1, p, p + 1]);
        }
        probes.push(u64::MAX - 1);
        probes.push(u64::MAX);
        for v in probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        run_cases("hist_bucket_bounds", 0xB0B0, 300, |g| {
            let v = log_uniform(g);
            let i = bucket_index(v);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} outside bucket {i}: [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
            // Relative bucket width bounds the quantization error.
            let width = bucket_high(i) - bucket_low(i);
            assert!(
                width as u128 <= (v as u128 / SUB as u128) + 1,
                "bucket {i} too wide ({width}) for value {v}"
            );
        });
    }

    #[test]
    fn buckets_tile_the_range_without_gaps() {
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_high(i - 1) + 1,
                bucket_low(i),
                "gap or overlap between buckets {} and {i}",
                i - 1
            );
        }
        assert_eq!(bucket_low(0), 0);
    }

    #[test]
    fn exact_below_sub_resolution() {
        let h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        for v in 0..SUB as u64 {
            // Quantile ranks are 1-based: value v is the (v+1)-th smallest.
            let q = (v + 1) as f64 / SUB as f64;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn empty_histogram_queries() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), Snapshot::default().max());
        assert_eq!(s.count(), Snapshot::default().count());
    }

    #[test]
    fn differential_quantiles_vs_sorted_vec_oracle() {
        run_cases("hist_vs_oracle", 0xD1FF, 60, |g| {
            let values = g.vec_of(1..400, log_uniform);
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(h.count(), values.len() as u64);
            assert_eq!(h.max(), *sorted.last().unwrap());
            assert_eq!(h.min(), sorted[0]);
            for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let exact = oracle_quantile(&sorted, q);
                let approx = h.quantile(q);
                // Never under-reports; over-reports by at most one bucket
                // width (≤ exact/SUB + 1).
                assert!(
                    approx >= exact,
                    "q{q}: {approx} under-reports oracle {exact}"
                );
                assert!(
                    approx as u128 <= exact as u128 + exact as u128 / SUB as u128 + 1,
                    "q{q}: {approx} beyond error bound of oracle {exact}"
                );
            }
        });
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        run_cases("hist_monotone", 0x3333, 40, |g| {
            let values = g.vec_of(1..200, log_uniform);
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut last = 0;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let v = h.quantile(q);
                assert!(v >= last, "quantile not monotone at q={q}");
                last = v;
            }
            assert!(h.quantile(1.0) <= h.max().max(1));
        });
    }

    #[test]
    fn merge_matches_single_histogram_and_is_associative() {
        run_cases("hist_merge", 0x4242, 40, |g| {
            let a = g.vec_of(0..120, log_uniform);
            let b = g.vec_of(0..120, log_uniform);
            let c = g.vec_of(0..120, log_uniform);
            let hist_of = |vs: &[u64]| {
                let h = Histogram::new();
                for &v in vs {
                    h.record(v);
                }
                h
            };
            // Oracle: one histogram fed the concatenation.
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            let oracle = hist_of(&all).snapshot();

            // (a ⊔ b) ⊔ c via snapshots.
            let mut left = hist_of(&a).snapshot();
            left.merge(&hist_of(&b).snapshot());
            left.merge(&hist_of(&c).snapshot());
            // a ⊔ (b ⊔ c).
            let mut right_tail = hist_of(&b).snapshot();
            right_tail.merge(&hist_of(&c).snapshot());
            let mut right = hist_of(&a).snapshot();
            right.merge(&right_tail);

            if all.is_empty() {
                assert!(left.is_empty() && right.is_empty());
                return;
            }
            assert_eq!(left, right, "merge not associative");
            assert_eq!(left.count(), oracle.count());
            assert_eq!(left.max(), oracle.max());
            assert_eq!(left.min(), oracle.min());
            for q in [0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(left.quantile(q), oracle.quantile(q));
            }

            // The concurrent merge path agrees with the snapshot path.
            let merged = hist_of(&a);
            merged.merge_from(&hist_of(&b));
            merged.merge_from(&hist_of(&c));
            assert_eq!(merged.snapshot(), oracle);
        });
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads = 4;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = &h;
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t as u64 * per_thread + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads as u64 * per_thread);
        assert_eq!(h.max(), threads as u64 * per_thread - 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn record_duration_saturates() {
        let h = Histogram::new();
        h.record_duration(Duration::from_nanos(1500));
        assert_eq!(h.max(), 1500);
        assert!(h.quantile(1.0) >= 1500);
        let h = Histogram::new();
        h.record_duration(Duration::MAX);
        assert_eq!(h.max(), u64::MAX);
    }
}
