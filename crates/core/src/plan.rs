//! Plans: the collection cycle expressed as a work-packet schedule
//! (DESIGN.md §4.7).
//!
//! PR 5 hard-wired exactly two parallel phases (mark, sweep) and left
//! the `gen`/`nogen`/`aging` differences as `match self.config.mode`
//! branches inside `run_cycle`.  This module re-expresses the cycle the
//! way MMTk structures collectors (PAPERS.md): each protocol step is a
//! typed [`Packet`]; packets live in phase buckets that open in a
//! declared order; a *plan* — the (mode × sweep-backend) combination —
//! selects which packets go into which bucket.  The bucket sequence of
//! every plan is:
//!
//! | bucket         | kind     | packets (by plan)                                  |
//! |----------------|----------|----------------------------------------------------|
//! | `lazy-finalize`| serial   | lazy plans only: drain the previous sweep epoch    |
//! | `init`         | serial   | full collections: `InitFullCollection` (gen modes) |
//! | `handshake-1`  | serial   | post `sync1`, wait                                 |
//! | `handshake-2`  | serial   | post `sync2`, card scan / color toggle (Fig. 2/5 order), wait |
//! | `handshake-3`  | serial   | raise tracing, post `async`, mark global roots, wait |
//! | `trace`        | parallel | one `TraceDrain` per worker lane                   |
//! | `reclaim`      | parallel | eager: sweep (serial kernel or page-partitioned lanes); lazy: publish the epoch |
//!
//! Buckets open strictly in declaration order and serial buckets drain
//! FIFO, so with one worker the schedule runs byte-for-byte the
//! verified DLG sequence `run_cycle` used to spell out imperatively.
//! The §4.4 trace-termination check is the `trace` bucket's closing
//! condition (see [`GcShared::add_trace_bucket`]); future phases — a
//! concurrent card-scan-while-marking, an Immix-style defrag arm — are
//! new buckets or packets, not new control flow in the proof.
//!
//! Phase accounting rides on the bucket spans: each bucket's open→close
//! wall time is sampled exactly once at close (fixing the old
//! double-`elapsed()` sampling), handshake windows span the full
//! post→ack interval (fixing acks landing outside any phase window in
//! the event ring), and card/root work nests inside the handshake
//! windows as its own phase slots (fixing root marking billed to
//! handshake latency).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use otf_heap::ObjectRef;
use otf_support::fault;
use otf_support::packet::{BucketId, Drained, Packet, Schedule};
use otf_support::steal::WorkerDeque;
use otf_support::sync::Mutex;

use crate::config::{Mode, Promotion};
use crate::cycle::CycleCx;
use crate::lazy::LazyWho;
use crate::obs::{dur_ns, phase, EventKind};
use crate::shared::{bucket, GcShared};
use crate::state::Status;
use crate::stats::CycleKind;

/// Shared per-cycle scratch the packets of one schedule communicate
/// through: the seed list feeding the trace, the worker deques, the
/// sweep cursor, and the per-lane timing/steal tallies that phase
/// attribution reads back after the schedule completes.
pub(crate) struct CycleFrame {
    /// Gray seeds discovered before the trace bucket opens (card scan,
    /// global roots).  `TraceDrain` packets drain it under the trace
    /// bucket; the §4.4 closing condition re-checks its emptiness.
    pub seeds: Mutex<Vec<ObjectRef>>,
    /// One work-stealing deque per trace lane.
    pub deques: Vec<WorkerDeque<ObjectRef>>,
    /// Segment-claim cursor for the page-partitioned parallel sweep.
    pub cursor: AtomicUsize,
    /// Frontier granule pinned when the reclaim bucket plans its lanes.
    pub frontier: AtomicUsize,
    /// Nanoseconds spent scanning cards (nested inside handshake 2).
    pub cards_ns: AtomicU64,
    /// Nanoseconds spent marking global roots (inside handshake 3).
    pub roots_ns: AtomicU64,
    /// Per-lane trace time, summed over that lane's `TraceDrain` runs.
    pub mark_ns: Vec<AtomicU64>,
    /// Per-lane steal counts (sibling deques + the shared gray queue).
    pub steals: Vec<AtomicU64>,
    /// Total bytes blackened by the trace, summed across lanes as each
    /// packet returns — the lazy epoch is published from this *before*
    /// helper counters merge back into the main context.
    pub bytes_traced: AtomicU64,
    /// Heap bytes in use when the cycle proper began (sampled by the
    /// init bucket's open hook, after any lazy finalize).
    pub used_before: AtomicUsize,
    /// Allocation-trigger accumulator sampled at the same point.
    pub allocated_since: AtomicU64,
}

impl CycleFrame {
    pub(crate) fn new(workers: usize) -> CycleFrame {
        CycleFrame {
            seeds: Mutex::new(Vec::new()),
            deques: (0..workers).map(|_| WorkerDeque::new()).collect(),
            cursor: AtomicUsize::new(1),
            frontier: AtomicUsize::new(0),
            cards_ns: AtomicU64::new(0),
            roots_ns: AtomicU64::new(0),
            mark_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            bytes_traced: AtomicU64::new(0),
            used_before: AtomicUsize::new(0),
            allocated_since: AtomicU64::new(0),
        }
    }
}

/// The bucket handles of one full-cycle schedule, kept so `run_cycle`
/// can read the closed buckets' spans for phase attribution.
pub(crate) struct CycleBuckets {
    pub finalize: Option<BucketId>,
    pub init: BucketId,
    pub hs1: BucketId,
    pub hs2: BucketId,
    pub hs3: BucketId,
    /// Overlapped plans only (`GcConfig::overlap_phases`): the card-scan
    /// producer bucket of the cards∥roots∥trace overlap group.
    pub cards: Option<BucketId>,
    /// Overlapped plans only: the root-marking producer bucket.
    pub roots: Option<BucketId>,
    pub trace: BucketId,
    pub reclaim: BucketId,
}

// ----- packets ---------------------------------------------------------

/// Lazy plans: drain the previous sweep epoch before this cycle's color
/// toggle, folding its deferred counters into this cycle (DESIGN.md
/// §4.6 — a straggling sweeper under stale params would free fresh
/// objects after the toggle).
struct LazyFinalize<'s> {
    sh: &'s GcShared,
}

impl<'s> Packet<'s, CycleCx> for LazyFinalize<'s> {
    fn name(&self) -> &'static str {
        "lazy-finalize"
    }
    fn run(self: Box<Self>, _w: usize, cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        self.sh.lazy_finalize(LazyWho::Collector);
        cx.counters.merge(&self.sh.lazy_take_counters());
    }
}

/// `InitFullCollection` (Figure 3 / §6): recolor old objects young;
/// the simple variant also wipes the card marks, aging keeps them.
struct InitFull<'s> {
    sh: &'s GcShared,
    clear_cards: bool,
}

impl<'s> Packet<'s, CycleCx> for InitFull<'s> {
    fn name(&self) -> &'static str {
        "init-full-collection"
    }
    fn run(self: Box<Self>, _w: usize, cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        self.sh.init_full_collection(self.clear_cards, cx);
    }
}

/// `postHandshake(s)`.  For the third handshake the tracing flag goes
/// up first: the barrier must start graying overwritten values before
/// any mutator can observe async status.
struct PostHandshake<'s> {
    sh: &'s GcShared,
    status: Status,
    raise_tracing: bool,
}

impl<'s> Packet<'s, CycleCx> for PostHandshake<'s> {
    fn name(&self) -> &'static str {
        "post-handshake"
    }
    fn run(self: Box<Self>, _w: usize, _cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        if self.raise_tracing {
            self.sh.tracing.store(true, Ordering::Release);
        }
        self.sh.post_handshake(self.status);
    }
}

/// `waitHandshake`: block until every mutator adopted the posted status.
struct WaitHandshake<'s> {
    sh: &'s GcShared,
}

impl<'s> Packet<'s, CycleCx> for WaitHandshake<'s> {
    fn name(&self) -> &'static str {
        "wait-handshake"
    }
    fn run(self: Box<Self>, _w: usize, _cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        self.sh.wait_handshake();
    }
}

/// The color toggle (Remark 5.1).
struct ToggleColors<'s> {
    sh: &'s GcShared,
}

impl<'s> Packet<'s, CycleCx> for ToggleColors<'s> {
    fn name(&self) -> &'static str {
        "toggle-colors"
    }
    fn run(self: Box<Self>, _w: usize, _cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        self.sh.colors.toggle();
    }
}

/// `ClearCards` as its own nested phase.  Sequential schedules run it
/// inside the second handshake window — simple variant before the
/// toggle (§7.1), aging scan after it (Figure 5) — and the grays it
/// finds move onto the frame's seed list.  Overlapped schedules
/// (`overlap = true`, DESIGN.md §4.9) run it in the producer bucket of
/// the cards∥roots∥trace group instead: the kernel publishes grays to
/// the shared queue card by card, and the simple variant re-marks cards
/// that still point at unpromoted allocation-colored sons.
struct CardScan<'s> {
    sh: &'s GcShared,
    frame: &'s CycleFrame,
    /// `None` = simple `ClearCards`; `Some(threshold)` = the aging scan.
    aging: Option<u8>,
    overlap: bool,
}

impl<'s> Packet<'s, CycleCx> for CardScan<'s> {
    fn name(&self) -> &'static str {
        "card-scan"
    }
    fn run(self: Box<Self>, _w: usize, cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        // Chaos window: a seeded delay here holds the card-scan
        // producer bucket open while the overlapped trace runs dry, so
        // the termination extension (trace cannot close past an open
        // producer, §4.9) is exercised rather than merely argued.
        let _ = fault::point("collector.card_scan");
        let t = Instant::now();
        self.sh.obs.event(EventKind::PhaseBegin, phase::CARDS, 0);
        match self.aging {
            None => self.sh.clear_cards_simple(self.overlap, cx),
            Some(threshold) => self.sh.clear_cards_aging(threshold, self.overlap, cx),
        }
        let dur = dur_ns(t.elapsed());
        self.frame.cards_ns.fetch_add(dur, Ordering::Relaxed);
        self.sh.obs.event(EventKind::PhaseEnd, phase::CARDS, dur);
        if self.overlap {
            // The kernel published card by card; flush any remainder to
            // the shared queue the concurrent trace is draining.
            for obj in cx.mark_stack.drain(..) {
                self.sh.gray.push(obj);
            }
        } else {
            self.frame.seeds.lock().append(&mut cx.mark_stack);
        }
    }
}

/// Global-root marking, timed into its own phase slot: it is trace
/// work, and billing it to the handshake would inflate
/// handshake-latency SLOs by root-set size.  Sequential schedules run
/// it between the third post and its wait (Figure 2), seeding the
/// frame; overlapped schedules (`publish = true`) run it in its own
/// producer bucket and publish straight to the shared gray queue for
/// the concurrently-open trace.
struct MarkRoots<'s> {
    sh: &'s GcShared,
    frame: &'s CycleFrame,
    publish: bool,
}

impl<'s> Packet<'s, CycleCx> for MarkRoots<'s> {
    fn name(&self) -> &'static str {
        "mark-roots"
    }
    fn run(self: Box<Self>, _w: usize, _cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        let t = Instant::now();
        self.sh.obs.event(EventKind::PhaseBegin, phase::ROOTS, 0);
        if self.publish {
            let mut roots = Vec::new();
            self.sh.mark_global_roots_local(&mut roots);
            for obj in roots {
                self.sh.gray.push(obj);
            }
        } else {
            let mut seeds = self.frame.seeds.lock();
            self.sh.mark_global_roots_local(&mut seeds);
        }
        let dur = dur_ns(t.elapsed());
        self.frame.roots_ns.fetch_add(dur, Ordering::Relaxed);
        self.sh.obs.event(EventKind::PhaseEnd, phase::ROOTS, dur);
    }
}

/// One trace lane: seed the deques from the frame, then drain private
/// stack / own deque / steals until out of work
/// ([`GcShared::trace_drain`]).  The packet returns to the scheduler
/// when it finds nothing to steal; the bucket's closing condition
/// decides between refilling (work reappeared), waiting (a mutator is
/// inside its barrier epoch) and closing (§4.4).
///
/// Under an overlapped schedule (DESIGN.md §4.9) the producer buckets
/// publish grays to the shared queue *while* this packet runs.  A lane
/// that runs dry re-enqueues itself as long as any producer bucket is
/// still open, so newly published grays are consumed immediately
/// instead of waiting for the producers to close and the drained hook
/// to refill — the hook cannot even be consulted before then, because
/// each producer holds an `in_flight` token on this bucket for its
/// whole lifetime.
struct TraceDrain<'s> {
    sh: &'s GcShared,
    frame: &'s CycleFrame,
    bucket: BucketId,
    lane: usize,
    workers: usize,
}

impl<'s> Packet<'s, CycleCx> for TraceDrain<'s> {
    fn name(&self) -> &'static str {
        "trace-drain"
    }
    fn run(self: Box<Self>, _w: usize, cx: &mut CycleCx, s: &Schedule<'s, CycleCx>) {
        let t = Instant::now();
        {
            let mut seeds = self.frame.seeds.lock();
            if !seeds.is_empty() {
                if self.workers == 1 {
                    // Serial: straight onto the private mark stack, so
                    // the pop order is byte-for-byte the old sequence.
                    cx.mark_stack.append(&mut seeds);
                } else {
                    for (i, obj) in seeds.drain(..).enumerate() {
                        self.frame.deques[i % self.workers].push(obj);
                    }
                }
            }
        }
        let before = cx.counters.bytes_traced;
        let steals = self
            .sh
            .trace_drain(self.lane, self.workers, &self.frame.deques, cx);
        let traced = cx.counters.bytes_traced - before;
        self.frame.bytes_traced.fetch_add(traced, Ordering::Relaxed);
        self.frame.steals[self.lane].fetch_add(steals, Ordering::Relaxed);
        self.frame.mark_ns[self.lane].fetch_add(dur_ns(t.elapsed()), Ordering::Relaxed);
        if s.predecessors_open(self.bucket) {
            if traced == 0 && steals == 0 {
                // Dry lap while a producer is still scanning: yield so
                // the re-enqueue loop doesn't starve the producer of a
                // core.
                std::thread::yield_now();
            }
            let Self {
                sh,
                frame,
                bucket,
                lane,
                workers,
            } = *self;
            s.enqueue(
                bucket,
                TraceDrain {
                    sh,
                    frame,
                    bucket,
                    lane,
                    workers,
                },
            );
        }
    }
}

/// The reclaim step of the selected plan: lazy plans publish the sweep
/// epoch (mark-only cycle); eager plans run the serial sweep kernel or
/// fan out one [`SweepLane`] per worker into their own bucket.
struct ReclaimPlan<'s> {
    sh: &'s GcShared,
    frame: &'s CycleFrame,
    bucket: BucketId,
    workers: usize,
    lazy: bool,
}

impl<'s> Packet<'s, CycleCx> for ReclaimPlan<'s> {
    fn name(&self) -> &'static str {
        "reclaim-plan"
    }
    fn run(self: Box<Self>, _w: usize, cx: &mut CycleCx, sched: &Schedule<'s, CycleCx>) {
        if self.lazy {
            // Mark-only cycle: order every trace-phase color store
            // before the epoch becomes claimable, then publish it.
            std::sync::atomic::fence(Ordering::SeqCst);
            self.sh
                .lazy_publish(self.frame.bytes_traced.load(Ordering::Relaxed));
        } else if self.workers <= 1 {
            self.sh.sweep_serial(cx);
        } else {
            let frontier = self.sh.heap.frontier_granule();
            self.frame.frontier.store(frontier, Ordering::Relaxed);
            self.frame.cursor.store(1, Ordering::SeqCst);
            cx.touch_color_range(1, frontier);
            for lane in 0..self.workers {
                sched.enqueue(
                    self.bucket,
                    SweepLane {
                        sh: self.sh,
                        frame: self.frame,
                        lane,
                    },
                );
            }
        }
    }
}

/// One page-partitioned sweep lane: claim segments from the frame's
/// shared cursor until the frontier is reached.
struct SweepLane<'s> {
    sh: &'s GcShared,
    frame: &'s CycleFrame,
    lane: usize,
}

impl<'s> Packet<'s, CycleCx> for SweepLane<'s> {
    fn name(&self) -> &'static str {
        "sweep-lane"
    }
    fn run(self: Box<Self>, _w: usize, cx: &mut CycleCx, _s: &Schedule<'s, CycleCx>) {
        let frontier = self.frame.frontier.load(Ordering::Relaxed);
        let params = self.sh.sweep_params();
        self.sh
            .sweep_worker(self.lane, frontier, &self.frame.cursor, &params, cx);
    }
}

// ----- schedule builders -----------------------------------------------

impl GcShared {
    /// Builds the full-cycle schedule for this configuration's plan:
    /// every bucket in Figure 2/5 order, packets selected by
    /// (mode × kind × sweep backend).
    pub(crate) fn build_cycle_schedule<'s>(
        &'s self,
        sched: &mut Schedule<'s, CycleCx>,
        kind: CycleKind,
        frame: &'s CycleFrame,
        workers: usize,
    ) -> CycleBuckets {
        // Lazy plans: the previous epoch drains *before* the toggle
        // (its residual time is attributed to the sweep phase).
        let finalize = if self.config.lazy_sweep {
            let b = sched.add_serial_bucket("lazy-finalize");
            sched.on_open(b, move || {
                self.open_bucket
                    .store(bucket::LAZY_FINALIZE, Ordering::Release);
            });
            sched.enqueue(b, LazyFinalize { sh: self });
            Some(b)
        } else {
            None
        };

        // ----- clear (Figure 2/5: "clear: If (full collection) Init...")
        let init = sched.add_serial_bucket("init");
        sched.on_open(init, move || {
            self.open_bucket.store(bucket::INIT, Ordering::Release);
            self.collecting.store(true, Ordering::Release);
            self.obs.note_cycle_begin(kind);
            frame
                .used_before
                .store(self.heap.used_bytes(), Ordering::Relaxed);
            frame
                .allocated_since
                .store(self.control.bytes_since_cycle(), Ordering::Relaxed);
            self.obs.event(EventKind::PhaseBegin, phase::INIT, 0);
        });
        if kind == CycleKind::Full {
            match self.config.mode {
                // The toggled non-generational baseline needs no
                // initialization pass (Remark 5.1).
                Mode::NonGenerational => {}
                // Simple variant: recolor old objects young and wipe
                // all card marks (Figure 3).
                Mode::Generational(Promotion::Simple) => sched.enqueue(
                    init,
                    InitFull {
                        sh: self,
                        clear_cards: true,
                    },
                ),
                // Aging variant: recolor but *keep* the card marks (§6).
                Mode::Generational(Promotion::Aging { .. }) => sched.enqueue(
                    init,
                    InitFull {
                        sh: self,
                        clear_cards: false,
                    },
                ),
            }
        }
        sched.on_close(init, move |span| {
            self.obs
                .event(EventKind::PhaseEnd, phase::INIT, dur_ns(span));
        });

        // ----- first handshake -----------------------------------------
        let hs1 = sched.add_serial_bucket("handshake-1");
        sched.on_open(hs1, move || {
            self.open_bucket
                .store(bucket::HANDSHAKE_1, Ordering::Release);
            // Chaos kill site 2 of 6.
            if fault::point("collector.phase") {
                panic!("injected collector panic (phase: handshake-1)");
            }
            self.obs.event(EventKind::PhaseBegin, phase::HANDSHAKE, 0);
        });
        sched.enqueue(
            hs1,
            PostHandshake {
                sh: self,
                status: Status::Sync1,
                raise_tracing: false,
            },
        );
        sched.enqueue(hs1, WaitHandshake { sh: self });
        sched.on_close(hs1, move |span| {
            self.obs
                .event(EventKind::PhaseEnd, phase::HANDSHAKE, dur_ns(span));
        });

        // ----- second handshake: card work and the color toggle --------
        // The whole post→ack window is one handshake phase; card work
        // nests inside as its own phase (the old code posted sync2
        // before the window's PhaseBegin, landing mutator acks outside
        // any phase in the event ring).
        let hs2 = sched.add_serial_bucket("handshake-2");
        sched.on_open(hs2, move || {
            self.open_bucket
                .store(bucket::HANDSHAKE_2, Ordering::Release);
            // Chaos kill site 3 of 6.
            if fault::point("collector.phase") {
                panic!("injected collector panic (phase: handshake-2)");
            }
            self.obs.event(EventKind::PhaseBegin, phase::HANDSHAKE, 0);
        });
        sched.enqueue(
            hs2,
            PostHandshake {
                sh: self,
                status: Status::Sync2,
                raise_tracing: false,
            },
        );
        // Overlapped schedules move the card scan (and root marking)
        // out of the handshake windows into the producer buckets of the
        // cards∥roots∥trace group below; the toggle always stays here —
        // it must happen-before the async post, and a handshake bucket
        // is never overlappable (DESIGN.md §4.9).
        let overlap = self.config.overlap_phases;
        match self.config.mode {
            Mode::NonGenerational => {
                sched.enqueue(hs2, ToggleColors { sh: self });
            }
            Mode::Generational(Promotion::Simple) => {
                // Figure 2 order: ClearCards *before* the toggle, so
                // card marks for parents of yellow objects are never
                // lost (§7.1).  Both kinds scan.  (Overlap: the scan
                // runs post-toggle instead and compensates by
                // re-marking cards that reference unpromoted sons.)
                if !overlap {
                    sched.enqueue(
                        hs2,
                        CardScan {
                            sh: self,
                            frame,
                            aging: None,
                            overlap: false,
                        },
                    );
                }
                sched.enqueue(hs2, ToggleColors { sh: self });
            }
            Mode::Generational(Promotion::Aging { threshold }) => {
                // Figure 5 order: toggle first, then scan — the aging
                // scan grays the previous cycle's young survivors,
                // which only carry the clear color after the toggle.
                // Full collections skip the scan entirely (§6).
                sched.enqueue(hs2, ToggleColors { sh: self });
                if !overlap && kind == CycleKind::Partial {
                    sched.enqueue(
                        hs2,
                        CardScan {
                            sh: self,
                            frame,
                            aging: Some(threshold),
                            overlap: false,
                        },
                    );
                }
            }
        }
        sched.enqueue(hs2, WaitHandshake { sh: self });
        sched.on_close(hs2, move |span| {
            self.obs
                .event(EventKind::PhaseEnd, phase::HANDSHAKE, dur_ns(span));
        });

        // ----- third handshake: root marking ---------------------------
        let hs3 = sched.add_serial_bucket("handshake-3");
        sched.on_open(hs3, move || {
            self.open_bucket
                .store(bucket::HANDSHAKE_3, Ordering::Release);
            // Chaos kill site 4 of 6 — after the toggle, before tracing
            // is raised: the abort repaint must be sound here too.
            if fault::point("collector.phase") {
                panic!("injected collector panic (phase: handshake-3)");
            }
            self.obs.event(EventKind::PhaseBegin, phase::HANDSHAKE, 0);
        });
        sched.enqueue(
            hs3,
            PostHandshake {
                sh: self,
                status: Status::Async,
                raise_tracing: true,
            },
        );
        if !overlap {
            sched.enqueue(
                hs3,
                MarkRoots {
                    sh: self,
                    frame,
                    publish: false,
                },
            );
        }
        sched.enqueue(hs3, WaitHandshake { sh: self });
        sched.on_close(hs3, move |span| {
            self.obs
                .event(EventKind::PhaseEnd, phase::HANDSHAKE, dur_ns(span));
        });

        // ----- mark: sequential card/root/trace, or one overlap group --
        // Overlap (DESIGN.md §4.9): cards and roots are parallel
        // *producer* buckets declared overlappable with their successor,
        // so all three open together after the third handshake closes;
        // each producer holds an `in_flight` token on its successor for
        // its whole lifetime, which keeps the §4.4 closing condition
        // from even being consulted until every producer has closed.
        let (cards, roots, trace) = if overlap {
            let cards = sched.add_bucket("cards");
            sched.on_open(cards, move || {
                self.open_bucket.store(bucket::CARDS, Ordering::Release);
            });
            match self.config.mode {
                Mode::NonGenerational => {}
                Mode::Generational(Promotion::Simple) => sched.enqueue(
                    cards,
                    CardScan {
                        sh: self,
                        frame,
                        aging: None,
                        overlap: true,
                    },
                ),
                Mode::Generational(Promotion::Aging { threshold }) => {
                    if kind == CycleKind::Partial {
                        sched.enqueue(
                            cards,
                            CardScan {
                                sh: self,
                                frame,
                                aging: Some(threshold),
                                overlap: true,
                            },
                        );
                    }
                }
            }
            let roots = sched.add_bucket("roots");
            sched.on_open(roots, move || {
                self.open_bucket.store(bucket::ROOTS, Ordering::Release);
            });
            sched.enqueue(
                roots,
                MarkRoots {
                    sh: self,
                    frame,
                    publish: true,
                },
            );
            let trace = self.add_trace_bucket(sched, frame, workers, true);
            sched.overlap_with_next(cards);
            sched.overlap_with_next(roots);
            (Some(cards), Some(roots), trace)
        } else {
            (
                None,
                None,
                self.add_trace_bucket(sched, frame, workers, true),
            )
        };
        let reclaim = self.add_reclaim_bucket(sched, frame, workers, self.config.lazy_sweep, true);

        CycleBuckets {
            finalize,
            init,
            hs1,
            hs2,
            hs3,
            cards,
            roots,
            trace,
            reclaim,
        }
    }

    /// Appends the trace bucket: one [`TraceDrain`] per worker lane,
    /// with the §4.4 termination protocol as the closing condition.
    ///
    /// Soundness of the closing condition (DESIGN.md §4.7): the drained
    /// hook runs only when the bucket's queue is empty and no packet is
    /// in flight — the scheduler's `in_flight` counter plays §4.4's
    /// `active` (a returned packet holds no private work: `trace_drain`
    /// drains its stack and deque before returning).  The hook observes
    /// every mutator epoch even *first*, then re-checks all queues
    /// empty (§4.3 order): a barrier either shows an odd epoch here or
    /// has completed its push, which the later emptiness check sees.
    /// `Close` is re-verified by the scheduler against late enqueues.
    pub(crate) fn add_trace_bucket<'s>(
        &'s self,
        sched: &mut Schedule<'s, CycleCx>,
        frame: &'s CycleFrame,
        workers: usize,
        cycle_events: bool,
    ) -> BucketId {
        let b = sched.add_bucket("trace");
        if cycle_events {
            sched.on_open(b, move || {
                self.open_bucket.store(bucket::TRACE, Ordering::Release);
                // Chaos kill site 5 of 6.
                if fault::point("collector.phase") {
                    panic!("injected collector panic (phase: trace)");
                }
                self.obs.event(EventKind::PhaseBegin, phase::TRACE, 0);
            });
        }
        for lane in 0..workers {
            sched.enqueue(
                b,
                TraceDrain {
                    sh: self,
                    frame,
                    bucket: b,
                    lane,
                    workers,
                },
            );
        }
        sched.on_drained(b, move || {
            // §4.3 order: epochs even observed *before* the emptiness
            // re-check.
            let all_even = self.mutators_all_even();
            let more = frame.deques.iter().any(|d| !d.is_empty())
                || !self.gray.is_empty()
                || !frame.seeds.lock().is_empty();
            if more {
                Drained::Refill(
                    (0..workers)
                        .map(|lane| {
                            Box::new(TraceDrain {
                                sh: self,
                                frame,
                                bucket: b,
                                lane,
                                workers,
                            }) as Box<dyn Packet<'s, CycleCx>>
                        })
                        .collect(),
                )
            } else if !all_even {
                Drained::Wait
            } else {
                Drained::Close
            }
        });
        sched.on_close(b, move |span| {
            if cycle_events {
                self.obs
                    .event(EventKind::PhaseEnd, phase::TRACE, dur_ns(span));
                self.tracing.store(false, Ordering::Release);
            }
            for lane in 0..workers {
                self.obs.note_worker_mark(
                    lane,
                    frame.mark_ns[lane].load(Ordering::Relaxed),
                    frame.steals[lane].load(Ordering::Relaxed),
                );
            }
        });
        b
    }

    /// Appends the reclaim bucket: one [`ReclaimPlan`] packet that
    /// either publishes the lazy epoch, runs the serial sweep kernel,
    /// or fans one [`SweepLane`] per worker into this same bucket.
    pub(crate) fn add_reclaim_bucket<'s>(
        &'s self,
        sched: &mut Schedule<'s, CycleCx>,
        frame: &'s CycleFrame,
        workers: usize,
        lazy: bool,
        cycle_events: bool,
    ) -> BucketId {
        let b = sched.add_bucket("reclaim");
        if cycle_events {
            sched.on_open(b, move || {
                self.open_bucket.store(bucket::RECLAIM, Ordering::Release);
                // Chaos kill site 6 of 6 — before the sweep frees (or the
                // lazy epoch publishes) anything.
                if fault::point("collector.phase") {
                    panic!("injected collector panic (phase: reclaim)");
                }
                self.obs.event(EventKind::PhaseBegin, phase::SWEEP, 0);
            });
        }
        sched.enqueue(
            b,
            ReclaimPlan {
                sh: self,
                frame,
                bucket: b,
                workers,
                lazy,
            },
        );
        sched.on_close(b, move |span| {
            if !lazy && workers > 1 {
                // The lanes are done: report the completed sweep (the
                // serial kernel emits its own final progress event).
                let f = frame.frontier.load(Ordering::Relaxed) as u64;
                self.obs.event(EventKind::SweepProgress, f, f);
            }
            if cycle_events {
                self.obs
                    .event(EventKind::PhaseEnd, phase::SWEEP, dur_ns(span));
            }
        });
        b
    }

    /// Runs a built schedule: inline on the caller at one worker (the
    /// serial path stays free of scope/spawn machinery), otherwise with
    /// `workers − 1` scoped helper threads whose contexts merge back
    /// into `cx` afterwards.
    pub(crate) fn run_schedule(
        &self,
        sched: &Schedule<'_, CycleCx>,
        cx: &mut CycleCx,
        workers: usize,
    ) {
        if workers <= 1 {
            sched.run(cx, &mut []);
            return;
        }
        let mut helpers: Vec<CycleCx> = (1..workers).map(|_| CycleCx::new(self)).collect();
        sched.run(cx, &mut helpers);
        for h in &helpers {
            cx.merge_worker(h);
            debug_assert!(h.mark_stack.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::{Color, ObjShape, ObjectRef};

    fn setup(cfg: GcConfig, threads: usize) -> (GcShared, CycleCx) {
        let sh = GcShared::new(
            cfg.with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_gc_threads(threads),
        );
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, refs: usize) -> ObjectRef {
        let shape = ObjShape::new(refs, 1);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap
            .install_object(c.start as usize, &shape, sh.colors.allocation_color())
    }

    /// Deterministic workload driven identically on twin heaps: rooted
    /// chains, garbage, and (for generational modes) an
    /// inter-generational store with a marked card between cycles.
    fn drive(sh: &GcShared, cx: &mut CycleCx, kinds: &[CycleKind]) -> (u64, u64, u64) {
        let mut traced = 0u64;
        let mut freed = 0u64;
        let mut survived = 0u64;
        let mut promoted: Option<ObjectRef> = None;
        for (round, &kind) in kinds.iter().enumerate() {
            // A rooted chain of 8 and 16 garbage objects per round.
            let head = alloc(sh, 1);
            sh.add_global_root(head);
            let mut prev = head;
            for _ in 0..7 {
                let next = alloc(sh, 1);
                sh.heap.arena().store_ref_slot(prev, 0, next);
                prev = next;
            }
            for _ in 0..16 {
                let _ = alloc(sh, 0);
            }
            // After the first round a promoted object exists: store a
            // fresh young object into it and dirty its card, as the
            // async write barrier would.
            if let Some(parent) = promoted {
                if sh.config.is_generational() && sh.heap.colors().get(parent.granule()).is_object()
                {
                    let young = alloc(sh, 0);
                    sh.heap.arena().store_ref_slot(parent, 0, young);
                    sh.cards.mark_byte(parent.byte());
                }
            }
            if round == 0 {
                promoted = Some(head);
            }
            let stats = sh.run_cycle(kind, cx);
            traced += stats.objects_traced;
            freed += stats.objects_freed;
            survived += stats.objects_survived;
        }
        // Settle any lazy epoch so end states compare against eager.
        sh.lazy_finalize(LazyWho::Collector);
        (traced, freed, survived)
    }

    /// Full end state: every granule's (color, age) up to the frontier,
    /// plus the free-list and used-byte totals.
    fn end_state(sh: &GcShared) -> (Vec<(Color, u8)>, u64, usize) {
        let frontier = sh.heap.frontier_granule();
        let colors = sh.heap.colors();
        let ages = sh.heap.ages();
        let table = (1..frontier)
            .map(|g| (colors.get(g), ages.get(g)))
            .collect();
        (table, sh.heap.free_list_granules(), sh.heap.used_bytes())
    }

    /// Satellite: every mode × sweep-backend plan must produce an end
    /// state identical to the serial DLG sequence, at N=1 and N=4 —
    /// and the overlapped schedule (DESIGN.md §4.9) must reach the
    /// same end state as the sequential one at both worker counts.
    fn assert_plan_parity(make: fn() -> GcConfig, kinds: &[CycleKind]) {
        for lazy in [false, true] {
            let run = |threads: usize, overlap: bool| {
                let (sh, mut cx) = setup(
                    make().with_lazy_sweep(lazy).with_overlap_phases(overlap),
                    threads,
                );
                let counts = drive(&sh, &mut cx, kinds);
                (end_state(&sh), counts)
            };
            let (state1, counts1) = run(1, false);
            let (state4, counts4) = run(4, false);
            let label = make().with_lazy_sweep(lazy).plan_name();
            assert_eq!(state1, state4, "end-state mismatch for plan {label}");
            // Trace totals are deterministic in both backends; freed /
            // survived totals are per-cycle identical only for eager
            // (lazy defers reclamation counters by an epoch).
            assert_eq!(counts1.0, counts4.0, "traced mismatch for plan {label}");
            if !lazy {
                assert_eq!(counts1, counts4, "counter mismatch for plan {label}");
            }
            for threads in [1, 4] {
                let (state_o, counts_o) = run(threads, true);
                assert_eq!(
                    state1, state_o,
                    "overlap end-state mismatch for plan {label} at N={threads}"
                );
                assert_eq!(
                    counts1.0, counts_o.0,
                    "overlap traced mismatch for plan {label} at N={threads}"
                );
                if !lazy {
                    assert_eq!(
                        counts1, counts_o,
                        "overlap counter mismatch for plan {label} at N={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn generational_plans_match_across_worker_counts() {
        assert_plan_parity(
            GcConfig::generational,
            &[CycleKind::Partial, CycleKind::Partial, CycleKind::Full],
        );
    }

    #[test]
    fn non_generational_plans_match_across_worker_counts() {
        assert_plan_parity(
            GcConfig::non_generational,
            &[CycleKind::Full, CycleKind::Full],
        );
    }

    #[test]
    fn aging_plans_match_across_worker_counts() {
        assert_plan_parity(
            || GcConfig::aging(3),
            &[CycleKind::Partial, CycleKind::Partial, CycleKind::Full],
        );
    }

    #[test]
    fn cycle_schedule_has_declared_bucket_order() {
        // The plan's bucket handles come back in Figure 2/5 order, and
        // (lazy plans) the finalize bucket exists and precedes init.
        let (sh, _cx) = setup(GcConfig::generational().with_lazy_sweep(true), 1);
        let frame = CycleFrame::new(1);
        let mut sched = Schedule::new();
        let b = sh.build_cycle_schedule(&mut sched, CycleKind::Full, &frame, 1);
        let order = [
            b.finalize.expect("lazy plan has a finalize bucket"),
            b.init,
            b.hs1,
            b.hs2,
            b.hs3,
            b.trace,
            b.reclaim,
        ];
        for w in order.windows(2) {
            assert!(w[0] != w[1]);
        }
        // The sequential schedule has no producer buckets.
        assert!(b.cards.is_none() && b.roots.is_none());
    }

    #[test]
    fn overlap_schedule_declares_producer_buckets_before_trace() {
        let (sh, _cx) = setup(GcConfig::generational().with_overlap_phases(true), 1);
        let frame = CycleFrame::new(1);
        let mut sched = Schedule::new();
        let b = sh.build_cycle_schedule(&mut sched, CycleKind::Partial, &frame, 1);
        let cards = b.cards.expect("overlap plan has a cards bucket");
        let roots = b.roots.expect("overlap plan has a roots bucket");
        let order = [
            b.init, b.hs1, b.hs2, b.hs3, cards, roots, b.trace, b.reclaim,
        ];
        for w in order.windows(2) {
            assert!(w[0] != w[1]);
        }
        assert_eq!(sched.bucket_name(cards), "cards");
        assert_eq!(sched.bucket_name(roots), "roots");
    }
}
