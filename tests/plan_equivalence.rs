//! Plan/packet equivalence through the public API: every
//! (mode × sweep-backend) plan must produce an identical end state
//! whether the packet schedule runs on one worker (byte-for-byte the
//! verified DLG sequence) or on four (DESIGN.md §4.7), and whether the
//! card-scan/root-mark/trace phases run serially or as one overlap
//! group (`GcConfig::overlap_phases`, DESIGN.md §4.9) — at both worker
//! counts.  Overlap off is the default, so the N=1/N=4 arms also pin
//! that this PR's schedule is byte-for-byte the previous one.
//!
//! The driver is deterministic: a single mutator builds the same object
//! graph, parks for every collection (so handshakes are proxied and no
//! allocation races the cycle), and the heap never grows past its
//! initial commitment — so any divergence between worker counts is a
//! scheduler bug, not workload noise.  The kind-level matrix (partial
//! vs full per plan) is covered by the `plan` unit tests in
//! `crates/core`; here full blocking cycles exercise the whole stack:
//! collector thread, schedule, packets, and the real handshake path.

use otf_gengc::gc::{Gc, GcConfig, Mutator};
use otf_gengc::heap::{Color, ObjShape, ObjectRef};
use otf_gengc::support::fault::{self, FaultPlan, FaultRule};

fn tiny(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(8 << 20).with_initial_heap(2 << 20)
}

/// Builds a linked list of `n` nodes and roots the head on the shadow
/// stack; returns the head.
fn build_list(m: &mut Mutator, n: usize, seed: u64) -> ObjectRef {
    let node = ObjShape::new(1, 1);
    let head = m.alloc(&node).unwrap();
    m.write_data(head, 0, seed);
    let root = m.root_push(head);
    let mut tail = head;
    for i in 1..n {
        let next = m.alloc(&node).unwrap();
        m.write_data(next, 0, seed + i as u64);
        m.write_ref(tail, 0, next);
        tail = next;
    }
    let head = m.root_get(root);
    m.root_pop();
    head
}

/// Everything we compare across worker counts: the settled heap totals,
/// the keeper list's per-node (color, age), and the per-cycle trace /
/// reclamation counters.
#[derive(Debug, PartialEq, Eq)]
struct EndState {
    used_bytes: usize,
    free_granules: u64,
    keeper: Vec<(Color, u8)>,
    traced: Vec<u64>,
    freed: Option<Vec<(u64, u64)>>,
}

fn run_plan(cfg: GcConfig, threads: usize) -> EndState {
    let gc = Gc::new(tiny(cfg).with_gc_threads(threads));
    let mut m = gc.mutator();

    // A long-lived list that must survive (and promote through) every
    // cycle, plus fresh garbage before each collection.
    let keeper = build_list(&mut m, 200, 7_000);
    let kroot = m.root_push(keeper);
    for round in 0..3u64 {
        for g in 0..8u64 {
            let _ = build_list(&mut m, 50, round * 1_000 + g * 100);
        }
        m.parked(|| gc.collect_full_blocking());
    }
    assert_eq!(m.root_get(kroot), keeper);

    // Settle the lazy backend (verify_heap finalizes any open sweep
    // epoch first) and require a clean heap in every cell.
    let violations = gc.verify_heap();
    assert!(violations.is_empty(), "heap violations: {violations:?}");

    let mut colors = Vec::new();
    let mut cur = keeper;
    while !cur.is_null() {
        colors.push((gc.debug_color_of(cur), gc.debug_age_of(cur)));
        cur = m.read_ref(cur, 0);
    }

    let stats = gc.stats();
    let traced = stats.cycles.iter().map(|c| c.objects_traced).collect();
    // Reclamation counters are per-cycle identical only for the eager
    // backend; the lazy backend defers them by an epoch and the tail
    // folds into the finalize outside any cycle.
    let freed = if gc.config().lazy_sweep {
        None
    } else {
        Some(
            stats
                .cycles
                .iter()
                .map(|c| (c.objects_freed, c.bytes_freed))
                .collect(),
        )
    };

    drop(m);
    EndState {
        used_bytes: gc.used_bytes(),
        free_granules: gc.free_granules(),
        keeper: colors,
        traced,
        freed,
    }
}

fn assert_plan_parity(cfg: fn() -> GcConfig) {
    for lazy in [false, true] {
        // Both dimensions pinned explicitly so the comparison keeps its
        // meaning under the CI env cells (`OTF_GC_LAZY_SWEEP`,
        // `OTF_GC_OVERLAP`) that rerun this suite.
        let make = || cfg().with_lazy_sweep(lazy).with_overlap_phases(false);
        let one = run_plan(make(), 1);
        let four = run_plan(make(), 4);
        assert_eq!(
            one,
            four,
            "plan {} diverges between 1 and 4 workers",
            make().plan_name()
        );
        // Overlap arm: running cards/roots/trace as one producer/
        // consumer group must reach the same colors, ages, totals and
        // per-cycle counters as the serial schedule — the group only
        // reorders *when* grays are published, never *which* objects
        // end up gray (DESIGN.md §4.9).
        for threads in [1, 4] {
            let overlapped = run_plan(make().with_overlap_phases(true), threads);
            assert_eq!(
                one,
                overlapped,
                "plan {} overlap-on diverges from overlap-off at {threads} worker(s)",
                make().plan_name()
            );
        }
    }
}

/// The overlap dimension is opt-in: every stock plan constructor leaves
/// it off, so the default schedule stays the verified serial order.
#[test]
fn stock_plans_default_overlap_off() {
    if std::env::var_os("OTF_GC_OVERLAP").is_some() {
        // The CI overlap cell overrides the default on purpose; the
        // default-off pin only means something in a clean environment.
        return;
    }
    assert!(!GcConfig::generational().overlap_phases);
    assert!(!GcConfig::non_generational().overlap_phases);
    assert!(!GcConfig::aging(3).overlap_phases);
}

#[test]
fn generational_plans_match_across_worker_counts() {
    assert_plan_parity(GcConfig::generational);
}

#[test]
fn non_generational_plans_match_across_worker_counts() {
    assert_plan_parity(GcConfig::non_generational);
}

#[test]
fn aging_plans_match_across_worker_counts() {
    assert_plan_parity(|| GcConfig::aging(3));
}

/// Termination with producers (DESIGN.md §4.9): the overlapped trace
/// must not close while the card-scan bucket is still open.  A seeded
/// delay holds the card packet — the only thing keeping an old→young
/// pointer's target alive — while four trace workers run completely
/// dry; if the §4.4 termination check ignored the open producer, the
/// young object would be swept and the black parent left dangling.
#[test]
fn trace_waits_for_delayed_card_packet() {
    let _serial = fault::exclusive();
    fault::install(
        FaultPlan::new(0xCA2D).rule(FaultRule::at("collector.card_scan").delaying(1.0, 20_000)),
    );

    let gc = Gc::new(
        tiny(GcConfig::generational())
            .with_young_size(64 << 10)
            .with_gc_threads(4)
            .with_overlap_phases(true),
    );
    let mut m = gc.mutator();
    let node = ObjShape::new(1, 1);

    // Promote `old` by keeping it alive across one full collection.
    let old = m.alloc(&node).unwrap();
    m.write_data(old, 0, 7);
    m.root_push(old);
    m.parked(|| gc.collect_full_blocking());
    assert_eq!(gc.debug_color_of(old), Color::Black);

    // An old→young pointer with no stack root: the dirty card is the
    // only reason `young` survives the next partial cycle.
    let young = m.alloc(&node).unwrap();
    m.write_data(young, 0, 99);
    m.write_ref(old, 0, young);

    // Force partial collections by allocating past the young budget;
    // `stats().cycles` records only completed cycles, so polling it
    // also waits for the sweep.
    let filler = ObjShape::new(0, 6);
    let before = gc.stats().cycles.len();
    while gc.stats().cycles.len() == before {
        for _ in 0..1000 {
            let _ = m.alloc(&filler).unwrap();
        }
        m.cooperate();
    }

    let y = m.read_ref(old, 0);
    assert_eq!(y, young);
    assert_eq!(
        m.read_data(y, 0),
        99,
        "young object lost: trace terminated past an open card-scan producer"
    );
    let violations = gc.verify_heap();
    assert!(violations.is_empty(), "heap violations: {violations:?}");

    drop(m);
    gc.shutdown();
    let log = fault::uninstall();
    assert!(
        log.iter().any(|e| e.point == "collector.card_scan"),
        "the delay plan never held the card packet — test exercised nothing"
    );
}
