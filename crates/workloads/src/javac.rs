//! `_213_javac` (paper §8.2, SPECjvm98) — the biggest generational win
//! among the SPEC benchmarks (+17.2% multiprocessor, Figure 9).
//!
//! The Java compiler: a large, stable in-memory representation of the
//! loaded class library, per-compilation-unit abstract syntax trees
//! (medium-lived — each survives a few units), and a growing symbol table
//! whose old chunks keep receiving references to freshly interned young
//! symbols.
//!
//! Generational signature reproduced (Figures 10–12): the most GC-bound
//! SPEC benchmark (43.3% of time in GC without generations, 23.8% with);
//! full collections trace a *large* live set (Figure 11: 213k objects vs
//! 53k for partials — our class library plays that role), partial
//! collections skip it entirely; thousands of inter-generational pointers
//! per partial (16 184 in Figure 11) from symbol interning and member
//! resolution into old structures; and partials stay productive (68.7% of
//! young objects freed).

use otf_gc::{Mutator, ObjectRef};

use crate::toolkit::{alloc_array, alloc_data, alloc_node, mix, pick, rng_for};
use crate::Workload;

/// Symbols interned per symbol-table chunk.
const SYMTAB_CHUNK: usize = 256;
/// Class-library nodes per spine chunk.
const LIB_CHUNK: usize = 1024;

/// The javac workload.
#[derive(Clone, Debug)]
pub struct Javac {
    /// Compilation units per batch.
    pub units_per_batch: usize,
    /// Batches (symbol table and retained ASTs are dropped between
    /// batches, so tenured data dies and full collections reclaim it).
    pub batches: usize,
    /// AST nodes per compilation unit (fully connected tree).
    pub ast_nodes: usize,
    /// Units whose ASTs are kept alive simultaneously (medium lifetime).
    pub live_units: usize,
    /// Symbols interned per unit (live until the end of the batch).
    pub symbols_per_unit: usize,
    /// Nodes in the loaded class library (large stable live set — full
    /// collections must trace it, partials never do).
    pub library_nodes: usize,
    /// Member-resolution writes into the (old) class library per unit —
    /// each stores a fresh symbol reference into an old object, creating
    /// inter-generational pointers.
    pub resolutions_per_unit: usize,
}

impl Javac {
    /// The default configuration.
    pub fn new() -> Javac {
        Javac {
            units_per_batch: 300,
            batches: 4,
            ast_nodes: 2000,
            live_units: 6,
            symbols_per_unit: 60,
            library_nodes: 120_000,
            resolutions_per_unit: 60,
        }
    }

    /// Scales the amount of work.
    pub fn scaled(mut self, scale: f64) -> Javac {
        self.units_per_batch =
            ((self.units_per_batch as f64 * scale) as usize).max(self.live_units + 1);
        self
    }
}

impl Default for Javac {
    fn default() -> Self {
        Javac::new()
    }
}

impl Workload for Javac {
    fn name(&self) -> &'static str {
        "_213_javac"
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);
        let mut checksum = 0u64;

        // ---- load the class library: a large stable object graph -------
        let n_lib_chunks = self.library_nodes.div_ceil(LIB_CHUNK);
        let library: ObjectRef = alloc_array(m, n_lib_chunks);
        m.root_push(library);
        for c in 0..n_lib_chunks {
            let chunk = alloc_array(m, LIB_CHUNK);
            m.write_ref(library, c, chunk);
            for i in 0..LIB_CHUNK.min(self.library_nodes - c * LIB_CHUNK) {
                // A class-info node: one slot for a resolved member
                // symbol, one data word of metadata.
                let node = alloc_node(m, 1, 1);
                m.write_data(node, 0, (c * LIB_CHUNK + i) as u64);
                m.write_ref(chunk, i, node);
            }
            m.cooperate();
        }

        for batch in 0..self.batches {
            // The symbol table spine grows over the batch; chunks get old
            // while fresh symbols keep being interned into them.
            let max_chunks =
                (self.units_per_batch * self.symbols_per_unit).div_ceil(SYMTAB_CHUNK) + 1;
            let symtab: ObjectRef = alloc_array(m, max_chunks);
            m.root_push(symtab);
            let mut interned = 0usize;

            // Ring of retained ASTs (medium lifetime).
            let ast_ring: ObjectRef = alloc_array(m, self.live_units);
            m.root_push(ast_ring);

            for unit in 0..self.units_per_batch {
                // ---- parse: build this unit's AST as a *connected*
                // 4-ary tree; a node array keeps every node addressable
                // (and reachable) while the tree is live.
                let nodes: ObjectRef = alloc_array(m, self.ast_nodes);
                m.root_push(nodes);
                for n in 0..self.ast_nodes {
                    let node = alloc_node(m, 4, 1);
                    m.write_data(node, 0, mix(n as u64, 96));
                    m.write_ref(nodes, n, node);
                    if n > 0 {
                        let parent = m.read_ref(nodes, (n - 1) / 4);
                        m.write_ref(parent, (n - 1) % 4, node);
                    }
                }

                // ---- resolve: intern symbols into the old symbol table
                for s in 0..self.symbols_per_unit {
                    let chunk_idx = (interned + s) / SYMTAB_CHUNK;
                    let mut chunk = m.read_ref(symtab, chunk_idx);
                    if chunk.is_null() {
                        chunk = alloc_array(m, SYMTAB_CHUNK);
                        m.write_ref(symtab, chunk_idx, chunk);
                    }
                    let sym = alloc_data(m, 3);
                    m.write_data(sym, 0, (interned + s) as u64);
                    m.write_ref(chunk, (interned + s) % SYMTAB_CHUNK, sym);
                }
                interned += self.symbols_per_unit;

                // ---- member resolution: store fresh symbols into old
                // class-library nodes (inter-generational pointers).
                for r in 0..self.resolutions_per_unit {
                    let sym = alloc_data(m, 2);
                    m.write_data(sym, 0, mix((unit * 131 + r) as u64, 8));
                    let c = pick(&mut rng, n_lib_chunks);
                    let chunk = m.read_ref(library, c);
                    let node = m.read_ref(chunk, pick(&mut rng, LIB_CHUNK));
                    if !node.is_null() {
                        m.write_ref(node, 0, sym);
                    }
                }

                // ---- code generation: walk the tree, emit temporaries --
                let mut cursor = m.read_ref(nodes, 0);
                for _ in 0..64 {
                    let _temp = alloc_data(m, 2);
                    let next = m.read_ref(cursor, pick(&mut rng, 4));
                    if next.is_null() {
                        checksum = checksum.wrapping_add(m.read_data(cursor, 0));
                        cursor = m.read_ref(nodes, 0);
                    } else {
                        cursor = next;
                    }
                }

                // Keep this AST alive for `live_units` units.
                m.write_ref(ast_ring, unit % self.live_units, nodes);
                m.root_pop();
                m.cooperate();
            }

            // Batch done: drop the symbol table and ASTs (tenured by now;
            // only full collections reclaim them — Figure 12's 44.7%
            // freed in fulls).
            m.root_pop();
            m.root_pop();
            checksum = checksum.wrapping_add(batch as u64);
        }
        std::hint::black_box(checksum);
        m.root_pop();
    }
}
