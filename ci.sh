#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md).
#
# The workspace has zero external crates, so everything runs --offline
# against an empty cargo registry.  The build is warning-free; -D warnings
# keeps it that way.
set -eux

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Smoke-run the side-table kernel microbench (tiny iteration budget):
# catches kernel regressions and keeps BENCH_kernels.json reproducible.
# OTF_BENCH_OUT diverts the JSON so a CI run never dirties the tree.
OTF_BENCH_QUICK=1 OTF_BENCH_OUT=target/BENCH_kernels_ci.json \
    ./target/release/bench_kernels --quick

# Smoke-run the pause-time benchmark.  The binary itself exits non-zero
# on non-monotone pause quantiles or if the per-phase durations fail to
# sum to within 5% of cycle wall time (the packet scheduler's bucket
# spans telescope the whole cycle — a ratio outside that band means a
# phase got double-sampled, unattributed, or billed to two slots); the
# greps catch a malformed JSON emitter and pin the phase-sum verdict.
OTF_BENCH_QUICK=1 OTF_BENCH_OUT=target/BENCH_pauses_ci.json \
    ./target/release/bench_pauses --quick
grep -q '"bench": "pauses"' target/BENCH_pauses_ci.json
grep -q '"workload": "db"' target/BENCH_pauses_ci.json
grep -q '"phase_sum_ok": true' target/BENCH_pauses_ci.json

# Smoke-run the parallel back-end benchmark (work-stealing mark +
# page-partitioned sweep).  The binary exits non-zero on any heap
# violation across the workload × config × gc_threads matrix or if a
# scaling gate fails; the greps additionally pin the gate verdicts in
# the emitted JSON.
OTF_BENCH_QUICK=1 OTF_BENCH_OUT=target/BENCH_parallel_ci.json \
    ./target/release/bench_parallel --quick
grep -q '"bench": "parallel"' target/BENCH_parallel_ci.json
grep -q '"n1_parity": true' target/BENCH_parallel_ci.json
grep -q '"p999_ok": true' target/BENCH_parallel_ci.json
grep -q '"overlap_parity_ok": true' target/BENCH_parallel_ci.json
grep -q '"overlap_gate_ok": true' target/BENCH_parallel_ci.json
grep -q '"overlap_reduction_db_gen_n4"' target/BENCH_parallel_ci.json

# Smoke-run the allocator scalability benchmark (sharded block-store
# back-end vs the single free list at 1/4/16 mutator threads).  The
# binary exits non-zero on any heap violation or if a gate fails; the
# greps pin the verdicts: sharded N=1 throughput parity with the
# unsharded oracle, and no allocation-stall regression from sharding.
OTF_BENCH_QUICK=1 OTF_BENCH_OUT=target/BENCH_scale_ci.json \
    ./target/release/bench_scale --quick
grep -q '"bench": "scale"' target/BENCH_scale_ci.json
grep -q '"n1_parity": true' target/BENCH_scale_ci.json
grep -q '"alloc_stall_ok": true' target/BENCH_scale_ci.json

# Smoke-run the lazy-sweep benchmark (mutators sweep-to-allocate,
# collector goes mark-only).  The binary exits non-zero on any heap
# violation across the workload × config × sweep-mode matrix or if a
# gate fails; the greps pin the verdicts: db/gen cycle-time reduction,
# end-state parity between sweep modes, and the allocation-stall
# p99.99 envelope.
OTF_BENCH_QUICK=1 OTF_BENCH_OUT=target/BENCH_lazy_ci.json \
    ./target/release/bench_lazy --quick
grep -q '"bench": "lazy"' target/BENCH_lazy_ci.json
grep -q '"cycle_gate_ok": true' target/BENCH_lazy_ci.json
grep -q '"parity_ok": true' target/BENCH_lazy_ci.json
grep -q '"stall_ok": true' target/BENCH_lazy_ci.json
grep -q '"refill_ok": true' target/BENCH_lazy_ci.json

# The full integration suites again with four GC workers: every
# collector-driven test (correctness, chaos, observability) must hold
# when the packet schedule fans out across the work-stealing pool, not
# just on the serial one-worker drain.
OTF_GC_THREADS=4 cargo test -q --offline --test chaos --test gc_correctness

# And again with the sharded heap back-end: the GC protocol must be
# oblivious to the allocator substrate.
OTF_GC_SHARDS=4 cargo test -q --offline --test chaos --test gc_correctness

# And with the lazy sweep forced on: the chaos and correctness suites
# must hold when every configuration sweeps at allocation time, both
# alone and combined with the sharded heap and parallel mark — the
# combined cell drives every packet the plans can select (parallel
# trace lanes, lazy finalize + publish, sharded free-lists) through the
# packet scheduler at once.
OTF_GC_LAZY_SWEEP=1 cargo test -q --offline --test chaos --test gc_correctness
OTF_GC_LAZY_SWEEP=1 OTF_GC_SHARDS=4 OTF_GC_THREADS=4 \
    cargo test -q --offline --test chaos --test gc_correctness

# And with collector restarts armed (supervision, DESIGN.md §4.8) on
# top of the full combined cell: every suite must hold when any
# injected collector panic is answered by a safe cycle abort and a
# respawn instead of permanent poison.  plan_equivalence rides along so
# the eager/lazy plan-shape pin also holds under the supervisor.
# Tests that pin the terminal poison path set max_collector_restarts(0)
# explicitly, so the env default does not change their meaning.
OTF_GC_MAX_RESTARTS=3 OTF_GC_LAZY_SWEEP=1 OTF_GC_SHARDS=4 OTF_GC_THREADS=4 \
    cargo test -q --offline --test chaos --test gc_correctness --test plan_equivalence

# And with the overlapped cards∥roots∥trace group (DESIGN.md §4.9)
# stacked on the parallel+lazy+sharded cell: the suites must hold when
# the gray producers run concurrently with the trace lanes and the
# termination check extends over open producer buckets.  Note the
# plan-equivalence overlap arms run *both* schedules regardless — this
# cell additionally forces every other collector in those suites
# (correctness graphs, chaos storms) onto the overlapped schedule.
OTF_GC_OVERLAP=1 OTF_GC_THREADS=4 OTF_GC_LAZY_SWEEP=1 OTF_GC_SHARDS=4 \
    cargo test -q --offline --test chaos --test gc_correctness --test plan_equivalence

# Chaos smoke: the fixed-seed fault-injection matrix (debug build — the
# debug_asserts on the hardened failure paths must hold too).  The binary
# exits non-zero on a hang, a heap violation after any schedule, a
# non-reproducible injection sequence, or uncontained collector death.
cargo build --offline -p otf-bench --bin stress_chaos
./target/debug/stress_chaos --quick --seed 42

# The chaos matrix once more with sharding enabled: `heap.alloc_chunk`
# faults fire before the backend dispatch, so an injected allocation
# failure still simulates whole-heap exhaustion on the sharded path.
OTF_GC_SHARDS=4 ./target/debug/stress_chaos --quick --seed 42
