//! End-to-end tests for the pause-time observability pipeline: every
//! `cooperate()` that adopts a handshake during a collection must land in
//! the handshake/pause histograms, the trace ring must tell a coherent
//! story (cycles begin and end, handshakes are posted and acked), and
//! `Gc::shutdown` must return statistics that include the final cycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use otf_gengc::gc::{phase, EventKind, Gc, GcConfig};

fn tiny(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(4 << 20)
        .with_initial_heap(1 << 20)
        .with_young_size(64 << 10)
}

/// Runs `cycles` blocking full collections while one mutator thread does
/// nothing but `cooperate()` — so every handshake of every cycle is
/// answered by a live (never parked, never allocating) mutator — and
/// returns the Gc for inspection.
fn run_cooperating_cycles(cfg: GcConfig, cycles: usize) -> Gc {
    let gc = Gc::new(tiny(cfg));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut m = gc.mutator();
        let stop = &stop;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                m.cooperate();
                std::hint::spin_loop();
            }
        });
        for _ in 0..cycles {
            gc.collect_full_blocking();
        }
        stop.store(true, Ordering::Relaxed);
    });
    gc
}

#[test]
fn every_cooperate_during_a_cycle_lands_in_the_histograms() {
    let gc = run_cooperating_cycles(GcConfig::generational(), 2);
    let stats = gc.stats();

    // Each full cycle posts three handshakes (Sync1, Sync2, Async) and the
    // cooperating mutator acks each one exactly once.
    assert!(
        stats.handshake.count() >= 6,
        "expected >= 6 handshake acks for 2 full cycles, got {}",
        stats.handshake.count()
    );
    // Every ack is also a recorded mutator pause.
    assert!(
        stats.pause.count() >= 6,
        "expected >= 6 pauses, got {}",
        stats.pause.count()
    );
    assert!(stats.max_pause() > Duration::ZERO);
    assert_eq!(stats.pause_quantile(1.0), stats.max_pause());

    // Quantiles must be monotone in q, and the handshake histogram's
    // latencies are real (post -> adoption takes nonzero time).
    let qs = [0.5, 0.9, 0.99, 0.999, 1.0];
    for w in qs.windows(2) {
        assert!(
            stats.pause_quantile(w[0]) <= stats.pause_quantile(w[1]),
            "pause quantiles not monotone at q={} vs q={}",
            w[0],
            w[1]
        );
        assert!(
            stats.handshake_quantile(w[0]) <= stats.handshake_quantile(w[1]),
            "handshake quantiles not monotone at q={} vs q={}",
            w[0],
            w[1]
        );
    }
    assert!(stats.handshake_quantile(1.0) > Duration::ZERO);
}

#[test]
fn trace_ring_records_a_coherent_cycle_story() {
    let gc = run_cooperating_cycles(GcConfig::generational().with_event_trace(true), 2);
    assert!(gc.tracing_enabled());

    let events = gc.events();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();

    assert!(count(EventKind::CycleBegin) >= 2, "events: {events:?}");
    assert!(count(EventKind::CycleEnd) >= 2);
    // 3 handshakes per full cycle, each posted once and acked by the one
    // cooperating mutator.
    assert!(count(EventKind::HandshakePost) >= 6);
    assert!(count(EventKind::HandshakeAck) >= 6);
    // Begin/end pairing and timestamps are sane.
    assert_eq!(count(EventKind::PhaseBegin), count(EventKind::PhaseEnd));
    for w in events.windows(2) {
        assert!(w[0].t_ns <= w[1].t_ns, "events out of order: {w:?}");
    }

    // The JSONL form is one object per line with the documented keys.
    let mut buf = Vec::new();
    gc.write_events_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), events.len());
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(
            line.contains("\"t_ns\":") && line.contains("\"ev\":"),
            "{line}"
        );
    }
}

#[test]
fn handshake_posts_and_nested_work_land_inside_handshake_windows() {
    // Every handshake is posted inside an open HANDSHAKE phase window
    // (the old cycle posted sync2 *before* emitting the window's
    // PhaseBegin, landing the post — and the acks — outside any phase),
    // and the card scan and root marking nest inside those windows as
    // their own phases.
    let gc = run_cooperating_cycles(GcConfig::generational().with_event_trace(true), 2);
    let events = gc.events();

    let mut depth = 0i64;
    let mut posts = 0;
    let mut nested_cards = 0;
    let mut nested_roots = 0;
    for e in &events {
        match e.kind {
            EventKind::PhaseBegin if e.a == phase::HANDSHAKE => depth += 1,
            EventKind::PhaseEnd if e.a == phase::HANDSHAKE => depth -= 1,
            EventKind::HandshakePost => {
                posts += 1;
                assert!(
                    depth > 0,
                    "handshake posted outside any handshake phase window: {e:?}"
                );
            }
            EventKind::PhaseBegin if e.a == phase::CARDS => {
                assert!(depth > 0, "card scan outside its handshake window: {e:?}");
                nested_cards += 1;
            }
            EventKind::PhaseBegin if e.a == phase::ROOTS => {
                assert!(
                    depth > 0,
                    "root marking outside its handshake window: {e:?}"
                );
                nested_roots += 1;
            }
            _ => {}
        }
        assert!(depth >= 0, "handshake window closed twice: {e:?}");
    }
    // Three posts per full cycle; one card scan and one root-marking
    // pass per cycle in the simple generational mode.
    assert!(posts >= 6, "expected >= 6 posts over 2 cycles, got {posts}");
    assert!(nested_cards >= 2, "expected a card scan per cycle");
    assert!(nested_roots >= 2, "expected root marking per cycle");
}

#[test]
fn tracing_is_off_by_default_and_histograms_still_work() {
    let gc = run_cooperating_cycles(GcConfig::generational(), 1);
    assert!(!gc.tracing_enabled());
    assert!(gc.events().is_empty());
    assert!(gc.stats().handshake.count() >= 3);
}

#[test]
fn shutdown_returns_stats_including_the_final_cycle() {
    let gc = run_cooperating_cycles(GcConfig::non_generational(), 2);
    let live = gc.stats();
    let final_stats = gc.shutdown();

    assert!(final_stats.cycles.len() >= 2);
    // Shutdown snapshots after the collector joins, so nothing recorded
    // before the live snapshot can be missing from the final one.
    assert!(final_stats.cycles.len() >= live.cycles.len());
    assert!(final_stats.pause.count() >= live.pause.count());
    assert!(final_stats.max_pause() >= live.max_pause());
}
