//! # otf-gengc — umbrella crate
//!
//! A from-scratch Rust reproduction of *"A Generational On-the-fly Garbage
//! Collector for Java"* (Domani, Kolodner & Petrank, PLDI 2000).
//!
//! This crate simply re-exports the workspace members:
//!
//! * [`heap`] — the non-moving heap substrate (arena, free lists, LABs,
//!   color/card/age side tables, page-touch accounting);
//! * [`gc`] — the collector itself: the DLG on-the-fly mark-sweep collector
//!   and the paper's generational extensions (simple promotion, yellow
//!   color, color toggle, aging);
//! * [`workloads`] — synthetic re-creations of the paper's benchmarks
//!   (SPECjvm-like programs, Anagram, the multithreaded Ray Tracer);
//! * [`support`] — dependency-free utilities, including the
//!   [`support::fault`] deterministic fault-injection registry the chaos
//!   harness drives.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use otf_gengc::gc::{Gc, GcConfig};
//! use otf_gengc::heap::ObjShape;
//!
//! let gc = Gc::new(GcConfig::generational());
//! let mut m = gc.mutator();
//! let node = ObjShape::new(1, 2);
//! let head = m.alloc(&node).unwrap();
//! m.root_push(head);
//! let next = m.alloc(&node).unwrap();
//! m.write_ref(head, 0, next); // goes through the DLG write barrier
//! m.root_pop();
//! drop(m);
//! gc.shutdown();
//! ```

pub use otf_gc as gc;
pub use otf_heap as heap;
pub use otf_support as support;
pub use otf_workloads as workloads;
