//! Parallel collector back-end benchmark: cycle time and mutator pauses
//! as the GC worker count scales.
//!
//! Runs db and mtrt under the generational and non-generational
//! collectors at `gc_threads` ∈ {1, 2, 4} (work-stealing mark +
//! page-partitioned sweep, DESIGN.md §4.4), verifying the heap after
//! every run.  The generational collector additionally runs an overlap
//! A/B arm (`GcConfig::overlap_phases`, DESIGN.md §4.9): card scan,
//! root marking and the trace drain as one producer/consumer overlap
//! group vs the serial PR-9 bucket order.  Reported per row: median
//! wall time, mean full-cycle time, pause p99 / p99.9 / max, total
//! steals, and heap violations.
//!
//! Gates, all with deliberately generous slack because this harness
//! must pass on a single-core container (where extra workers cannot
//! speed anything up and only add scheduling noise):
//!
//! * **N=1 parity** — with one worker the collector takes the exact
//!   serial code path (the verified-default DLG configuration), so its
//!   mean cycle time must track the default-config baseline.
//! * **p99.9 non-worsening** — parallel workers must not wreck mutator
//!   latency: p99.9 pause at N>1 stays within a generous envelope of the
//!   N=1 value.
//! * **overlap end-state parity** — at N=1 the overlap-on run must
//!   settle the same heap as overlap-off (used bytes within 1%,
//!   rep-by-rep).  The byte-for-byte pin lives in
//!   `tests/plan_equivalence.rs`, where the driver is deterministic;
//!   here real racing mutators make exact byte equality meaningless, so
//!   the bench checks the settled footprint instead.
//! * **overlap speedup** — with real parallelism available (≥ 2 cores),
//!   overlap-on db/gen mean cycle time at N ∈ {2, 4} must be ≤ 0.85x
//!   the overlap-off figure for the same N: hiding the card-scan and
//!   root-mark latency inside the trace is the entire point of the
//!   overlap group.  On fewer cores the ratio is *recorded*
//!   (`overlap_reduction_db_gen_n4`) but not gated — one core cannot
//!   overlap anything, the honest expectation there is ~1.0x.
//!
//! The N=4 cycle-time speedup is likewise *recorded* (with the
//! machine's available parallelism) but never gated.
//!
//! Emits `BENCH_parallel.json` (override with `OTF_BENCH_OUT`); exits
//! non-zero on heap violations or a gate failure.  Accepts the standard
//! figure-harness flags (`--scale`, `--reps`, `--seed`, `--quick`).

use std::time::Duration;

use otf_bench::measure::{pinned, Options};
use otf_bench::table::Table;
use otf_gc::GcConfig;
use otf_support::hist::Snapshot;
use otf_workloads::driver;
use otf_workloads::{Db, RayTracer, Workload};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Merged measurement of one workload × config × worker-count cell.
struct ParallelResult {
    workload: &'static str,
    config: &'static str,
    n: usize,
    /// Phase-overlap arm (`GcConfig::overlap_phases`).
    overlap: bool,
    /// Median elapsed wall time across reps.
    elapsed: Duration,
    /// Total cycles across reps.
    cycles: usize,
    /// Mean cycle duration across every cycle of every rep, in ms.
    cycle_avg_ms: f64,
    /// Settled heap footprint per rep, for the overlap parity gate.
    used_final: Vec<usize>,
    pause: Snapshot,
    steals: u64,
    violations: usize,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    workload: &'static str,
    w: &dyn Workload,
    cfg: GcConfig,
    config: &'static str,
    n: usize,
    overlap: bool,
    o: &Options,
) -> ParallelResult {
    let mut pause = Snapshot::default();
    let mut cycles = 0usize;
    let mut cycle_ns = 0u128;
    let mut steals = 0u64;
    let mut violations = 0usize;
    let mut elapses = Vec::new();
    let mut used_final = Vec::new();
    for rep in 0..o.reps.max(1) {
        let (r, v) = driver::run_workload_verified(
            w,
            pinned(cfg.with_gc_threads(n).with_overlap_phases(overlap)),
            o.seed + rep as u64,
        );
        pause.merge(&r.stats.pause);
        cycles += r.stats.cycles.len();
        cycle_ns += r
            .stats
            .cycles
            .iter()
            .map(|c| c.duration.as_nanos())
            .sum::<u128>();
        steals += r.stats.workers.iter().map(|w| w.steals).sum::<u64>();
        violations += v.len();
        elapses.push(r.elapsed);
        used_final.push(r.stats.used_bytes);
    }
    elapses.sort_unstable();
    ParallelResult {
        workload,
        config,
        n,
        overlap,
        elapsed: elapses[elapses.len() / 2],
        cycles,
        cycle_avg_ms: if cycles == 0 {
            0.0
        } else {
            cycle_ns as f64 / cycles as f64 / 1e6
        },
        used_final,
        pause,
        steals,
        violations,
    }
}

/// N=1 must track the default-config serial baseline: same code path, so
/// only scheduling noise separates them.  Slack: 2x + 1 ms.
fn n1_parity(rows: &[ParallelResult], baselines: &[(&'static str, &'static str, f64)]) -> bool {
    rows.iter().filter(|r| r.n == 1 && !r.overlap).all(|r| {
        let base = baselines
            .iter()
            .find(|(w, c, _)| *w == r.workload && *c == r.config)
            .map(|&(_, _, ms)| ms)
            .unwrap_or(0.0);
        let ok = r.cycle_avg_ms <= base * 2.0 + 1.0;
        if !ok {
            eprintln!(
                "error: {}/{} N=1 cycle avg {:.2} ms vs baseline {:.2} ms — parity broken",
                r.workload, r.config, r.cycle_avg_ms, base
            );
        }
        ok
    })
}

/// Extra workers must not wreck mutator latency: p99.9 pause at N>1
/// stays within 10x + 20 ms of the N=1 value for the same cell.  The
/// slack is wide on purpose: in quick mode p99.9 is a single worst
/// handshake, and on an oversubscribed single core that is pure
/// scheduler noise — the gate exists to catch order-of-magnitude
/// regressions (a worker blocking a handshake), not jitter.
fn p999_ok(rows: &[ParallelResult]) -> bool {
    rows.iter().filter(|r| r.n > 1).all(|r| {
        let base = rows
            .iter()
            .find(|b| {
                b.n == 1
                    && b.workload == r.workload
                    && b.config == r.config
                    && b.overlap == r.overlap
            })
            .map(|b| b.pause.quantile(0.999))
            .unwrap_or(0);
        let bound = base.saturating_mul(10) + 20_000_000;
        let ok = r.pause.quantile(0.999) <= bound;
        if !ok {
            eprintln!(
                "error: {}/{} N={} pause p99.9 {:.1} us vs N=1 {:.1} us — latency envelope broken",
                r.workload,
                r.config,
                r.n,
                us(r.pause.quantile(0.999)),
                us(base)
            );
        }
        ok
    })
}

/// Mean N=4 / N=1 cycle-time ratio across cells (informational only).
fn speedup_n4(rows: &[ParallelResult]) -> f64 {
    let mut ratios = Vec::new();
    for r in rows.iter().filter(|r| r.n == 4 && !r.overlap) {
        if let Some(b) = rows
            .iter()
            .find(|b| b.n == 1 && !b.overlap && b.workload == r.workload && b.config == r.config)
        {
            if r.cycle_avg_ms > 0.0 {
                ratios.push(b.cycle_avg_ms / r.cycle_avg_ms);
            }
        }
    }
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

/// The overlap-off peer of an overlap-on row (same cell, same N).
fn overlap_peer<'a>(rows: &'a [ParallelResult], r: &ParallelResult) -> Option<&'a ParallelResult> {
    rows.iter()
        .find(|b| !b.overlap && b.workload == r.workload && b.config == r.config && b.n == r.n)
}

/// Overlap end-state parity: at N=1 the overlap-on run must settle the
/// same heap as overlap-off — used bytes within 1%, rep-by-rep (the
/// seeds match, so rep i is the same program run).  Byte-for-byte
/// equality is pinned deterministically in `tests/plan_equivalence.rs`;
/// with racing mutators the footprint is the strongest stable check.
fn overlap_parity_ok(rows: &[ParallelResult]) -> bool {
    rows.iter().filter(|r| r.overlap && r.n == 1).all(|r| {
        let Some(base) = overlap_peer(rows, r) else {
            return false;
        };
        let ok = r.used_final.len() == base.used_final.len()
            && r.used_final.iter().zip(&base.used_final).all(|(&a, &b)| {
                let (a, b) = (a as f64, b as f64);
                (a - b).abs() <= 0.01 * a.max(b).max(1.0)
            });
        if !ok {
            eprintln!(
                "error: {}/{} N=1 overlap-on settled {:?} bytes vs overlap-off {:?} — \
                 end-state parity broken",
                r.workload, r.config, r.used_final, base.used_final
            );
        }
        ok
    })
}

/// db/gen cycle-time reduction from phase overlap at N=4 (1.0 - on/off;
/// 0.15 = the gated 15%).  Always recorded; see `overlap_gate_ok` for
/// when it is enforced.
fn overlap_reduction_db_gen_n4(rows: &[ParallelResult]) -> f64 {
    rows.iter()
        .find(|r| r.overlap && r.workload == "db" && r.config == "gen" && r.n == 4)
        .and_then(|r| {
            overlap_peer(rows, r)
                .filter(|b| b.cycle_avg_ms > 0.0)
                .map(|b| 1.0 - r.cycle_avg_ms / b.cycle_avg_ms)
        })
        .unwrap_or(0.0)
}

/// Overlap speedup gate: with ≥ 2 cores, overlap-on db/gen mean cycle
/// time at N ∈ {2, 4} must be ≤ 0.85x overlap-off at the same N.  On a
/// single core the comparison is physically meaningless (there is
/// nothing to overlap *with*), so the ratio is recorded but the gate is
/// vacuous — the same honesty rule the N=4 speedup has always used.
fn overlap_gate_ok(rows: &[ParallelResult], cores: usize) -> bool {
    if cores < 2 {
        return true;
    }
    rows.iter()
        .filter(|r| r.overlap && r.workload == "db" && r.config == "gen" && r.n >= 2)
        .all(|r| {
            let Some(base) = overlap_peer(rows, r) else {
                return false;
            };
            let ok = r.cycle_avg_ms <= base.cycle_avg_ms * 0.85;
            if !ok {
                eprintln!(
                    "error: db/gen N={} overlap-on cycle avg {:.2} ms vs off {:.2} ms — \
                     overlap must cut ≥ 15% with {} core(s)",
                    r.n, r.cycle_avg_ms, base.cycle_avg_ms, cores
                );
            }
            ok
        })
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[ParallelResult],
    cores: usize,
    parity: bool,
    p999: bool,
    speedup: f64,
    ov_parity: bool,
    ov_reduction: f64,
    ov_gate: bool,
    o: &Options,
    path: &str,
) {
    let mut j = String::from("{\n  \"bench\": \"parallel\",\n");
    j.push_str(&format!(
        "  \"cores\": {cores}, \"scale\": {}, \"reps\": {}, \"seed\": {},\n",
        o.scale, o.reps, o.seed
    ));
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"gc_threads\": {}, \
             \"overlap\": {}, \
             \"elapsed_ms\": {:.2}, \"cycles\": {}, \"cycle_avg_ms\": {:.3}, \
             \"pause_p99_us\": {:.1}, \"pause_p999_us\": {:.1}, \"pause_max_us\": {:.1}, \
             \"steals\": {}, \"violations\": {}}}{}\n",
            json_escape_free(r.workload),
            json_escape_free(r.config),
            r.n,
            r.overlap,
            r.elapsed.as_secs_f64() * 1e3,
            r.cycles,
            r.cycle_avg_ms,
            us(r.pause.quantile(0.99)),
            us(r.pause.quantile(0.999)),
            us(r.pause.max()),
            r.steals,
            r.violations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"n1_parity\": {parity}, \"p999_ok\": {p999}, \"speedup_n4\": {speedup:.3},\n  \
         \"overlap_parity_ok\": {ov_parity}, \"overlap_reduction_db_gen_n4\": {ov_reduction:.3}, \
         \"overlap_gate_ok\": {ov_gate}\n}}\n"
    ));
    if let Err(e) = std::fs::write(path, &j) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}

fn main() {
    let o = Options::from_args();
    let quick = std::env::var_os("OTF_BENCH_QUICK").is_some() || o.scale < 0.2;
    let wl_scale = if quick { o.scale.min(0.1) } else { o.scale };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let workloads: [(&'static str, Box<dyn Workload>); 2] = [
        ("db", Box::new(Db::new().scaled(wl_scale))),
        ("mtrt", Box::new(RayTracer::mtrt().scaled(wl_scale))),
    ];
    let configs: [(&'static str, GcConfig); 2] = [
        ("gen", GcConfig::generational()),
        ("nogen", GcConfig::non_generational()),
    ];

    println!("== parallel collector back-end ({cores} core(s) available) ==\n");
    // Default-config baselines for the N=1 parity gate.
    let mut baselines: Vec<(&'static str, &'static str, f64)> = Vec::new();
    for (name, w) in &workloads {
        for &(cfg_name, cfg) in &configs {
            let b = run_case(name, w.as_ref(), cfg, cfg_name, 1, false, &o);
            baselines.push((name, cfg_name, b.cycle_avg_ms));
        }
    }

    let mut rows = Vec::new();
    for (name, w) in &workloads {
        for &(cfg_name, cfg) in &configs {
            for n in THREAD_COUNTS {
                // The overlap A/B arm runs on the generational plan,
                // the cycle shape the overlap group was built for
                // (cards + roots + trace); nogen has no card scan.
                let arms: &[bool] = if cfg_name == "gen" {
                    &[false, true]
                } else {
                    &[false]
                };
                for &overlap in arms {
                    let r = run_case(name, w.as_ref(), cfg, cfg_name, n, overlap, &o);
                    println!(
                        "{name}/{cfg_name:<6} N={n} overlap={}  cycle avg {:>7.2} ms  \
                         p99.9 {:>9.1} us  steals {:>6}  violations {}",
                        if overlap { "on " } else { "off" },
                        r.cycle_avg_ms,
                        us(r.pause.quantile(0.999)),
                        r.steals,
                        r.violations,
                    );
                    rows.push(r);
                }
            }
        }
    }

    let total_violations: usize = rows.iter().map(|r| r.violations).sum();
    let parity = n1_parity(&rows, &baselines);
    let p999 = p999_ok(&rows);
    let speedup = speedup_n4(&rows);
    let ov_parity = overlap_parity_ok(&rows);
    let ov_reduction = overlap_reduction_db_gen_n4(&rows);
    let ov_gate = overlap_gate_ok(&rows, cores);

    let mut t = Table::new("parallel back-end: cycle time and pauses by worker count");
    t.header([
        "workload",
        "config",
        "N",
        "overlap",
        "cycle avg",
        "p99",
        "p99.9",
        "max",
        "steals",
        "cycles",
    ]);
    for r in &rows {
        t.row([
            r.workload.to_string(),
            r.config.to_string(),
            r.n.to_string(),
            if r.overlap { "on" } else { "off" }.to_string(),
            format!("{:.2} ms", r.cycle_avg_ms),
            format!("{:.1}", us(r.pause.quantile(0.99))),
            format!("{:.1}", us(r.pause.quantile(0.999))),
            format!("{:.1}", us(r.pause.max())),
            r.steals.to_string(),
            r.cycles.to_string(),
        ]);
    }
    println!();
    t.print();
    println!(
        "\nN=4 cycle-time speedup {speedup:.2}x on {cores} core(s) — informational, not gated"
    );
    println!(
        "db/gen N=4 overlap cycle-time reduction {:.1}% on {cores} core(s){}",
        ov_reduction * 100.0,
        if cores < 2 {
            " — recorded only, gate needs ≥ 2 cores"
        } else {
            " (gate: >= 15%)"
        }
    );

    let path = std::env::var("OTF_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    write_json(
        &rows,
        cores,
        parity,
        p999,
        speedup,
        ov_parity,
        ov_reduction,
        ov_gate,
        &o,
        &path,
    );

    if total_violations > 0 {
        eprintln!("{total_violations} heap violation(s) across the matrix");
        std::process::exit(1);
    }
    if !parity || !p999 || !ov_parity || !ov_gate {
        eprintln!(
            "gate failure: n1_parity={parity} p999_ok={p999} overlap_parity_ok={ov_parity} \
             overlap_gate_ok={ov_gate}"
        );
        std::process::exit(1);
    }
}
