//! The coalescing free-space pool of the non-moving heap.
//!
//! Free space is tracked as `(start granule, length)` chunks in two
//! ordered indexes under one lock: by start address (for **coalescing** —
//! a freed chunk merges with adjacent free neighbors immediately, exactly
//! like the JVM heap manager the paper's collector lived in) and by size
//! (for **best-fit** allocation).  Chunk records live *outside* the heap
//! memory, so free space needs no parseable headers and the concurrent
//! sweep never reads metadata out of free memory.
//!
//! Allocation policy: a request of (`min`, `preferred`) granules takes the
//! smallest chunk of at least `preferred` and splits it; if none exists it
//! takes the *largest* chunk of at least `min` — so LAB refills
//! (`preferred ≫ min`) get big contiguous runs when available and degrade
//! gracefully on a tight heap, while exact requests (`min == preferred`)
//! get best-fit with minimal splitting.
//!
//! The pool is indifferent to which thread performs reclamation: sweep
//! batches arrive from collector workers in the eager back-end and from
//! allocating mutators in the lazy one (DESIGN.md §4.6), always through
//! the same insert paths under the same lock.

use std::collections::BTreeMap;

use otf_support::sync::Mutex;

/// A free chunk: `len` contiguous free granules starting at granule
/// `start`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Chunk {
    /// First granule of the chunk.
    pub start: u32,
    /// Length in granules (never zero).
    pub len: u32,
}

impl Chunk {
    /// Creates a chunk.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `len` is zero.
    #[inline]
    pub fn new(start: u32, len: u32) -> Chunk {
        debug_assert!(len > 0, "empty chunk");
        Chunk { start, len }
    }

    /// One-past-the-end granule.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }
}

#[derive(Debug, Default)]
struct Pool {
    /// start granule -> length.
    by_start: BTreeMap<u32, u32>,
    /// (length, start) -> (); ordered for best-fit queries.
    by_size: BTreeMap<(u32, u32), ()>,
    free_granules: u64,
}

impl Pool {
    fn remove(&mut self, start: u32, len: u32) {
        let removed = self.by_start.remove(&start);
        debug_assert_eq!(removed, Some(len));
        let removed = self.by_size.remove(&(len, start));
        debug_assert!(removed.is_some());
        self.free_granules -= len as u64;
    }

    fn add(&mut self, start: u32, len: u32) {
        debug_assert!(len > 0);
        self.by_start.insert(start, len);
        self.by_size.insert((len, start), ());
        self.free_granules += len as u64;
    }

    /// Inserts with immediate coalescing against both neighbors.
    /// Returns the merged run the chunk ended up part of.
    fn insert_coalescing(&mut self, chunk: Chunk) -> Chunk {
        let mut start = chunk.start;
        let mut len = chunk.len;
        // Predecessor: the last chunk starting before us.
        if let Some((&p_start, &p_len)) = self.by_start.range(..start).next_back() {
            debug_assert!(p_start + p_len <= start, "overlapping free chunks");
            if p_start + p_len == start {
                self.remove(p_start, p_len);
                start = p_start;
                len += p_len;
            }
        }
        // Successor: the first chunk starting at or after our end.
        if let Some((&s_start, &s_len)) = self.by_start.range(start + len..).next() {
            debug_assert!(s_start >= start + len, "overlapping free chunks");
            if s_start == start + len {
                self.remove(s_start, s_len);
                len += s_len;
            }
        }
        self.add(start, len);
        Chunk::new(start, len)
    }
}

/// Thread-safe coalescing free lists.
#[derive(Debug)]
pub struct FreeLists {
    inner: Mutex<Pool>,
}

impl Default for FreeLists {
    fn default() -> Self {
        Self::new()
    }
}

impl FreeLists {
    /// Creates an empty pool.
    pub fn new() -> FreeLists {
        FreeLists {
            inner: Mutex::new(Pool::default()),
        }
    }

    /// Inserts a free chunk, merging it with adjacent free space.
    pub fn insert(&self, chunk: Chunk) {
        self.inner.lock().insert_coalescing(chunk);
    }

    /// Inserts many chunks under a single lock acquisition (the sweep's
    /// batching path).
    pub fn insert_batch(&self, chunks: &[Chunk]) {
        if chunks.is_empty() {
            return;
        }
        let mut p = self.inner.lock();
        for &chunk in chunks {
            p.insert_coalescing(chunk);
        }
    }

    /// Inserts many chunks under one lock acquisition, extracting
    /// aligned whole-`block`-multiple sub-runs for the caller (the
    /// sharded back-end's block-return path).  Whenever an insert
    /// coalesces into a run whose block-aligned middle is at least
    /// `min_extract` granules, that middle is removed from the pool and
    /// appended to `extracted`; any ragged head/tail stays in the pool.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero or `min_extract < block` (an extracted
    /// run is always at least one whole block).
    pub fn insert_batch_extracting(
        &self,
        chunks: &[Chunk],
        block: u32,
        min_extract: u32,
        extracted: &mut Vec<Chunk>,
    ) {
        assert!(block > 0 && min_extract >= block, "bad extraction params");
        if chunks.is_empty() {
            return;
        }
        let mut p = self.inner.lock();
        for &chunk in chunks {
            let merged = p.insert_coalescing(chunk);
            let a = merged.start.div_ceil(block) * block;
            let b = merged.end() / block * block;
            if b > a && b - a >= min_extract {
                p.remove(merged.start, merged.len);
                if a > merged.start {
                    p.add(merged.start, a - merged.start);
                }
                if merged.end() > b {
                    p.add(b, merged.end() - b);
                }
                extracted.push(Chunk::new(a, b - a));
            }
        }
    }

    /// Allocates at least `min` granules, preferring a chunk of up to
    /// `preferred`.  Takes the smallest chunk ≥ `preferred` (split to
    /// `preferred`), falling back to the largest chunk ≥ `min`.  Returns
    /// `None` when no chunk of at least `min` granules exists.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `preferred < min`.
    pub fn alloc(&self, min: u32, preferred: u32) -> Option<Chunk> {
        assert!(
            min > 0 && preferred >= min,
            "bad alloc request {min}/{preferred}"
        );
        let mut p = self.inner.lock();
        // Best fit at the preferred size…
        if let Some((&(len, start), ())) = p.by_size.range((preferred, 0)..).next() {
            p.remove(start, len);
            if len > preferred {
                p.add(start + preferred, len - preferred);
                return Some(Chunk::new(start, preferred));
            }
            return Some(Chunk::new(start, len));
        }
        // …else the largest chunk that still satisfies `min`.
        if let Some((&(len, start), ())) = p.by_size.range((min, 0)..).next_back() {
            p.remove(start, len);
            return Some(Chunk::new(start, len));
        }
        None
    }

    /// Total free granules in the pool.
    pub fn free_granules(&self) -> u64 {
        self.inner.lock().free_granules
    }

    /// The largest available chunk length (diagnostics / fragmentation
    /// measurements).
    pub fn largest_chunk(&self) -> u32 {
        self.inner
            .lock()
            .by_size
            .keys()
            .next_back()
            .map(|&(len, _)| len)
            .unwrap_or(0)
    }

    /// Number of distinct chunks (diagnostics).
    pub fn chunk_count(&self) -> usize {
        self.inner.lock().by_start.len()
    }

    /// A copy of every chunk currently in the pool (diagnostics).
    pub fn snapshot(&self) -> Vec<Chunk> {
        self.inner
            .lock()
            .by_start
            .iter()
            .map(|(&s, &l)| Chunk::new(s, l))
            .collect()
    }

    /// Removes and returns every chunk (test/diagnostic helper).
    pub fn drain_all(&self) -> Vec<Chunk> {
        let mut p = self.inner.lock();
        let out: Vec<Chunk> = p.by_start.iter().map(|(&s, &l)| Chunk::new(s, l)).collect();
        p.by_start.clear();
        p.by_size.clear();
        p.free_granules = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_alloc() {
        let f = FreeLists::new();
        f.insert(Chunk::new(10, 4));
        assert_eq!(f.free_granules(), 4);
        let c = f.alloc(4, 4).unwrap();
        assert_eq!(c, Chunk::new(10, 4));
        assert_eq!(f.free_granules(), 0);
        assert!(f.alloc(1, 1).is_none());
    }

    #[test]
    fn split_returns_remainder() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 100));
        let c = f.alloc(8, 8).unwrap();
        assert_eq!(c.len, 8);
        assert_eq!(f.free_granules(), 92);
        let rest = f.alloc(92, 92).unwrap();
        assert_eq!(rest, Chunk::new(8, 92));
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 50));
        f.insert(Chunk::new(100, 10));
        let c = f.alloc(10, 10).unwrap();
        assert_eq!(
            c,
            Chunk::new(100, 10),
            "should pick the exact fit, not split the big one"
        );
    }

    #[test]
    fn lab_refill_prefers_large() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 3));
        f.insert(Chunk::new(100, 200));
        // min 2, preferred 64: must NOT hand out the 3-granule fragment.
        let c = f.alloc(2, 64).unwrap();
        assert_eq!(c, Chunk::new(100, 64));
    }

    #[test]
    fn falls_back_to_largest_below_preferred() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 3));
        f.insert(Chunk::new(100, 30));
        let c = f.alloc(2, 64).unwrap();
        assert_eq!(
            c,
            Chunk::new(100, 30),
            "largest ≥ min when nothing ≥ preferred"
        );
    }

    #[test]
    fn coalesces_with_predecessor_and_successor() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 10));
        f.insert(Chunk::new(20, 10));
        assert_eq!(f.chunk_count(), 2);
        // The middle piece glues everything into one run.
        f.insert(Chunk::new(10, 10));
        assert_eq!(f.chunk_count(), 1);
        assert_eq!(f.largest_chunk(), 30);
        let c = f.alloc(30, 30).unwrap();
        assert_eq!(c, Chunk::new(0, 30));
    }

    #[test]
    fn no_coalescing_across_gaps() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 5));
        f.insert(Chunk::new(6, 5)); // gap at granule 5
        assert_eq!(f.chunk_count(), 2);
        assert_eq!(f.largest_chunk(), 5);
    }

    #[test]
    fn fragmentation_heals() {
        // Allocate many small pieces out of one run, free them all in a
        // scrambled order: the pool must return to a single chunk.
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 1024));
        let mut held = Vec::new();
        while let Some(c) = f.alloc(7, 7) {
            held.push(c);
        }
        // Consume any remainder too.
        while let Some(c) = f.alloc(1, 7) {
            held.push(c);
        }
        assert_eq!(f.free_granules(), 0);
        held.reverse();
        let mid = held.len() / 2;
        held.swap(0, mid);
        f.insert_batch(&held);
        assert_eq!(f.chunk_count(), 1);
        assert_eq!(f.largest_chunk(), 1024);
    }

    #[test]
    fn extraction_takes_aligned_middle_leaves_ragged_ends() {
        let f = FreeLists::new();
        let mut out = Vec::new();
        // [10, 600): aligned middle at block 64 is [64, 576) = 512 ≥ 128.
        f.insert_batch_extracting(&[Chunk::new(10, 590)], 64, 128, &mut out);
        assert_eq!(out, vec![Chunk::new(64, 512)]);
        assert_eq!(f.free_granules(), (64 - 10) + (600 - 576));
        assert_eq!(f.chunk_count(), 2);
    }

    #[test]
    fn extraction_below_threshold_stays_pooled() {
        let f = FreeLists::new();
        let mut out = Vec::new();
        // Aligned middle [64, 128) is one block < the 2-block floor.
        f.insert_batch_extracting(&[Chunk::new(10, 150)], 64, 128, &mut out);
        assert!(out.is_empty());
        assert_eq!(f.free_granules(), 150);
        assert_eq!(f.chunk_count(), 1);
    }

    #[test]
    fn extraction_triggers_on_coalesced_runs() {
        let f = FreeLists::new();
        let mut out = Vec::new();
        // Two halves of block 1, freed separately: only the insert that
        // completes the block extracts it.
        f.insert_batch_extracting(&[Chunk::new(64, 32)], 64, 64, &mut out);
        assert!(out.is_empty());
        f.insert_batch_extracting(&[Chunk::new(96, 32)], 64, 64, &mut out);
        assert_eq!(out, vec![Chunk::new(64, 64)]);
        assert_eq!(f.free_granules(), 0);
    }

    #[test]
    fn drain_all_empties() {
        let f = FreeLists::new();
        f.insert(Chunk::new(0, 5));
        f.insert(Chunk::new(10, 50));
        let all = f.drain_all();
        assert_eq!(all.len(), 2);
        assert_eq!(f.free_granules(), 0);
    }
}
