//! The measurement driver: runs workloads against collector
//! configurations and reports the quantities the paper's figures need.
//!
//! Methodology (paper §8.1): on a saturated machine, elapsed time measures
//! the total CPU the application *plus* the collector consume — the paper
//! runs four simultaneous copies of each application on its 4-way machine
//! for exactly this reason.  [`run_copies`] reproduces that setup (N
//! independent heap+collector instances running concurrently);
//! [`run_workload`] is the single-copy "uniprocessor" measurement.

use std::time::{Duration, Instant};

use otf_gc::{Gc, GcConfig, GcStats, HeapViolation};

use crate::Workload;

/// The result of one measured workload run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock time of the application run (threads spawned → joined).
    pub elapsed: Duration,
    /// Final collector statistics, snapshotted after collector shutdown
    /// so a cycle still running when the threads joined is included.
    pub stats: GcStats,
}

impl RunResult {
    /// Percentage of the run during which a collection was active
    /// (Figure 10).
    pub fn percent_gc_active(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            100.0 * self.stats.gc_active.as_secs_f64() / self.elapsed.as_secs_f64()
        }
    }

    /// The longest GC-induced mutator pause of the run.
    pub fn max_pause(&self) -> Duration {
        self.stats.max_pause()
    }

    /// The 99th-percentile GC-induced mutator pause of the run.
    pub fn pause_p99(&self) -> Duration {
        self.stats.pause_quantile(0.99)
    }
}

/// Runs one copy of `workload` under `config` and returns the measured
/// result.  Spawns `workload.threads()` mutator threads.
pub fn run_workload(workload: &dyn Workload, config: GcConfig, seed: u64) -> RunResult {
    let gc = Gc::new(config);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..workload.threads() {
            let mut m = gc.mutator();
            let w = &workload;
            s.spawn(move || w.run(t, seed, &mut m));
        }
    });
    let elapsed = start.elapsed();
    // Shutdown first, snapshot second: `Gc::shutdown` joins the collector
    // thread, so a cycle that was mid-flight when the mutators finished
    // lands in the stats instead of being silently dropped (it used to be
    // exactly the last collection a run triggered that went missing).
    let stats = gc.shutdown();
    RunResult { elapsed, stats }
}

/// Like [`run_workload`], but verifies the heap's structural invariants
/// before shutting the collector down: after the mutator threads join, a
/// blocking full collection settles the heap, [`Gc::stop_collector`]
/// joins the collector thread (true quiescence — a follow-on cycle the
/// trigger re-evaluation launched must not race the walk), and
/// [`Gc::verify_heap`] walks the heap.  Returns the violations alongside
/// the result — an empty vector means the workload left a consistent
/// heap.
///
/// When the collector is poisoned (a chaos plan panicked it) the settling
/// collection is skipped — no cycle can run — but the heap walk still
/// happens: a dead collector must not leave a *structurally* broken heap.
pub fn run_workload_verified(
    workload: &dyn Workload,
    config: GcConfig,
    seed: u64,
) -> (RunResult, Vec<HeapViolation>) {
    let mut gc = Gc::new(config);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..workload.threads() {
            let mut m = gc.mutator();
            let w = &workload;
            s.spawn(move || w.run(t, seed, &mut m));
        }
    });
    let elapsed = start.elapsed();
    if !gc.is_poisoned() {
        // Two settling collections, not one: garbage carrying the
        // allocation color of the last concurrent cycle survives the
        // first full (the born-during-the-cycle rule) and dies in the
        // second.  One full would leave a timing-dependent amount of
        // floating garbage behind, making the post-run live set —
        // which the sweep-mode parity gates compare — depend on when
        // the trigger last fired instead of on the workload.
        gc.collect_full_blocking();
        gc.collect_full_blocking();
    }
    gc.stop_collector();
    let violations = gc.verify_heap();
    let stats = gc.shutdown();
    (RunResult { elapsed, stats }, violations)
}

/// Runs `copies` independent copies of `workload` concurrently (each with
/// its own heap and collector thread, like the paper's four simultaneous
/// application processes) and returns the wall time of the whole batch
/// plus each copy's result.
pub fn run_copies(
    workload: &dyn Workload,
    config: GcConfig,
    seed: u64,
    copies: usize,
) -> (Duration, Vec<RunResult>) {
    let start = Instant::now();
    let results: Vec<RunResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..copies)
            .map(|c| {
                let w = &workload;
                s.spawn(move || run_workload(*w, config, seed.wrapping_add(c as u64)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload copy panicked"))
            .collect()
    });
    (start.elapsed(), results)
}

/// The paper's headline metric: percentage improvement of `gen` over
/// `nogen` — positive means the generational collector is faster.
pub fn percent_improvement(nogen: Duration, gen: Duration) -> f64 {
    if nogen.is_zero() {
        0.0
    } else {
        100.0 * (nogen.as_secs_f64() - gen.as_secs_f64()) / nogen.as_secs_f64()
    }
}

/// Convenience: measure `workload` under both collectors ("multiprocessor"
/// = `copies` concurrent copies) and return
/// `(improvement_multi, improvement_uni)` — the two columns of the paper's
/// Figures 8 and 9.
pub fn measure_improvement(
    workload: &dyn Workload,
    gen_cfg: GcConfig,
    nogen_cfg: GcConfig,
    seed: u64,
    copies: usize,
) -> (f64, f64) {
    let (multi_nogen, _) = run_copies(workload, nogen_cfg, seed, copies);
    let (multi_gen, _) = run_copies(workload, gen_cfg, seed, copies);
    let uni_nogen = run_workload(workload, nogen_cfg, seed);
    let uni_gen = run_workload(workload, gen_cfg, seed);
    (
        percent_improvement(multi_nogen, multi_gen),
        percent_improvement(uni_nogen.elapsed, uni_gen.elapsed),
    )
}
