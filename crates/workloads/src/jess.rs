//! `_202_jess` (paper §8.2, SPECjvm98) — the anti-generational benchmark.
//!
//! An expert-system shell: a large working memory of facts that are
//! continually asserted and retracted.  The paper singles this benchmark
//! out as the one where generations *hurt* (−3.7% multiprocessor, −2.5%
//! uniprocessor, Figure 9) for two measured reasons:
//!
//! 1. **heavy inter-generational traffic** — 36.2% of the objects scanned
//!    during partial collections are dirty objects in the old generation
//!    (Figure 11: 1373 old objects per partial), and over 60% of cards are
//!    dirty at block-marking sizes (Figure 22);
//! 2. **objects die right after tenuring** — the facts that do survive a
//!    young-generation collection get promoted and then die, so only full
//!    collections get them back (87.2% of objects freed in fulls,
//!    Figure 12), even though partials still free ~98% of the young.
//!
//! The model: working memory is a set of small *bucket* objects (old,
//! spread over the heap, mutated on every assert — heavy card traffic)
//! holding facts with a bimodal lifetime: hot slots are overwritten well
//! inside the young budget, cold slots only after it.

use otf_gc::{Mutator, ObjectRef};
use otf_support::rand::RngExt;

use crate::toolkit::{alloc_array, alloc_data, alloc_node, mix, pick, rng_for};
use crate::Workload;

/// Slot 0 of a bucket holds *hot* facts (overwritten within a fraction of
/// the young budget — they die young); slot 1 holds *cold* facts
/// (overwritten only after several megabytes of allocation — they survive
/// one partial collection, get tenured, and then die).
const HOT_SLOT: usize = 0;
const COLD_SLOT: usize = 1;

/// The jess workload.
#[derive(Clone, Debug)]
pub struct Jess {
    /// Number of working-memory buckets (long-lived, mutated constantly).
    pub buckets: usize,
    /// Facts asserted per activation round (each replaces a random slot).
    pub asserts_per_round: usize,
    /// Activation rounds.
    pub rounds: usize,
    /// Percentage of asserts that hit cold slots (the paper's
    /// die-after-tenure residue).
    pub cold_percent: u32,
}

impl Jess {
    /// The default configuration, calibrated to the paper's Figure 12:
    /// ~98% of facts are retracted quickly (die young), while the cold
    /// residue lives ≈ 9 MB of allocation — past the 4 MB young budget,
    /// so it tenures and then dies, reclaimable only by full collections.
    pub fn new() -> Jess {
        Jess {
            buckets: 2500,
            asserts_per_round: 4000,
            rounds: 600,
            cold_percent: 3,
        }
    }

    /// Scales the amount of work.
    pub fn scaled(mut self, scale: f64) -> Jess {
        self.rounds = ((self.rounds as f64 * scale) as usize).max(1);
        self
    }
}

impl Default for Jess {
    fn default() -> Self {
        Jess::new()
    }
}

impl Workload for Jess {
    fn name(&self) -> &'static str {
        "_202_jess"
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);

        // Working memory: many small bucket objects, spread across the
        // young heap region at startup and promoted by the first
        // collection.  Their slots are overwritten for the whole run,
        // dirtying cards all over the old generation.
        let spine: ObjectRef = alloc_array(m, self.buckets);
        m.root_push(spine);
        for b in 0..self.buckets {
            let bucket = alloc_node(m, 2, 1);
            m.write_data(bucket, 0, b as u64);
            m.write_ref(spine, b, bucket);
            // Interleave small allocations so buckets are not perfectly
            // contiguous (jess's dirty objects are spread, unlike db's).
            if b % 7 == 0 {
                let _pad = alloc_data(m, rng.random_range(1..6));
            }
        }

        let mut fired = 0u64;
        for round in 0..self.rounds {
            for a in 0..self.asserts_per_round {
                // A fresh fact: a node with a detail payload chained on.
                let fact = alloc_node(m, 1, 2);
                m.root_push(fact);
                m.write_data(fact, 0, (round * 100_000 + a) as u64);
                let detail = alloc_data(m, 2);
                m.write_data(detail, 0, a as u64);
                m.write_ref(fact, 0, detail);
                m.root_pop();
                // Rule network evaluation for the new fact.
                fired = fired.wrapping_add(mix((round * 100_000 + a) as u64, 256));

                // Assert it into a random working-memory slot, retracting
                // (dropping) whatever was there — an old-generation
                // pointer write nearly every time.
                let slot = if rng.random_range(0..100) < self.cold_percent {
                    COLD_SLOT
                } else {
                    HOT_SLOT
                };
                let bucket = m.read_ref(spine, pick(&mut rng, self.buckets));
                m.write_ref(bucket, slot, fact);
            }
            // Rule evaluation: probe random facts.
            for _ in 0..64 {
                let bucket = m.read_ref(spine, pick(&mut rng, self.buckets));
                let fact = m.read_ref(bucket, pick(&mut rng, 2));
                if !fact.is_null() {
                    fired = fired.wrapping_add(m.read_data(fact, 0));
                }
            }
            m.cooperate();
        }
        std::hint::black_box(fired);
        m.root_pop();
    }
}
