//! End-to-end correctness tests for the on-the-fly collector.
//!
//! The central invariant of any collector: *no live object is ever
//! reclaimed, and garbage is eventually reclaimed* — exercised here under
//! real concurrency (mutator threads running against the collector
//! thread) with small heaps so many cycles happen.

use otf_gengc::gc::{CycleKind, Gc, GcConfig};
use otf_gengc::heap::{ObjShape, ObjectRef};

/// A small heap so collections are frequent.
fn small(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(4 << 20)
        .with_initial_heap(1 << 20)
        .with_young_size(64 << 10)
}

/// Builds a linked list of `n` nodes, each carrying `seed + i` in its data
/// word, and returns the head.  The head is rooted by the caller.
fn build_list(m: &mut otf_gengc::gc::Mutator, n: usize, seed: u64) -> ObjectRef {
    let node = ObjShape::new(1, 1);
    let head = m.alloc(&node).unwrap();
    m.write_data(head, 0, seed);
    let root = m.root_push(head);
    let mut tail = head;
    for i in 1..n {
        let next = m.alloc(&node).unwrap();
        m.write_data(next, 0, seed + i as u64);
        m.write_ref(tail, 0, next);
        tail = next;
    }
    let head = m.root_get(root);
    m.root_pop();
    head
}

/// Walks the list and checks the payloads.
fn check_list(m: &otf_gengc::gc::Mutator, head: ObjectRef, n: usize, seed: u64) {
    let mut cur = head;
    for i in 0..n {
        assert!(!cur.is_null(), "list truncated at {i}/{n}");
        assert_eq!(
            m.read_data(cur, 0),
            seed + i as u64,
            "payload corrupted at {i}"
        );
        cur = m.read_ref(cur, 0);
    }
    assert!(cur.is_null(), "list longer than expected");
}

fn churn_under_config(cfg: GcConfig) {
    let gc = Gc::new(small(cfg));
    let mut m = gc.mutator();
    // A long-lived list that must survive every collection.
    let keeper = build_list(&mut m, 500, 10_000);
    m.root_push(keeper);

    // Churn: many short-lived lists, a few medium-lived ones.
    let mut medium: Vec<(ObjectRef, usize, u64)> = Vec::new();
    for round in 0..200u64 {
        let head = build_list(&mut m, 100, round * 1000);
        // Keep every 10th list alive for 5 rounds.
        if round % 10 == 0 {
            m.root_push(head);
            medium.push((head, 100, round * 1000));
            if medium.len() > 5 {
                let (old, n, seed) = medium.remove(0);
                check_list(&m, old, n, seed);
                // Drop the oldest medium list: find and remove its root.
                let keep: Vec<ObjectRef> = (0..m.root_len())
                    .map(|i| m.root_get(i))
                    .filter(|&r| r != old)
                    .collect();
                m.root_truncate(0);
                for r in keep {
                    m.root_push(r);
                }
            }
        }
        m.cooperate();
        // The keeper must stay intact through every cycle.
        if round % 50 == 0 {
            check_list(&m, keeper, 500, 10_000);
        }
    }
    check_list(&m, keeper, 500, 10_000);
    for (head, n, seed) in &medium {
        check_list(&m, *head, *n, *seed);
    }
    // Mutators can outrun the on-the-fly collector in a short test; force
    // two full cycles so the assertions below are deterministic.  (Two,
    // not one: a lazy-mode cycle ends mark-only and its reclamation is
    // folded into the *next* cycle's stats when the epoch is finalized,
    // so the second cycle guarantees `bytes_freed` is visible in both
    // sweep modes.)
    m.parked(|| gc.collect_full_blocking());
    m.parked(|| gc.collect_full_blocking());
    check_list(&m, keeper, 500, 10_000);
    for (head, n, seed) in &medium {
        check_list(&m, *head, *n, *seed);
    }
    let stats = gc.stats();
    assert!(
        !stats.cycles.is_empty(),
        "expected collections to happen (allocated {} bytes)",
        stats.bytes_allocated
    );
    // Garbage is eventually reclaimed.
    let freed: u64 = stats.cycles.iter().map(|c| c.bytes_freed).sum();
    assert!(freed > 0, "no bytes were ever reclaimed");
    drop(m);
    gc.shutdown();
}

#[test]
fn churn_generational_simple() {
    churn_under_config(GcConfig::generational());
}

#[test]
fn churn_non_generational() {
    churn_under_config(GcConfig::non_generational());
}

#[test]
fn churn_aging() {
    churn_under_config(GcConfig::aging(4));
}

#[test]
fn churn_block_marking() {
    churn_under_config(GcConfig::generational().with_card_size(4096));
}

#[test]
fn churn_sharded_allocator() {
    churn_under_config(GcConfig::generational().with_alloc_shards(4));
}

#[test]
fn churn_sharded_single_shard_parity_arm() {
    // N=1 sharding: same code path as N>1 but serial — the parity arm
    // against the unsharded oracle above.
    churn_under_config(GcConfig::generational().with_alloc_shards(1));
}

#[test]
fn churn_lazy_sweep_generational() {
    churn_under_config(GcConfig::generational().with_lazy_sweep(true));
}

#[test]
fn churn_lazy_sweep_non_generational() {
    churn_under_config(GcConfig::non_generational().with_lazy_sweep(true));
}

#[test]
fn churn_lazy_sweep_aging() {
    churn_under_config(GcConfig::aging(4).with_lazy_sweep(true));
}

#[test]
fn churn_lazy_sweep_sharded() {
    churn_under_config(
        GcConfig::generational()
            .with_alloc_shards(4)
            .with_lazy_sweep(true),
    );
}

#[test]
fn lazy_sweep_multithreaded_churn_leaves_heap_verifiable() {
    // The combined cell: lazy allocation-time sweeping racing across
    // sharded mutator threads, then forced completion of all outstanding
    // segments (verify_heap finalizes the epoch) must leave a clean heap.
    let mut gc = Gc::new(small(
        GcConfig::generational()
            .with_alloc_shards(4)
            .with_lazy_sweep(true),
    ));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut m = gc.mutator();
            s.spawn(move || {
                let keeper = build_list(&mut m, 200, t * 1_000_000);
                m.root_push(keeper);
                for round in 0..100u64 {
                    let seed = t * 1_000_000 + round * 997;
                    let head = build_list(&mut m, 50, seed);
                    check_list(&m, head, 50, seed);
                    m.cooperate();
                }
                check_list(&m, keeper, 200, t * 1_000_000);
            });
        }
    });
    gc.collect_full_blocking();
    gc.stop_collector();
    let violations = gc.verify_heap();
    assert!(violations.is_empty(), "heap violations: {violations:?}");
    let stats = gc.stats();
    assert!(stats.lazy_epochs > 0, "no lazy epochs were published");
    let shard_total: u64 = stats.shard_free_granules.iter().sum();
    assert_eq!(
        shard_total + stats.store_free_granules,
        gc.free_granules(),
        "stats shard totals do not balance after lazy finalization"
    );
}

/// Deterministic single-mutator workload, no collections until one
/// explicit full at the very end; returns the end state for eager/lazy
/// differential comparison.  Because no reclaimed space exists before
/// that single cycle, both runs perform the identical allocation
/// sequence at identical addresses; after the cycle, the eager run has
/// swept, and the lazy run has published an epoch whose forced
/// completion (`verify_heap`) must reproduce the same heap exactly.
fn sweep_mode_end_state(
    cfg: GcConfig,
    lazy: bool,
) -> (Vec<(otf_gengc::heap::Color, u8, u64)>, usize, u64) {
    let mut gc = Gc::new(
        cfg.with_lazy_sweep(lazy)
            .with_max_heap(16 << 20)
            .with_initial_heap(16 << 20)
            .with_young_size(8 << 20),
    );
    let mut m = gc.mutator();
    let keeper = build_list(&mut m, 300, 42);
    m.root_push(keeper);
    let mut kept: Vec<(ObjectRef, usize, u64)> = Vec::new();
    for round in 0..3u64 {
        for g in 0..400u64 {
            build_list(&mut m, 10, round * 100_000 + g); // garbage
        }
        let head = build_list(&mut m, 50, 7_000_000 + round);
        m.root_push(head);
        kept.push((head, 50, 7_000_000 + round));
    }
    m.parked(|| gc.collect_full_blocking());
    check_list(&m, keeper, 300, 42);
    for (h, n, s) in &kept {
        check_list(&m, *h, *n, *s);
    }
    // Record every surviving node (not just the heads) in deterministic
    // walk order.  The mutator stays alive through the state capture: its
    // LAB-tail free on drop would otherwise interleave at a run-dependent
    // position in the lazy drain's chunk stream and perturb the
    // order-sensitive shard coalesce/extract decisions.
    let mut heads = vec![(keeper, 300usize)];
    heads.extend(kept.iter().map(|(h, n, _)| (*h, *n)));
    let mut nodes = Vec::new();
    for (h, n) in &heads {
        let mut cur = *h;
        for _ in 0..*n {
            nodes.push((cur, m.read_data(cur, 0)));
            cur = m.read_ref(cur, 0);
        }
    }
    gc.stop_collector();
    let violations = gc.verify_heap(); // forces completion of lazy segments
    assert!(violations.is_empty(), "heap violations: {violations:?}");
    let state: Vec<_> = nodes
        .iter()
        .map(|&(o, p)| (gc.debug_color_of(o), gc.debug_age_of(o), p))
        .collect();
    let stats = gc.stats();
    let shard_total: u64 = stats.shard_free_granules.iter().sum();
    assert_eq!(
        shard_total + stats.store_free_granules,
        gc.free_granules(),
        "per-shard free balances do not sum to the global total"
    );
    let lazy_freed = stats.lazy_freed_at_alloc_granules + stats.lazy_freed_at_final_granules;
    if lazy {
        assert!(stats.lazy_epochs > 0, "lazy run published no epochs");
        assert!(lazy_freed > 0, "lazy run reclaimed nothing via segments");
    } else {
        assert_eq!(stats.lazy_epochs, 0, "eager run published lazy epochs");
        assert_eq!(lazy_freed, 0, "eager run counted lazy reclamation");
    }
    drop(m);
    (state, gc.used_bytes(), gc.free_granules())
}

#[test]
fn lazy_and_eager_sweep_reach_identical_end_state() {
    // Satellite differential: forcing completion of all outstanding lazy
    // segments must yield a heap — survivor colors, ages, payloads,
    // used bytes, free-granule totals, per-shard balances — identical to
    // an eager-sweep run of the same deterministic workload.
    #[allow(clippy::type_complexity)]
    let cases: [(&str, fn() -> GcConfig); 3] = [
        ("generational", GcConfig::generational),
        ("aging", || GcConfig::aging(2)),
        ("sharded", || GcConfig::generational().with_alloc_shards(4)),
    ];
    for (name, mk) in cases {
        let (eager, eager_used, eager_free) = sweep_mode_end_state(mk(), false);
        let (lazy, lazy_used, lazy_free) = sweep_mode_end_state(mk(), true);
        assert_eq!(eager, lazy, "{name}: survivor colors/ages/payloads diverge");
        assert_eq!(eager_used, lazy_used, "{name}: used bytes diverge");
        // Both runs allocate at identical addresses, so used-byte and
        // free-total equality imply the *set* of free granules is
        // identical.  The split of that set between shard pools and the
        // block store is not compared: the shard-to-store extraction
        // heuristic is chunk-stream-order sensitive, and lazy segment
        // boundaries split runs where the eager serial sweep does not
        // (eager parallel sweeps differ from serial the same way) — the
        // unit test `sharded_finalize_matches_eager_per_shard_balances`
        // pins per-shard parity on a single-segment stream.
        assert_eq!(eager_free, lazy_free, "{name}: free-granule totals diverge");
    }
}

#[test]
fn sharded_multithreaded_churn_leaves_heap_verifiable() {
    let mut gc = Gc::new(small(GcConfig::generational().with_alloc_shards(8)));
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let mut m = gc.mutator();
            s.spawn(move || {
                let keeper = build_list(&mut m, 200, t * 1_000_000);
                m.root_push(keeper);
                for round in 0..100u64 {
                    let seed = t * 1_000_000 + round * 997;
                    let head = build_list(&mut m, 50, seed);
                    check_list(&m, head, 50, seed);
                    m.cooperate();
                }
                check_list(&m, keeper, 200, t * 1_000_000);
            });
        }
    });
    gc.collect_full_blocking();
    gc.stop_collector();
    let violations = gc.verify_heap();
    assert!(violations.is_empty(), "heap violations: {violations:?}");
    let stats = gc.stats();
    assert_eq!(stats.alloc_shards, 8);
    let shard_total: u64 = stats.shard_free_granules.iter().sum();
    // The stats snapshot's split free totals must balance (quiescent, so
    // no in-flight transfers between shard pools and the store).
    assert_eq!(
        shard_total + stats.store_free_granules,
        gc.free_granules(),
        "stats shard totals do not balance"
    );
}

#[test]
fn multithreaded_churn_all_variants() {
    for cfg in [
        GcConfig::generational(),
        GcConfig::non_generational(),
        GcConfig::aging(3),
    ] {
        let gc = Gc::new(small(cfg));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut m = gc.mutator();
                s.spawn(move || {
                    let keeper = build_list(&mut m, 200, t * 1_000_000);
                    m.root_push(keeper);
                    for round in 0..100u64 {
                        let seed = t * 1_000_000 + round * 997;
                        let head = build_list(&mut m, 50, seed);
                        check_list(&m, head, 50, seed);
                        m.cooperate();
                    }
                    check_list(&m, keeper, 200, t * 1_000_000);
                });
            }
        });
        gc.collect_full_blocking();
        assert!(
            gc.cycles_completed() > 0,
            "no collections under concurrency"
        );
        gc.shutdown();
    }
}

#[test]
fn inter_generational_pointer_keeps_young_alive() {
    // An old object pointing at a young object: the young one must survive
    // a partial collection purely via the dirty-card scan.
    let gc = Gc::new(small(GcConfig::generational()));
    let mut m = gc.mutator();
    let node = ObjShape::new(1, 1);

    // Make `old` old by keeping it alive across one collection.
    let old = m.alloc(&node).unwrap();
    m.write_data(old, 0, 7);
    m.root_push(old);
    m.parked(|| gc.collect_full_blocking());
    assert_eq!(gc.debug_color_of(old), otf_gengc::heap::Color::Black);

    // Store a young object into the old one; drop all stack roots to it.
    let young = m.alloc(&node).unwrap();
    m.write_data(young, 0, 99);
    m.write_ref(old, 0, young);

    // Force a partial collection: allocate past the young budget.
    // `stats().cycles` records only completed cycles, so polling it also
    // waits for the sweep to finish.
    let filler = ObjShape::new(0, 6);
    let before = gc.stats().cycles.len();
    while gc.stats().cycles.len() == before {
        for _ in 0..1000 {
            let _ = m.alloc(&filler).unwrap();
        }
        m.cooperate();
    }

    let y = m.read_ref(old, 0);
    assert_eq!(y, young);
    assert_eq!(
        m.read_data(y, 0),
        99,
        "young object lost despite inter-gen pointer"
    );
    drop(m);
    gc.shutdown();
}

#[test]
fn unreachable_objects_are_reclaimed_by_full_collection() {
    let gc = Gc::new(small(GcConfig::generational()));
    let mut m = gc.mutator();
    let shape = ObjShape::new(0, 30);
    let mut garbage = Vec::new();
    for _ in 0..2000 {
        garbage.push(m.alloc(&shape).unwrap());
    }
    // No roots: everything above is garbage.
    garbage.clear();
    let used_before = gc.used_bytes();
    m.parked(|| gc.collect_full_blocking());
    m.parked(|| gc.collect_full_blocking());
    let used_after = gc.used_bytes();
    assert!(
        used_after < used_before,
        "full collections reclaimed nothing ({used_before} -> {used_after})"
    );
    drop(m);
    gc.shutdown();
}

#[test]
fn oom_is_reported_not_crashed() {
    let cfg = GcConfig::generational()
        .with_max_heap(256 << 10)
        .with_initial_heap(256 << 10)
        .with_young_size(32 << 10);
    let gc = Gc::new(cfg);
    let mut m = gc.mutator();
    let shape = ObjShape::new(1, 10);
    let mut err = None;
    // Keep everything alive: the heap must eventually overflow.
    let mut prev = ObjectRef::NULL;
    for _ in 0..10_000 {
        match m.alloc(&shape) {
            Ok(obj) => {
                m.write_ref(obj, 0, prev);
                prev = obj;
                if m.root_len() == 0 {
                    m.root_push(obj);
                } else {
                    m.root_set(0, obj);
                }
            }
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert!(matches!(
        err,
        Some(otf_gengc::gc::AllocError::OutOfMemory { .. })
    ));
    drop(m);
    gc.shutdown();
}

#[test]
fn stats_record_partial_and_full_cycles() {
    let gc = Gc::new(small(GcConfig::generational()));
    let mut m = gc.mutator();
    let shape = ObjShape::new(0, 14);
    for _ in 0..20_000 {
        let _ = m.alloc(&shape).unwrap();
    }
    m.parked(|| gc.collect_full_blocking());
    let stats = gc.stats();
    assert!(stats.partial_count() > 0, "expected partial collections");
    assert!(stats.full_count() > 0, "expected a full collection");
    assert!(stats
        .cycles_of(CycleKind::Partial)
        .all(|c| c.kind == CycleKind::Partial));
    assert!(stats.gc_active > std::time::Duration::ZERO);
    assert!(stats.objects_allocated >= 20_000);
    drop(m);
    gc.shutdown();
}

#[test]
fn non_generational_never_runs_partials() {
    let gc = Gc::new(small(GcConfig::non_generational()));
    let mut m = gc.mutator();
    let shape = ObjShape::new(0, 14);
    for _ in 0..20_000 {
        let _ = m.alloc(&shape).unwrap();
    }
    m.parked(|| gc.collect_full_blocking());
    let stats = gc.stats();
    assert_eq!(stats.partial_count(), 0);
    assert!(stats.full_count() > 0);
    drop(m);
    gc.shutdown();
}

#[test]
fn yellow_objects_survive_the_cycle_they_are_born_in() {
    // Objects created during a collection must not be reclaimed by that
    // collection's sweep even when unreachable (they die in the *next*
    // cycle).  We can't easily freeze the collector mid-cycle from here,
    // so we just hammer allocation during induced cycles and rely on the
    // payload checks of the churn tests; here we verify the weaker,
    // directly observable property: an object allocated and immediately
    // rooted while a collection runs is alive and intact afterwards.
    let gc = Gc::new(small(GcConfig::generational()));
    let mut m = gc.mutator();
    gc.request_full();
    let node = ObjShape::new(0, 1);
    let mut kept = Vec::new();
    for i in 0..5000u64 {
        let obj = m.alloc(&node).unwrap();
        m.write_data(obj, 0, i);
        if i % 100 == 0 {
            m.root_push(obj);
            kept.push((obj, i));
        }
    }
    m.parked(|| gc.collect_full_blocking());
    for (obj, i) in kept {
        assert_eq!(m.read_data(obj, 0), i);
    }
    drop(m);
    gc.shutdown();
}
