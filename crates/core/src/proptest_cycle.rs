//! Randomized whole-cycle testing (test-only module), on the
//! deterministic `otf_support::check` harness.
//!
//! Builds random object graphs directly on the substrate, runs complete
//! collection cycles deterministically (no mutator threads — handshakes
//! complete trivially), and checks the fundamental theorem of tracing
//! collection against a Rust-side model: *exactly* the model-reachable
//! objects survive a full collection, and partial collections never free
//! anything the model says is live.
//!
//! Every case is derived from a fixed seed, so failures reproduce
//! bit-for-bit; on failure the harness shrinks the graph by halving (see
//! `otf_support::check`).

#![cfg(test)]

use std::collections::HashSet;

use otf_heap::{Color, ObjShape, ObjectRef};
use otf_support::check::{run_cases, Gen};

use crate::config::GcConfig;
use crate::cycle::CycleCx;
use crate::shared::GcShared;
use crate::stats::CycleKind;

const CASES: u64 = 48;

struct Graph {
    objects: Vec<ObjectRef>,
    edges: Vec<Vec<Option<usize>>>,
    roots: Vec<usize>,
}

fn build(
    sh: &GcShared,
    n: usize,
    edge_seed: &[(usize, usize, usize)],
    root_bits: &[bool],
) -> Graph {
    let shape = ObjShape::new(3, 1);
    let mut objects = Vec::with_capacity(n);
    let mut edges = vec![vec![None; 3]; n];
    for _ in 0..n {
        let c = sh
            .heap
            .alloc_chunk(shape.size_granules() as u32, shape.size_granules() as u32)
            .unwrap();
        objects.push(sh.heap.install_object(
            c.start as usize,
            &shape,
            sh.colors.allocation_color(),
        ));
    }
    for &(from, slot, to) in edge_seed {
        let (from, slot, to) = (from % n, slot % 3, to % n);
        sh.heap
            .arena()
            .store_ref_slot(objects[from], slot, objects[to]);
        edges[from][slot] = Some(to);
    }
    let roots: Vec<usize> = (0..n)
        .filter(|&i| root_bits.get(i).copied().unwrap_or(false))
        .collect();
    for &r in &roots {
        sh.add_global_root(objects[r]);
    }
    Graph {
        objects,
        edges,
        roots,
    }
}

fn model_reachable(g: &Graph) -> HashSet<usize> {
    let mut seen: HashSet<usize> = g.roots.iter().copied().collect();
    let mut stack: Vec<usize> = g.roots.clone();
    while let Some(i) = stack.pop() {
        for e in g.edges[i].iter().flatten() {
            if seen.insert(*e) {
                stack.push(*e);
            }
        }
    }
    seen
}

fn edge(g: &mut Gen, n_max: usize) -> (usize, usize, usize) {
    (g.usize_in(0..n_max), g.usize_in(0..3), g.usize_in(0..n_max))
}

/// Full collection = exact reachability, for every variant.
#[test]
fn full_collection_is_exact_reachability() {
    run_cases(
        "full_collection_is_exact_reachability",
        0xC0FFEE,
        CASES,
        |g| {
            let n = g.usize_in(2..80);
            let edge_seed = g.vec_of(0..160, |g| edge(g, 80));
            let root_bits = g.bools(80);
            let variant = g.usize_in(0..3) as u8;

            let cfg = match variant {
                0 => GcConfig::generational(),
                1 => GcConfig::non_generational(),
                _ => GcConfig::aging(3),
            };
            let sh = GcShared::new(cfg.with_max_heap(1 << 20).with_initial_heap(1 << 20));
            let mut cx = CycleCx::new(&sh);
            let g = build(&sh, n, &edge_seed, &root_bits);
            let reachable = model_reachable(&g);

            let stats = sh.run_cycle(CycleKind::Full, &mut cx);
            for i in 0..n {
                let color = sh.heap.colors().get(g.objects[i].granule());
                if reachable.contains(&i) {
                    assert!(color.is_object(), "live object {i} was reclaimed");
                } else {
                    assert_eq!(color, Color::Free, "dead object {i} survived");
                }
            }
            assert_eq!(stats.objects_freed as usize, n - reachable.len());
            assert_eq!(stats.objects_survived as usize, reachable.len());
        },
    );
}

/// A partial collection never frees a model-reachable object, and a
/// following full collection still leaves the reachable set intact
/// (promotion + inter-generational bookkeeping compose correctly).
#[test]
fn partial_then_full_preserves_reachable() {
    run_cases(
        "partial_then_full_preserves_reachable",
        0xDECADE,
        CASES,
        |gen| {
            let n = gen.usize_in(2..60);
            let edge_seed = gen.vec_of(0..120, |g| edge(g, 60));
            let root_bits = gen.bools(60);
            let extra_edges = gen.vec_of(0..20, |g| edge(g, 60));

            let sh = GcShared::new(
                GcConfig::generational()
                    .with_max_heap(1 << 20)
                    .with_initial_heap(1 << 20),
            );
            let mut cx = CycleCx::new(&sh);
            let mut g = build(&sh, n, &edge_seed, &root_bits);

            sh.run_cycle(CycleKind::Partial, &mut cx);
            let reachable1 = model_reachable(&g);
            for &i in &reachable1 {
                assert!(
                    sh.heap.colors().get(g.objects[i].granule()).is_object(),
                    "partial freed live object {i}"
                );
            }

            // Mutate survivors the way the async write barrier would: store,
            // then mark the parent's card.
            for &(from, slot, to) in &extra_edges {
                let (from, slot, to) = (from % n, slot % 3, to % n);
                if reachable1.contains(&from) && reachable1.contains(&to) {
                    sh.heap
                        .arena()
                        .store_ref_slot(g.objects[from], slot, g.objects[to]);
                    sh.cards.mark_byte(g.objects[from].byte());
                    g.edges[from][slot] = Some(to);
                }
            }

            sh.run_cycle(CycleKind::Partial, &mut cx);
            sh.run_cycle(CycleKind::Full, &mut cx);
            let reachable2 = model_reachable(&g);
            for i in 0..n {
                let color = sh.heap.colors().get(g.objects[i].granule());
                if reachable2.contains(&i) {
                    assert!(color.is_object(), "object {i} lost across cycles");
                } else {
                    assert_eq!(color, Color::Free, "dead object {i} survived full");
                }
            }
        },
    );
}
