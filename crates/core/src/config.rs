//! Collector configuration (the paper's tuning parameters, §8.3/§8.5).

use otf_heap::{BLOCK_GRANULES, GRANULE, MAX_CARD_SIZE, MAX_HEAP_GRANULES, MIN_CARD_SIZE};

/// How surviving objects are promoted to the old generation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Promotion {
    /// Promote after surviving a single collection (§3): black ⇔ old.
    /// The paper's best-performing policy.
    Simple,
    /// The aging mechanism (§6): objects are tenured only after surviving
    /// `threshold` collections, tracked in a separate age table.
    Aging {
        /// Tenuring threshold ("age N is old").  The paper evaluates
        /// 2, 4, 6, 8 and 10 (Figures 18–20).
        threshold: u8,
    },
}

/// What the handshake watchdog does once a stalled handshake has climbed
/// the escalation ladder (DESIGN.md §4.8).
///
/// The first stall report is always a warning and the second always adds
/// an event-trace dump; the policy decides whether the third rung aborts
/// the wedged cycle by panicking the collector thread into its
/// supervisor, which runs the safe cycle-abort protocol and (when
/// restarts remain) respawns the collector.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StallPolicy {
    /// Keep warning (rate-limited) and wait forever — the protocol
    /// cannot proceed without the ack, but every report names the
    /// culprits.  The default.
    Warn,
    /// Stop at the trace-dump rung: warn, then dump, then keep waiting
    /// with rate-limited reports.
    TraceDump,
    /// After warning and dumping, abort the wedged cycle: panic the
    /// collector into its supervisor so the safe abort protocol runs.
    /// With `max_collector_restarts == 0` this degrades to the permanent
    /// poison fallback.
    AbortCycle,
}

/// Collector mode: the non-generational DLG baseline or the paper's
/// generational extension.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// The original on-the-fly collector, *with* the color toggle
    /// (Remark 5.1: the baseline also gets the toggle so the comparison
    /// isolates generations).  Every collection is a full collection and
    /// the write barrier never touches the card table.
    NonGenerational,
    /// The generational collector with the given promotion policy.
    Generational(Promotion),
}

/// Configuration for [`Gc::new`](crate::Gc::new).
///
/// The defaults are the paper's chosen parameters: 1 MB initial / 32 MB
/// maximum heap, a 4 MB young generation, 16-byte cards ("object
/// marking"), and simple promotion.
///
/// # Examples
///
/// ```
/// use otf_gc::{GcConfig, Promotion};
/// let cfg = GcConfig::generational()
///     .with_young_size(8 << 20)
///     .with_card_size(4096) // block marking
///     .with_promotion(Promotion::Aging { threshold: 4 });
/// assert_eq!(cfg.card_size, 4096);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct GcConfig {
    /// Maximum heap size in bytes (reserved up front).
    pub max_heap: usize,
    /// Initially committed heap size in bytes.
    pub initial_heap: usize,
    /// Young-generation size in bytes: a partial collection is triggered
    /// once this much has been allocated since the last collection (§3.3).
    pub young_size: usize,
    /// Card size in bytes; power of two in `[16, 4096]` (§8.5.3).
    pub card_size: usize,
    /// Generational or baseline mode.
    pub mode: Mode,
    /// A full collection is triggered when the heap is "almost full":
    /// used ≥ `full_trigger_fraction · committed` (§3.3).
    pub full_trigger_fraction: f64,
    /// Post-full-collection occupancy target: the committed heap grows
    /// until live data occupies at most this fraction of it (the paper's
    /// JVM grew its heap toward 32 MB under pressure the same way).
    pub grow_fraction: f64,
    /// LAB (thread-local allocation buffer) size in granules.
    pub lab_granules: u32,
    /// Whether to record structured GC events into the trace ring
    /// (drainable as JSONL; see `Gc::events`).  Also enabled by setting
    /// the `OTF_GC_TRACE` environment variable.  Latency histograms are
    /// always on; only event tracing is gated.
    pub trace_events: bool,
    /// Handshake-watchdog stall threshold in milliseconds: when a
    /// handshake has been outstanding this long, the collector names the
    /// non-cooperating mutators on stderr (and dumps the event-trace
    /// ring, when tracing is on) instead of hanging silently, then keeps
    /// waiting — the protocol cannot proceed without the ack, but the
    /// hang is now diagnosable.  `0` disables the watchdog.
    pub handshake_stall_ms: u64,
    /// Number of collector worker threads for the trace and sweep phases
    /// (§4.4).  `1` (the default) is the paper's single-collector
    /// configuration — the verified DLG protocol with no parallel-
    /// termination machinery on the hot path.  `N > 1` runs mark with
    /// per-worker work-stealing deques and sweep over page-partitioned
    /// segments.  The constructors read the `OTF_GC_THREADS` environment
    /// variable as the default, so test matrices can parallelize every
    /// collector without code changes.
    pub gc_threads: usize,
    /// Number of allocation shards for the sharded heap back-end
    /// (DESIGN.md §4.5).  `0` (the default) selects the original single
    /// free-list allocator — the semantic oracle.  `N ≥ 1` carves the
    /// arena into a global block store with `N` private shard pools;
    /// mutators pin to a shard by registration id, so LAB refills and
    /// sweep flushes stop contending on one global lock.  The
    /// constructors read the `OTF_GC_SHARDS` environment variable as the
    /// default, mirroring `OTF_GC_THREADS`.
    pub alloc_shards: usize,
    /// Opt-in lazy (allocation-time) sweep, Nofl/Immix-style (DESIGN.md
    /// §4.6).  `false` (the default) keeps the eager serial/parallel
    /// sweep byte-for-byte.  `true` turns the collector's cycle
    /// mark-only: where the sweep phase used to run, the collector
    /// finalizes the previous sweep epoch and publishes a new one; the
    /// actual reclamation is done by mutators at LAB-refill time
    /// (sweep-to-allocate) and by the collector draining leftover
    /// segments between cycles.  The constructors read the
    /// `OTF_GC_LAZY_SWEEP` environment variable (`1` enables) as the
    /// default, mirroring `OTF_GC_THREADS`/`OTF_GC_SHARDS`.
    pub lazy_sweep: bool,
    /// Opt-in overlapped mark pipeline (DESIGN.md §4.9).  `false` (the
    /// default) keeps the sequential schedule byte-for-byte: card scan
    /// and root marking complete before the trace bucket opens.  `true`
    /// re-expresses the plan so the card-scan and root-mark buckets
    /// open *concurrently with* the trace bucket after the third
    /// handshake — they publish grays to the shared queue as they go
    /// and the trace consumes them immediately, with the §4.4
    /// termination check extended so the trace cannot close while a
    /// producer bucket is still open.  The constructors read the
    /// `OTF_GC_OVERLAP` environment variable (`1` enables) as the
    /// default, mirroring `OTF_GC_LAZY_SWEEP`.
    pub overlap_phases: bool,
    /// How many times the collector supervisor may respawn the collector
    /// thread after a panic (DESIGN.md §4.8).  `0` (the default) keeps
    /// the PR-4 behavior byte-for-byte: the first panic permanently
    /// poisons the collector and blocked allocations fail with
    /// `AllocError::CollectorUnavailable`.  `N > 0` lets the supervisor
    /// run the safe cycle-abort protocol and restart the collector up to
    /// `N` times, with exponential backoff between attempts.  The
    /// constructors read the `OTF_GC_MAX_RESTARTS` environment variable
    /// as the default.
    pub max_collector_restarts: u32,
    /// Base delay in milliseconds between a cycle abort and the next
    /// collector incarnation; doubled per restart already consumed
    /// (capped at one second).  Only meaningful with
    /// `max_collector_restarts > 0`.
    pub collector_restart_backoff_ms: u64,
    /// What the handshake watchdog escalates to once a stalled handshake
    /// has been reported twice (see [`StallPolicy`]).  The constructors
    /// read the `OTF_GC_STALL_POLICY` environment variable
    /// (`warn` / `trace-dump` / `abort-cycle`) as the default.
    pub handshake_stall_policy: StallPolicy,
}

/// Reads the `OTF_GC_THREADS` default for the constructors (falls back
/// to 1 — the single-collector configuration — when unset or invalid).
fn gc_threads_from_env() -> usize {
    std::env::var("OTF_GC_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| (1..=MAX_GC_THREADS).contains(&n))
        .unwrap_or(1)
}

/// Upper bound on [`GcConfig::gc_threads`] — far above any sensible
/// worker count, present so a typo'd configuration fails validation
/// instead of spawning thousands of threads per cycle.
pub const MAX_GC_THREADS: usize = 64;

/// Upper bound on [`GcConfig::alloc_shards`], for the same reason as
/// [`MAX_GC_THREADS`].
pub const MAX_ALLOC_SHARDS: usize = 64;

/// Reads the `OTF_GC_SHARDS` default for the constructors (falls back
/// to 0 — the unsharded allocator — when unset or invalid).
fn alloc_shards_from_env() -> usize {
    std::env::var("OTF_GC_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n <= MAX_ALLOC_SHARDS)
        .unwrap_or(0)
}

/// Reads the `OTF_GC_LAZY_SWEEP` default for the constructors (any
/// nonzero integer enables; falls back to `false` — the eager sweep —
/// when unset or invalid).
fn lazy_sweep_from_env() -> bool {
    std::env::var("OTF_GC_LAZY_SWEEP")
        .ok()
        .and_then(|v| v.trim().parse::<u8>().ok())
        .map(|v| v != 0)
        .unwrap_or(false)
}

/// Reads the `OTF_GC_OVERLAP` default for the constructors (any nonzero
/// integer enables; falls back to `false` — the sequential schedule —
/// when unset or invalid).
fn overlap_from_env() -> bool {
    std::env::var("OTF_GC_OVERLAP")
        .ok()
        .and_then(|v| v.trim().parse::<u8>().ok())
        .map(|v| v != 0)
        .unwrap_or(false)
}

/// Reads the `OTF_GC_MAX_RESTARTS` default for the constructors (falls
/// back to 0 — the permanent-poison fallback — when unset or invalid).
fn max_restarts_from_env() -> u32 {
    std::env::var("OTF_GC_MAX_RESTARTS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(0)
}

/// Reads the `OTF_GC_STALL_POLICY` default for the constructors (falls
/// back to [`StallPolicy::Warn`] when unset or invalid).
fn stall_policy_from_env() -> StallPolicy {
    match std::env::var("OTF_GC_STALL_POLICY").as_deref() {
        Ok("warn") => StallPolicy::Warn,
        Ok("trace-dump") => StallPolicy::TraceDump,
        Ok("abort-cycle") => StallPolicy::AbortCycle,
        _ => StallPolicy::Warn,
    }
}

impl GcConfig {
    /// The paper's best generational configuration: simple promotion,
    /// 4 MB young generation, 16-byte cards.
    pub fn generational() -> GcConfig {
        GcConfig {
            max_heap: 32 << 20,
            initial_heap: 1 << 20,
            young_size: 4 << 20,
            card_size: 16,
            mode: Mode::Generational(Promotion::Simple),
            full_trigger_fraction: 0.75,
            grow_fraction: 0.55,
            lab_granules: otf_heap::DEFAULT_LAB_GRANULES,
            trace_events: false,
            handshake_stall_ms: 1000,
            gc_threads: gc_threads_from_env(),
            alloc_shards: alloc_shards_from_env(),
            lazy_sweep: lazy_sweep_from_env(),
            overlap_phases: overlap_from_env(),
            max_collector_restarts: max_restarts_from_env(),
            collector_restart_backoff_ms: 10,
            handshake_stall_policy: stall_policy_from_env(),
        }
    }

    /// The non-generational DLG baseline (with the color toggle).
    pub fn non_generational() -> GcConfig {
        GcConfig {
            mode: Mode::NonGenerational,
            ..GcConfig::generational()
        }
    }

    /// Generational with the aging promotion policy.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 2` (age 1 is the infant age, so a threshold
    /// of 2 is the earliest possible tenuring — the paper's Figure 20).
    pub fn aging(threshold: u8) -> GcConfig {
        assert!(threshold >= 2, "aging threshold must be at least 2");
        GcConfig {
            mode: Mode::Generational(Promotion::Aging { threshold }),
            ..GcConfig::generational()
        }
    }

    /// Sets the maximum heap size in bytes.
    pub fn with_max_heap(mut self, bytes: usize) -> GcConfig {
        self.max_heap = bytes;
        self
    }

    /// Sets the initially committed heap size in bytes.
    pub fn with_initial_heap(mut self, bytes: usize) -> GcConfig {
        self.initial_heap = bytes;
        self
    }

    /// Sets the young-generation size in bytes.
    pub fn with_young_size(mut self, bytes: usize) -> GcConfig {
        self.young_size = bytes;
        self
    }

    /// Sets the card size in bytes (power of two in `[16, 4096]`).
    pub fn with_card_size(mut self, bytes: usize) -> GcConfig {
        self.card_size = bytes;
        self
    }

    /// Sets the promotion policy (switches to generational mode).
    pub fn with_promotion(mut self, promotion: Promotion) -> GcConfig {
        self.mode = Mode::Generational(promotion);
        self
    }

    /// Sets the LAB size in granules.
    pub fn with_lab_granules(mut self, granules: u32) -> GcConfig {
        self.lab_granules = granules.max(1);
        self
    }

    /// Enables (or disables) structured GC event tracing.
    pub fn with_event_trace(mut self, enabled: bool) -> GcConfig {
        self.trace_events = enabled;
        self
    }

    /// Sets the handshake-watchdog stall threshold in milliseconds
    /// (`0` disables the watchdog).
    pub fn with_handshake_stall_ms(mut self, ms: u64) -> GcConfig {
        self.handshake_stall_ms = ms;
        self
    }

    /// Sets the number of collector worker threads (clamped to at least
    /// 1; see [`GcConfig::gc_threads`]).
    pub fn with_gc_threads(mut self, n: usize) -> GcConfig {
        self.gc_threads = n.max(1);
        self
    }

    /// Sets the allocation shard count (`0` = the unsharded allocator;
    /// see [`GcConfig::alloc_shards`]).
    pub fn with_alloc_shards(mut self, n: usize) -> GcConfig {
        self.alloc_shards = n;
        self
    }

    /// Enables (or disables) the lazy allocation-time sweep (see
    /// [`GcConfig::lazy_sweep`]).
    pub fn with_lazy_sweep(mut self, enabled: bool) -> GcConfig {
        self.lazy_sweep = enabled;
        self
    }

    /// Enables (or disables) the overlapped mark pipeline (see
    /// [`GcConfig::overlap_phases`]).
    pub fn with_overlap_phases(mut self, enabled: bool) -> GcConfig {
        self.overlap_phases = enabled;
        self
    }

    /// Sets how many times the supervisor may restart a panicked
    /// collector (`0` = permanent poison on the first panic; see
    /// [`GcConfig::max_collector_restarts`]).
    pub fn with_max_collector_restarts(mut self, n: u32) -> GcConfig {
        self.max_collector_restarts = n;
        self
    }

    /// Sets the base restart backoff in milliseconds (see
    /// [`GcConfig::collector_restart_backoff_ms`]).
    pub fn with_collector_restart_backoff_ms(mut self, ms: u64) -> GcConfig {
        self.collector_restart_backoff_ms = ms;
        self
    }

    /// Sets the watchdog escalation policy (see [`StallPolicy`]).
    pub fn with_handshake_stall_policy(mut self, policy: StallPolicy) -> GcConfig {
        self.handshake_stall_policy = policy;
        self
    }

    /// Whether this configuration is generational.
    pub fn is_generational(&self) -> bool {
        matches!(self.mode, Mode::Generational(_))
    }

    /// The name of the plan this configuration selects — the
    /// (mode × sweep-backend) combination whose packet sets the cycle
    /// schedule is built from (DESIGN.md §4.7).
    pub fn plan_name(&self) -> &'static str {
        match (self.mode, self.lazy_sweep) {
            (Mode::Generational(Promotion::Simple), false) => "gen-eager",
            (Mode::Generational(Promotion::Simple), true) => "gen-lazy",
            (Mode::Generational(Promotion::Aging { .. }), false) => "aging-eager",
            (Mode::Generational(Promotion::Aging { .. }), true) => "aging-lazy",
            (Mode::NonGenerational, false) => "nogen-eager",
            (Mode::NonGenerational, true) => "nogen-lazy",
        }
    }

    /// The aging threshold, if the aging policy is selected.
    pub fn aging_threshold(&self) -> Option<u8> {
        match self.mode {
            Mode::Generational(Promotion::Aging { threshold }) => Some(threshold),
            _ => None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_heap == 0 || self.initial_heap == 0 {
            return Err("heap sizes must be non-zero".into());
        }
        if self.initial_heap > self.max_heap {
            return Err("initial heap exceeds maximum heap".into());
        }
        if !self.card_size.is_power_of_two()
            || !(MIN_CARD_SIZE..=MAX_CARD_SIZE).contains(&self.card_size)
        {
            return Err(format!(
                "card size {} not a power of two in [16, 4096]",
                self.card_size
            ));
        }
        if !(0.0..=1.0).contains(&self.full_trigger_fraction)
            || !(0.0..=1.0).contains(&self.grow_fraction)
        {
            return Err("trigger fractions must be in [0, 1]".into());
        }
        if let Some(t) = self.aging_threshold() {
            if t < 2 {
                return Err("aging threshold must be at least 2".into());
            }
        }
        if !(1..=MAX_GC_THREADS).contains(&self.gc_threads) {
            return Err(format!(
                "gc_threads {} not in [1, {MAX_GC_THREADS}]",
                self.gc_threads
            ));
        }
        if self.max_heap.div_ceil(GRANULE) > MAX_HEAP_GRANULES {
            return Err(format!(
                "max_heap {} exceeds the u32 object-offset space ({} bytes)",
                self.max_heap,
                MAX_HEAP_GRANULES as u64 * GRANULE as u64,
            ));
        }
        if self.alloc_shards > MAX_ALLOC_SHARDS {
            return Err(format!(
                "alloc_shards {} not in [0, {MAX_ALLOC_SHARDS}]",
                self.alloc_shards
            ));
        }
        if self.alloc_shards > 0 && self.initial_heap < BLOCK_GRANULES * GRANULE {
            return Err(format!(
                "sharded allocation needs an initial heap of at least one \
                 block ({} bytes)",
                BLOCK_GRANULES * GRANULE
            ));
        }
        Ok(())
    }
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig::generational()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_names_cover_mode_and_backend() {
        assert_eq!(GcConfig::generational().plan_name(), "gen-eager");
        assert_eq!(
            GcConfig::generational().with_lazy_sweep(true).plan_name(),
            "gen-lazy"
        );
        assert_eq!(GcConfig::aging(3).plan_name(), "aging-eager");
        assert_eq!(
            GcConfig::aging(3).with_lazy_sweep(true).plan_name(),
            "aging-lazy"
        );
        assert_eq!(GcConfig::non_generational().plan_name(), "nogen-eager");
        assert_eq!(
            GcConfig::non_generational()
                .with_lazy_sweep(true)
                .plan_name(),
            "nogen-lazy"
        );
    }

    #[test]
    fn defaults_match_paper() {
        let c = GcConfig::default();
        assert_eq!(c.max_heap, 32 << 20);
        assert_eq!(c.initial_heap, 1 << 20);
        assert_eq!(c.young_size, 4 << 20);
        assert_eq!(c.card_size, 16);
        assert!(c.is_generational());
        assert!(c.validate().is_ok());
        assert_eq!(c.handshake_stall_policy, stall_policy_from_env());
        assert_eq!(c.collector_restart_backoff_ms, 10);
    }

    #[test]
    fn supervision_builders_chain() {
        let c = GcConfig::generational()
            .with_max_collector_restarts(3)
            .with_collector_restart_backoff_ms(1)
            .with_handshake_stall_policy(StallPolicy::AbortCycle);
        assert_eq!(c.max_collector_restarts, 3);
        assert_eq!(c.collector_restart_backoff_ms, 1);
        assert_eq!(c.handshake_stall_policy, StallPolicy::AbortCycle);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn overlap_builder_is_orthogonal_to_plan_name() {
        let c = GcConfig::generational().with_overlap_phases(true);
        assert!(c.overlap_phases);
        // Overlap is a schedule dimension, not a plan: the name is
        // unchanged so bench matrices key it separately.
        assert_eq!(c.plan_name(), "gen-eager");
        assert!(c.validate().is_ok());
        assert!(!GcConfig::aging(4).with_overlap_phases(false).overlap_phases);
    }

    #[test]
    fn builder_chains() {
        let c = GcConfig::non_generational()
            .with_max_heap(8 << 20)
            .with_initial_heap(1 << 20);
        assert!(!c.is_generational());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn aging_threshold_accessor() {
        assert_eq!(GcConfig::generational().aging_threshold(), None);
        assert_eq!(GcConfig::aging(6).aging_threshold(), Some(6));
    }

    #[test]
    fn validation_catches_bad_cards() {
        let c = GcConfig::generational().with_card_size(100);
        assert!(c.validate().is_err());
        let c = GcConfig::generational().with_card_size(8192);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_heaps() {
        let c = GcConfig::generational().with_initial_heap(64 << 20);
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn aging_threshold_one_panics() {
        let _ = GcConfig::aging(1);
    }

    #[test]
    fn gc_threads_clamped_and_validated() {
        assert_eq!(GcConfig::generational().with_gc_threads(0).gc_threads, 1);
        let c = GcConfig::generational().with_gc_threads(4);
        assert_eq!(c.gc_threads, 4);
        assert!(c.validate().is_ok());
        let mut c = GcConfig::generational();
        c.gc_threads = MAX_GC_THREADS + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn alloc_shards_validated() {
        let c = GcConfig::generational().with_alloc_shards(8);
        assert_eq!(c.alloc_shards, 8);
        assert!(c.validate().is_ok());
        let c = GcConfig::generational().with_alloc_shards(MAX_ALLOC_SHARDS + 1);
        assert!(c.validate().is_err());
        // A sharded heap needs at least one whole block committed.
        let c = GcConfig::generational()
            .with_alloc_shards(2)
            .with_initial_heap(1 << 10);
        assert!(c.validate().is_err());
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_max_heap_rejected() {
        let c = GcConfig::generational()
            .with_max_heap(1usize << 33)
            .with_initial_heap(1 << 20);
        assert!(c.validate().is_err());
    }
}
