//! Lazy (allocation-time) sweep — the opt-in `GcConfig::lazy_sweep`
//! back-end (DESIGN.md §4.6), after Nofl ("A Precise Immix").
//!
//! In eager mode the collector walks the whole color table at the end of
//! every cycle.  In lazy mode the cycle becomes **mark-only**: where the
//! sweep phase used to run, the collector issues a fence and *publishes a
//! sweep epoch* — the frontier and the pinned [`SweepParams`] of the
//! cycle that just finished.  Reclamation then happens on demand:
//!
//! * a mutator's LAB refill claims one epoch segment and sweeps it
//!   (*sweep-to-allocate*), keeping a reclaimed run big enough for its
//!   LAB and flushing the rest to the free lists;
//! * a mutator that fails allocation drains segments until it finds
//!   space, before escalating to a blocking full collection;
//! * the collector drains leftover segments between cycles (yielding to
//!   pending cycle requests), so garbage does not linger on an idle
//!   heap.
//!
//! **Epoch lifecycle invariant.**  An epoch must be *fully drained
//! before the next cycle's color toggle*: after the toggle, the old
//! epoch's clear color becomes the new allocation color, and a straggler
//! sweeping under stale params would free freshly allocated objects.
//! [`GcShared::lazy_finalize`] therefore runs as the cycle schedule's
//! *first* bucket (`lazy-finalize`, before the init bucket and any
//! handshake — DESIGN.md §4.7), and the publish packet at the old sweep
//! point only ever replaces an already-drained epoch.  Within an epoch,
//! segment claims are a lock-free CAS on an *epoch-stamped* cursor word
//! (`epoch << 32 | granule`); the frontier and pinned params live in
//! their own epoch-stamped words, published before the cursor, so a
//! claimant that wins a CAS under epoch *e* is guaranteed
//! matching-epoch params and frontier — the stamp makes the claim
//! ABA-proof across publishes without a lock on the refill hot path.
//! The segment cursor partitions `[1, frontier)` exactly as the PR 5
//! parallel sweep does (including the `object_end` straddler snap), and
//! every granule therefore belongs to exactly one claimant — no double
//! free, and no resurrection because concurrent allocation uses the
//! allocation color which the epoch's pinned `clear` never matches.
//!
//! The per-epoch sweep counters fold into the *next* cycle's stats at
//! finalization (the same place an eager sweep would have produced
//! them, one cycle later); the cumulative at-allocation vs
//! at-finalization reclaim split is exported through `GcStats`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use otf_heap::{Chunk, Color, GRANULE};
use otf_support::fault;
use otf_support::sync::{Backoff, Mutex};

use crate::cycle::Counters;
use crate::obs::EventKind;
use crate::shared::GcShared;
use crate::sweep::{SweepBuf, SweepParams, SWEEP_PROGRESS_STRIDE, SWEEP_SEGMENT_GRANULES};

/// Pairs a 32-bit epoch stamp with a 32-bit payload in one atomic word.
/// Every mutable epoch word (cursor, frontier, params) carries the
/// stamp, so a claimant can verify the three reads belong to the same
/// epoch: a publish bumps the stamp in all of them, which also makes
/// the claim CAS ABA-proof (granule values recur across epochs, stamped
/// words never do until the 32-bit wrap).
fn stamp(epoch: u32, payload: u32) -> u64 {
    (epoch as u64) << 32 | payload as u64
}

fn unstamp(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// `aging` byte of the packed [`SweepParams`] when the policy is off
/// (thresholds are `u8`, so `0xFF` can never be a real threshold).
const NO_AGING: u8 = 0xFF;

/// [`SweepParams`] packed into the payload half of an epoch-stamped
/// word: byte 0 = clear color, 1 = alloc color, 2 = aging threshold (or
/// [`NO_AGING`]), 3 = trace target.
fn pack_params(p: &SweepParams) -> u32 {
    (p.clear as u32)
        | (p.alloc as u32) << 8
        | (p.aging.unwrap_or(NO_AGING) as u32) << 16
        | (p.trace_target as u32) << 24
}

fn unpack_params(w: u32) -> SweepParams {
    SweepParams {
        clear: Color::from_byte(w as u8),
        alloc: Color::from_byte((w >> 8) as u8),
        aging: match (w >> 16) as u8 {
            NO_AGING => None,
            t => Some(t),
        },
        trace_target: Color::from_byte((w >> 24) as u8),
    }
}

/// Who swept a lazy segment — the `GcStats` at-allocation /
/// at-finalization split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LazyWho {
    /// A mutator allocation path (LAB refill or pressure drain).
    Mutator,
    /// The collector: background drain between cycles, the cycle-start
    /// finalization, or the shutdown/verify drain.
    Collector,
}

/// Shared state of the lazy sweep back-end (a field of `GcShared`;
/// inert unless `GcConfig::lazy_sweep` is set).
#[derive(Debug, Default)]
pub(crate) struct LazySweep {
    /// Fast-path gate: `true` while a published epoch may have work.
    active: AtomicBool,
    /// Epoch-stamped claim cursor: `epoch << 32 | next unclaimed segment
    /// start granule`.  A claim CASes the granule forward by
    /// [`SWEEP_SEGMENT_GRANULES`]; granule ≥ frontier ⇔ fully claimed.
    /// The per-epoch claimed-segment count is derived from it as
    /// `(granule − 1) / SWEEP_SEGMENT_GRANULES` (the cursor only ever
    /// advances by whole segments from 1).
    cursor: AtomicU64,
    /// Epoch-stamped frontier: one-past-the-last granule the epoch
    /// covers (the allocation frontier at publish time; later allocation
    /// is beyond the epoch).
    published: AtomicU64,
    /// Epoch-stamped packed [`SweepParams`] (see [`pack_params`]).
    params: AtomicU64,
    /// Segments fully swept for the current epoch (monotone within an
    /// epoch; reset at publish, when no claimant can be in flight).
    completed: AtomicU64,
    /// Estimated unswept-garbage bytes of the current epoch, decremented
    /// by actual per-segment reclaim.  `evaluate_triggers` subtracts it
    /// from heap occupancy so deferred garbage counts as available space
    /// and lazy mode keeps the eager trigger point.
    unswept: AtomicU64,
    /// Epoch sweep counters, folded into the next cycle at finalization.
    counters: Mutex<Counters>,
    /// Cumulative granules reclaimed by mutator sweeps (at-allocation).
    freed_at_alloc: AtomicU64,
    /// Cumulative granules reclaimed by collector sweeps (between-cycle
    /// drain + finalization).
    freed_at_final: AtomicU64,
    /// Epochs published since startup.
    epochs: AtomicU64,
}

impl LazySweep {
    pub(crate) fn freed_at_alloc_granules(&self) -> u64 {
        self.freed_at_alloc.load(Ordering::Relaxed)
    }

    pub(crate) fn freed_at_final_granules(&self) -> u64 {
        self.freed_at_final.load(Ordering::Relaxed)
    }

    pub(crate) fn epochs_published(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Current unswept-garbage estimate in bytes (0 when drained or in
    /// eager mode).
    pub(crate) fn unswept_bytes(&self) -> u64 {
        self.unswept.load(Ordering::Relaxed)
    }
}

impl GcShared {
    /// Publishes a new sweep epoch at the point the eager sweep used to
    /// run.  The previous epoch must already be finalized (drained) —
    /// see the module invariant.  `bytes_traced` is the finished trace's
    /// live-byte counter, seeding the unswept-garbage estimate:
    /// `used − leased-LABs − traced − allocated-during-cycle`, clamped
    /// at zero.  For partial collections the untraced old generation
    /// inflates the estimate (garbage is *over*-estimated, delaying the
    /// full trigger, never firing it early); the estimate is corrected
    /// downward by every swept segment and zeroed at finalization, and
    /// allocation failure still requests a full collection directly, so
    /// the overshoot cannot wedge the heap.
    pub(crate) fn lazy_publish(&self, bytes_traced: u64) {
        debug_assert!(self.config.lazy_sweep);
        let frontier = self.heap.frontier_granule();
        let params = self.sweep_params();
        let used = self
            .heap
            .used_bytes()
            .saturating_sub(self.heap.lab_leased_bytes()) as u64;
        let est = used
            .saturating_sub(bytes_traced)
            .saturating_sub(self.control.bytes_since_cycle());
        #[cfg(debug_assertions)]
        {
            let (ce, cg) = unstamp(self.lazy.cursor.load(Ordering::Relaxed));
            let (pe, pf) = unstamp(self.lazy.published.load(Ordering::Relaxed));
            debug_assert!(
                ce == pe && cg >= pf,
                "epoch published over undrained predecessor"
            );
        }
        let ep = (self.lazy.epochs.fetch_add(1, Ordering::Relaxed) + 1) as u32;
        // Publish order: params and frontier first, the cursor last with
        // release — a claimant whose CAS wins on a cursor carrying the
        // new stamp is guaranteed to read matching-stamp params and
        // frontier words.  `completed` resets here because the previous
        // epoch was finalized: no claimant can be in flight.
        self.lazy
            .params
            .store(stamp(ep, pack_params(&params)), Ordering::Release);
        self.lazy
            .published
            .store(stamp(ep, frontier as u32), Ordering::Release);
        self.lazy.completed.store(0, Ordering::Relaxed);
        self.lazy.unswept.store(est, Ordering::Relaxed);
        self.lazy.cursor.store(stamp(ep, 1), Ordering::Release);
        self.lazy.active.store(frontier > 1, Ordering::Release);
        self.obs.event(EventKind::SweepProgress, 1, frontier as u64);
    }

    /// Claims the next unclaimed segment of the current epoch with a
    /// lock-free CAS on the epoch-stamped cursor.  `None` when no epoch
    /// is active or it is fully claimed.
    ///
    /// Epoch consistency: the cursor is read first; a frontier whose
    /// stamp disagrees means a publish is mid-flight between the two
    /// stores, so the claim retries (the disagreement is transient —
    /// the cursor is published last).  A successful CAS under stamp *e*
    /// pins epoch *e* open: `lazy_finalize` cannot count this claim
    /// complete before [`LazySweep::completed`] is bumped, so no
    /// publish can replace the params/frontier words read afterwards.
    fn lazy_claim(&self) -> Option<(SweepParams, usize, usize)> {
        if !self.lazy.active.load(Ordering::Acquire) {
            return None;
        }
        loop {
            let cur = self.lazy.cursor.load(Ordering::Acquire);
            let (ep, g) = unstamp(cur);
            let (fe, frontier) = unstamp(self.lazy.published.load(Ordering::Acquire));
            if ep != fe {
                std::hint::spin_loop();
                continue;
            }
            if g >= frontier {
                return None;
            }
            let next = stamp(ep, g + SWEEP_SEGMENT_GRANULES as u32);
            if self
                .lazy
                .cursor
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let (pe, pw) = unstamp(self.lazy.params.load(Ordering::Acquire));
                debug_assert_eq!(pe, ep, "params stamp diverged from a claimed cursor");
                return Some((unpack_params(pw), g as usize, frontier as usize));
            }
        }
    }

    /// Claims and sweeps one epoch segment through the shared
    /// [`GcShared::sweep_range`] kernel.
    ///
    /// Returns `None` when there was nothing to claim; otherwise
    /// `Some(direct)`, where `direct` is a reclaimed chunk satisfying
    /// `want = (min, preferred)` handed straight to the caller *without*
    /// passing through the free lists.  A direct chunk's granules stay
    /// in `used_granules` (dead object → caller's LAB/object, exactly
    /// the balance the eager free-then-realloc sequence reaches);
    /// everything else is flushed with `free_chunk_batch`, which routes
    /// each chunk to the shard owning its blocks (§4.5 holds unchanged).
    pub(crate) fn lazy_sweep_segment(
        &self,
        who: LazyWho,
        want: Option<(u32, u32)>,
    ) -> Option<Option<Chunk>> {
        let (params, seg_start, frontier) = self.lazy_claim()?;
        // Delay/yield injection at the segment-claim window.  A claimed
        // segment must be swept exactly once, so the verdict is ignored
        // (as at `collector.worker`).
        let _ = fault::point("mutator.lazy_sweep.segment");
        let colors = self.heap.colors();
        let seg_stop = (seg_start + SWEEP_SEGMENT_GRANULES).min(frontier);
        // Straddler snap, identical to the parallel sweep: a leading
        // Interior run belongs to the previous segment's claimant.
        let snapped = if seg_start == 1 {
            1
        } else {
            colors.object_end(seg_start - 1, frontier)
        };
        let mut counters = Counters::default();
        let mut buf = SweepBuf::new(seg_start + SWEEP_PROGRESS_STRIDE);
        if snapped < seg_stop {
            self.sweep_range(
                &params,
                snapped,
                seg_stop,
                frontier,
                &mut counters,
                None,
                &mut buf,
            );
        }
        Self::flush_run(&mut buf.run, &mut buf.batch);
        // Run-reclaim injection window, before the reclaimed runs become
        // visible to other allocators (verdict ignored, as above).
        let _ = fault::point("mutator.lazy_sweep.segment");
        let direct =
            want.and_then(|(min, preferred)| extract_direct(&mut buf.batch, min, preferred));
        self.heap.free_chunk_batch(&buf.batch);

        let freed_granules = counters.bytes_freed / GRANULE as u64;
        match who {
            LazyWho::Mutator => self
                .lazy
                .freed_at_alloc
                .fetch_add(freed_granules, Ordering::Relaxed),
            LazyWho::Collector => self
                .lazy
                .freed_at_final
                .fetch_add(freed_granules, Ordering::Relaxed),
        };
        let _ = self
            .lazy
            .unswept
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(counters.bytes_freed))
            });
        self.lazy.counters.lock().merge(&counters);
        // Completion *after* all effects of the sweep are published;
        // pairs with the acquire read in `lazy_finalize`.
        self.lazy.completed.fetch_add(1, Ordering::Release);
        self.obs
            .event(EventKind::SweepProgress, seg_stop as u64, frontier as u64);
        Some(direct)
    }

    /// Drains the current epoch to completion: claims and sweeps every
    /// remaining segment, then waits for in-flight claimants (a mutator
    /// mid-segment) to finish.  Idempotent and safe to race with
    /// concurrent sweepers; a no-op in eager mode or between epochs.
    ///
    /// Abort-safety (DESIGN.md §4.8): the supervisor's cycle abort calls
    /// this mid-recovery.  Any epoch open at that point was published by
    /// the *previous completed* cycle — the schedule's `lazy-finalize`
    /// bucket drains it before the aborted cycle's toggle, and the
    /// reclaim bucket's kill site fires before `lazy_publish` — so its
    /// sweep parameters (clear color, frontier) are still valid and
    /// finalizing frees only granules that cycle proved dead.  Restarting
    /// mid-epoch is therefore sound: recovery never sweeps under stale
    /// parameters, it just finishes the old epoch eagerly.
    pub(crate) fn lazy_finalize(&self, who: LazyWho) {
        if !self.config.lazy_sweep || !self.lazy.active.load(Ordering::Acquire) {
            return;
        }
        while self.lazy_sweep_segment(who, None).is_some() {}
        let mut backoff = Backoff::new();
        loop {
            // The cursor is stable here (fully claimed, and no publish
            // can race a finalize), so the claim count derives from it.
            let (_, g) = unstamp(self.lazy.cursor.load(Ordering::Acquire));
            let claimed = (g.saturating_sub(1) as u64) / SWEEP_SEGMENT_GRANULES as u64;
            if self.lazy.completed.load(Ordering::Acquire) >= claimed {
                break;
            }
            backoff.snooze();
        }
        self.lazy.active.store(false, Ordering::Release);
        self.lazy.unswept.store(0, Ordering::Relaxed);
    }

    /// Collector-side between-cycle drain: sweeps leftover epoch
    /// segments one at a time, bailing out as soon as a cycle request
    /// arrives (or shutdown begins) so lazy reclamation never delays a
    /// due collection.  A no-op in eager mode.
    pub(crate) fn lazy_drain_between_cycles(&self) {
        if !self.config.lazy_sweep {
            return;
        }
        while !self.control.has_request()
            && !self.control.is_shutdown()
            && self.lazy_sweep_segment(LazyWho::Collector, None).is_some()
        {}
    }

    /// Takes (and resets) the accumulated epoch sweep counters, to be
    /// merged into the finalizing cycle's stats.
    pub(crate) fn lazy_take_counters(&self) -> Counters {
        std::mem::take(&mut *self.lazy.counters.lock())
    }
}

/// Picks a chunk satisfying `(min, preferred)` out of a reclaimed
/// batch, mirroring the free-list policy: the smallest chunk that can be
/// split to exactly `preferred`, else the largest chunk of at least
/// `min` taken whole.
fn extract_direct(batch: &mut Vec<Chunk>, min: u32, preferred: u32) -> Option<Chunk> {
    let mut split_idx: Option<usize> = None;
    let mut whole_idx: Option<usize> = None;
    for (i, c) in batch.iter().enumerate() {
        if c.len >= preferred && split_idx.is_none_or(|b| c.len < batch[b].len) {
            split_idx = Some(i);
        }
        if c.len >= min && whole_idx.is_none_or(|b| c.len > batch[b].len) {
            whole_idx = Some(i);
        }
    }
    if let Some(i) = split_idx {
        let c = batch[i];
        if c.len == preferred {
            batch.swap_remove(i);
        } else {
            batch[i] = Chunk::new(c.start + preferred, c.len - preferred);
        }
        return Some(Chunk::new(c.start, preferred));
    }
    whole_idx.map(|i| batch.swap_remove(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use otf_heap::{Color, ObjShape, ObjectRef};

    fn setup(cfg: GcConfig) -> GcShared {
        GcShared::new(
            cfg.with_lazy_sweep(true)
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        )
    }

    fn alloc(sh: &GcShared, granules: usize, color: Color) -> ObjectRef {
        let shape = ObjShape::new(0, granules * 2 - 1);
        assert_eq!(shape.size_granules(), granules);
        let c = sh
            .heap
            .alloc_chunk(granules as u32, granules as u32)
            .unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn publish_then_finalize_matches_eager_sweep() {
        let lazy = setup(GcConfig::generational());
        let eager = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        for sh in [&lazy, &eager] {
            sh.colors.toggle();
            alloc(sh, 2, Color::White);
            alloc(sh, 3, Color::Black);
            alloc(sh, 2, Color::White);
            alloc(sh, 1, Color::Yellow);
        }
        lazy.lazy_publish(0);
        lazy.lazy_finalize(LazyWho::Collector);
        let mut cx = crate::cycle::CycleCx::new(&eager);
        eager.sweep(&mut cx);

        let c = lazy.lazy_take_counters();
        assert_eq!(c.objects_freed, cx.counters.objects_freed);
        assert_eq!(c.bytes_freed, cx.counters.bytes_freed);
        assert_eq!(c.objects_survived, cx.counters.objects_survived);
        assert_eq!(
            lazy.heap.free_list_granules(),
            eager.heap.free_list_granules()
        );
        for g in 1..lazy.heap.frontier_granule() {
            assert_eq!(
                lazy.heap.colors().get_raw_relaxed(g),
                eager.heap.colors().get_raw_relaxed(g),
                "color mismatch at granule {g}"
            );
        }
    }

    #[test]
    fn sharded_finalize_matches_eager_per_shard_balances() {
        // Per-shard balance parity is asserted on a heap image that fits
        // in one sweep segment: the lazy drain then delivers exactly the
        // chunk stream of the eager serial sweep, so even the
        // order-sensitive shard-to-store extraction decisions match.
        // (Across segment boundaries the split of the identical free set
        // between shard pools and the store may legitimately differ —
        // boundary-split runs cross the extraction threshold at
        // different times, just as the eager *parallel* sweep differs
        // from serial at partition boundaries.)
        let cfg = || {
            GcConfig::generational()
                .with_alloc_shards(4)
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
        };
        let lazy = GcShared::new(cfg().with_lazy_sweep(true));
        let eager = GcShared::new(cfg());
        for sh in [&lazy, &eager] {
            sh.colors.toggle();
            let mut state = 0x5EED_0BAD_F00Du64;
            for _ in 0..400 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 33;
                let shard = (r % 4) as usize;
                let granules = 1 + (r % 7) as usize;
                let color = if r.is_multiple_of(3) {
                    Color::Black
                } else {
                    Color::White
                };
                let shape = ObjShape::new(0, granules * 2 - 1);
                let c = sh
                    .heap
                    .alloc_chunk_on(shard, granules as u32, granules as u32)
                    .unwrap();
                sh.heap.install_object(c.start as usize, &shape, color);
            }
        }
        assert!(
            lazy.heap.frontier_granule() < crate::sweep::SWEEP_SEGMENT_GRANULES,
            "test premise: whole heap image within one sweep segment"
        );
        lazy.lazy_publish(0);
        lazy.lazy_finalize(LazyWho::Collector);
        let mut cx = crate::cycle::CycleCx::new(&eager);
        eager.sweep(&mut cx);
        for s in 0..4 {
            assert_eq!(
                lazy.heap.shard_free_granules(s),
                eager.heap.shard_free_granules(s),
                "shard {s} free balance diverges from eager sweep"
            );
        }
        assert_eq!(
            lazy.heap.free_list_granules(),
            eager.heap.free_list_granules()
        );
    }

    #[test]
    fn mutator_segment_sweep_hands_chunk_directly() {
        let sh = setup(GcConfig::generational());
        sh.colors.toggle();
        let dead = alloc(&sh, 64, Color::White);
        alloc(&sh, 1, Color::Black);
        let used_before = sh.heap.used_granules();
        sh.lazy_publish(0);
        let direct = sh
            .lazy_sweep_segment(LazyWho::Mutator, Some((8, 64)))
            .expect("one segment to claim")
            .expect("direct chunk from the dead run");
        assert_eq!(direct.start as usize, dead.granule());
        assert_eq!(direct.len, 64);
        // Direct handoff keeps the granules in `used` (dead object →
        // caller-held space), so the balance matches eager
        // free-then-realloc.
        assert_eq!(sh.heap.used_granules(), used_before);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::Free);
        assert_eq!(sh.lazy.freed_at_alloc_granules(), 64);
    }

    #[test]
    fn finalize_is_idempotent_and_zeroes_unswept() {
        let sh = setup(GcConfig::generational());
        sh.colors.toggle();
        alloc(&sh, 4, Color::White);
        sh.lazy_publish(0);
        assert!(sh.lazy.unswept_bytes() > 0);
        sh.lazy_finalize(LazyWho::Collector);
        assert_eq!(sh.lazy.unswept_bytes(), 0);
        sh.lazy_finalize(LazyWho::Collector);
        assert!(sh.lazy_sweep_segment(LazyWho::Mutator, None).is_none());
    }

    #[test]
    fn every_dead_granule_reclaimed_by_exactly_one_claimant() {
        // Property: racing claimants partition the epoch — the total
        // reclaimed equals the dead population exactly (no loss, no
        // double count), and every dead granule ends `Free`.
        let sh = std::sync::Arc::new(setup(GcConfig::generational()));
        sh.colors.toggle();
        let mut dead_granules = 0u64;
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        for i in 0..3000usize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            let granules = 1 + (r % 9) as usize;
            let color = if r.is_multiple_of(3) {
                Color::Black
            } else {
                Color::White
            };
            alloc(&sh, granules, color);
            if color == Color::White {
                dead_granules += granules as u64;
            }
            if i == 1500 {
                // Straddles several 16384-granule segments.
                alloc(&sh, 40_000, Color::White);
                dead_granules += 40_000;
            }
        }
        assert!(sh.heap.frontier_granule() > 2 * SWEEP_SEGMENT_GRANULES);
        sh.lazy_publish(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sh = &sh;
                s.spawn(
                    move || {
                        while sh.lazy_sweep_segment(LazyWho::Mutator, None).is_some() {}
                    },
                );
            }
        });
        sh.lazy_finalize(LazyWho::Collector);
        let c = sh.lazy_take_counters();
        assert_eq!(c.bytes_freed, dead_granules * GRANULE as u64);
        assert_eq!(sh.lazy.freed_at_alloc_granules(), dead_granules);
        let colors = sh.heap.colors();
        for g in 1..sh.heap.frontier_granule() {
            assert_ne!(colors.get_raw_relaxed(g), Color::White as u8);
        }
    }

    #[test]
    fn sweep_params_pack_round_trips() {
        for aging in [None, Some(2), Some(10), Some(0xFE)] {
            for (clear, alloc) in [(Color::White, Color::Yellow), (Color::Yellow, Color::White)] {
                for trace_target in [Color::Black, Color::White] {
                    let p = SweepParams {
                        clear,
                        alloc,
                        aging,
                        trace_target,
                    };
                    assert_eq!(unpack_params(pack_params(&p)), p);
                }
            }
        }
    }

    #[test]
    fn stamped_words_split_epoch_and_payload() {
        assert_eq!(unstamp(stamp(7, 123)), (7, 123));
        assert_eq!(unstamp(stamp(u32::MAX, u32::MAX)), (u32::MAX, u32::MAX));
        // Same granule under different epochs compares unequal — the
        // ABA protection the claim CAS relies on.
        assert_ne!(stamp(1, 1), stamp(2, 1));
    }

    #[test]
    fn extract_direct_prefers_split_of_smallest_sufficient() {
        let mut batch = vec![Chunk::new(10, 4), Chunk::new(100, 32), Chunk::new(200, 16)];
        let c = extract_direct(&mut batch, 4, 8).unwrap();
        assert_eq!((c.start, c.len), (200, 8));
        assert!(batch.contains(&Chunk::new(208, 8)));
        // No chunk ≥ preferred: largest ≥ min taken whole.
        let mut batch = vec![Chunk::new(10, 4), Chunk::new(50, 6)];
        let c = extract_direct(&mut batch, 3, 64).unwrap();
        assert_eq!((c.start, c.len), (50, 6));
        // Nothing ≥ min at all.
        let mut batch = vec![Chunk::new(10, 2)];
        assert!(extract_direct(&mut batch, 3, 64).is_none());
        assert_eq!(batch.len(), 1);
    }
}
