//! Lazy allocation-time sweep benchmark: collector cycle time and
//! mutator allocation latency, eager vs lazy sweep back-end.
//!
//! Runs db, mtrt and compress under the generational and
//! non-generational collectors in both sweep modes (`GcConfig::
//! lazy_sweep`), verifying the heap after every run.  In lazy mode the
//! collector's cycle ends at mark termination (fence + epoch publish)
//! and mutators sweep-to-allocate on the LAB-refill path, so the
//! headline figure is the collector cycle-time reduction; the cost side
//! is watched through the allocation-stall and LAB-refill histograms.
//!
//! Four gates:
//!
//! * **cycle-time reduction** — mean cycle time of db under the
//!   generational collector must drop by at least 30% in lazy mode (the
//!   sweep phase is gone from the cycle; only mark remains).
//! * **end-state parity** — for every workload × config cell, the
//!   surviving live set after shutdown (all LABs retired, the final
//!   epoch finalized) must match the eager run of the same seed within
//!   1%: deferring the sweep must never change what survives.
//! * **alloc-stall envelope** — p99.99 allocation stall in lazy mode
//!   stays within 10x + 20 ms of the eager value for the same cell
//!   (the same catch-an-order-of-magnitude slack the parallel harness
//!   uses, since a quick-mode p99.99 is a single worst sample on an
//!   oversubscribed container).
//! * **LAB-refill tail** — p99.99 LAB-refill latency in lazy mode stays
//!   within 10x + 1 ms of the eager peer.  The lazy refill legitimately
//!   sweeps a segment before allocating, but claiming that segment is a
//!   single CAS on the epoch-stamped cursor; the gate pins the removal
//!   of the old per-claim mutex, whose convoy under racing refills put
//!   the tail an order of magnitude past the sweep cost itself.
//!
//! Emits `BENCH_lazy.json` (override with `OTF_BENCH_OUT`); exits
//! non-zero on heap violations or a gate failure.  Accepts the standard
//! figure-harness flags (`--scale`, `--reps`, `--seed`, `--quick`).

use std::time::Duration;

use otf_bench::measure::{pinned, Options};
use otf_bench::table::Table;
use otf_gc::GcConfig;
use otf_support::hist::Snapshot;
use otf_workloads::driver;
use otf_workloads::{Compress, Db, RayTracer, Workload};

/// Merged measurement of one workload × config × sweep-mode cell.
struct LazyResult {
    workload: &'static str,
    config: &'static str,
    lazy: bool,
    /// Median elapsed wall time across reps.
    elapsed: Duration,
    /// Total cycles across reps.
    cycles: usize,
    /// Mean cycle duration across every cycle of every rep, in ms.
    cycle_avg_ms: f64,
    pause: Snapshot,
    alloc_stall: Snapshot,
    lab_refill: Snapshot,
    /// Post-shutdown live-set bytes, one entry per rep (reps use
    /// distinct seeds, so parity is checked rep-by-rep).
    used_final: Vec<usize>,
    lazy_freed_at_alloc: u64,
    lazy_freed_at_final: u64,
    lazy_epochs: u64,
    violations: usize,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn sweep_name(lazy: bool) -> &'static str {
    if lazy {
        "lazy"
    } else {
        "eager"
    }
}

fn run_case(
    workload: &'static str,
    w: &dyn Workload,
    cfg: GcConfig,
    config: &'static str,
    lazy: bool,
    o: &Options,
) -> LazyResult {
    let mut pause = Snapshot::default();
    let mut alloc_stall = Snapshot::default();
    let mut lab_refill = Snapshot::default();
    let mut cycles = 0usize;
    let mut cycle_ns = 0u128;
    let mut used_final = Vec::new();
    let mut freed_alloc = 0u64;
    let mut freed_final = 0u64;
    let mut epochs = 0u64;
    let mut violations = 0usize;
    let mut elapses = Vec::new();
    for rep in 0..o.reps.max(1) {
        let (r, v) = driver::run_workload_verified(
            w,
            pinned(cfg.with_lazy_sweep(lazy)),
            o.seed + rep as u64,
        );
        pause.merge(&r.stats.pause);
        alloc_stall.merge(&r.stats.alloc_stall);
        lab_refill.merge(&r.stats.lab_refill);
        cycles += r.stats.cycles.len();
        cycle_ns += r
            .stats
            .cycles
            .iter()
            .map(|c| c.duration.as_nanos())
            .sum::<u128>();
        used_final.push(r.stats.used_bytes);
        freed_alloc += r.stats.lazy_freed_at_alloc_granules;
        freed_final += r.stats.lazy_freed_at_final_granules;
        epochs += r.stats.lazy_epochs;
        violations += v.len();
        elapses.push(r.elapsed);
    }
    elapses.sort_unstable();
    LazyResult {
        workload,
        config,
        lazy,
        elapsed: elapses[elapses.len() / 2],
        cycles,
        cycle_avg_ms: if cycles == 0 {
            0.0
        } else {
            cycle_ns as f64 / cycles as f64 / 1e6
        },
        pause,
        alloc_stall,
        lab_refill,
        used_final,
        lazy_freed_at_alloc: freed_alloc,
        lazy_freed_at_final: freed_final,
        lazy_epochs: epochs,
        violations,
    }
}

fn eager_peer<'a>(rows: &'a [LazyResult], r: &LazyResult) -> Option<&'a LazyResult> {
    rows.iter()
        .find(|b| !b.lazy && b.workload == r.workload && b.config == r.config)
}

/// Headline gate: mean cycle time of db/gen drops ≥ 30% in lazy mode.
fn cycle_gate(rows: &[LazyResult]) -> (f64, bool) {
    let eager = rows
        .iter()
        .find(|r| !r.lazy && r.workload == "db" && r.config == "gen");
    let lazy = rows
        .iter()
        .find(|r| r.lazy && r.workload == "db" && r.config == "gen");
    match (eager, lazy) {
        (Some(e), Some(l)) if e.cycle_avg_ms > 0.0 && l.cycles > 0 => {
            let reduction = 1.0 - l.cycle_avg_ms / e.cycle_avg_ms;
            let ok = reduction >= 0.30;
            if !ok {
                eprintln!(
                    "error: db/gen cycle avg {:.3} ms lazy vs {:.3} ms eager — \
                     {:.1}% reduction, gate requires >= 30%",
                    l.cycle_avg_ms,
                    e.cycle_avg_ms,
                    reduction * 100.0
                );
            }
            (reduction, ok)
        }
        _ => {
            eprintln!("error: db/gen recorded no cycles — cycle-time gate cannot run");
            (0.0, false)
        }
    }
}

/// End-state parity: every lazy cell's post-shutdown live set matches
/// its eager peer rep-by-rep within 1%.
fn parity_ok(rows: &[LazyResult]) -> bool {
    rows.iter().filter(|r| r.lazy).all(|r| {
        let Some(e) = eager_peer(rows, r) else {
            return false;
        };
        r.used_final.len() == e.used_final.len()
            && r.used_final.iter().zip(&e.used_final).all(|(&l, &b)| {
                let ok = (l as f64 - b as f64).abs() <= b as f64 * 0.01;
                if !ok {
                    eprintln!(
                        "error: {}/{} end-state {l} bytes lazy vs {b} bytes eager — \
                         deferred sweep changed the surviving live set",
                        r.workload, r.config
                    );
                }
                ok
            })
    })
}

/// p99.99 allocation stall in lazy mode stays within 10x + 20 ms of the
/// eager peer.
fn stall_ok(rows: &[LazyResult]) -> bool {
    rows.iter().filter(|r| r.lazy).all(|r| {
        let base = eager_peer(rows, r)
            .map(|b| b.alloc_stall.quantile(0.9999))
            .unwrap_or(0);
        let bound = base.saturating_mul(10) + 20_000_000;
        let ok = r.alloc_stall.quantile(0.9999) <= bound;
        if !ok {
            eprintln!(
                "error: {}/{} lazy alloc-stall p99.99 {:.1} us vs eager {:.1} us — \
                 envelope broken",
                r.workload,
                r.config,
                us(r.alloc_stall.quantile(0.9999)),
                us(base)
            );
        }
        ok
    })
}

/// LAB-refill tail: p99.99 refill latency in lazy mode stays within
/// 10x + 1 ms of the eager peer.  The refill path legitimately sweeps a
/// segment (sweep-to-allocate), so it cannot match eager exactly — but
/// the claim is a single CAS on the epoch-stamped cursor, so the tail
/// must not show the old mutex-convoy spike (770 us vs 50 us eager in
/// the PR-9 data) growing back into the tens of milliseconds.
fn refill_ok(rows: &[LazyResult]) -> bool {
    rows.iter().filter(|r| r.lazy).all(|r| {
        let base = eager_peer(rows, r)
            .map(|b| b.lab_refill.quantile(0.9999))
            .unwrap_or(0);
        let bound = base.saturating_mul(10) + 1_000_000;
        let ok = r.lab_refill.quantile(0.9999) <= bound;
        if !ok {
            eprintln!(
                "error: {}/{} lazy lab-refill p99.99 {:.1} us vs eager {:.1} us — \
                 segment-claim tail outside the 10x + 1 ms envelope",
                r.workload,
                r.config,
                us(r.lab_refill.quantile(0.9999)),
                us(base)
            );
        }
        ok
    })
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[LazyResult],
    reduction: f64,
    cycle_ok: bool,
    parity: bool,
    stall: bool,
    refill: bool,
    o: &Options,
    path: &str,
) {
    let mut j = String::from("{\n  \"bench\": \"lazy\",\n");
    j.push_str(&format!(
        "  \"scale\": {}, \"reps\": {}, \"seed\": {},\n",
        o.scale, o.reps, o.seed
    ));
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"sweep\": \"{}\", \
             \"elapsed_ms\": {:.2}, \"cycles\": {}, \"cycle_avg_ms\": {:.3}, \
             \"pause_p999_us\": {:.1}, \"alloc_stall_p9999_us\": {:.1}, \
             \"lab_refill_p9999_us\": {:.1}, \"lazy_freed_at_alloc_granules\": {}, \
             \"lazy_freed_at_final_granules\": {}, \"lazy_epochs\": {}, \
             \"used_final\": {}, \"violations\": {}}}{}\n",
            json_escape_free(r.workload),
            json_escape_free(r.config),
            sweep_name(r.lazy),
            r.elapsed.as_secs_f64() * 1e3,
            r.cycles,
            r.cycle_avg_ms,
            us(r.pause.quantile(0.999)),
            us(r.alloc_stall.quantile(0.9999)),
            us(r.lab_refill.quantile(0.9999)),
            r.lazy_freed_at_alloc,
            r.lazy_freed_at_final,
            r.lazy_epochs,
            r.used_final.last().copied().unwrap_or(0),
            r.violations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"cycle_reduction_db_gen\": {reduction:.3}, \"cycle_gate_ok\": {cycle_ok}, \
         \"parity_ok\": {parity}, \"stall_ok\": {stall}, \"refill_ok\": {refill}\n}}\n"
    ));
    if let Err(e) = std::fs::write(path, &j) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}

fn main() {
    let o = Options::from_args();
    let quick = std::env::var_os("OTF_BENCH_QUICK").is_some() || o.scale < 0.2;
    let wl_scale = if quick { o.scale.min(0.1) } else { o.scale };

    let workloads: [(&'static str, Box<dyn Workload>); 3] = [
        ("db", Box::new(Db::new().scaled(wl_scale))),
        ("mtrt", Box::new(RayTracer::mtrt().scaled(wl_scale))),
        ("compress", Box::new(Compress::new().scaled(wl_scale))),
    ];
    let configs: [(&'static str, GcConfig); 2] = [
        ("gen", GcConfig::generational()),
        ("nogen", GcConfig::non_generational()),
    ];

    println!("== lazy allocation-time sweep: eager vs lazy back-end ==\n");
    let mut rows = Vec::new();
    for (name, w) in &workloads {
        for &(cfg_name, cfg) in &configs {
            for lazy in [false, true] {
                let r = run_case(name, w.as_ref(), cfg, cfg_name, lazy, &o);
                println!(
                    "{name}/{cfg_name:<6} {:<5}  cycle avg {:>7.3} ms  stall p99.99 {:>9.1} us  \
                     refill p99.99 {:>9.1} us  violations {}",
                    sweep_name(lazy),
                    r.cycle_avg_ms,
                    us(r.alloc_stall.quantile(0.9999)),
                    us(r.lab_refill.quantile(0.9999)),
                    r.violations,
                );
                rows.push(r);
            }
        }
    }

    let total_violations: usize = rows.iter().map(|r| r.violations).sum();
    let (reduction, cycle_ok) = cycle_gate(&rows);
    let parity = parity_ok(&rows);
    let stall = stall_ok(&rows);
    let refill = refill_ok(&rows);

    let mut t = Table::new("lazy sweep: cycle time and allocation latency by sweep mode");
    t.header([
        "workload",
        "config",
        "sweep",
        "cycle avg",
        "stall p99.99",
        "refill p99.99",
        "freed@alloc",
        "freed@final",
        "cycles",
    ]);
    for r in &rows {
        t.row([
            r.workload.to_string(),
            r.config.to_string(),
            sweep_name(r.lazy).to_string(),
            format!("{:.3} ms", r.cycle_avg_ms),
            format!("{:.1}", us(r.alloc_stall.quantile(0.9999))),
            format!("{:.1}", us(r.lab_refill.quantile(0.9999))),
            r.lazy_freed_at_alloc.to_string(),
            r.lazy_freed_at_final.to_string(),
            r.cycles.to_string(),
        ]);
    }
    println!();
    t.print();
    println!(
        "\ndb/gen cycle-time reduction {:.1}% (gate: >= 30%)",
        reduction * 100.0
    );

    let path = std::env::var("OTF_BENCH_OUT").unwrap_or_else(|_| "BENCH_lazy.json".to_string());
    write_json(&rows, reduction, cycle_ok, parity, stall, refill, &o, &path);

    if total_violations > 0 {
        eprintln!("{total_violations} heap violation(s) across the matrix");
        std::process::exit(1);
    }
    if !cycle_ok || !parity || !stall || !refill {
        eprintln!(
            "gate failure: cycle_gate_ok={cycle_ok} parity_ok={parity} stall_ok={stall} \
             refill_ok={refill}"
        );
        std::process::exit(1);
    }
}
