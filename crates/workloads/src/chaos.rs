//! *Chaos* — an error-tolerant churn workload for fault-injection runs.
//!
//! The paper's benchmarks (and their re-creations in this crate) treat an
//! allocation failure as a test failure: they `unwrap` every `alloc`.
//! Under an injected fault plan that is exactly wrong — forced
//! heap-pressure failures (`heap.alloc_chunk` refusing chunks) and a
//! deliberately panicked collector are *expected* outcomes a schedule
//! must survive.  This workload exercises every mutator-facing surface
//! (allocation, the write barrier with old→young stores, shadow-stack
//! roots, `cooperate`, `parked`) while treating [`AllocError`] as data:
//!
//! * [`OutOfMemory`](AllocError::OutOfMemory) → drop the oldest retained
//!   roots (releasing memory to the next collection) and keep going;
//! * [`CollectorUnavailable`](AllocError::CollectorUnavailable) → the
//!   collector is gone; stop cleanly so the harness can assert on the
//!   poisoned state.
//!
//! The *call sequence* per `(thread, seed)` is deterministic whenever
//! every allocation succeeds, so a single-threaded run under a
//! delay/yield-only fault plan hits each injection point an identical
//! number of times — the property the byte-for-byte reproducibility
//! tests build on.

use otf_gc::{AllocError, Mutator, ObjShape};
use otf_support::rand::RngExt;

use crate::toolkit::rng_for;
use crate::Workload;

/// The chaos workload: seeded allocate/store/drop churn that tolerates
/// injected allocation failures.
#[derive(Clone, Debug)]
pub struct Chaos {
    /// Number of mutator threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops: usize,
    /// Maximum shadow-stack roots retained per thread (the live set).
    pub max_roots: usize,
}

impl Chaos {
    /// Default configuration: 2 threads, modest churn.
    pub fn new() -> Chaos {
        Chaos {
            threads: 2,
            ops: 30_000,
            max_roots: 256,
        }
    }

    /// Sets the number of mutator threads.
    pub fn with_threads(mut self, n: usize) -> Chaos {
        self.threads = n.max(1);
        self
    }

    /// Scales the number of operations per thread.
    pub fn scaled(mut self, scale: f64) -> Chaos {
        self.ops = ((self.ops as f64 * scale) as usize).max(1);
        self
    }
}

impl Default for Chaos {
    fn default() -> Self {
        Chaos::new()
    }
}

impl Workload for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, thread: usize, seed: u64, m: &mut Mutator) {
        let mut rng = rng_for(seed, thread as u64);
        let node = ObjShape::new(2, 1);
        let mut ops_done = 0u64;
        for op in 0..self.ops {
            let r = match m.alloc(&node) {
                Ok(r) => r,
                Err(AllocError::CollectorUnavailable { .. }) => return,
                Err(AllocError::OutOfMemory { .. }) => {
                    // Shed half the live set and retry later; the freed
                    // objects are exactly what the next cycle reclaims.
                    let keep = m.root_len() / 2;
                    m.root_truncate(keep);
                    m.cooperate();
                    continue;
                }
            };
            m.write_data(r, 0, op as u64);
            // Link the new node to a retained survivor: once the survivor
            // is promoted this is an old→young store, the write-barrier
            // traffic the card-marking protocol exists for.
            if m.root_len() > 0 {
                let parent = m.root_get(rng.random_range(0..m.root_len()));
                m.write_ref(parent, rng.random_range(0..2usize), r);
                m.write_ref(r, 0, parent);
            }
            if m.root_len() < self.max_roots {
                m.root_push(r);
            } else {
                // Replace a random retained root (its old value may die).
                let slot = rng.random_range(0..self.max_roots);
                m.root_set(slot, r);
            }
            ops_done += 1;
            if op % 64 == 0 {
                m.cooperate();
            }
            if op % 4096 == 0 {
                // A short park: the collector handshakes on our behalf.
                m.parked(|| std::hint::black_box(0));
            }
        }
        std::hint::black_box(ops_done);
        m.root_truncate(0);
    }
}
