//! `HeapSpace`: the assembled heap substrate.
//!
//! Ties together the arena, the color and age side tables, the segregated
//! free lists and the bump frontier, and provides the two operations the
//! collector and mutators build on:
//!
//! * **chunk allocation** — free-list first-fit with splitting, falling
//!   back to bumping the frontier inside the committed region (mutators
//!   lease LAB-sized chunks and bump-allocate privately inside them);
//! * **object installation** — writing a new object into owned memory and
//!   *publishing* it with a release store of its start-granule color, the
//!   ordering that makes the concurrent color-table heap walk safe.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::addr::{ObjectRef, GRANULE};
use crate::age::{AgeTable, INFANT_AGE};
use crate::arena::Arena;
use crate::color::{Color, ColorTable};
use crate::freelist::{Chunk, FreeLists};
use crate::layout::{Header, ObjShape};
use crate::shard::ShardedAlloc;

/// Default LAB (local allocation buffer) size in granules (32 KB).
pub const DEFAULT_LAB_GRANULES: u32 = 2048;

/// One step of a linear heap parse (see [`HeapSpace::parse_at`]).
#[derive(Copy, Clone, Debug)]
pub enum ParseStep {
    /// A free granule; advance by one.
    Free,
    /// An interior granule (only seen when racing an in-flight allocation
    /// or when entering a region mid-object); advance by one.
    Interior,
    /// An object starts here; advance by `header.size_granules()`.
    Object {
        /// The object's reference.
        obj: ObjectRef,
        /// The color observed (acquire) at the start granule.
        color: Color,
        /// The object's decoded header.
        header: Header,
    },
}

/// The chunk-allocation back-end behind [`HeapSpace`]: either the
/// original single free list + bump frontier, or the sharded block-store
/// arrangement (DESIGN.md §4.5).  The unsharded arm is the semantic
/// oracle — the sharded arm must be observationally identical through
/// the `HeapSpace` surface.
#[derive(Debug)]
enum Backend {
    Unsharded {
        freelists: FreeLists,
        /// Next never-allocated granule (bump frontier).
        frontier: AtomicUsize,
    },
    Sharded(ShardedAlloc),
}

/// The heap substrate shared by mutators and the collector.
#[derive(Debug)]
pub struct HeapSpace {
    arena: Arena,
    colors: ColorTable,
    ages: AgeTable,
    backend: Backend,
    /// Granules currently held by objects or leased LABs.
    used_granules: AtomicUsize,
    /// Granules leased to LABs but not yet carved into objects (see
    /// [`HeapSpace::note_lab_lease`]).  Subtracted from the trigger
    /// policy's used figure so mostly-empty LABs don't read as pressure.
    lab_leased: AtomicUsize,
    objects_allocated: AtomicU64,
    bytes_allocated: AtomicU64,
}

impl HeapSpace {
    /// Creates a heap with `max_bytes` reserved and `initial_bytes`
    /// committed.  Granule 0 is reserved so that offset 0 can be the null
    /// reference.
    pub fn new(max_bytes: usize, initial_bytes: usize) -> HeapSpace {
        HeapSpace::build(max_bytes, initial_bytes, 0)
    }

    /// Creates a heap whose allocator is sharded `shards` ways over a
    /// global block store (see `crates/heap/src/shard.rs`).  `shards`
    /// must be non-zero; `with_shards(m, i, 1)` is a single-shard heap
    /// that still routes through the block store (the N=1 parity arm).
    pub fn with_shards(max_bytes: usize, initial_bytes: usize, shards: usize) -> HeapSpace {
        assert!(shards > 0, "shard count must be non-zero");
        HeapSpace::build(max_bytes, initial_bytes, shards)
    }

    fn build(max_bytes: usize, initial_bytes: usize, shards: usize) -> HeapSpace {
        let arena = Arena::new(max_bytes, initial_bytes);
        let granules = arena.max_granules();
        let backend = if shards == 0 {
            Backend::Unsharded {
                freelists: FreeLists::new(),
                frontier: AtomicUsize::new(1), // granule 0 reserved for null
            }
        } else {
            // The sharded store leases whole blocks; granule 0 is kept out
            // of circulation by trimming it from block 0's first lease.
            Backend::Sharded(ShardedAlloc::new(shards, granules))
        };
        HeapSpace {
            colors: ColorTable::new(granules),
            ages: AgeTable::new(granules),
            arena,
            backend,
            used_granules: AtomicUsize::new(1),
            lab_leased: AtomicUsize::new(0),
            objects_allocated: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Number of allocation shards (1 for the unsharded back-end).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Unsharded { .. } => 1,
            Backend::Sharded(s) => s.shard_count(),
        }
    }

    /// Free granules pooled in shard `i` (0 for the unsharded back-end,
    /// which keeps everything in the global list).
    pub fn shard_free_granules(&self, i: usize) -> u64 {
        match &self.backend {
            Backend::Unsharded { .. } => 0,
            Backend::Sharded(s) => s.shard_free_granules(i),
        }
    }

    /// Free granules held by the global block store (unsharded: the
    /// single free list, so the split-out accessors still sum to
    /// [`free_list_granules`](HeapSpace::free_list_granules)).
    pub fn store_free_granules(&self) -> u64 {
        match &self.backend {
            Backend::Unsharded { freelists, .. } => freelists.free_granules(),
            Backend::Sharded(s) => s.store_free_granules(),
        }
    }

    /// The underlying arena.
    #[inline]
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// The color table.
    #[inline]
    pub fn colors(&self) -> &ColorTable {
        &self.colors
    }

    /// The age table.
    #[inline]
    pub fn ages(&self) -> &AgeTable {
        &self.ages
    }

    /// Granules in use (objects + leased LABs), in granules.
    ///
    /// A lazy-sweep segment handed directly to a requesting mutator's
    /// LAB (DESIGN.md §4.6) never passes through [`Self::free_chunk_batch`],
    /// so its dead object bytes stay counted here as they become leased
    /// LAB bytes — the trigger controller compensates for still-unswept
    /// garbage separately, with the epoch's unswept estimate.
    #[inline]
    pub fn used_granules(&self) -> usize {
        self.used_granules.load(Ordering::Relaxed)
    }

    /// Bytes in use.
    #[inline]
    pub fn used_bytes(&self) -> usize {
        self.used_granules() * GRANULE
    }

    /// Committed heap size in bytes (soft limit).
    #[inline]
    pub fn committed_bytes(&self) -> usize {
        self.arena.committed_bytes()
    }

    /// Maximum heap size in bytes.
    #[inline]
    pub fn max_bytes(&self) -> usize {
        self.arena.max_bytes()
    }

    /// Grows the committed region; returns the new committed byte size or
    /// `None` when already at maximum.
    pub fn grow(&self) -> Option<usize> {
        self.arena.grow()
    }

    /// Grows the committed region to exactly `min(target, max)` bytes.
    pub fn grow_to(&self, target: usize) -> usize {
        self.arena.grow_to(target)
    }

    /// Resizes the committed region to `target` bytes (growing *or*
    /// shrinking), clamped so it never drops below the bump-frontier
    /// high-watermark (memory behind the frontier may be live).
    pub fn commit_to(&self, target: usize) -> usize {
        let floor = self.frontier_granule() * GRANULE;
        self.arena.commit_to(target, floor)
    }

    /// The first granule the bump frontier has not yet passed.  A linear
    /// heap parse needs to cover `[1, frontier_granule())`.  In the
    /// sharded back-end this is the block frontier — a block-granular
    /// high watermark with the same monotonicity guarantee.
    #[inline]
    pub fn frontier_granule(&self) -> usize {
        match &self.backend {
            Backend::Unsharded { frontier, .. } => frontier.load(Ordering::Acquire),
            Backend::Sharded(s) => s.frontier_granule(),
        }
    }

    /// Total objects ever allocated.
    #[inline]
    pub fn objects_allocated(&self) -> u64 {
        self.objects_allocated.load(Ordering::Relaxed)
    }

    /// Total bytes ever allocated (granule-rounded).
    #[inline]
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Allocates a chunk of at least `min` granules (preferring up to
    /// `preferred`) on behalf of `shard` (ignored by the unsharded
    /// back-end; reduced modulo the shard count otherwise).  Returns
    /// `None` when the committed region is exhausted — the caller then
    /// grows the heap or triggers a collection.
    pub fn alloc_chunk_on(&self, shard: usize, min: u32, preferred: u32) -> Option<Chunk> {
        // Chaos harness hook: a failing injection simulates heap pressure
        // (the committed region "is" exhausted), driving the caller into
        // its collection-or-grow slow path on a deterministic schedule.
        // Kept ahead of the back-end dispatch so a fault models the whole
        // heap running dry, not one shard missing its pool.
        if otf_support::fault::point("heap.alloc_chunk") {
            return None;
        }
        let chunk = match &self.backend {
            Backend::Unsharded {
                freelists,
                frontier,
            } => Self::alloc_unsharded(freelists, frontier, &self.arena, min, preferred),
            Backend::Sharded(s) => s.alloc(
                shard % s.shard_count(),
                min,
                preferred,
                self.arena.committed_granules(),
            ),
        }?;
        self.used_granules
            .fetch_add(chunk.len as usize, Ordering::Relaxed);
        Some(chunk)
    }

    /// [`alloc_chunk_on`](HeapSpace::alloc_chunk_on) for shard-oblivious
    /// callers (the collector, tests): allocates on shard 0.
    pub fn alloc_chunk(&self, min: u32, preferred: u32) -> Option<Chunk> {
        self.alloc_chunk_on(0, min, preferred)
    }

    /// The original single-list allocation path: free-list best-fit, then
    /// bump the frontier inside the committed region.
    fn alloc_unsharded(
        freelists: &FreeLists,
        frontier: &AtomicUsize,
        arena: &Arena,
        min: u32,
        preferred: u32,
    ) -> Option<Chunk> {
        if let Some(c) = freelists.alloc(min, preferred) {
            return Some(c);
        }
        loop {
            let cur = frontier.load(Ordering::Acquire);
            let committed = arena.committed_granules();
            if cur + min as usize > committed {
                return None;
            }
            let take = (preferred as usize).min(committed - cur).max(min as usize) as u32;
            if frontier
                .compare_exchange(
                    cur,
                    cur + take as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Arena::new bounds the heap to the u32 offset space, so
                // the frontier can never pass it.
                debug_assert!(cur <= u32::MAX as usize, "frontier beyond u32 offsets");
                return Some(Chunk::new(cur as u32, take));
            }
        }
    }

    /// Returns a chunk to the free lists (sweep-reclaimed runs and retired
    /// LAB tails).  The chunk's granules must already be `Free` in the
    /// color table.
    pub fn free_chunk(&self, chunk: Chunk) {
        debug_assert!(chunk.len > 0);
        self.used_granules
            .fetch_sub(chunk.len as usize, Ordering::Relaxed);
        match &self.backend {
            Backend::Unsharded { freelists, .. } => freelists.insert(chunk),
            Backend::Sharded(s) => s.free(chunk),
        }
    }

    /// Returns many chunks to the free lists — one lock acquisition per
    /// touched shard (exactly one on the unsharded back-end).  Empty
    /// batches return without touching any lock, so sweep workers whose
    /// segment reclaimed nothing don't contend.
    pub fn free_chunk_batch(&self, chunks: &[Chunk]) {
        if chunks.is_empty() {
            return;
        }
        // Batch invariants asserted once here, not per chunk downstream.
        debug_assert!(
            chunks.iter().all(|c| c.len > 0),
            "zero-length chunk in batch"
        );
        let total: usize = chunks.iter().map(|c| c.len as usize).sum();
        self.used_granules.fetch_sub(total, Ordering::Relaxed);
        match &self.backend {
            Backend::Unsharded { freelists, .. } => freelists.insert_batch(chunks),
            Backend::Sharded(s) => s.free_batch(chunks),
        }
    }

    /// Free granules currently on the free lists (all shards plus the
    /// block store).
    pub fn free_list_granules(&self) -> u64 {
        match &self.backend {
            Backend::Unsharded { freelists, .. } => freelists.free_granules(),
            Backend::Sharded(s) => s.free_granules(),
        }
    }

    /// A copy of every free chunk (diagnostics / heap verification),
    /// sorted by start granule.
    pub fn free_list_snapshot(&self) -> Vec<Chunk> {
        match &self.backend {
            Backend::Unsharded { freelists, .. } => freelists.snapshot(),
            Backend::Sharded(s) => s.snapshot(),
        }
    }

    /// Records `granules` leased into a mutator LAB (bumped at chunk
    /// grant time by the caller).  The leased-unused figure is the
    /// correction term for the collection-trigger policy: `used_granules`
    /// counts whole LABs as used the moment they are granted, so without
    /// it many mostly-empty LABs read as heap pressure and fire premature
    /// full collections.
    #[inline]
    pub fn note_lab_lease(&self, granules: u32) {
        self.lab_leased
            .fetch_add(granules as usize, Ordering::Relaxed);
    }

    /// Records `granules` carved out of a LAB into an object (no longer
    /// leased-unused).
    #[inline]
    pub fn note_lab_carve(&self, granules: u32) {
        self.lab_leased
            .fetch_sub(granules as usize, Ordering::Relaxed);
    }

    /// Records `granules` of LAB remainder retired back to the free
    /// lists (freed without ever holding an object).
    #[inline]
    pub fn note_lab_retire(&self, granules: u32) {
        self.lab_leased
            .fetch_sub(granules as usize, Ordering::Relaxed);
    }

    /// Granules currently leased to LABs but not yet carved into objects.
    #[inline]
    pub fn lab_leased_granules(&self) -> usize {
        self.lab_leased.load(Ordering::Relaxed)
    }

    /// Bytes currently leased to LABs but not yet carved into objects.
    #[inline]
    pub fn lab_leased_bytes(&self) -> usize {
        self.lab_leased_granules() * GRANULE
    }

    /// Writes a new object of `shape` at `start` (granule index) inside
    /// memory the caller owns (a LAB carve or a direct chunk), publishing
    /// it with `color` and age [`INFANT_AGE`].
    ///
    /// Publication order is the heart of the concurrent heap-parse
    /// protocol: all words are zeroed and the header written first, then
    /// interior color bytes, and the start-granule color *last* with
    /// release ordering.  A concurrent scanner either sees the final color
    /// (and can safely read the header) or a `Free`/`Interior` byte (and
    /// skips one granule).
    pub fn install_object(&self, start: usize, shape: &ObjShape, color: Color) -> ObjectRef {
        let size = shape.size_granules();
        let obj = ObjectRef::from_granule(start);
        // Zero every word so stale reference slots from a previous object
        // can never be traced.
        let first_word = obj.word();
        let n_words = size * crate::addr::WORDS_PER_GRANULE;
        for w in first_word..first_word + n_words {
            self.arena.store_word(w, 0, Ordering::Relaxed);
        }
        self.arena.write_header(obj, shape.encode_header());
        if size > 1 {
            self.colors.fill(start + 1, size - 1, Color::Interior);
        }
        self.ages.set(start, INFANT_AGE);
        self.colors.set(start, color); // release: publishes the object
        self.objects_allocated.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add((size * GRANULE) as u64, Ordering::Relaxed);
        obj
    }

    /// Reads one parse step at granule `g`.  Drive a linear walk with:
    ///
    /// ```
    /// # use otf_heap::{HeapSpace, ParseStep};
    /// # let heap = HeapSpace::new(1 << 16, 1 << 16);
    /// let mut g = 1;
    /// while g < heap.frontier_granule() {
    ///     g += match heap.parse_at(g) {
    ///         ParseStep::Object { header, .. } => header.size_granules(),
    ///         _ => 1,
    ///     };
    /// }
    /// ```
    #[inline]
    pub fn parse_at(&self, g: usize) -> ParseStep {
        match self.colors.get(g) {
            Color::Free => ParseStep::Free,
            Color::Interior => ParseStep::Interior,
            color => {
                let obj = ObjectRef::from_granule(g);
                ParseStep::Object {
                    obj,
                    color,
                    header: self.arena.header(obj),
                }
            }
        }
    }

    /// Calls `f(obj, color, header)` for every object *starting* in the
    /// granule range `[start, end)` — the dirty-card scan primitive.
    pub fn for_each_object_start<F: FnMut(ObjectRef, Color, Header)>(
        &self,
        start: usize,
        end: usize,
        mut f: F,
    ) {
        let end = end.min(self.frontier_granule());
        let mut g = start;
        while g < end {
            g += match self.parse_at(g) {
                ParseStep::Object { obj, color, header } => {
                    let size = header.size_granules();
                    f(obj, color, header);
                    size
                }
                _ => 1,
            };
        }
    }
}

/// A mutator-private local allocation buffer: a leased chunk bump-allocated
/// without synchronization (the paper's thread-local allocation).
#[derive(Debug, Default)]
pub struct Lab {
    cur: u32,
    end: u32,
}

impl Lab {
    /// An empty LAB (first allocation will refill).
    pub fn new() -> Lab {
        Lab { cur: 0, end: 0 }
    }

    /// Remaining granules.
    #[inline]
    pub fn remaining(&self) -> u32 {
        self.end - self.cur
    }

    /// Tries to carve `n` granules; returns the start granule.
    #[inline]
    pub fn try_carve(&mut self, n: u32) -> Option<u32> {
        if self.cur + n <= self.end {
            let start = self.cur;
            self.cur += n;
            Some(start)
        } else {
            None
        }
    }

    /// Replaces the LAB with `chunk`, returning the old remainder (to be
    /// given back to the free lists) if any.
    pub fn refill(&mut self, chunk: Chunk) -> Option<Chunk> {
        let old = self.take_remainder();
        self.cur = chunk.start;
        self.end = chunk.end();
        old
    }

    /// Takes the unallocated remainder out of the LAB, leaving it empty.
    pub fn take_remainder(&mut self) -> Option<Chunk> {
        let rest = if self.cur < self.end {
            Some(Chunk::new(self.cur, self.end - self.cur))
        } else {
            None
        };
        self.cur = 0;
        self.end = 0;
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> HeapSpace {
        HeapSpace::new(1 << 16, 1 << 16) // 64 KB
    }

    #[test]
    fn frontier_allocation_skips_null_granule() {
        let h = small_heap();
        let c = h.alloc_chunk(4, 4).unwrap();
        assert_eq!(c.start, 1);
        assert_eq!(c.len, 4);
        assert_eq!(h.frontier_granule(), 5);
    }

    #[test]
    fn freelist_preferred_over_frontier() {
        let h = small_heap();
        let c = h.alloc_chunk(4, 4).unwrap();
        h.colors()
            .fill(c.start as usize, c.len as usize, Color::Free);
        h.free_chunk(c);
        let c2 = h.alloc_chunk(2, 2).unwrap();
        assert_eq!(c2.start, 1); // reused, not frontier
    }

    #[test]
    fn used_accounting() {
        let h = small_heap();
        let before = h.used_granules();
        let c = h.alloc_chunk(8, 8).unwrap();
        assert_eq!(h.used_granules(), before + 8);
        h.free_chunk(c);
        assert_eq!(h.used_granules(), before);
    }

    #[test]
    fn exhaustion_returns_none() {
        let h = HeapSpace::new(1 << 12, 1 << 12); // 4 KB = 256 granules
        assert!(h.alloc_chunk(255, 255).is_some());
        assert!(h.alloc_chunk(16, 16).is_none());
    }

    #[test]
    fn committed_limits_frontier_until_grow() {
        let h = HeapSpace::new(1 << 13, 1 << 12);
        assert!(h.alloc_chunk(255, 255).is_some());
        assert!(h.alloc_chunk(16, 16).is_none());
        assert!(h.grow().is_some());
        assert!(h.alloc_chunk(16, 16).is_some());
    }

    #[test]
    fn install_publishes_object() {
        let h = small_heap();
        let shape = ObjShape::new(2, 1).with_class(3);
        let c = h
            .alloc_chunk(shape.size_granules() as u32, shape.size_granules() as u32)
            .unwrap();
        let obj = h.install_object(c.start as usize, &shape, Color::White);
        assert_eq!(h.colors().get(obj.granule()), Color::White);
        assert_eq!(h.colors().get(obj.granule() + 1), Color::Interior);
        assert_eq!(h.ages().get(obj.granule()), INFANT_AGE);
        let hd = h.arena().header(obj);
        assert_eq!(hd.ref_slots(), 2);
        assert_eq!(hd.class_id(), 3);
        // Slots are zeroed.
        assert!(h.arena().load_ref_slot(obj, 0).is_null());
        assert!(h.arena().load_ref_slot(obj, 1).is_null());
        assert_eq!(h.objects_allocated(), 1);
        assert_eq!(h.bytes_allocated(), shape.size_bytes() as u64);
    }

    #[test]
    fn install_zeroes_stale_slots() {
        let h = small_heap();
        let shape = ObjShape::new(2, 0);
        let n = shape.size_granules() as u32;
        let c = h.alloc_chunk(n, n).unwrap();
        let obj = h.install_object(c.start as usize, &shape, Color::White);
        h.arena().store_ref_slot(obj, 0, ObjectRef::from_granule(7));
        // Simulate free + reallocation at the same spot.
        h.colors().fill(obj.granule(), n as usize, Color::Free);
        let obj2 = h.install_object(obj.granule(), &shape, Color::Yellow);
        assert!(h.arena().load_ref_slot(obj2, 0).is_null());
    }

    #[test]
    fn parse_walk_sees_all_objects() {
        let h = small_heap();
        let mut allocated = Vec::new();
        for i in 0..10 {
            let shape = ObjShape::new(i % 3, i);
            let n = shape.size_granules() as u32;
            let c = h.alloc_chunk(n, n).unwrap();
            allocated.push(h.install_object(c.start as usize, &shape, Color::White));
        }
        let mut seen = Vec::new();
        h.for_each_object_start(1, h.frontier_granule(), |obj, color, _| {
            assert_eq!(color, Color::White);
            seen.push(obj);
        });
        assert_eq!(seen, allocated);
    }

    #[test]
    fn for_each_object_start_respects_range() {
        let h = small_heap();
        let shape = ObjShape::new(1, 2); // 2 granules
        let mut objs = Vec::new();
        for _ in 0..4 {
            let c = h.alloc_chunk(2, 2).unwrap();
            objs.push(h.install_object(c.start as usize, &shape, Color::White));
        }
        // Objects start at granules 1,3,5,7. Range [3,5) should see only
        // the one at granule 3.
        let mut seen = Vec::new();
        h.for_each_object_start(3, 5, |o, _, _| seen.push(o));
        assert_eq!(seen, vec![objs[1]]);
    }

    #[test]
    fn sharded_first_alloc_skips_null_granule() {
        let h = HeapSpace::with_shards(1 << 16, 1 << 16, 4);
        let c = h.alloc_chunk_on(0, 4, 4).unwrap();
        assert_eq!(c.start, 1, "block 0's lease is trimmed past null");
        assert_eq!(c.len, 4);
    }

    #[test]
    fn sharded_n1_parity_with_unsharded() {
        // The N=1 sharded arm must hand out the same chunks as the
        // unsharded oracle for a serial in-block sequence.
        let a = HeapSpace::new(1 << 16, 1 << 16);
        let b = HeapSpace::with_shards(1 << 16, 1 << 16, 1);
        for (min, pref) in [(4, 4), (2, 8), (1, 1), (16, 16)] {
            let ca = a.alloc_chunk(min, pref).unwrap();
            let cb = b.alloc_chunk(min, pref).unwrap();
            assert_eq!(ca, cb, "alloc({min},{pref}) diverged");
            assert_eq!(a.used_granules(), b.used_granules());
        }
        let ca = a.alloc_chunk(4, 4).unwrap();
        let cb = b.alloc_chunk(4, 4).unwrap();
        a.free_chunk(ca);
        b.free_chunk(cb);
        assert_eq!(a.used_granules(), b.used_granules());
        assert_eq!(a.alloc_chunk(4, 4), b.alloc_chunk(4, 4), "freed run reused");
    }

    #[test]
    fn sharded_exhaustion_returns_none() {
        let h = HeapSpace::with_shards(1 << 12, 1 << 12, 2); // one block
        assert!(h.alloc_chunk_on(0, 255, 255).is_some());
        assert!(h.alloc_chunk_on(1, 16, 16).is_none());
    }

    #[test]
    fn sharded_committed_limits_frontier_until_grow() {
        let h = HeapSpace::with_shards(1 << 13, 1 << 12, 2);
        assert!(h.alloc_chunk_on(0, 255, 255).is_some());
        assert!(h.alloc_chunk_on(1, 16, 16).is_none());
        assert!(h.grow().is_some());
        assert!(h.alloc_chunk_on(1, 16, 16).is_some());
    }

    #[test]
    fn sharded_used_accounting_and_free_routing() {
        let h = HeapSpace::with_shards(1 << 16, 1 << 16, 2);
        let before = h.used_granules();
        let c = h.alloc_chunk_on(1, 8, 8).unwrap();
        assert_eq!(h.used_granules(), before + 8);
        h.free_chunk(c);
        assert_eq!(h.used_granules(), before);
        assert!(h.shard_free_granules(1) >= 8, "free routed to owner");
        let total: u64 = (0..h.shard_count())
            .map(|i| h.shard_free_granules(i))
            .sum::<u64>()
            + h.store_free_granules();
        assert_eq!(total, h.free_list_granules());
    }

    #[test]
    fn lab_lease_accounting() {
        let h = small_heap();
        assert_eq!(h.lab_leased_granules(), 0);
        h.note_lab_lease(100);
        assert_eq!(h.lab_leased_granules(), 100);
        h.note_lab_carve(30);
        h.note_lab_carve(20);
        assert_eq!(h.lab_leased_granules(), 50);
        h.note_lab_retire(50);
        assert_eq!(h.lab_leased_granules(), 0);
        assert_eq!(h.lab_leased_bytes(), 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let h = small_heap();
        let before = h.used_granules();
        h.free_chunk_batch(&[]);
        assert_eq!(h.used_granules(), before);
        assert_eq!(h.free_list_granules(), 0);
    }

    #[test]
    fn lab_carving() {
        let mut lab = Lab::new();
        assert!(lab.try_carve(1).is_none());
        assert!(lab.refill(Chunk::new(10, 8)).is_none());
        assert_eq!(lab.try_carve(3), Some(10));
        assert_eq!(lab.try_carve(5), Some(13));
        assert!(lab.try_carve(1).is_none());
        assert!(lab.take_remainder().is_none());
    }

    #[test]
    fn lab_refill_returns_remainder() {
        let mut lab = Lab::new();
        lab.refill(Chunk::new(0, 10));
        lab.try_carve(4);
        let old = lab.refill(Chunk::new(100, 20)).unwrap();
        assert_eq!(old, Chunk::new(4, 6));
        assert_eq!(lab.try_carve(20), Some(100));
    }
}
