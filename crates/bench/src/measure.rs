//! Repeated-measurement helpers: every figure datum is the median of
//! several runs (the paper repeated each parallel run 8 times; we default
//! to 3 and expose `--reps`).

use std::time::Duration;

use otf_gc::GcConfig;
use otf_workloads::driver::{self, RunResult};
use otf_workloads::Workload;

/// Harness options shared by all figure binaries.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Workload scale factor (1.0 = full size).
    pub scale: f64,
    /// Repetitions per measurement (median taken).
    pub reps: usize,
    /// Concurrent application copies for the "multiprocessor" metric
    /// (the paper ran 4 on its 4-way machine).
    pub copies: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 1.0, reps: 3, copies: 4, seed: 42 }
    }
}

impl Options {
    /// Parses harness options from command-line arguments:
    /// `--scale X`, `--reps N`, `--copies N`, `--seed N`, `--quick`
    /// (= `--scale 0.15 --reps 1 --copies 2`).
    pub fn from_args() -> Options {
        let mut o = Options::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    o.scale = 0.15;
                    o.reps = 1;
                    o.copies = 2;
                }
                "--scale" => {
                    i += 1;
                    o.scale = args[i].parse().expect("--scale takes a float");
                }
                "--reps" => {
                    i += 1;
                    o.reps = args[i].parse().expect("--reps takes an integer");
                }
                "--copies" => {
                    i += 1;
                    o.copies = args[i].parse().expect("--copies takes an integer");
                }
                "--seed" => {
                    i += 1;
                    o.seed = args[i].parse().expect("--seed takes an integer");
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        o
    }
}

/// Runs one copy of `workload` `reps` times; returns the run with the
/// median elapsed time.
pub fn median_run(w: &dyn Workload, cfg: GcConfig, o: &Options) -> RunResult {
    let mut runs: Vec<RunResult> =
        (0..o.reps.max(1)).map(|r| driver::run_workload(w, cfg, o.seed + r as u64)).collect();
    runs.sort_by_key(|r| r.elapsed);
    runs.swap_remove(runs.len() / 2)
}

/// Runs `copies` concurrent copies `reps` times; returns the median batch
/// elapsed time (the paper's multiprocessor measurement).
pub fn median_copies(w: &dyn Workload, cfg: GcConfig, o: &Options) -> Duration {
    let mut times: Vec<Duration> = (0..o.reps.max(1))
        .map(|r| driver::run_copies(w, cfg, o.seed + r as u64, o.copies).0)
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Percentage improvement of generational over non-generational for both
/// the multiprocessor (concurrent copies) and uniprocessor (single copy)
/// methodologies: `(multi, uni)`.
pub fn improvements(
    w: &dyn Workload,
    gen_cfg: GcConfig,
    nogen_cfg: GcConfig,
    o: &Options,
) -> (f64, f64) {
    let multi_nogen = median_copies(w, nogen_cfg, o);
    let multi_gen = median_copies(w, gen_cfg, o);
    let uni_nogen = median_run(w, nogen_cfg, o).elapsed;
    let uni_gen = median_run(w, gen_cfg, o).elapsed;
    (
        driver::percent_improvement(multi_nogen, multi_gen),
        driver::percent_improvement(uni_nogen, uni_gen),
    )
}

/// Uniprocessor-only improvement (used by the parameter-sweep figures,
/// which the paper also measured on a single configuration axis).
pub fn uni_improvement(w: &dyn Workload, gen_cfg: GcConfig, nogen_cfg: GcConfig, o: &Options) -> f64 {
    let nogen = median_run(w, nogen_cfg, o).elapsed;
    let gen = median_run(w, gen_cfg, o).elapsed;
    driver::percent_improvement(nogen, gen)
}
