//! Minimal aligned-table rendering for the figure harness: prints to
//! stdout and returns markdown-ish text for `EXPERIMENTS.md`.

/// A simple table: header row + data rows, rendered with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title (e.g. "Figure 9: ...").
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header cells.
    pub fn header<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders with aligned columns (first column left-aligned, the rest
    /// right-aligned).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i == 0 {
                    line.push_str(&format!(" {cell:<w$} |"));
                } else {
                    line.push_str(&format!(" {cell:>w$} |"));
                }
            }
            line.push('\n');
            line
        };
        if !self.header.is_empty() {
            out.push_str(&render_row(&self.header));
            let mut sep = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                if i == 0 {
                    sep.push_str(&format!("{:-<1$}|", "", w + 2));
                } else {
                    sep.push_str(&format!("{:->1$}:|", "", w + 1));
                }
            }
            sep.push('\n');
            out.push_str(&sep);
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a percentage with one decimal and an explicit sign.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}")
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an optional float with no decimals ("N/A" when absent).
pub fn f0_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.0}"),
        None => "N/A".into(),
    }
}

/// Formats an optional float with one decimal ("N/A" when absent).
pub fn f1_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "N/A".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Figure X: demo");
        t.header(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let r = t.render();
        assert!(r.contains("## Figure X: demo"));
        assert!(r.contains("| a      |     1 |"));
        assert!(r.contains("| longer |    22 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(3.45159), "+3.5");
        assert_eq!(pct(-2.0), "-2.0");
        assert_eq!(f0_opt(None), "N/A");
        assert_eq!(f0_opt(Some(12.7)), "13");
        assert_eq!(f1_opt(Some(12.75)), "12.8");
    }
}
