//! # otf-support — the collector's zero-dependency substrate
//!
//! Everything in this workspace builds offline against `std` alone; this
//! crate supplies the few primitives the collector and its harnesses used
//! to pull from external crates:
//!
//! * [`sync`] — poison-free [`Mutex`](sync::Mutex)/[`Condvar`](sync::Condvar)/
//!   [`RwLock`](sync::RwLock) wrappers over `std::sync` with the
//!   `parking_lot`-style guard API (no `.unwrap()` at every lock site),
//!   plus [`Backoff`](sync::Backoff), the exponential spin/yield/park
//!   ramp for the collector's quiescence loops.
//! * [`queue`] — [`SegQueue`](queue::SegQueue), a mutex-sharded MPMC
//!   injector queue for the gray-object work list.
//! * [`steal`] — [`WorkerDeque`](steal::WorkerDeque), the per-worker
//!   work-stealing deque (owner LIFO / thief FIFO, Chase–Lev access
//!   pattern) under the parallel mark phase, with the same
//!   conservative-length emptiness discipline as `SegQueue`.
//! * [`packet`] — the work-packet scheduler: typed [`Packet`](packet::Packet)s
//!   drained from phase buckets that open in a declared order
//!   ([`Schedule`](packet::Schedule)), with per-bucket closing conditions
//!   — the MMTk-style frame the collector's plans enqueue into.
//! * [`rand`] — a seedable SplitMix64-seeded xoshiro256++ PRNG behind the
//!   small [`RngExt`](rand::RngExt)/[`SeedableRng`](rand::SeedableRng)
//!   API the workloads consume.
//! * [`check`] — deterministic randomized testing: a seeded case
//!   generator plus shrink-by-halving, replacing `proptest`.
//! * [`bench`] — a minimal statistical micro-benchmark harness (warmup,
//!   N samples, median/p95), replacing `criterion`.
//! * [`hist`] — a mergeable, log-bucketed concurrent latency histogram
//!   with a lock-free, allocation-free record path, replacing
//!   `hdrhistogram` (the substrate of the collector's pause-time
//!   observability).
//! * [`tablescan`] — SWAR word-at-a-time scanning kernels over
//!   `[AtomicU8]` side tables (skip, run-end, count, bulk fill), the
//!   substrate under the collector's sweep and card scans.
//! * [`fault`] — deterministic, seeded fault injection: named injection
//!   points threaded through the collector's race windows that can
//!   delay, yield, or fail on a reproducible schedule; one relaxed load
//!   and a branch when disabled.
//!
//! The paper's own system (Domani, Kolodner & Petrank, PLDI 2000) was
//! self-contained inside the JVM, and the DLG lineage it extends needs
//! nothing beyond native synchronization primitives — this crate keeps
//! the reproduction equally self-contained.

#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod fault;
pub mod hist;
pub mod packet;
pub mod queue;
pub mod rand;
pub mod steal;
pub mod sync;
pub mod tablescan;
