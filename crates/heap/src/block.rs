//! The global block store: the arena carved into fixed-size block
//! regions that allocation shards lease and return wholesale.
//!
//! The store is the *only* globally shared allocation structure in the
//! sharded heap back-end (DESIGN.md §4.5).  Shards come here when their
//! private pool cannot satisfy a request (leasing whole blocks) and when
//! a freed run coalesces into whole blocks worth returning.  Everything
//! finer-grained — chunk splitting, coalescing, LAB carving — happens in
//! the owning shard, so the store's lock is touched roughly once per
//! `BLOCK_GRANULES` of allocation instead of once per chunk.
//!
//! A per-block **owner map** records which shard each block is leased to
//! (`0` = the store itself).  Frees are routed to the owning shard's
//! pool by this map; the map only changes at lease/return time, and a
//! block can only be returned when *all* of its granules sit in the
//! owning shard's pool — so no concurrent free can be in flight for a
//! block whose owner is changing (see `ShardedAlloc`).  These invariants
//! are stated over *frees*, not over who issues them: lazy-sweep
//! mutators (DESIGN.md §4.6) route their reclaimed runs through the same
//! owner map as eager sweep workers.

use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};

use crate::freelist::{Chunk, FreeLists};

/// Granules per block region: 4 KiB blocks at the 16-byte granule — the
/// store's lease/return unit and the granularity of shard ownership.
pub const BLOCK_GRANULES: usize = 256;

/// The global block store of the sharded heap back-end.
#[derive(Debug)]
pub struct BlockStore {
    /// Returned whole-block runs.  Every chunk in this pool is
    /// block-aligned and a block multiple; splits at block-multiple
    /// `preferred` sizes preserve the invariant.
    pool: FreeLists,
    /// Next never-leased block (bump frontier, in block units).
    frontier_block: AtomicUsize,
    /// Per-block owner: `0` = the store (never leased, or returned),
    /// otherwise `shard index + 1`.
    owners: Box<[AtomicU16]>,
}

impl BlockStore {
    /// A store covering `max_granules` of arena.
    pub fn new(max_granules: usize) -> BlockStore {
        let n_blocks = max_granules.div_ceil(BLOCK_GRANULES);
        let mut owners = Vec::with_capacity(n_blocks);
        owners.resize_with(n_blocks, || AtomicU16::new(0));
        BlockStore {
            pool: FreeLists::new(),
            frontier_block: AtomicUsize::new(0),
            owners: owners.into_boxed_slice(),
        }
    }

    /// Leases at least `min_blocks` contiguous blocks (preferring up to
    /// `pref_blocks`) to `shard`, from returned blocks or the block
    /// frontier.  The returned chunk is block-aligned, a block multiple,
    /// and in granule units; it may include block 0 (the caller reserves
    /// granule 0 for null).  Returns `None` when no run of `min_blocks`
    /// fits under `committed_blocks`.
    pub fn lease(
        &self,
        shard: usize,
        min_blocks: usize,
        pref_blocks: usize,
        committed_blocks: usize,
    ) -> Option<Chunk> {
        debug_assert!(min_blocks > 0 && pref_blocks >= min_blocks);
        let min_g = (min_blocks * BLOCK_GRANULES) as u32;
        let pref_g = (pref_blocks * BLOCK_GRANULES) as u32;
        if let Some(c) = self.pool.alloc(min_g, pref_g) {
            debug_assert_eq!(
                c.start as usize % BLOCK_GRANULES,
                0,
                "unaligned store chunk"
            );
            debug_assert_eq!(c.len as usize % BLOCK_GRANULES, 0, "ragged store chunk");
            self.set_owner_range(c, shard);
            return Some(c);
        }
        loop {
            let cur = self.frontier_block.load(Ordering::Acquire);
            if cur + min_blocks > committed_blocks {
                return None;
            }
            let take = pref_blocks.min(committed_blocks - cur).max(min_blocks);
            if self
                .frontier_block
                .compare_exchange(cur, cur + take, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let c = Chunk::new(
                    (cur * BLOCK_GRANULES) as u32,
                    (take * BLOCK_GRANULES) as u32,
                );
                self.set_owner_range(c, shard);
                return Some(c);
            }
        }
    }

    /// Returns whole blocks to the store.  `chunk` must be block-aligned,
    /// a block multiple, and every granule in it free (it was extracted
    /// from the owning shard's pool, which implies exactly that).
    pub fn give_back(&self, chunk: Chunk) {
        debug_assert_eq!(chunk.start as usize % BLOCK_GRANULES, 0, "unaligned return");
        debug_assert_eq!(chunk.len as usize % BLOCK_GRANULES, 0, "ragged return");
        self.clear_owner_range(chunk);
        self.pool.insert(chunk);
    }

    /// The shard owning the block containing granule `g`, or `None` when
    /// the block is held by the store (never leased, or returned).
    #[inline]
    pub fn owner_of_granule(&self, g: usize) -> Option<usize> {
        match self.owners[g / BLOCK_GRANULES].load(Ordering::Acquire) {
            0 => None,
            s => Some(s as usize - 1),
        }
    }

    /// First granule past the block frontier: the parse bound of the
    /// sharded back-end (a monotonic high watermark in block units).
    #[inline]
    pub fn frontier_granule(&self) -> usize {
        self.frontier_block.load(Ordering::Acquire) * BLOCK_GRANULES
    }

    /// Free granules currently held by the store's pool.
    pub fn free_granules(&self) -> u64 {
        self.pool.free_granules()
    }

    /// A copy of every chunk in the store's pool (diagnostics).
    pub fn snapshot(&self) -> Vec<Chunk> {
        self.pool.snapshot()
    }

    fn set_owner_range(&self, c: Chunk, shard: usize) {
        let tag = (shard + 1) as u16;
        for b in c.start as usize / BLOCK_GRANULES..c.end() as usize / BLOCK_GRANULES {
            self.owners[b].store(tag, Ordering::Release);
        }
    }

    fn clear_owner_range(&self, c: Chunk) {
        for b in c.start as usize / BLOCK_GRANULES..c.end() as usize / BLOCK_GRANULES {
            self.owners[b].store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: usize = BLOCK_GRANULES;

    #[test]
    fn frontier_lease_bumps_and_tracks_owner() {
        let s = BlockStore::new(16 * B);
        let c = s.lease(2, 1, 4, 16).unwrap();
        assert_eq!(c.start, 0);
        assert_eq!(c.len as usize, 4 * B);
        assert_eq!(s.frontier_granule(), 4 * B);
        for g in [0, B, 2 * B, 4 * B - 1] {
            assert_eq!(s.owner_of_granule(g), Some(2));
        }
        assert_eq!(s.owner_of_granule(4 * B), None);
    }

    #[test]
    fn lease_respects_committed_limit() {
        let s = BlockStore::new(16 * B);
        assert!(s.lease(0, 4, 4, 3).is_none());
        let c = s.lease(0, 2, 8, 3).unwrap();
        assert_eq!(c.len as usize, 3 * B, "degrades to what fits");
        assert!(s.lease(0, 1, 1, 3).is_none());
    }

    #[test]
    fn returned_blocks_are_re_leased_before_frontier() {
        let s = BlockStore::new(16 * B);
        let c = s.lease(0, 2, 2, 16).unwrap();
        s.give_back(c);
        assert_eq!(s.owner_of_granule(c.start as usize), None);
        assert_eq!(s.free_granules(), 2 * B as u64);
        let again = s.lease(1, 2, 2, 16).unwrap();
        assert_eq!(again.start, c.start, "pool preferred over frontier");
        assert_eq!(s.owner_of_granule(again.start as usize), Some(1));
        assert_eq!(s.free_granules(), 0);
    }

    #[test]
    fn pool_splits_stay_block_aligned() {
        let s = BlockStore::new(32 * B);
        let big = s.lease(0, 8, 8, 32).unwrap();
        s.give_back(big);
        let small = s.lease(1, 2, 2, 32).unwrap();
        assert_eq!(small.len as usize, 2 * B);
        assert_eq!(small.start as usize % B, 0);
        let rest = s.lease(1, 6, 6, 32).unwrap();
        assert_eq!(rest.len as usize, 6 * B);
        assert_eq!(rest.start as usize % B, 0);
    }
}
