//! The age table for the aging mechanism (§6).
//!
//! The paper keeps one byte of age per object *in a separate table* rather
//! than in headers: "sweep goes through the ages of all objects to increase
//! them; thus, for reasons of locality, it is better to go through a
//! separate table than to touch all the objects in the heap."  We index the
//! table by start granule, like the color table.
//!
//! An object is allocated with age 1 (§8.5.2: "an object is allocated with
//! age 1, and its age gets increased for each collection it survives") and
//! sweep stops incrementing once the age reaches the tenuring threshold.
//! The incrementing pass is part of the shared sweep kernel, so under the
//! lazy back-end (DESIGN.md §4.6) the bytes are bumped by whichever
//! mutator claims the segment — still exactly once per object per cycle,
//! because segments partition the heap and an epoch is finalized before
//! the next cycle begins.

use std::sync::atomic::{AtomicU8, Ordering};

/// Age assigned to an object at allocation.
pub const INFANT_AGE: u8 = 1;

/// One age byte per granule; only start granules are meaningful.
#[derive(Debug)]
pub struct AgeTable {
    bytes: Box<[AtomicU8]>,
}

impl AgeTable {
    /// Creates a table covering `granules` granules, all age 0 (free).
    pub fn new(granules: usize) -> AgeTable {
        let mut v = Vec::with_capacity(granules);
        v.resize_with(granules, || AtomicU8::new(0));
        AgeTable {
            bytes: v.into_boxed_slice(),
        }
    }

    /// Number of granules covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the table covers zero granules.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Size of the table itself in bytes (for page-touch accounting).
    #[inline]
    pub fn table_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The age of the object starting at `granule`.
    #[inline]
    pub fn get(&self, granule: usize) -> u8 {
        self.bytes[granule].load(Ordering::Relaxed)
    }

    /// Sets the age of the object starting at `granule`.  Only the
    /// allocating mutator (at creation) and the sweeping collector write
    /// ages, and never concurrently for the same live object, so no
    /// compare-and-swap is needed — the paper makes the same observation
    /// when arguing the age byte must not share a synchronized word with
    /// the card mark (§6).
    #[inline]
    pub fn set(&self, granule: usize, age: u8) {
        self.bytes[granule].store(age, Ordering::Relaxed);
    }

    /// Increments the age at `granule`, saturating at `cap` (the tenuring
    /// threshold).  Returns the new age.
    #[inline]
    pub fn increment_capped(&self, granule: usize, cap: u8) -> u8 {
        let cur = self.get(granule);
        if cur < cap {
            self.set(granule, cur + 1);
            cur + 1
        } else {
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let t = AgeTable::new(4);
        assert_eq!(t.get(2), 0);
    }

    #[test]
    fn set_get() {
        let t = AgeTable::new(4);
        t.set(1, INFANT_AGE);
        assert_eq!(t.get(1), 1);
    }

    #[test]
    fn increment_saturates_at_cap() {
        let t = AgeTable::new(2);
        t.set(0, INFANT_AGE);
        assert_eq!(t.increment_capped(0, 3), 2);
        assert_eq!(t.increment_capped(0, 3), 3);
        assert_eq!(t.increment_capped(0, 3), 3);
        assert_eq!(t.get(0), 3);
    }
}
