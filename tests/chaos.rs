//! Chaos harness: seeded fault-injection schedules against the live
//! collector.
//!
//! Each test installs a [`FaultPlan`] in the process-global registry
//! (serialized via [`fault::exclusive`] — the registry is shared), drives
//! real mutator threads against the collector, and then asserts the
//! hardened failure paths held: the heap verifies clean, a panicked
//! collector surfaces as [`AllocError::CollectorUnavailable`] instead of
//! a hang, the handshake watchdog trips on a non-cooperating mutator, and
//! the same seed reproduces the same injection sequence byte-for-byte.

use std::time::{Duration, Instant};

use otf_gengc::gc::{AllocError, Gc, GcConfig};
use otf_gengc::heap::ObjShape;
use otf_gengc::support::fault::{self, FaultPlan, FaultRule};
use otf_gengc::workloads::{driver, Chaos};

/// The three collector variants every schedule runs under.
fn variants() -> [GcConfig; 3] {
    [
        GcConfig::generational().with_young_size(256 << 10),
        GcConfig::non_generational(),
        GcConfig::aging(3).with_young_size(256 << 10),
    ]
}

/// Determinism: a single mutator thread under a mutator-side delay/yield
/// plan must produce the *identical* injection log on every run — the
/// per-hit decision is a pure function of `(seed, point, hit)`, and with
/// one thread the hit order is the program order.
#[test]
fn same_seed_reproduces_identical_injection_sequence() {
    let _serial = fault::exclusive();
    let plan = || {
        FaultPlan::new(0xC0FFEE)
            .rule(
                FaultRule::at("mutator.cooperate")
                    .delaying(0.3, 50)
                    .yielding(0.3),
            )
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.2))
            .rule(FaultRule::at("mutator.lab.refill").delaying(0.5, 30))
    };
    let w = Chaos::new().with_threads(1).scaled(0.1);
    let mut logs = Vec::new();
    for _ in 0..2 {
        fault::install(plan());
        let _ = driver::run_workload(&w, GcConfig::generational().with_young_size(256 << 10), 17);
        logs.push(fault::uninstall());
    }
    assert!(!logs[0].is_empty(), "the plan never fired");
    assert_eq!(
        logs[0], logs[1],
        "same seed must reproduce the same injection sequence"
    );
}

/// The seeded chaos matrix: every collector variant × both sweep modes
/// survives both a scheduling-storm plan (delays and yields inside the
/// protocol's race windows — including the lazy segment-claim and
/// run-reclaim windows) and a failure-storm plan (refused chunk
/// allocations) with a structurally consistent heap at the end.
#[test]
fn chaos_matrix_verifies_clean_under_fault_plans() {
    let _serial = fault::exclusive();
    let storm: fn() -> FaultPlan = || {
        FaultPlan::new(7)
            .rule(
                FaultRule::at("mutator.cooperate")
                    .delaying(0.1, 200)
                    .yielding(0.2),
            )
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.1))
            .rule(FaultRule::at("mutator.lab.refill").delaying(0.1, 100))
            .rule(
                FaultRule::at("mutator.lazy_sweep.segment")
                    .delaying(0.2, 200)
                    .yielding(0.2),
            )
            .rule(FaultRule::at("collector.phase").delaying(0.5, 500))
            .rule(FaultRule::at("collector.handshake.wait").yielding(0.3))
    };
    let failures: fn() -> FaultPlan = || {
        FaultPlan::new(11)
            .rule(
                FaultRule::at("heap.alloc_chunk")
                    .failing(0.05)
                    .max_fires(25),
            )
            .rule(FaultRule::at("mutator.lab.refill").yielding(0.2))
            .rule(FaultRule::at("mutator.lazy_sweep.segment").yielding(0.3))
            .rule(FaultRule::at("mutator.cooperate").yielding(0.1))
    };
    let w = Chaos::new().with_threads(3).scaled(0.2);
    for cfg in variants() {
        for lazy in [false, true] {
            let cfg = cfg.with_lazy_sweep(lazy);
            for (name, mk) in [("storm", storm), ("failures", failures)] {
                fault::install(mk());
                let (_, violations) = driver::run_workload_verified(&w, cfg, 23);
                let log = fault::uninstall();
                assert!(
                    violations.is_empty(),
                    "plan {name:?} under {:?} (lazy_sweep={lazy}) left heap violations \
                     after {} injections: {violations:?}",
                    cfg.mode,
                    log.len()
                );
            }
        }
    }
}

/// The parallel back-end under chaos: every variant runs with four GC
/// workers while `collector.worker` injections delay and yield workers at
/// steal attempts (mark) and segment claims (sweep), stretching the
/// §4.4 termination race windows.  The heap must still verify clean and
/// the per-worker stats must show all four workers participated — if the
/// extended termination check ever fired early, the sweep would reclaim
/// live objects and verification would catch it.
#[test]
fn parallel_chaos_matrix_verifies_clean_at_four_workers() {
    let _serial = fault::exclusive();
    let plan = || {
        FaultPlan::new(0x5EED)
            .rule(
                FaultRule::at("collector.worker")
                    .delaying(0.2, 300)
                    .yielding(0.3),
            )
            .rule(FaultRule::at("mutator.cooperate").yielding(0.2))
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.1))
            .rule(FaultRule::at("mutator.lazy_sweep.segment").yielding(0.3))
            .rule(FaultRule::at("collector.phase").delaying(0.2, 200))
    };
    let w = Chaos::new().with_threads(3).scaled(0.2);
    for cfg in variants() {
        for lazy in [false, true] {
            let cfg = cfg.with_gc_threads(4).with_lazy_sweep(lazy);
            fault::install(plan());
            let (result, violations) = driver::run_workload_verified(&w, cfg, 31);
            let log = fault::uninstall();
            assert!(
                violations.is_empty(),
                "N=4 chaos under {:?} (lazy_sweep={lazy}) left heap violations \
                 after {} injections: {violations:?}",
                cfg.mode,
                log.len()
            );
            assert_eq!(
                result.stats.workers.len(),
                4,
                "expected per-worker stats for all four GC workers"
            );
            assert!(
                result.stats.workers[0].mark.count() > 0,
                "worker 0 never recorded a mark phase"
            );
        }
    }
}

/// Panic containment: when the collector thread dies, allocation-blocked
/// mutators must *not* hang — heap exhaustion surfaces as
/// [`AllocError::CollectorUnavailable`] within a bounded time, and the
/// poisoned state is visible in the stats.
#[test]
fn panicked_collector_unblocks_allocators_with_collector_unavailable() {
    let _serial = fault::exclusive();
    // The injected panic is expected; silence the default hook's
    // backtrace spam for the duration (restored before any assertion).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    fault::install(
        FaultPlan::new(1).rule(FaultRule::at("collector.panic").failing(1.0).max_fires(1)),
    );
    // Restarts pinned to 0: this test asserts the PR-4 permanent-poison
    // behavior, which `max_collector_restarts = 0` preserves byte-for-byte
    // (the CI restart cell sets OTF_GC_MAX_RESTARTS=3 process-wide).
    let gc = Gc::new(
        GcConfig::generational()
            .with_initial_heap(1 << 20)
            .with_max_heap(1 << 20)
            .with_young_size(256 << 10)
            .with_max_collector_restarts(0),
    );
    let mut m = gc.mutator();
    let shape = ObjShape::new(0, 6);
    let bound = Duration::from_secs(30);
    let start = Instant::now();
    let mut outcome = None;
    // Retain everything: the first collection request panics the
    // collector, so growing pressure must end in CollectorUnavailable.
    for _ in 0..1_000_000 {
        match m.alloc(&shape) {
            Ok(r) => {
                m.root_push(r);
            }
            Err(e) => {
                outcome = Some(e);
                break;
            }
        }
        if start.elapsed() > bound {
            break;
        }
    }
    let hung = start.elapsed() > bound;
    drop(m);
    let log = fault::uninstall();
    std::panic::set_hook(prev_hook);

    assert!(
        !hung,
        "allocator still blocked {bound:?} after the collector died"
    );
    assert_eq!(log.len(), 1, "exactly one injected panic expected: {log:?}");
    assert!(
        matches!(outcome, Some(AllocError::CollectorUnavailable { .. })),
        "expected CollectorUnavailable, got {outcome:?}"
    );
    assert!(gc.is_poisoned());
    let stats = gc.shutdown();
    assert!(stats.collector_poisoned);
}

/// One cell of the recovery matrix: inject a collector panic at phase
/// hit `k` of the first cycle (the `collector.phase` point fires in a
/// fixed order per cycle: cycle-start, handshake-1, handshake-2,
/// handshake-3, trace, reclaim), then assert the supervisor recovered —
/// not poisoned, ≥ 1 restart, the blocking full collection completed,
/// retained objects intact, and the heap verifying clean.
fn kill_at_phase_and_recover(cfg: GcConfig, k: u64) {
    fault::install(
        FaultPlan::new(0xFA11).rule(
            FaultRule::at("collector.phase")
                .failing(1.0)
                .after(k)
                .max_fires(1),
        ),
    );
    let mut gc = Gc::new(
        cfg.with_initial_heap(1 << 20)
            .with_max_heap(8 << 20)
            .with_young_size(64 << 10)
            .with_max_collector_restarts(3)
            .with_collector_restart_backoff_ms(1),
    );
    let mut m = gc.mutator();
    let shape = ObjShape::new(1, 2);
    let mut retained = Vec::new();
    for i in 0..256u64 {
        let r = m.alloc(&shape).expect("allocation before the kill");
        m.write_data(r, 0, i);
        if i % 8 == 0 {
            m.root_push(r);
            retained.push((r, i));
        }
    }
    // The first cycle dies at phase `k`; the abort re-arms a full
    // collection, and the restarted loop's completion of it serves this
    // wait — recovery is transparent to blocked callers.
    m.parked(|| gc.collect_full_blocking());
    let log = fault::uninstall();

    let label = format!("plan {} k={k}", gc.config().plan_name(),);
    assert_eq!(log.len(), 1, "{label}: expected exactly one injected panic");
    for &(r, v) in &retained {
        assert!(gc.debug_is_object(r), "{label}: retained object freed");
        assert_eq!(m.read_data(r, 0), v, "{label}: retained data corrupted");
    }
    let stats = gc.stats();
    assert!(
        !stats.collector_poisoned,
        "{label}: poisoned despite budget"
    );
    assert!(
        stats.collector_restarts >= 1,
        "{label}: no restart recorded"
    );
    if k > 0 {
        // k = 0 dies before any bucket opens (no cycle in flight yet),
        // so only the later sites count as an aborted *cycle*.
        assert!(stats.cycles_aborted >= 1, "{label}: no abort recorded");
    }
    drop(m);
    gc.stop_collector();
    let violations = gc.verify_heap();
    assert!(
        violations.is_empty(),
        "{label}: heap violations after recovery: {violations:?}"
    );
    let stats = gc.shutdown();
    assert!(!stats.collector_poisoned, "{label}: poisoned at shutdown");
}

/// The recovery matrix (tentpole acceptance): a collector panic at each
/// of the six phases, for gen and nogen, eager and lazy sweep, N=1 and
/// N=4 workers, serial and overlapped schedules, must end unpoisoned
/// with ≥ 1 restart, a completed subsequent full collection, and zero
/// `verify_heap` violations.  The overlap cells matter most at the
/// trace site (k = 4): with `overlap_phases` on, that hit fires inside
/// the group chain-open, so the panic lands with the card-scan and
/// root-mark producer buckets open and their `in_flight` tokens held —
/// the abort must close the whole group, not just the trace bucket.
#[test]
fn collector_panic_at_every_phase_recovers_under_restarts() {
    let _serial = fault::exclusive();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for base in [GcConfig::generational, GcConfig::non_generational] {
        for lazy in [false, true] {
            for threads in [1usize, 4] {
                for overlap in [false, true] {
                    for k in 0..6u64 {
                        let cfg = base()
                            .with_lazy_sweep(lazy)
                            .with_gc_threads(threads)
                            .with_overlap_phases(overlap);
                        kill_at_phase_and_recover(cfg, k);
                    }
                }
            }
        }
    }
    std::panic::set_hook(prev_hook);
}

/// A kill in the *respawn* window (the `collector.recovery` point's
/// second hit — the first is the abort-repaint window) costs one more
/// restart but still recovers: the fresh incarnation panics inside the
/// supervisor's `catch_unwind`, is aborted again, and the next respawn
/// completes the re-armed full collection.
#[test]
fn respawn_window_kill_consumes_an_extra_restart() {
    let _serial = fault::exclusive();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    fault::install(
        FaultPlan::new(3)
            .rule(FaultRule::at("collector.phase").failing(1.0).max_fires(1))
            .rule(
                FaultRule::at("collector.recovery")
                    .failing(1.0)
                    .after(1)
                    .max_fires(1),
            ),
    );
    let gc = Gc::new(
        GcConfig::generational()
            .with_young_size(64 << 10)
            .with_max_collector_restarts(3)
            .with_collector_restart_backoff_ms(1),
    );
    gc.collect_full_blocking();
    let log = fault::uninstall();
    std::panic::set_hook(prev_hook);

    assert_eq!(log.len(), 2, "phase kill + respawn kill: {log:?}");
    let stats = gc.stats();
    assert!(!stats.collector_poisoned);
    assert!(
        stats.collector_restarts >= 2,
        "respawn kill must consume a second restart: {}",
        stats.collector_restarts
    );
    let mut gc = gc;
    gc.stop_collector();
    assert!(gc.verify_heap().is_empty());
    gc.shutdown();
}

/// Double-panic regression (satellite): a panic *during* the abort
/// protocol (the `collector.recovery` point's first hit) must fall back
/// to the PR-4 permanent poison — no recovery loop, no restart counted,
/// and shutdown still joins cleanly.
#[test]
fn panic_during_abort_falls_back_to_permanent_poison() {
    let _serial = fault::exclusive();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    fault::install(
        FaultPlan::new(5)
            .rule(FaultRule::at("collector.phase").failing(1.0).max_fires(1))
            .rule(
                FaultRule::at("collector.recovery")
                    .failing(1.0)
                    .max_fires(1),
            ),
    );
    let gc = Gc::new(
        GcConfig::generational()
            .with_max_collector_restarts(3)
            .with_collector_restart_backoff_ms(1),
    );
    gc.request_full();
    let start = Instant::now();
    while !gc.is_poisoned() && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let log = fault::uninstall();
    std::panic::set_hook(prev_hook);

    assert_eq!(log.len(), 2, "phase kill + abort kill: {log:?}");
    assert!(gc.is_poisoned(), "double panic must poison permanently");
    let stats = gc.shutdown();
    assert!(stats.collector_poisoned);
    assert_eq!(
        stats.collector_restarts, 0,
        "a failed abort must not count as a restart"
    );
}

/// Watchdog escalation (tentpole): under the `AbortCycle` stall policy a
/// wedged handshake is aborted after three reports instead of hanging —
/// the cycle is counted aborted, the collector restarts, and once the
/// mutator cooperates again the re-armed full collection completes.
#[test]
fn watchdog_abort_cycle_policy_unwedges_a_stalled_handshake() {
    use otf_gengc::gc::StallPolicy;
    let _serial = fault::exclusive();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let gc = Gc::new(
        GcConfig::generational()
            .with_handshake_stall_ms(20)
            .with_handshake_stall_policy(StallPolicy::AbortCycle)
            .with_max_collector_restarts(2)
            .with_collector_restart_backoff_ms(1),
    );
    let mut m = gc.mutator();
    let r = m.alloc(&ObjShape::new(1, 1)).unwrap();
    m.root_push(r);
    gc.request_full();
    // Never cooperate: the first handshake wedges, the watchdog reports
    // at 20/40/80 ms and then panics the cycle into the supervisor.
    let start = Instant::now();
    while gc.stats().cycles_aborted == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = gc.stats();
    assert!(
        stats.cycles_aborted >= 1,
        "watchdog never aborted the cycle"
    );
    assert!(stats.collector_restarts >= 1);
    assert!(stats.watchdog_trips >= 3, "escalation needs three reports");
    // Cooperate now: the re-armed full collection must complete.
    let start = Instant::now();
    while gc.cycles_completed() == 0 && start.elapsed() < Duration::from_secs(10) {
        m.cooperate();
        std::thread::sleep(Duration::from_millis(1));
    }
    std::panic::set_hook(prev_hook);
    assert!(gc.cycles_completed() >= 1, "re-armed cycle never completed");
    assert!(!gc.is_poisoned());
    assert!(gc.debug_is_object(r), "rooted object lost across the abort");
    drop(m);
    gc.shutdown();
}

/// The handshake watchdog: a mutator that never cooperates stalls the
/// cycle; instead of hanging silently the collector must report the
/// stall (counted in [`watchdog_trips`]) and then complete the cycle
/// once the mutator is gone.
///
/// [`watchdog_trips`]: otf_gengc::gc::GcStats::watchdog_trips
#[test]
fn watchdog_reports_stalled_handshake() {
    let _serial = fault::exclusive();
    let gc = Gc::new(GcConfig::generational().with_handshake_stall_ms(50));
    let mut m = gc.mutator();
    let r = m.alloc(&ObjShape::new(1, 1)).unwrap();
    m.root_push(r);
    gc.request_full();
    // Never cooperate: the first handshake cannot complete.  Give the
    // watchdog a few reporting intervals to trip.
    let start = Instant::now();
    while gc.stats().watchdog_trips == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(gc.stats().watchdog_trips > 0, "watchdog never tripped");
    // Dropping the mutator unregisters it; the stalled cycle must now
    // run to completion (the watchdog reports, it does not kill).
    let before = gc.cycles_completed();
    drop(m);
    let start = Instant::now();
    while gc.cycles_completed() == before && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        gc.cycles_completed() > before,
        "stalled cycle never completed"
    );
    gc.shutdown();
}
