//! Model-based reachability testing: build a random object graph through
//! the mutator API while mirroring it in a plain Rust model, pick random
//! roots, run collections, and verify that everything the *model* says is
//! reachable is intact in the *heap* — payloads included — and that
//! unreachable memory is actually reclaimed.
//!
//! This is the strongest single correctness check we have: any collector
//! bug that frees or corrupts a live object shows up as a payload
//! mismatch.

use std::collections::{HashSet, VecDeque};

use otf_gengc::gc::{Gc, GcConfig, Mutator};
use otf_gengc::heap::{ObjShape, ObjectRef};
use otf_support::rand::{RngExt, SeedableRng, StdRng};

/// The Rust-side model of the heap graph.
struct Model {
    /// For each model node: its heap object and its outgoing edges
    /// (slot -> model index).
    nodes: Vec<(ObjectRef, Vec<Option<usize>>)>,
    refs_per_node: usize,
}

impl Model {
    fn reachable_from(&self, roots: &[usize]) -> HashSet<usize> {
        let mut seen: HashSet<usize> = roots.iter().copied().collect();
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            for edge in self.nodes[n].1.iter().flatten() {
                if seen.insert(*edge) {
                    queue.push_back(*edge);
                }
            }
        }
        seen
    }
}

/// Builds `n` nodes with random wiring; every node is rooted during
/// construction so nothing is collected prematurely.
fn build_graph(m: &mut Mutator, rng: &mut StdRng, n: usize, refs_per_node: usize) -> Model {
    let shape = ObjShape::new(refs_per_node, 1);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let obj = m.alloc(&shape).expect("oom");
        m.write_data(obj, 0, payload(i));
        m.root_push(obj);
        nodes.push((obj, vec![None; refs_per_node]));
    }
    let mut model = Model {
        nodes,
        refs_per_node,
    };
    // Random edges (biased toward earlier nodes, like real graphs).
    let edges = n * refs_per_node / 2;
    for _ in 0..edges {
        let from = rng.random_range(0..n);
        let slot = rng.random_range(0..refs_per_node);
        let to = rng.random_range(0..n);
        m.write_ref(model.nodes[from].0, slot, model.nodes[to].0);
        model.nodes[from].1[slot] = Some(to);
    }
    model
}

fn payload(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// Verifies every model-reachable node: payload intact, edges match.
fn verify(m: &Mutator, model: &Model, reachable: &HashSet<usize>) {
    for &i in reachable {
        let (obj, edges) = &model.nodes[i];
        assert_eq!(
            m.read_data(*obj, 0),
            payload(i),
            "payload of node {i} corrupted"
        );
        for (slot, edge) in edges.iter().enumerate() {
            let got = m.read_ref(*obj, slot);
            match edge {
                Some(to) => assert_eq!(got, model.nodes[*to].0, "edge {i}.{slot} corrupted"),
                None => assert!(got.is_null(), "edge {i}.{slot} should be null"),
            }
        }
    }
    let _ = model.refs_per_node;
}

fn run_model_test(cfg: GcConfig, seed: u64, n: usize) {
    let gc = Gc::new(
        cfg.with_max_heap(8 << 20)
            .with_initial_heap(1 << 20)
            .with_young_size(256 << 10),
    );
    let mut m = gc.mutator();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = build_graph(&mut m, &mut rng, n, 3);

    // Keep a random subset of nodes as roots; drop the rest.
    let keep: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.15)).collect();
    m.root_truncate(0);
    for &k in &keep {
        m.root_push(model.nodes[k].0);
    }

    let used_full = gc.used_bytes();
    // Churn a little so collections interleave with mutation of *dead*
    // space only, then force two full collections (the first may race
    // in-flight allocation; the second settles everything).
    let junk = ObjShape::new(0, 2);
    for _ in 0..20_000 {
        let _ = m.alloc(&junk).expect("oom");
    }
    m.parked(|| gc.collect_full_blocking());
    m.parked(|| gc.collect_full_blocking());

    let reachable = model.reachable_from(&keep);
    verify(&m, &model, &reachable);

    // Unreachable nodes must actually have been reclaimed: with ~85% of
    // the graph dropped, usage must fall well below the fully-live peak.
    let used_after = gc.used_bytes();
    assert!(
        used_after < used_full,
        "no reclamation: {used_full} -> {used_after} (|reachable| = {}/{n})",
        reachable.len()
    );

    drop(m);
    gc.shutdown();
}

#[test]
fn model_reachability_generational() {
    for seed in 0..4 {
        run_model_test(GcConfig::generational(), seed, 3000);
    }
}

#[test]
fn model_reachability_non_generational() {
    for seed in 10..14 {
        run_model_test(GcConfig::non_generational(), seed, 3000);
    }
}

#[test]
fn model_reachability_aging() {
    for seed in 20..24 {
        run_model_test(GcConfig::aging(3), seed, 3000);
    }
}

#[test]
fn model_reachability_block_marking() {
    for seed in 30..33 {
        run_model_test(GcConfig::generational().with_card_size(4096), seed, 3000);
    }
}

/// The same model check but with collections racing the graph
/// construction (tiny young generation forces partials mid-build).
#[test]
fn model_reachability_with_racing_partials() {
    for seed in 40..43 {
        let cfg = GcConfig::generational()
            .with_max_heap(8 << 20)
            .with_initial_heap(1 << 20)
            .with_young_size(64 << 10);
        let gc = Gc::new(cfg);
        let mut m = gc.mutator();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = build_graph(&mut m, &mut rng, 5000, 3);
        // Everything still rooted: the whole graph must be intact no
        // matter how many partials ran during construction.
        let all: HashSet<usize> = (0..5000).collect();
        verify(&m, &model, &all);
        drop(m);
        gc.shutdown();
    }
}
