//! Addresses, object references and granule arithmetic.
//!
//! The heap is one contiguous arena addressed by byte offsets.  All objects
//! start on a *granule* boundary.  A granule is 16 bytes — the paper's
//! minimum card size ("object marking", §8.5.3) and the unit at which the
//! side tables (color, age) keep one byte per granule.
//!
//! Granule 0 of the arena is never allocated, so the byte offset `0` can be
//! used as the null reference.

/// Size of a granule in bytes.  Objects are granule-aligned and sized.
pub const GRANULE: usize = 16;

/// Log2 of [`GRANULE`].
pub const GRANULE_LOG2: u32 = 4;

/// Size of a heap word (one slot) in bytes.
pub const WORD: usize = 8;

/// Largest heap size, in granules, that the `u32` byte offsets inside
/// [`ObjectRef`] and [`crate::Chunk`] can address: granule index
/// `MAX_HEAP_GRANULES - 1` shifts to exactly `u32::MAX & !0xF`.  Arenas
/// (and `GcConfig::max_heap`) beyond this would silently wrap at the
/// `usize -> u32` conversion sites, so `Arena::new` rejects them up
/// front.
pub const MAX_HEAP_GRANULES: usize = (u32::MAX as usize >> GRANULE_LOG2) + 1;

/// Number of words per granule.
pub const WORDS_PER_GRANULE: usize = GRANULE / WORD;

/// Size of a tracked page in bytes (for the page-touch accounting of the
/// paper's Figure 15).
pub const PAGE: usize = 4096;

/// A reference to a heap object: the byte offset of the object's header
/// within the arena.  Always granule-aligned and never zero for a real
/// object; the all-zero value is the null reference.
///
/// `ObjectRef` is the value stored in reference slots and handed out by the
/// allocator.  It is `Copy` and plain data — keeping a copy does **not**
/// keep the object alive; the collector only honours references found in
/// shadow stacks, global roots, and reachable objects.
///
/// # Examples
///
/// ```
/// use otf_heap::ObjectRef;
/// let r = ObjectRef::from_raw(32);
/// assert!(!r.is_null());
/// assert_eq!(r.granule(), 2);
/// assert_eq!(ObjectRef::NULL.granule(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ObjectRef(u32);

impl ObjectRef {
    /// The null reference (byte offset zero, which is never an object).
    pub const NULL: ObjectRef = ObjectRef(0);

    /// Builds a reference from a raw byte offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `byte` is not granule-aligned.
    #[inline]
    pub fn from_raw(byte: u32) -> ObjectRef {
        debug_assert_eq!(byte as usize % GRANULE, 0, "unaligned object ref {byte:#x}");
        ObjectRef(byte)
    }

    /// Builds a reference from a granule index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `granule` is outside the `u32` byte
    /// address space (see [`MAX_HEAP_GRANULES`]) — in release builds the
    /// offset would wrap silently, which `Arena::new`'s size validation
    /// makes unreachable.
    #[inline]
    pub fn from_granule(granule: usize) -> ObjectRef {
        debug_assert!(
            granule < MAX_HEAP_GRANULES,
            "granule {granule} beyond the u32 offset space"
        );
        ObjectRef((granule << GRANULE_LOG2) as u32)
    }

    /// The raw byte offset of the object header in the arena.
    #[inline]
    pub fn byte(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` representation (byte offset).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The granule index of the object start (used to index color and age
    /// tables).
    #[inline]
    pub fn granule(self) -> usize {
        self.0 as usize >> GRANULE_LOG2
    }

    /// The word index of the object header in the arena.
    #[inline]
    pub fn word(self) -> usize {
        self.0 as usize / WORD
    }

    /// Whether this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Decodes a slot value (as stored in the heap) into a reference.
    /// Slots store the raw byte offset zero-extended to 64 bits.
    #[inline]
    pub fn from_slot(value: u64) -> ObjectRef {
        ObjectRef(value as u32)
    }

    /// Encodes this reference as a 64-bit slot value.
    #[inline]
    pub fn to_slot(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "obj@{:#x}", self.0)
        }
    }
}

/// Rounds `bytes` up to a whole number of granules.
#[inline]
pub fn granules_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(GRANULE)
}

/// Rounds `words` up to a whole number of granules.
#[inline]
pub fn granules_for_words(words: usize) -> usize {
    words.div_ceil(WORDS_PER_GRANULE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero_and_default() {
        assert!(ObjectRef::NULL.is_null());
        assert_eq!(ObjectRef::default(), ObjectRef::NULL);
        assert_eq!(ObjectRef::NULL.to_slot(), 0);
        assert!(ObjectRef::from_slot(0).is_null());
    }

    #[test]
    fn granule_round_trips() {
        for g in [1usize, 2, 7, 1000, 123_456] {
            let r = ObjectRef::from_granule(g);
            assert_eq!(r.granule(), g);
            assert_eq!(r.byte(), g * GRANULE);
            assert_eq!(ObjectRef::from_raw(r.raw()), r);
            assert_eq!(ObjectRef::from_slot(r.to_slot()), r);
        }
    }

    #[test]
    fn word_index_matches_byte() {
        let r = ObjectRef::from_granule(3);
        assert_eq!(r.word(), 3 * GRANULE / WORD);
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(granules_for_bytes(0), 0);
        assert_eq!(granules_for_bytes(1), 1);
        assert_eq!(granules_for_bytes(16), 1);
        assert_eq!(granules_for_bytes(17), 2);
        assert_eq!(granules_for_words(1), 1);
        assert_eq!(granules_for_words(2), 1);
        assert_eq!(granules_for_words(3), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ObjectRef::NULL.to_string(), "null");
        assert_eq!(ObjectRef::from_granule(1).to_string(), "obj@0x10");
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    #[cfg(debug_assertions)]
    fn unaligned_ref_panics() {
        let _ = ObjectRef::from_raw(7);
    }

    #[test]
    fn max_granule_still_fits_u32() {
        let r = ObjectRef::from_granule(MAX_HEAP_GRANULES - 1);
        assert_eq!(r.granule(), MAX_HEAP_GRANULES - 1);
    }

    #[test]
    #[should_panic(expected = "beyond the u32 offset space")]
    #[cfg(all(debug_assertions, target_pointer_width = "64"))]
    fn overflowing_granule_panics() {
        let _ = ObjectRef::from_granule(MAX_HEAP_GRANULES);
    }
}
