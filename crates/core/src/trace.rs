//! The transitive mark phase (`trace` in Figure 2) with sound on-the-fly
//! termination detection, expressed as trace-drain work packets over the
//! packet scheduler's trace bucket (DESIGN.md §4.4, §4.7): serial
//! (`gc_threads = 1`, the paper's configuration) the single lane drains
//! byte-for-byte the §4.3 protocol; parallel, lanes steal from sibling
//! deques and the shared gray queue, and the §4.4 termination check is
//! the bucket's closing condition.

use otf_heap::{Color, ObjectRef};
use otf_support::fault;
use otf_support::packet::Schedule;
use otf_support::steal::WorkerDeque;

use crate::cycle::CycleCx;
use crate::plan::CycleFrame;
use crate::shared::GcShared;

/// A worker publishes the older half of its private mark stack to its
/// deque once the stack grows past this many entries (and its deque is
/// empty) — the work-packet idea: the hot path stays a plain `Vec`,
/// thieves only see batched excess.
const PUBLISH_MIN: usize = 64;

impl GcShared {
    /// `MarkBlack` (Figure 3): *claim* the object with a gray→target
    /// color CAS, then shade every son gray.
    ///
    /// Every enqueue site (write barrier, card scan, root marking, the
    /// collector's own son-shading) CASes the color to gray before
    /// pushing, so a popped object is gray unless another worker — or a
    /// duplicate entry from a re-graying — already claimed it.  The
    /// losing CAS returns without scanning or counting, which is what
    /// makes parallel marking sound: two workers can never double-trace
    /// or double-count one object.  Claiming *before* shading the sons
    /// is safe under the snapshot write barrier: a mutator racing this
    /// window grays the overwritten value regardless of the parent's
    /// color (DESIGN.md §4.4).
    pub(crate) fn mark_black(&self, obj: ObjectRef, target: Color, cx: &mut CycleCx) {
        let g = obj.granule();
        let colors = self.heap.colors();
        if !colors.cas(g, Color::Gray, target) {
            return; // another worker claimed it, or a duplicate entry
        }
        let header = self.heap.arena().header(obj);
        let ref_slots = header.ref_slots();
        for i in 0..ref_slots {
            let son = self.heap.arena().load_ref_slot(obj, i);
            self.mark_gray_clear_local(son, &mut cx.mark_stack);
        }
        cx.counters.objects_traced += 1;
        cx.counters.bytes_traced += header.size_bytes() as u64;
        cx.touch_object(obj, 1 + ref_slots);
        cx.touch_color(g);
    }

    /// The trace loop: pop gray objects and blacken them until no gray
    /// object exists, run as a standalone one-bucket schedule (the full
    /// cycle builds this same bucket via
    /// [`GcShared::build_cycle_schedule`]; this entry point exists for
    /// the mark-phase tests).
    ///
    /// Termination is subtle on-the-fly: a mutator's write barrier first
    /// CASes a color to gray and *then* pushes the object on the queue, so
    /// an empty queue alone does not mean no gray objects.  Every
    /// gray-producing mutator operation is bracketed by an epoch counter
    /// (odd while inside); the collector believes an empty queue only
    /// after observing all epochs even *and then* the queue still empty.
    /// Any barrier that starts after that point can only shade objects the
    /// DLG invariants already guarantee are marked (see DESIGN.md §4.3).
    /// With `gc_threads > 1` the check additionally covers the worker
    /// deques and in-flight packets — it is the trace bucket's closing
    /// condition (DESIGN.md §4.4, §4.7).
    #[allow(dead_code)]
    pub(crate) fn trace(&self, cx: &mut CycleCx) {
        let workers = self.config.gc_threads;
        let frame = CycleFrame::new(workers);
        frame.seeds.lock().append(&mut cx.mark_stack);
        let mut sched = Schedule::new();
        self.add_trace_bucket(&mut sched, &frame, workers, false);
        self.run_schedule(&sched, cx, workers);
        debug_assert!(frame.deques.iter().all(|d| d.is_empty()));
    }

    /// One trace-drain run (the body of a `TraceDrain` packet): drain
    /// the private stack and the own deque (publishing excess), then
    /// steal from sibling deques and the shared gray queue until no work
    /// is visible.  Returns the number of successful steals.
    ///
    /// Returning with everything empty does **not** end the trace — the
    /// bucket's drained hook re-checks §4.4 (all packets returned, all
    /// mutator epochs even, all queues still empty) and refills the
    /// bucket if work reappeared.  A packet never parks: going idle
    /// *is* returning to the scheduler, so the bucket's `in_flight`
    /// count plays the role of §4.4's `active` set.
    pub(crate) fn trace_drain(
        &self,
        lane: usize,
        workers: usize,
        deques: &[WorkerDeque<ObjectRef>],
        cx: &mut CycleCx,
    ) -> u64 {
        let target = self.trace_target();
        let my = &deques[lane];
        let mut steals = 0u64;
        loop {
            // Drain local work: private stack (hot, lock-free), then the
            // own deque.  Publish the older half of an overgrown private
            // stack so idle siblings have something to steal.
            loop {
                if workers > 1 && cx.mark_stack.len() >= PUBLISH_MIN && my.is_empty() {
                    let split = cx.mark_stack.len() / 2;
                    my.push_batch(cx.mark_stack.drain(..split));
                }
                match cx.mark_stack.pop().or_else(|| my.pop()) {
                    Some(obj) => self.mark_black(obj, target, cx),
                    None => break,
                }
            }
            if workers > 1 {
                // Out of local work: steal from a sibling deque, then
                // the shared gray queue.  The fault point models a
                // stalled or refused steal (chaos tests delay/fail
                // here); a refused attempt returns to the scheduler,
                // whose drained hook re-tries via a refill.
                if fault::point("collector.worker") {
                    return steals;
                }
                let stolen = deques
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != lane)
                    .find_map(|(_, d)| d.steal())
                    .or_else(|| self.gray.pop());
                match stolen {
                    Some(obj) => {
                        steals += 1;
                        self.mark_black(obj, target, cx);
                    }
                    None => return steals,
                }
            } else {
                // Serial lane: the shared gray queue is the only other
                // source, and popping it is not a steal.
                match self.gray.pop() {
                    Some(obj) => self.mark_black(obj, target, cx),
                    None => return 0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::ObjShape;

    fn setup() -> (GcShared, CycleCx) {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn setup_threads(n: usize) -> (GcShared, CycleCx) {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20)
                .with_gc_threads(n),
        );
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, refs: usize, color: Color) -> ObjectRef {
        let shape = ObjShape::new(refs, 1);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn trace_marks_reachable_chain() {
        let (sh, mut cx) = setup();
        // Build a chain a -> b -> c, all clear-colored.
        sh.colors.toggle(); // clear color is now White (allocation Yellow)
        let c = alloc(&sh, 1, Color::White);
        let b = alloc(&sh, 1, Color::White);
        let a = alloc(&sh, 1, Color::White);
        sh.heap.arena().store_ref_slot(a, 0, b);
        sh.heap.arena().store_ref_slot(b, 0, c);
        let d = alloc(&sh, 0, Color::White); // unreachable

        sh.mark_gray_clear(a);
        sh.trace(&mut cx);

        for obj in [a, b, c] {
            assert_eq!(sh.heap.colors().get(obj.granule()), Color::Black);
        }
        assert_eq!(sh.heap.colors().get(d.granule()), Color::White);
        assert_eq!(cx.counters.objects_traced, 3);
        assert!(sh.gray.is_empty());
    }

    #[test]
    fn trace_does_not_traverse_old_generation() {
        let (sh, mut cx) = setup();
        sh.colors.toggle();
        // Black (old) object referencing a white object: trace must not
        // traverse it unless it was explicitly grayed via a dirty card.
        let young = alloc(&sh, 0, Color::White);
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.arena().store_ref_slot(old, 0, young);
        // No roots at all.
        sh.trace(&mut cx);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::White);
        assert_eq!(cx.counters.objects_traced, 0);
    }

    #[test]
    fn trace_through_regrayed_black_parent() {
        let (sh, mut cx) = setup();
        sh.colors.toggle();
        let young = alloc(&sh, 0, Color::White);
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.arena().store_ref_slot(old, 0, young);
        assert!(sh.mark_gray_from_black(old)); // as ClearCards would
        sh.trace(&mut cx);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::Black);
        assert_eq!(cx.counters.objects_traced, 2);
    }

    #[test]
    fn trace_ignores_allocation_colored_objects() {
        let (sh, mut cx) = setup();
        sh.colors.toggle(); // allocation = Yellow
        let infant = alloc(&sh, 0, Color::Yellow);
        let root = alloc(&sh, 1, Color::White);
        sh.heap.arena().store_ref_slot(root, 0, infant);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        // The yellow infant is not traced (not promoted, §4).
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(sh.heap.colors().get(root.granule()), Color::Black);
    }

    #[test]
    fn trace_waits_for_in_flight_barrier() {
        use std::sync::atomic::Ordering;
        use std::sync::Arc;
        let (sh, mut cx) = setup();
        let sh = Arc::new(sh);
        sh.colors.toggle();
        let hidden = alloc(&sh, 0, Color::White);
        let m = sh.register_mutator();

        // Simulate a mutator stuck inside the write barrier: epoch odd,
        // color already CASed to gray, push not yet performed.
        m.epoch_enter();
        assert!(sh
            .heap
            .colors()
            .cas(hidden.granule(), Color::White, Color::Gray));

        let sh2 = Arc::clone(&sh);
        let m2 = Arc::clone(&m);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            sh2.gray.push(hidden);
            m2.epoch.fetch_add(1, Ordering::SeqCst); // epoch_exit
        });

        // Trace must not terminate before the delayed push arrives.
        sh.trace(&mut cx);
        pusher.join().unwrap();
        assert_eq!(sh.heap.colors().get(hidden.granule()), Color::Black);
    }

    #[test]
    fn non_generational_trace_uses_allocation_color() {
        let sh = GcShared::new(
            GcConfig::non_generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        let mut cx = CycleCx::new(&sh);
        sh.colors.toggle(); // allocation Yellow, clear White
        let a = alloc(&sh, 0, Color::White);
        sh.mark_gray_clear(a);
        sh.trace(&mut cx);
        // Marked with the allocation color, not literal black.
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Yellow);
    }

    /// Builds a wide two-level tree (fanout² + fanout + 1 objects) and
    /// returns the root plus the total object count.
    fn build_tree(sh: &GcShared, fanout: usize) -> (ObjectRef, u64) {
        let root = alloc(sh, fanout, Color::White);
        let mut count = 1u64;
        for i in 0..fanout {
            let mid = alloc(sh, fanout, Color::White);
            sh.heap.arena().store_ref_slot(root, i, mid);
            count += 1;
            for j in 0..fanout {
                let leaf = alloc(sh, 0, Color::White);
                sh.heap.arena().store_ref_slot(mid, j, leaf);
                count += 1;
            }
        }
        (root, count)
    }

    #[test]
    fn parallel_trace_marks_everything_exactly_once() {
        let (sh, mut cx) = setup_threads(4);
        sh.colors.toggle();
        let (root, count) = build_tree(&sh, 24);
        let dead = alloc(&sh, 0, Color::White);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        // CAS-claimed marking counts every reachable object exactly once
        // even with 4 workers racing over shared subtrees.
        assert_eq!(cx.counters.objects_traced, count);
        assert_eq!(sh.heap.colors().get(root.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(dead.granule()), Color::White);
        assert!(sh.gray.is_empty());
    }

    #[test]
    fn parallel_counters_match_serial_on_identical_heap() {
        // Satellite: merged per-worker counters must equal the
        // single-threaded totals on an identical heap.
        let build = |sh: &GcShared| {
            sh.colors.toggle();
            let (root, _) = build_tree(sh, 16);
            sh.mark_gray_clear(root);
        };
        let (serial_sh, mut serial_cx) = setup_threads(1);
        build(&serial_sh);
        serial_sh.trace(&mut serial_cx);
        let (par_sh, mut par_cx) = setup_threads(4);
        build(&par_sh);
        par_sh.trace(&mut par_cx);
        assert_eq!(
            serial_cx.counters.objects_traced,
            par_cx.counters.objects_traced
        );
        // Both observe identical page touch-sets (same addresses).
        assert_eq!(serial_cx.pages.touched(), par_cx.pages.touched());
    }

    #[test]
    fn parallel_trace_waits_for_in_flight_barrier() {
        use std::sync::atomic::Ordering;
        use std::sync::Arc;
        // The §4.4 termination protocol at N=4 must not terminate while
        // a mutator's delayed gray push is in flight, even with every
        // worker idle and all deques empty.
        let (sh, mut cx) = setup_threads(4);
        let sh = Arc::new(sh);
        sh.colors.toggle();
        let hidden = alloc(&sh, 0, Color::White);
        let m = sh.register_mutator();
        m.epoch_enter();
        assert!(sh
            .heap
            .colors()
            .cas(hidden.granule(), Color::White, Color::Gray));
        let sh2 = Arc::clone(&sh);
        let m2 = Arc::clone(&m);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            sh2.gray.push(hidden);
            m2.epoch.fetch_add(1, Ordering::SeqCst);
        });
        sh.trace(&mut cx);
        pusher.join().unwrap();
        assert_eq!(sh.heap.colors().get(hidden.granule()), Color::Black);
        assert_eq!(cx.counters.objects_traced, 1);
    }

    #[test]
    fn parallel_workers_record_observability() {
        let (sh, mut cx) = setup_threads(2);
        sh.colors.toggle();
        let (root, _) = build_tree(&sh, 8);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        assert_eq!(sh.obs.workers.len(), 2);
        // Every worker records one mark-phase sample per trace.
        for w in &sh.obs.workers {
            assert_eq!(w.mark_ns.count(), 1);
        }
    }
}
