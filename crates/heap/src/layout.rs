//! Object layout: header encoding and slot geometry.
//!
//! Every object occupies a whole number of granules and begins with a
//! one-word header followed by `ref_slots` reference slots (one word each)
//! and then `data_words` words of non-reference payload:
//!
//! ```text
//! granule-aligned start
//! +-----------+-----------+-----+-----------+-----------+-----+---------+
//! |  header   | ref slot 0| ... | ref slot R| data word0| ... | padding |
//! +-----------+-----------+-----+-----------+-----------+-----+---------+
//! ```
//!
//! The header packs the object's size (in granules), its number of
//! reference slots, and a client-chosen class id.  The collector reads
//! headers to parse the heap during trace, sweep and card scanning, exactly
//! like the JVM heap manager the paper's collector was embedded in.

use crate::addr::{granules_for_words, WORDS_PER_GRANULE};

/// Maximum object size in granules (20-bit field: 16 MB objects).
pub const MAX_SIZE_GRANULES: usize = (1 << 20) - 1;
/// Maximum number of reference slots per object (20-bit field).
pub const MAX_REF_SLOTS: usize = (1 << 20) - 1;
/// Maximum class id (20-bit field).
pub const MAX_CLASS_ID: u32 = (1 << 20) - 1;

const MAGIC: u64 = 0xA;
const MAGIC_SHIFT: u32 = 60;
const CLASS_SHIFT: u32 = 40;
const REFS_SHIFT: u32 = 20;
const FIELD_MASK: u64 = (1 << 20) - 1;

/// The shape of an object to allocate: how many reference slots and data
/// words it has, plus a free-form class id the client can use to tag object
/// kinds (workloads use it to label node types).
///
/// # Examples
///
/// ```
/// use otf_heap::ObjShape;
/// let pair = ObjShape::new(2, 0);
/// assert_eq!(pair.ref_slots(), 2);
/// assert_eq!(pair.size_granules(), 2); // header + 2 slots = 3 words -> 2 granules
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ObjShape {
    ref_slots: u32,
    data_words: u32,
    class_id: u32,
}

impl ObjShape {
    /// Creates a shape with `ref_slots` reference slots and `data_words`
    /// words of data payload, class id 0.
    ///
    /// # Panics
    ///
    /// Panics if the resulting object would exceed [`MAX_SIZE_GRANULES`] or
    /// `ref_slots` exceeds [`MAX_REF_SLOTS`].
    pub fn new(ref_slots: usize, data_words: usize) -> ObjShape {
        assert!(ref_slots <= MAX_REF_SLOTS, "too many reference slots");
        let total_words = 1 + ref_slots + data_words;
        assert!(
            granules_for_words(total_words) <= MAX_SIZE_GRANULES,
            "object too large: {total_words} words"
        );
        ObjShape {
            ref_slots: ref_slots as u32,
            data_words: data_words as u32,
            class_id: 0,
        }
    }

    /// Returns the same shape with the given class id.
    ///
    /// # Panics
    ///
    /// Panics if `class_id` exceeds [`MAX_CLASS_ID`].
    pub fn with_class(mut self, class_id: u32) -> ObjShape {
        assert!(class_id <= MAX_CLASS_ID, "class id out of range");
        self.class_id = class_id;
        self
    }

    /// Number of reference slots.
    #[inline]
    pub fn ref_slots(&self) -> usize {
        self.ref_slots as usize
    }

    /// Number of data payload words.
    #[inline]
    pub fn data_words(&self) -> usize {
        self.data_words as usize
    }

    /// The class id tag.
    #[inline]
    pub fn class_id(&self) -> u32 {
        self.class_id
    }

    /// Total size in words including the header (before granule rounding).
    #[inline]
    pub fn size_words(&self) -> usize {
        1 + self.ref_slots as usize + self.data_words as usize
    }

    /// Total size in granules (header + slots + data, rounded up).
    #[inline]
    pub fn size_granules(&self) -> usize {
        granules_for_words(self.size_words())
    }

    /// Total size in bytes (granule-rounded).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.size_granules() * crate::addr::GRANULE
    }

    /// Encodes this shape as a header word.
    #[inline]
    pub fn encode_header(&self) -> u64 {
        Header::encode(self.size_granules(), self.ref_slots as usize, self.class_id)
    }
}

/// A decoded object header.
///
/// # Examples
///
/// ```
/// use otf_heap::{Header, ObjShape};
/// let shape = ObjShape::new(3, 5).with_class(7);
/// let h = Header::decode(shape.encode_header());
/// assert_eq!(h.ref_slots(), 3);
/// assert_eq!(h.class_id(), 7);
/// assert_eq!(h.size_granules(), shape.size_granules());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Header {
    size_granules: u32,
    ref_slots: u32,
    class_id: u32,
}

impl Header {
    /// Packs size, ref-slot count and class id into a header word.
    #[inline]
    pub fn encode(size_granules: usize, ref_slots: usize, class_id: u32) -> u64 {
        debug_assert!(size_granules <= MAX_SIZE_GRANULES);
        debug_assert!(ref_slots <= MAX_REF_SLOTS);
        debug_assert!(class_id <= MAX_CLASS_ID);
        (MAGIC << MAGIC_SHIFT)
            | ((class_id as u64) << CLASS_SHIFT)
            | ((ref_slots as u64) << REFS_SHIFT)
            | size_granules as u64
    }

    /// Decodes a header word.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the magic tag is missing (i.e. the word is
    /// not a valid object header), which catches heap-parse bugs early.
    #[inline]
    pub fn decode(word: u64) -> Header {
        debug_assert_eq!(word >> MAGIC_SHIFT, MAGIC, "bad header word {word:#x}");
        Header {
            size_granules: (word & FIELD_MASK) as u32,
            ref_slots: ((word >> REFS_SHIFT) & FIELD_MASK) as u32,
            class_id: ((word >> CLASS_SHIFT) & FIELD_MASK) as u32,
        }
    }

    /// Whether a raw word carries the header magic tag.
    #[inline]
    pub fn is_valid(word: u64) -> bool {
        word >> MAGIC_SHIFT == MAGIC
    }

    /// Object size in granules.
    #[inline]
    pub fn size_granules(&self) -> usize {
        self.size_granules as usize
    }

    /// Object size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.size_granules as usize * crate::addr::GRANULE
    }

    /// Number of reference slots.
    #[inline]
    pub fn ref_slots(&self) -> usize {
        self.ref_slots as usize
    }

    /// The class id recorded at allocation.
    #[inline]
    pub fn class_id(&self) -> u32 {
        self.class_id
    }

    /// Number of data payload words in an object of this header, given the
    /// granule-rounded size (includes rounding padding).
    #[inline]
    pub fn data_words_upper_bound(&self) -> usize {
        self.size_granules as usize * WORDS_PER_GRANULE - 1 - self.ref_slots as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_object_is_one_granule() {
        // header alone: 1 word -> 1 granule
        assert_eq!(ObjShape::new(0, 0).size_granules(), 1);
        // header + 1 slot: 2 words -> 1 granule
        assert_eq!(ObjShape::new(1, 0).size_granules(), 1);
        // header + 2 slots: 3 words -> 2 granules
        assert_eq!(ObjShape::new(2, 0).size_granules(), 2);
    }

    #[test]
    fn header_round_trip() {
        for (refs, data, class) in [(0, 0, 0), (1, 1, 1), (5, 100, 42), (1000, 0, MAX_CLASS_ID)] {
            let s = ObjShape::new(refs, data).with_class(class);
            let h = Header::decode(s.encode_header());
            assert_eq!(h.ref_slots(), refs);
            assert_eq!(h.class_id(), class);
            assert_eq!(h.size_granules(), s.size_granules());
        }
    }

    #[test]
    fn magic_detection() {
        assert!(Header::is_valid(ObjShape::new(2, 2).encode_header()));
        assert!(!Header::is_valid(0));
        assert!(!Header::is_valid(u64::MAX >> 8));
    }

    #[test]
    fn size_bytes_is_granule_rounded() {
        let s = ObjShape::new(2, 0); // 3 words = 24 bytes -> 32
        assert_eq!(s.size_bytes(), 32);
    }

    #[test]
    fn data_words_upper_bound_accounts_padding() {
        let s = ObjShape::new(1, 1); // 3 words -> 2 granules = 4 words
        let h = Header::decode(s.encode_header());
        assert_eq!(h.data_words_upper_bound(), 2); // 1 real + 1 padding
    }

    #[test]
    #[should_panic(expected = "too many reference slots")]
    fn too_many_refs_panics() {
        let _ = ObjShape::new(MAX_REF_SLOTS + 1, 0);
    }
}
