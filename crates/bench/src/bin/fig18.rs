//! Regenerates Figure 18 of the paper (aging, thresholds 4 and 6).
fn main() {
    let ctx = otf_bench::figures::Ctx::new(otf_bench::Options::from_args());
    otf_bench::figures::fig18_19(&ctx, [4, 6], "18").print();
}
