//! Work-stealing deques for the parallel mark phase.
//!
//! Each collector worker owns a [`WorkerDeque`]: the owner pushes and
//! pops at the *back* (LIFO — newly grayed objects are traced while
//! their cache lines are hot), idle workers steal from the *front*
//! (FIFO — thieves take the oldest, likely largest, subtrees).  That is
//! the Chase–Lev access pattern; the implementation follows the same
//! in-tree discipline as [`queue::SegQueue`](crate::queue::SegQueue)
//! rather than the lock-free array algorithm: a mutex-protected ring
//! plus a *conservative* atomic length that is incremented before the
//! element becomes visible and decremented only after removal.
//!
//! The conservative length is what the trace-termination protocol
//! consumes: `is_empty()` returning `true` (a `SeqCst` load of zero)
//! proves the deque held nothing at that instant *and* that no push was
//! in flight past its length increment — exactly the "no hidden work"
//! reading §4.4's termination check needs.  A worker's *hot* path never
//! touches the deque at all: workers trace out of a private `Vec` stack
//! and publish batches of excess work here for thieves (MMTk-style work
//! packets), so the mutex only serializes the rare publish/steal pairs,
//! not every traced object.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sync::Mutex;

/// A double-ended work queue owned by one collector worker and stolen
/// from by the rest.
///
/// All methods take `&self`; "owner" vs "thief" is a usage convention
/// (the owner calls [`push`](WorkerDeque::push)/[`pop`](WorkerDeque::pop),
/// everyone else calls [`steal`](WorkerDeque::steal)), not a type-level
/// restriction — the termination checker also reads every deque's
/// [`is_empty`](WorkerDeque::is_empty).
#[derive(Debug, Default)]
pub struct WorkerDeque<T> {
    items: Mutex<VecDeque<T>>,
    /// Conservative length: incremented (SeqCst) *before* the element is
    /// inserted, decremented after removal.  `0` proves emptiness.
    len: AtomicUsize,
}

impl<T> WorkerDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> WorkerDeque<T> {
        WorkerDeque {
            items: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Owner: pushes `value` at the back.
    pub fn push(&self, value: T) {
        // Length first: a concurrent is_empty() may over-report, never
        // under-report, so termination can only be delayed, not missed.
        self.len.fetch_add(1, Ordering::SeqCst);
        self.items.lock().push_back(value);
    }

    /// Owner: pushes a batch at the back under one lock acquisition.
    pub fn push_batch(&self, values: impl ExactSizeIterator<Item = T>) {
        let n = values.len();
        if n == 0 {
            return;
        }
        self.len.fetch_add(n, Ordering::SeqCst);
        let mut items = self.items.lock();
        for v in values {
            items.push_back(v);
        }
    }

    /// Owner: pops the most recently pushed element (LIFO).
    pub fn pop(&self) -> Option<T> {
        if self.len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let popped = self.items.lock().pop_back();
        if popped.is_some() {
            self.len.fetch_sub(1, Ordering::SeqCst);
        }
        popped
    }

    /// Thief: takes the oldest element (FIFO), leaving the owner's hot
    /// end untouched.
    pub fn steal(&self) -> Option<T> {
        if self.len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let stolen = self.items.lock().pop_front();
        if stolen.is_some() {
            self.len.fetch_sub(1, Ordering::SeqCst);
        }
        stolen
    }

    /// Thief: takes up to `max` of the oldest elements in one lock
    /// acquisition, appending them to `out`.  Returns how many moved.
    pub fn steal_batch_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 || self.len.load(Ordering::SeqCst) == 0 {
            return 0;
        }
        let mut items = self.items.lock();
        let n = items.len().min(max);
        out.extend(items.drain(..n));
        drop(items);
        if n > 0 {
            self.len.fetch_sub(n, Ordering::SeqCst);
        }
        n
    }

    /// Conservative element count (may over-report mid-insert).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// True iff the deque is empty *and* no insert is in flight past its
    /// length increment — the reading the termination check relies on.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let d = WorkerDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(3), "owner takes the newest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn batch_push_and_batch_steal() {
        let d = WorkerDeque::new();
        d.push_batch([1, 2, 3, 4, 5].into_iter());
        assert_eq!(d.len(), 5);
        let mut out = Vec::new();
        assert_eq!(d.steal_batch_into(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(d.steal_batch_into(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(d.steal_batch_into(&mut out, 10), 0);
        d.push_batch(std::iter::empty());
        assert!(d.is_empty());
    }

    #[test]
    fn concurrent_steals_lose_nothing_and_duplicate_nothing() {
        const ITEMS: usize = 10_000;
        const THIEVES: usize = 4;
        let d = Arc::new(WorkerDeque::new());
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while !done.load(Ordering::SeqCst) || !d.is_empty() {
                    match d.steal() {
                        Some(v) => got.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        let mut owner_got = Vec::new();
        for i in 0..ITEMS {
            d.push(i);
            // The owner competes with the thieves half the time.
            if i % 2 == 0 {
                if let Some(v) = d.pop() {
                    owner_got.push(v);
                }
            }
        }
        done.store(true, Ordering::SeqCst);
        let mut all = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..ITEMS).collect();
        assert_eq!(all, expect, "every pushed item seen exactly once");
        assert!(d.is_empty());
    }

    #[test]
    fn empty_is_observed_only_after_removal_completes() {
        // Conservative len: once push returns, is_empty() is false until
        // a pop/steal fully completes — no window where the element is
        // invisible to the termination check.
        let d = WorkerDeque::new();
        d.push(42);
        assert!(!d.is_empty());
        assert_eq!(d.pop(), Some(42));
        assert!(d.is_empty());
    }
}
