//! A minimal statistical micro-benchmark harness — the workspace's
//! `criterion` replacement.
//!
//! Each benchmark is warmed up, then measured over `samples` timed
//! samples; the harness reports the **median** and **p95** nanoseconds
//! per iteration (medians are robust to the scheduler noise that
//! dominates short concurrent-collector measurements).  Cheap operations
//! are auto-calibrated so each sample runs long enough for the clock to
//! resolve; expensive operations (whole collection cycles) use
//! [`Harness::bench_once`], where every sample is a single invocation.
//!
//! Set `OTF_BENCH_QUICK=1` to cut warmup and sample counts for smoke
//! runs.

use std::time::{Duration, Instant};

/// Aggregated timing for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median time per iteration.
    pub median: Duration,
    /// 95th-percentile time per iteration.
    pub p95: Duration,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Nearest-rank percentile: the smallest sample such that at least
/// `⌈p·n⌉` of the `n` samples are ≤ it.  (A round-to-nearest index would
/// bias upward on small sample counts — e.g. it turned the p50 of an
/// even-sized sample into the *upper* middle value.)
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// The benchmark runner: accumulates named results and prints a summary.
#[derive(Debug)]
pub struct Harness {
    warmup: Duration,
    samples: usize,
    min_sample_time: Duration,
    results: Vec<(String, Stats)>,
}

impl Harness {
    /// A harness with the default budget (or the quick budget when
    /// `OTF_BENCH_QUICK` is set).
    pub fn new() -> Harness {
        if std::env::var_os("OTF_BENCH_QUICK").is_some() {
            Harness {
                warmup: Duration::from_millis(20),
                samples: 10,
                min_sample_time: Duration::from_millis(2),
                results: Vec::new(),
            }
        } else {
            Harness {
                warmup: Duration::from_millis(200),
                samples: 30,
                min_sample_time: Duration::from_millis(10),
                results: Vec::new(),
            }
        }
    }

    /// Overrides the number of timed samples.
    pub fn with_samples(mut self, samples: usize) -> Harness {
        self.samples = samples.max(1);
        self
    }

    /// Benchmarks a cheap operation: calibrates an inner iteration count
    /// so each sample runs at least `min_sample_time`, then times
    /// `samples` samples.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup, measuring the rate as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let iters = (self.min_sample_time.as_nanos() / per_iter.max(1)).clamp(1, 1 << 24) as u64;

        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            times.push(t.elapsed() / iters as u32);
        }
        self.record(name, times, iters);
    }

    /// Benchmarks an expensive operation: each sample is exactly one
    /// invocation (no calibration loop), after a single warmup call.
    pub fn bench_once<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        self.record(name, times, 1);
    }

    fn record(&mut self, name: &str, mut times: Vec<Duration>, iters: u64) {
        times.sort_unstable();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let stats = Stats {
            median: percentile(&times, 0.5),
            p95: percentile(&times, 0.95),
            mean,
            samples: times.len(),
            iters_per_sample: iters,
        };
        println!(
            "{name:<48} median {:>12}  p95 {:>12}  ({} samples x {} iters)",
            fmt_ns(stats.median),
            fmt_ns(stats.p95),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push((name.to_string(), stats));
    }

    /// All recorded results, in execution order.
    pub fn results(&self) -> &[(String, Stats)] {
        &self.results
    }

    /// Prints the closing summary table.
    pub fn finish(self) {
        println!("\n== {} benchmarks ==", self.results.len());
        for (name, s) in &self.results {
            println!("{name:<48} {:>12} median", fmt_ns(s.median));
        }
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        Harness {
            warmup: Duration::from_millis(1),
            samples: 5,
            min_sample_time: Duration::from_micros(50),
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_records_ordered_stats() {
        let mut h = tiny();
        h.bench("noop", || 1 + 1);
        let (name, s) = &h.results()[0];
        assert_eq!(name, "noop");
        assert!(s.median <= s.p95);
        assert_eq!(s.samples, 5);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn bench_once_single_invocation_samples() {
        let mut h = tiny();
        let mut calls = 0u32;
        h.bench_once("sleepless", || calls += 1);
        // 1 warmup + 5 samples.
        assert_eq!(calls, 6);
        assert_eq!(h.results()[0].1.iters_per_sample, 1);
    }

    #[test]
    fn percentile_picks_endpoints() {
        let v: Vec<Duration> = (1..=10).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&v, 0.0), Duration::from_nanos(1));
        assert_eq!(percentile(&v, 1.0), Duration::from_nanos(10));
    }

    #[test]
    fn percentile_nearest_rank_small_n() {
        // Single sample: every percentile is that sample.
        let one = [Duration::from_nanos(7)];
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&one, p), one[0]);
        }
        // Even n: the median is the LOWER middle value (rank ⌈0.5·4⌉ = 2),
        // where round-to-nearest-index picked the upper one.
        let four: Vec<Duration> = (1..=4).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&four, 0.5), Duration::from_nanos(2));
        // Quick mode's 10 samples: p90 is the 9th value (rank ⌈9.0⌉ = 9),
        // not the maximum; p95 legitimately resolves to the 10th (there is
        // no sample between the 90th and 100th percentile of 10 samples).
        let ten: Vec<Duration> = (1..=10).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&ten, 0.9), Duration::from_nanos(9));
        assert_eq!(percentile(&ten, 0.95), Duration::from_nanos(10));
        // 20 samples resolve p95 below the maximum: rank ⌈19.0⌉ = 19.
        let twenty: Vec<Duration> = (1..=20).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&twenty, 0.95), Duration::from_nanos(19));
        assert_eq!(percentile(&twenty, 0.5), Duration::from_nanos(10));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_ns(Duration::from_micros(500)).ends_with("us"));
        assert!(fmt_ns(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_ns(Duration::from_secs(20)).ends_with("s"));
    }
}
