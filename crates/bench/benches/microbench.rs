//! Micro-benchmarks for the collector's hot paths: allocation, the three
//! write-barrier variants, reads, safe-point polling, and whole
//! collection cycles over a populated heap — on the zero-dependency
//! `otf_support::bench` harness (warmup, N samples, median/p95).
//!
//! Run with `cargo bench -p otf-bench`.  Set `OTF_BENCH_QUICK=1` for a
//! fast smoke pass.

use otf_gc::{Gc, GcConfig, Mutator, ObjShape, ObjectRef};
use otf_support::bench::Harness;

/// A quiet heap: no triggers fire during the measurement.
fn quiet(cfg: GcConfig) -> GcConfig {
    cfg.with_max_heap(64 << 20)
        .with_initial_heap(64 << 20)
        .with_young_size(48 << 20)
}

fn bench_alloc(h: &mut Harness) {
    for (label, cfg) in [
        ("generational", quiet(GcConfig::generational())),
        ("non_generational", quiet(GcConfig::non_generational())),
        ("aging", quiet(GcConfig::aging(4))),
    ] {
        let gc = Gc::new(cfg);
        let mut m = gc.mutator();
        let shape = ObjShape::new(1, 2);
        h.bench(&format!("alloc/{label}"), || m.alloc(&shape).unwrap());
        drop(m);
        gc.shutdown();
    }
}

fn setup_pair(gc: &Gc, m: &mut Mutator) -> (ObjectRef, ObjectRef) {
    let shape = ObjShape::new(2, 0);
    let a = m.alloc(&shape).unwrap();
    m.root_push(a);
    let b = m.alloc(&shape).unwrap();
    m.root_push(b);
    let _ = gc;
    (a, b)
}

fn bench_write_barrier(h: &mut Harness) {
    for (label, cfg) in [
        ("simple_async", quiet(GcConfig::generational())),
        (
            "non_generational_async",
            quiet(GcConfig::non_generational()),
        ),
        ("aging_async", quiet(GcConfig::aging(4))),
    ] {
        let gc = Gc::new(cfg);
        let mut m = gc.mutator();
        let (a, b) = setup_pair(&gc, &mut m);
        h.bench(&format!("write_barrier/{label}"), || {
            m.write_ref(std::hint::black_box(a), 0, std::hint::black_box(b))
        });
        drop(m);
        gc.shutdown();
    }
}

fn bench_reads_and_safepoint(h: &mut Harness) {
    let gc = Gc::new(quiet(GcConfig::generational()));
    let mut m = gc.mutator();
    let (a, b) = setup_pair(&gc, &mut m);
    m.write_ref(a, 0, b);
    h.bench("read_ref", || m.read_ref(std::hint::black_box(a), 0));
    h.bench("cooperate_no_handshake", || m.cooperate());
    drop(m);
    gc.shutdown();
}

/// Builds a binary tree of `n` nodes rooted on the shadow stack.
fn build_tree(m: &mut Mutator, n: usize) {
    let shape = ObjShape::new(2, 1);
    let root = m.alloc(&shape).unwrap();
    m.root_push(root);
    let mut frontier = vec![root];
    let mut count = 1;
    while count < n {
        let parent = frontier[count / 2 % frontier.len()];
        let child = m.alloc(&shape).unwrap();
        let slot = count % 2;
        m.write_ref(parent, slot, child);
        frontier.push(child);
        if frontier.len() > 64 {
            frontier.remove(0);
        }
        count += 1;
    }
}

fn bench_collection_cycle(h: &mut Harness) {
    for live in [10_000usize, 100_000] {
        for (label, cfg) in [
            ("generational", GcConfig::generational()),
            ("non_generational", GcConfig::non_generational()),
        ] {
            let gc = Gc::new(
                cfg.with_max_heap(64 << 20)
                    .with_initial_heap(64 << 20)
                    .with_young_size(56 << 20),
            );
            let mut m = gc.mutator();
            build_tree(&mut m, live);
            h.bench_once(&format!("collection_cycle/{label}/live_{live}"), || {
                m.parked(|| gc.collect_full_blocking())
            });
            drop(m);
            gc.shutdown();
        }
    }
}

fn bench_alloc_collect_steady_state(h: &mut Harness) {
    // End-to-end: allocate through repeated on-the-fly collections.
    for (label, cfg) in [
        ("generational", GcConfig::generational()),
        ("non_generational", GcConfig::non_generational()),
    ] {
        let gc = Gc::new(cfg.with_max_heap(8 << 20).with_young_size(512 << 10));
        let mut m = gc.mutator();
        let shape = ObjShape::new(0, 2); // 32-byte objects
        h.bench_once(&format!("steady_state/churn_50k_objs/{label}"), || {
            for _ in 0..50_000 {
                std::hint::black_box(m.alloc(&shape).unwrap());
            }
        });
        drop(m);
        gc.shutdown();
    }
}

fn main() {
    let mut h = Harness::new();
    bench_alloc(&mut h);
    bench_write_barrier(&mut h);
    bench_reads_and_safepoint(&mut h);
    bench_collection_cycle(&mut h);
    bench_alloc_collect_steady_state(&mut h);
    h.finish();
}
