//! Chaos harness: seeded fault-injection schedules against the live
//! collector.
//!
//! Each test installs a [`FaultPlan`] in the process-global registry
//! (serialized via [`fault::exclusive`] — the registry is shared), drives
//! real mutator threads against the collector, and then asserts the
//! hardened failure paths held: the heap verifies clean, a panicked
//! collector surfaces as [`AllocError::CollectorUnavailable`] instead of
//! a hang, the handshake watchdog trips on a non-cooperating mutator, and
//! the same seed reproduces the same injection sequence byte-for-byte.

use std::time::{Duration, Instant};

use otf_gengc::gc::{AllocError, Gc, GcConfig};
use otf_gengc::heap::ObjShape;
use otf_gengc::support::fault::{self, FaultPlan, FaultRule};
use otf_gengc::workloads::{driver, Chaos};

/// The three collector variants every schedule runs under.
fn variants() -> [GcConfig; 3] {
    [
        GcConfig::generational().with_young_size(256 << 10),
        GcConfig::non_generational(),
        GcConfig::aging(3).with_young_size(256 << 10),
    ]
}

/// Determinism: a single mutator thread under a mutator-side delay/yield
/// plan must produce the *identical* injection log on every run — the
/// per-hit decision is a pure function of `(seed, point, hit)`, and with
/// one thread the hit order is the program order.
#[test]
fn same_seed_reproduces_identical_injection_sequence() {
    let _serial = fault::exclusive();
    let plan = || {
        FaultPlan::new(0xC0FFEE)
            .rule(
                FaultRule::at("mutator.cooperate")
                    .delaying(0.3, 50)
                    .yielding(0.3),
            )
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.2))
            .rule(FaultRule::at("mutator.lab.refill").delaying(0.5, 30))
    };
    let w = Chaos::new().with_threads(1).scaled(0.1);
    let mut logs = Vec::new();
    for _ in 0..2 {
        fault::install(plan());
        let _ = driver::run_workload(&w, GcConfig::generational().with_young_size(256 << 10), 17);
        logs.push(fault::uninstall());
    }
    assert!(!logs[0].is_empty(), "the plan never fired");
    assert_eq!(
        logs[0], logs[1],
        "same seed must reproduce the same injection sequence"
    );
}

/// The seeded chaos matrix: every collector variant × both sweep modes
/// survives both a scheduling-storm plan (delays and yields inside the
/// protocol's race windows — including the lazy segment-claim and
/// run-reclaim windows) and a failure-storm plan (refused chunk
/// allocations) with a structurally consistent heap at the end.
#[test]
fn chaos_matrix_verifies_clean_under_fault_plans() {
    let _serial = fault::exclusive();
    let storm: fn() -> FaultPlan = || {
        FaultPlan::new(7)
            .rule(
                FaultRule::at("mutator.cooperate")
                    .delaying(0.1, 200)
                    .yielding(0.2),
            )
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.1))
            .rule(FaultRule::at("mutator.lab.refill").delaying(0.1, 100))
            .rule(
                FaultRule::at("mutator.lazy_sweep.segment")
                    .delaying(0.2, 200)
                    .yielding(0.2),
            )
            .rule(FaultRule::at("collector.phase").delaying(0.5, 500))
            .rule(FaultRule::at("collector.handshake.wait").yielding(0.3))
    };
    let failures: fn() -> FaultPlan = || {
        FaultPlan::new(11)
            .rule(
                FaultRule::at("heap.alloc_chunk")
                    .failing(0.05)
                    .max_fires(25),
            )
            .rule(FaultRule::at("mutator.lab.refill").yielding(0.2))
            .rule(FaultRule::at("mutator.lazy_sweep.segment").yielding(0.3))
            .rule(FaultRule::at("mutator.cooperate").yielding(0.1))
    };
    let w = Chaos::new().with_threads(3).scaled(0.2);
    for cfg in variants() {
        for lazy in [false, true] {
            let cfg = cfg.with_lazy_sweep(lazy);
            for (name, mk) in [("storm", storm), ("failures", failures)] {
                fault::install(mk());
                let (_, violations) = driver::run_workload_verified(&w, cfg, 23);
                let log = fault::uninstall();
                assert!(
                    violations.is_empty(),
                    "plan {name:?} under {:?} (lazy_sweep={lazy}) left heap violations \
                     after {} injections: {violations:?}",
                    cfg.mode,
                    log.len()
                );
            }
        }
    }
}

/// The parallel back-end under chaos: every variant runs with four GC
/// workers while `collector.worker` injections delay and yield workers at
/// steal attempts (mark) and segment claims (sweep), stretching the
/// §4.4 termination race windows.  The heap must still verify clean and
/// the per-worker stats must show all four workers participated — if the
/// extended termination check ever fired early, the sweep would reclaim
/// live objects and verification would catch it.
#[test]
fn parallel_chaos_matrix_verifies_clean_at_four_workers() {
    let _serial = fault::exclusive();
    let plan = || {
        FaultPlan::new(0x5EED)
            .rule(
                FaultRule::at("collector.worker")
                    .delaying(0.2, 300)
                    .yielding(0.3),
            )
            .rule(FaultRule::at("mutator.cooperate").yielding(0.2))
            .rule(FaultRule::at("mutator.barrier.window").yielding(0.1))
            .rule(FaultRule::at("mutator.lazy_sweep.segment").yielding(0.3))
            .rule(FaultRule::at("collector.phase").delaying(0.2, 200))
    };
    let w = Chaos::new().with_threads(3).scaled(0.2);
    for cfg in variants() {
        for lazy in [false, true] {
            let cfg = cfg.with_gc_threads(4).with_lazy_sweep(lazy);
            fault::install(plan());
            let (result, violations) = driver::run_workload_verified(&w, cfg, 31);
            let log = fault::uninstall();
            assert!(
                violations.is_empty(),
                "N=4 chaos under {:?} (lazy_sweep={lazy}) left heap violations \
                 after {} injections: {violations:?}",
                cfg.mode,
                log.len()
            );
            assert_eq!(
                result.stats.workers.len(),
                4,
                "expected per-worker stats for all four GC workers"
            );
            assert!(
                result.stats.workers[0].mark.count() > 0,
                "worker 0 never recorded a mark phase"
            );
        }
    }
}

/// Panic containment: when the collector thread dies, allocation-blocked
/// mutators must *not* hang — heap exhaustion surfaces as
/// [`AllocError::CollectorUnavailable`] within a bounded time, and the
/// poisoned state is visible in the stats.
#[test]
fn panicked_collector_unblocks_allocators_with_collector_unavailable() {
    let _serial = fault::exclusive();
    // The injected panic is expected; silence the default hook's
    // backtrace spam for the duration (restored before any assertion).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    fault::install(
        FaultPlan::new(1).rule(FaultRule::at("collector.panic").failing(1.0).max_fires(1)),
    );
    let gc = Gc::new(
        GcConfig::generational()
            .with_initial_heap(1 << 20)
            .with_max_heap(1 << 20)
            .with_young_size(256 << 10),
    );
    let mut m = gc.mutator();
    let shape = ObjShape::new(0, 6);
    let bound = Duration::from_secs(30);
    let start = Instant::now();
    let mut outcome = None;
    // Retain everything: the first collection request panics the
    // collector, so growing pressure must end in CollectorUnavailable.
    for _ in 0..1_000_000 {
        match m.alloc(&shape) {
            Ok(r) => {
                m.root_push(r);
            }
            Err(e) => {
                outcome = Some(e);
                break;
            }
        }
        if start.elapsed() > bound {
            break;
        }
    }
    let hung = start.elapsed() > bound;
    drop(m);
    let log = fault::uninstall();
    std::panic::set_hook(prev_hook);

    assert!(
        !hung,
        "allocator still blocked {bound:?} after the collector died"
    );
    assert_eq!(log.len(), 1, "exactly one injected panic expected: {log:?}");
    assert!(
        matches!(outcome, Some(AllocError::CollectorUnavailable { .. })),
        "expected CollectorUnavailable, got {outcome:?}"
    );
    assert!(gc.is_poisoned());
    let stats = gc.shutdown();
    assert!(stats.collector_poisoned);
}

/// The handshake watchdog: a mutator that never cooperates stalls the
/// cycle; instead of hanging silently the collector must report the
/// stall (counted in [`watchdog_trips`]) and then complete the cycle
/// once the mutator is gone.
///
/// [`watchdog_trips`]: otf_gengc::gc::GcStats::watchdog_trips
#[test]
fn watchdog_reports_stalled_handshake() {
    let _serial = fault::exclusive();
    let gc = Gc::new(GcConfig::generational().with_handshake_stall_ms(50));
    let mut m = gc.mutator();
    let r = m.alloc(&ObjShape::new(1, 1)).unwrap();
    m.root_push(r);
    gc.request_full();
    // Never cooperate: the first handshake cannot complete.  Give the
    // watchdog a few reporting intervals to trip.
    let start = Instant::now();
    while gc.stats().watchdog_trips == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(gc.stats().watchdog_trips > 0, "watchdog never tripped");
    // Dropping the mutator unregisters it; the stalled cycle must now
    // run to completion (the watchdog reports, it does not kill).
    let before = gc.cycles_completed();
    drop(m);
    let start = Instant::now();
    while gc.cycles_completed() == before && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        gc.cycles_completed() > before,
        "stalled cycle never completed"
    );
    gc.shutdown();
}
