//! The transitive mark phase (`trace` in Figure 2) with sound on-the-fly
//! termination detection.

use otf_heap::{Color, ObjectRef};

use crate::cycle::CycleCx;
use crate::shared::GcShared;

impl GcShared {
    /// `MarkBlack` (Figure 3): shade every son gray, then color the object
    /// with the trace target color (black in the generational variants;
    /// the current allocation color in the toggled non-generational
    /// baseline).
    pub(crate) fn mark_black(&self, obj: ObjectRef, target: Color, cx: &mut CycleCx) {
        let g = obj.granule();
        let colors = self.heap.colors();
        if colors.get(g) == target {
            return; // duplicate queue entry
        }
        let header = self.heap.arena().header(obj);
        let ref_slots = header.ref_slots();
        for i in 0..ref_slots {
            let son = self.heap.arena().load_ref_slot(obj, i);
            self.mark_gray_clear_local(son, &mut cx.mark_stack);
        }
        colors.set(g, target);
        cx.counters.objects_traced += 1;
        cx.touch_object(obj, 1 + ref_slots);
        cx.touch_color(g);
    }

    /// The trace loop: pop gray objects and blacken them until no gray
    /// object exists.
    ///
    /// Termination is subtle on-the-fly: a mutator's write barrier first
    /// CASes a color to gray and *then* pushes the object on the queue, so
    /// an empty queue alone does not mean no gray objects.  Every
    /// gray-producing mutator operation is bracketed by an epoch counter
    /// (odd while inside); the collector believes an empty queue only
    /// after observing all epochs even *and then* the queue still empty.
    /// Any barrier that starts after that point can only shade objects the
    /// DLG invariants already guarantee are marked (see DESIGN.md §4.3).
    pub(crate) fn trace(&self, cx: &mut CycleCx) {
        let target = self.trace_target();
        loop {
            while let Some(obj) = cx.mark_stack.pop() {
                self.mark_black(obj, target, cx);
            }
            if let Some(obj) = self.gray.pop() {
                self.mark_black(obj, target, cx);
                continue;
            }
            let all_even = {
                let mutators = self.mutators.lock();
                mutators.iter().all(|m| m.epoch_is_even())
            };
            if all_even && cx.mark_stack.is_empty() && self.gray.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::cycle::CycleCx;
    use otf_heap::ObjShape;

    fn setup() -> (GcShared, CycleCx) {
        let sh = GcShared::new(
            GcConfig::generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        let cx = CycleCx::new(&sh);
        (sh, cx)
    }

    fn alloc(sh: &GcShared, refs: usize, color: Color) -> ObjectRef {
        let shape = ObjShape::new(refs, 1);
        let n = shape.size_granules() as u32;
        let c = sh.heap.alloc_chunk(n, n).unwrap();
        sh.heap.install_object(c.start as usize, &shape, color)
    }

    #[test]
    fn trace_marks_reachable_chain() {
        let (sh, mut cx) = setup();
        // Build a chain a -> b -> c, all clear-colored.
        sh.colors.toggle(); // clear color is now White (allocation Yellow)
        let c = alloc(&sh, 1, Color::White);
        let b = alloc(&sh, 1, Color::White);
        let a = alloc(&sh, 1, Color::White);
        sh.heap.arena().store_ref_slot(a, 0, b);
        sh.heap.arena().store_ref_slot(b, 0, c);
        let d = alloc(&sh, 0, Color::White); // unreachable

        sh.mark_gray_clear(a);
        sh.trace(&mut cx);

        for obj in [a, b, c] {
            assert_eq!(sh.heap.colors().get(obj.granule()), Color::Black);
        }
        assert_eq!(sh.heap.colors().get(d.granule()), Color::White);
        assert_eq!(cx.counters.objects_traced, 3);
        assert!(sh.gray.is_empty());
    }

    #[test]
    fn trace_does_not_traverse_old_generation() {
        let (sh, mut cx) = setup();
        sh.colors.toggle();
        // Black (old) object referencing a white object: trace must not
        // traverse it unless it was explicitly grayed via a dirty card.
        let young = alloc(&sh, 0, Color::White);
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.arena().store_ref_slot(old, 0, young);
        // No roots at all.
        sh.trace(&mut cx);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::White);
        assert_eq!(cx.counters.objects_traced, 0);
    }

    #[test]
    fn trace_through_regrayed_black_parent() {
        let (sh, mut cx) = setup();
        sh.colors.toggle();
        let young = alloc(&sh, 0, Color::White);
        let old = alloc(&sh, 1, Color::Black);
        sh.heap.arena().store_ref_slot(old, 0, young);
        assert!(sh.mark_gray_from_black(old)); // as ClearCards would
        sh.trace(&mut cx);
        assert_eq!(sh.heap.colors().get(old.granule()), Color::Black);
        assert_eq!(sh.heap.colors().get(young.granule()), Color::Black);
        assert_eq!(cx.counters.objects_traced, 2);
    }

    #[test]
    fn trace_ignores_allocation_colored_objects() {
        let (sh, mut cx) = setup();
        sh.colors.toggle(); // allocation = Yellow
        let infant = alloc(&sh, 0, Color::Yellow);
        let root = alloc(&sh, 1, Color::White);
        sh.heap.arena().store_ref_slot(root, 0, infant);
        sh.mark_gray_clear(root);
        sh.trace(&mut cx);
        // The yellow infant is not traced (not promoted, §4).
        assert_eq!(sh.heap.colors().get(infant.granule()), Color::Yellow);
        assert_eq!(sh.heap.colors().get(root.granule()), Color::Black);
    }

    #[test]
    fn trace_waits_for_in_flight_barrier() {
        use std::sync::atomic::Ordering;
        use std::sync::Arc;
        let (sh, mut cx) = setup();
        let sh = Arc::new(sh);
        sh.colors.toggle();
        let hidden = alloc(&sh, 0, Color::White);
        let m = sh.register_mutator();

        // Simulate a mutator stuck inside the write barrier: epoch odd,
        // color already CASed to gray, push not yet performed.
        m.epoch_enter();
        assert!(sh
            .heap
            .colors()
            .cas(hidden.granule(), Color::White, Color::Gray));

        let sh2 = Arc::clone(&sh);
        let m2 = Arc::clone(&m);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            sh2.gray.push(hidden);
            m2.epoch.fetch_add(1, Ordering::SeqCst); // epoch_exit
        });

        // Trace must not terminate before the delayed push arrives.
        sh.trace(&mut cx);
        pusher.join().unwrap();
        assert_eq!(sh.heap.colors().get(hidden.granule()), Color::Black);
    }

    #[test]
    fn non_generational_trace_uses_allocation_color() {
        let sh = GcShared::new(
            GcConfig::non_generational()
                .with_max_heap(1 << 20)
                .with_initial_heap(1 << 20),
        );
        let mut cx = CycleCx::new(&sh);
        sh.colors.toggle(); // allocation Yellow, clear White
        let a = alloc(&sh, 0, Color::White);
        sh.mark_gray_clear(a);
        sh.trace(&mut cx);
        // Marked with the allocation color, not literal black.
        assert_eq!(sh.heap.colors().get(a.granule()), Color::Yellow);
    }
}
